// Ablation — additive vs proportional differentiation (Section 2.1).
//
// Runs the additive head-start scheduler (p_i = w_i + s_i) and WTP
// (p_i = w_i * s_i) across the load sweep and reports, per load:
//   * additive: the successive-class delay *differences* against the
//     configured targets s_{i+1} - s_i (Eq. 3);
//   * WTP: the successive-class delay *ratios* against s_{i+1}/s_i.
//
// Expected shape: in heavy load the additive scheduler pins differences
// (which shrink *relatively* as delays grow), while WTP pins ratios (which
// keep their relative meaning at any delay scale) — the paper's argument
// for the proportional model's load-independent semantics.
#include <iostream>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seeds", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 1.0e5 : 3.0e5);
    const auto seeds = static_cast<std::uint32_t>(
        args.get_int("seeds", quick ? 2 : 3));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    // Head starts must stay small against the heavy-load delay scale
    // (hundreds of tu at rho=0.95): offsets comparable to the delays push
    // the top classes to near-zero delay, where the additive spacing
    // cannot be realized (the bounded-delay analogue of infeasibility).
    const std::vector<double> add_sdp{1.0, 50.0, 100.0, 150.0};
    const std::vector<double> wtp_sdp{1.0, 2.0, 4.0, 8.0};

    std::cout << "=== Ablation: additive vs proportional differentiation"
                 " ===\nadditive targets d_i - d_{i+1}: 49, 50, 50 tu;"
                 " WTP target ratios: 2.0\n\n";
    const std::vector<double> rhos{0.80, 0.90, 0.95};
    const std::vector<pds::SchedulerKind> kinds{
        pds::SchedulerKind::kAdditiveWtp, pds::SchedulerKind::kWtp};

    // Every (rho, scheduler, seed) cell is one independent simulation;
    // fan the whole grid out and aggregate after the barrier.
    const pds::SweepRunner runner({rhos.size(), kinds.size(), seeds});
    const auto cells = runner.run(
        [&](const std::vector<std::size_t>& at, std::size_t) {
          pds::StudyAConfig config;
          config.utilization = rhos[at[0]];
          config.sim_time = sim_time;
          config.seed = 100 + at[2];
          config.scheduler = kinds[at[1]];
          config.sdp =
              kinds[at[1]] == pds::SchedulerKind::kAdditiveWtp ? add_sdp
                                                               : wtp_sdp;
          return pds::run_study_a(config);
        });

    pds::TablePrinter table({"rho", "ADD d1-d2", "ADD d2-d3", "ADD d3-d4",
                             "WTP d1/d2", "WTP d2/d3", "WTP d3/d4"});
    for (std::size_t u = 0; u < rhos.size(); ++u) {
      std::vector<double> diff_acc(3, 0.0);
      std::vector<double> ratio_acc(3, 0.0);
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto& add = cells[runner.grid().flat({u, 0, s})];
        const auto& wtp = cells[runner.grid().flat({u, 1, s})];
        for (std::size_t i = 0; i < 3; ++i) {
          diff_acc[i] += add.mean_delays[i] - add.mean_delays[i + 1];
          ratio_acc[i] += wtp.ratios[i];
        }
      }
      std::vector<std::string> row{
          pds::TablePrinter::num(rhos[u] * 100.0, 0) + "%"};
      for (std::size_t i = 0; i < 3; ++i) {
        row.push_back(pds::TablePrinter::num(diff_acc[i] / seeds, 0));
      }
      for (std::size_t i = 0; i < 3; ++i) {
        row.push_back(pds::TablePrinter::num(ratio_acc[i] / seeds, 2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected: ADD columns approach the 49/50/50 targets as"
                 " rho grows\n(Eq. 3 with D_ij = s_j - s_i); WTP columns"
                 " approach 2.00. Note the\ncontrast in semantics: the"
                 " additive gap loses meaning as delays grow\n(50 tu on top"
                 " of 500 is noise), while the WTP ratio scales with the\n"
                 "delay level — the paper's argument for proportional"
                 " spacing.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
