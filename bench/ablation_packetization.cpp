// Ablation — BPR packetization error (Appendix 3 vs the fluid ideal).
//
// The paper attributes BPR's residual inaccuracy to "the approximations done
// in the 'packetization' of the scheduler" and concedes that the packetized
// algorithm's departure order may differ from the fluid server's. This bench
// quantifies exactly that: the same arrival trace is fed to (a) the exact
// fluid BPR server (analytically integrated, see sched/bpr_fluid.hpp) and
// (b) the Appendix 3 packetized scheduler behind a packet link, and the
// per-packet *departure times* are compared packet by packet.
//
// It also contrasts the achieved delay-ratio columns. Note the semantics
// gap: in the fluid model a packet's transmission is smeared over its whole
// sojourn (there is no "start of service"), so its queueing delay is taken
// as sojourn minus the solo transmission time size/R. That metric penalizes
// high classes (their service is always shared), which is why the fluid
// ratio column sits *below* the packetized one — an observation about the
// fluid abstraction itself, discussed in EXPERIMENTS.md.
#include <algorithm>
#include <iostream>
#include <map>

#include "exp/thread_pool.hpp"
#include "packet/size_law.hpp"
#include "rng/distributions.hpp"
#include "sched/bpr.hpp"
#include "sched/bpr_fluid.hpp"
#include "sched/link.hpp"
#include "stats/running_stats.hpp"
#include "traffic/calibration.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

std::vector<pds::Packet> make_trace(double rho, double sim_time,
                                    std::uint64_t seed) {
  pds::Rng rng(seed);
  const auto law = pds::paper_size_law();
  const auto gaps = pds::class_mean_interarrivals(
      rho, {0.4, 0.3, 0.2, 0.1}, pds::kStudyACapacity, law.mean());
  std::vector<pds::Packet> trace;
  std::uint64_t id = 0;
  for (pds::ClassId c = 0; c < 4; ++c) {
    pds::Rng stream = rng.split();
    const auto dist = pds::ParetoDist::with_mean(1.9, gaps[c]);
    double t = 0.0;
    for (;;) {
      t += dist.sample(stream);
      if (t > sim_time) break;
      pds::Packet p;
      p.id = id++;
      p.cls = c;
      p.size_bytes = pds::sample_size_bytes(law, stream);
      p.arrival = t;
      p.created = t;
      trace.push_back(p);
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const pds::Packet& a, const pds::Packet& b) {
              return a.arrival < b.arrival;
            });
  return trace;
}

pds::SchedulerConfig bpr_config() {
  pds::SchedulerConfig c;
  c.sdp = {1.0, 2.0, 4.0, 8.0};
  c.link_capacity = pds::kStudyACapacity;
  return c;
}

std::vector<double> ratios(const std::vector<pds::RunningStats>& stats) {
  std::vector<double> out;
  for (std::size_t c = 0; c + 1 < stats.size(); ++c) {
    out.push_back(stats[c].mean() / stats[c + 1].mean());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "rho", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 5.0e4 : 2.0e5);
    const double rho = args.get_double("rho", 0.95);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
    // The fluid pass feeds the packetized comparison, so the two stages are
    // inherently sequential; the pool is sized for knob consistency only.
    pds::ThreadPool::set_global_workers(args.get_jobs());
    const double warmup = 0.1 * sim_time;

    std::cout << "=== Ablation: BPR fluid ideal vs Appendix-3 packetization"
                 " ===\nrho = " << rho << ", SDPs 1,2,4,8, sim-time "
              << sim_time << " tu\n\n";
    const auto trace = make_trace(rho, sim_time, seed);

    // (a) Exact fluid server: record departures by packet id.
    std::map<std::uint64_t, double> fluid_departure;
    std::vector<pds::RunningStats> fluid_delay(4);
    pds::BprFluidServer fluid(
        bpr_config(), [&](const pds::Packet& p, pds::SimTime t) {
          fluid_departure[p.id] = t;
          if (p.arrival < warmup) return;
          const double solo =
              static_cast<double>(p.size_bytes) / pds::kStudyACapacity;
          fluid_delay[p.cls].add((t - p.arrival) - solo);
        });
    for (const auto& p : trace) fluid.arrive(p, p.arrival);
    fluid.drain();

    // (b) Packetized BPR behind a packet link.
    std::vector<pds::RunningStats> pkt_delay(4);
    std::vector<pds::RunningStats> departure_gap(4);  // |pkt - fluid|
    pds::Simulator sim;
    pds::BprScheduler sched(bpr_config());
    pds::Link link(sim, sched, pds::kStudyACapacity,
                   [&](pds::Packet&& p, pds::SimTime wait, pds::SimTime now) {
                     if (p.created < warmup) return;
                     pkt_delay[p.cls].add(wait);
                     const auto it = fluid_departure.find(p.id);
                     if (it != fluid_departure.end()) {
                       departure_gap[p.cls].add(
                           std::abs(now - it->second) / pds::kPUnit);
                     }
                   });
    for (const auto& p : trace) {
      sim.schedule_at(p.arrival, [&link, p]() { link.arrive(p); });
    }
    sim.run();

    const auto fluid_r = ratios(fluid_delay);
    const auto pkt_r = ratios(pkt_delay);
    pds::TablePrinter table({"class", "mean |departure gap| (p-units)",
                             "fluid ratio to next", "packetized ratio"});
    for (pds::ClassId c = 0; c < 4; ++c) {
      table.add_row(
          {std::to_string(c + 1),
           pds::TablePrinter::num(departure_gap[c].mean(), 2),
           c < 3 ? pds::TablePrinter::num(fluid_r[c]) : std::string("-"),
           c < 3 ? pds::TablePrinter::num(pkt_r[c]) : std::string("-")});
    }
    table.print(std::cout);
    std::cout << "\nThe departure-gap column is the packetization error of"
                 " Appendix 3: each\npacket leaves within a few packet"
                 " transmission times of its fluid ideal.\nThe ratio columns"
                 " differ because fluid service has no 'start of\n"
                 "transmission' — see EXPERIMENTS.md for the discussion.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
