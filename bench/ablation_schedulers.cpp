// Ablation — every scheduler on identical arrivals.
//
// The same recorded trace (4 classes, Pareto(1.9), 95% load, equal packet
// sizes) is replayed through all ten schedulers. Because arrivals and sizes
// are identical:
//
//   * the total-wait column must be IDENTICAL across schedulers (the
//     conservation law, Eq. 5: a work-conserving server only redistributes
//     waiting time, never creates or destroys it) — printed to make the
//     law visible, not just asserted in tests;
//   * the ratio columns isolate what each discipline does with that fixed
//     waiting-time budget: FCFS splits it evenly; SP starves downward
//     (d1/d2 explodes); WTP/BPR/PAD/HPD split it ~2x per class step;
//     DRR/SCFQ/VC land wherever the load mix pushes them (with persistent
//     backlogs and 1:2:4:8 weights, VC degenerates to SP-like behaviour);
//     the additive scheduler's offsets (1,2,4,8 tu) are negligible against
//     ~150 tu delays, so its row sits at ~1.0 — additive spacing only
//     means something at the delay scale it was sized for.
#include <algorithm>
#include <iostream>

#include "core/trace_study.hpp"
#include "exp/sweep.hpp"
#include "packet/size_law.hpp"
#include "rng/distributions.hpp"
#include "traffic/calibration.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

std::vector<pds::ArrivalRecord> make_trace(double rho, double sim_time,
                                           std::uint64_t seed,
                                           std::uint32_t packet_bytes) {
  pds::Rng rng(seed);
  const auto gaps = pds::class_mean_interarrivals(
      rho, {0.4, 0.3, 0.2, 0.1}, pds::kStudyACapacity,
      static_cast<double>(packet_bytes));
  std::vector<pds::ArrivalRecord> trace;
  for (pds::ClassId c = 0; c < 4; ++c) {
    pds::Rng stream = rng.split();
    const auto dist = pds::ParetoDist::with_mean(1.9, gaps[c]);
    double t = 0.0;
    while ((t += dist.sample(stream)) <= sim_time) {
      trace.push_back(pds::ArrivalRecord{t, c, packet_bytes});
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const pds::ArrivalRecord& a, const pds::ArrivalRecord& b) {
              return a.time < b.time;
            });
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "rho", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 1.0e5 : 3.0e5);
    const double rho = args.get_double("rho", 0.95);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    const auto trace = make_trace(rho, sim_time, seed, 441);
    std::cout << "=== Ablation: all schedulers, identical arrivals ===\n"
              << trace.size() << " packets (441 B each), rho = " << rho
              << ", SDPs 1,2,4,8, load 40/30/20/10\n\n";

    // One cell per scheduler: every replay reads the same shared trace
    // (const access only) and runs concurrently on the experiment engine.
    const std::vector<pds::SchedulerKind> kinds{
        pds::SchedulerKind::kFcfs, pds::SchedulerKind::kStrictPriority,
        pds::SchedulerKind::kWtp, pds::SchedulerKind::kBpr,
        pds::SchedulerKind::kAdditiveWtp, pds::SchedulerKind::kPad,
        pds::SchedulerKind::kHpd, pds::SchedulerKind::kDrr,
        pds::SchedulerKind::kScfq, pds::SchedulerKind::kVirtualClock};
    const auto cells = pds::run_sweep(kinds.size(), [&](std::size_t k) {
      pds::TraceStudyConfig config;
      config.scheduler = kinds[k];
      config.warmup_end = 0.1 * sim_time;
      return pds::run_trace_study(trace, config);
    });

    pds::TablePrinter table({"scheduler", "d1/d2", "d2/d3", "d3/d4",
                             "mean d4 (p-units)", "total wait (norm.)"});
    const double reference_wait = cells[0].total_wait;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& r = cells[k];
      table.add_row(
          {pds::to_string(kinds[k]), pds::TablePrinter::num(r.ratios[0]),
           pds::TablePrinter::num(r.ratios[1]),
           pds::TablePrinter::num(r.ratios[2]),
           pds::TablePrinter::num(r.mean_delays[3] / pds::kPUnit, 1),
           pds::TablePrinter::num(r.total_wait / reference_wait, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected: the normalized total-wait column is 1.0000 for"
                 " every row\n(Eq. 5 — identical sizes, work conservation);"
                 " the ratio columns show how\neach discipline spends the"
                 " same waiting-time budget.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
