#include "alloc_counter.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

void* checked_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    const std::size_t rounded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  } else {
    p = std::malloc(size);
  }
  return p;
}

}  // namespace

namespace pds::bench {

std::uint64_t heap_allocations() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t heap_bytes() noexcept {
  return g_bytes.load(std::memory_order_relaxed);
}

}  // namespace pds::bench

void* operator new(std::size_t size) {
  void* p = checked_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = checked_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return checked_alloc(size, alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return checked_alloc(size, alignof(std::max_align_t));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
