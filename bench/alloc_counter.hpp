// Process-wide heap-allocation counter for the microbenchmarks.
//
// Linking alloc_counter.cpp into a bench binary replaces the global
// operator new/delete with counting versions (a relaxed atomic increment on
// top of malloc — identical overhead for every configuration under test, so
// timing comparisons stay fair). Benches read the counter before and after
// the measured region and report the delta per simulated packet/event; this
// is the enforcement mechanism behind the allocation-budget rule in
// docs/architecture.md.
#pragma once

#include <cstdint>

namespace pds::bench {

// Total operator-new calls since process start.
std::uint64_t heap_allocations() noexcept;

// Total bytes requested from operator new since process start.
std::uint64_t heap_bytes() noexcept;

}  // namespace pds::bench
