// Extension — whole-distribution view of the differentiation.
//
// The paper evaluates means (Figs. 1-2), interval means (Fig. 3) and
// end-to-end percentiles (Table 1). This bench looks at the full per-class
// queueing-delay distribution on one heavy-loaded link and compares three
// disciplines:
//
//   * FCFS:  one shared distribution — no differentiation (the baseline
//            "same service to all").
//   * WTP:   proportional spacing visible at *every* quantile, not just
//            the mean: p50, p90, p99 all separate by ~the SDP ratio.
//   * SP:    strict priority over-differentiates: the top class collapses
//            to near zero while class 1's tail explodes.
//
// Per-class CCDF rows are exported as CSV for plotting.
#include <iostream>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "stats/histogram.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

pds::StudyAResult simulate(pds::SchedulerKind kind, double sim_time,
                           std::uint64_t seed) {
  pds::StudyAConfig config;
  config.scheduler = kind;
  config.utilization = 0.95;
  config.sim_time = sim_time;
  config.seed = seed;
  config.record_departures = true;
  config.report_percentiles = {50.0, 90.0, 99.0};
  return pds::run_study_a(config);
}

void report(const pds::StudyAResult& result, const char* label,
            const std::string& csv_prefix) {
  std::cout << "\n" << label << "\n";
  pds::TablePrinter table({"class", "mean (p-units)", "p50", "p90", "p99"});
  for (pds::ClassId c = 0; c < 4; ++c) {
    table.add_row({std::to_string(pds::paper_class_label(c)),
                   pds::TablePrinter::num(result.mean_delays[c] / pds::kPUnit,
                                          1),
                   pds::TablePrinter::num(
                       result.delay_percentiles[c][0] / pds::kPUnit, 1),
                   pds::TablePrinter::num(
                       result.delay_percentiles[c][1] / pds::kPUnit, 1),
                   pds::TablePrinter::num(
                       result.delay_percentiles[c][2] / pds::kPUnit, 1)});
  }
  table.print(std::cout);

  // CCDF export: one log-binned histogram per class.
  std::vector<pds::LogHistogram> hist(
      4, pds::LogHistogram(0.1 * pds::kPUnit, 1.5, 24));
  for (const auto& rec : result.per_packet) {
    hist[rec.cls].add(rec.delay);
  }
  pds::CsvWriter csv(csv_prefix + "_ccdf.csv",
                     {"bound_p_units", "class1", "class2", "class3",
                      "class4"});
  std::vector<std::vector<pds::LogHistogram::Row>> rows;
  for (const auto& h : hist) rows.push_back(h.rows());
  for (std::size_t i = 0; i < rows[0].size(); ++i) {
    csv.add_row(std::vector<double>{rows[0][i].bound / pds::kPUnit,
                                    rows[0][i].ccdf, rows[1][i].ccdf,
                                    rows[2][i].ccdf, rows[3][i].ccdf});
  }
  std::cout << "CCDF rows -> " << csv.path() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 1.0e5 : 4.0e5);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 6));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    std::cout << "=== Extension: per-class delay distributions at rho = 95%"
                 " ===\nSDPs 1,2,4,8, load 40/30/20/10; delays in p-units\n";
    // The three discipline runs are independent cells; the simulations fan
    // out on the experiment engine, then tables and CSVs are written
    // serially so the output order is fixed.
    const std::vector<pds::SchedulerKind> kinds{
        pds::SchedulerKind::kFcfs, pds::SchedulerKind::kWtp,
        pds::SchedulerKind::kStrictPriority};
    const auto cells = pds::run_sweep(kinds.size(), [&](std::size_t k) {
      return simulate(kinds[k], sim_time, seed);
    });
    report(cells[0], "FCFS (no differentiation)", "dist_fcfs");
    report(cells[1], "WTP (proportional)", "dist_wtp");
    report(cells[2], "Strict Priority", "dist_sp");
    std::cout << "\nExpected: FCFS rows identical across classes; WTP rows"
                 " spaced ~2x at\nevery percentile; SP collapses the top"
                 " class and stretches class 1's tail.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
