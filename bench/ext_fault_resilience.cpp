// Extension — fault resilience of proportional delay differentiation.
//
// The paper's Section 5 results assume a healthy link. This bench asks what
// happens to the differentiation contract when the link misbehaves: a
// scripted fault plan degrades capacity to 50%, stalls the scheduler, and
// takes the link down (holding arrivals) in turn, and we measure the Eq. 2
// short-timescale ratio error — the mean over adjacent class pairs of
// |(d_i/d_{i+1}) / (s_{i+1}/s_i)^-1 ... normalized achieved/target - 1| —
// in a window before, during, and after each episode, for WTP, BPR and PAD.
//
// Expected shape: WTP re-converges to the target ratios within a window
// after each episode (its waiting-time priorities self-correct); BPR's
// rate-based weights are slower to recover from the backlog flush; during a
// hold-mode outage no packets depart, so the "during" column is undefined
// for the down episode and the damage shows up in the "after" window
// instead.
//
// Every (scheduler, seed) cell is an independent simulation under the same
// fault plan; cells run on the experiment engine via run_supervised_sweep,
// so a pathological cell would be reported, not fatal, and the assembled
// table is byte-identical for any --jobs (fault boundaries are scripted
// simulator events; see docs/robustness.md).
//
// Knobs: --sim-time (time units), --seeds, --quick, --jobs. Telemetry:
// --spans-out writes the sweep's span timeline (add --spans-wall for the
// wall-clock worker/shard view), --conformance-tau enables per-cell DDP
// conformance monitoring, --report-out writes the unified run report
// (--report-volatile opts the schedule-dependent pool section in). Default
// span/report output is byte-identical for any --jobs. --shards=N
// additionally runs a faulted ring scenario through the sharded PDES
// kernel and asserts its run report is byte-identical to the serial one.
#include <array>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>

#include "core/study_a.hpp"
#include "exp/supervisor.hpp"
#include "exp/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "net/scenario.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// The scripted fault sequence, scaled to the run length: capacity degraded
// to 50% for 6% of the run at 30%, a scheduler stall at 50%, and a
// hold-mode outage for 2% of the run at 70%.
std::string build_plan(double sim_time) {
  std::ostringstream plan;
  plan << "seed 7\n"
       << "degrade link at=" << 0.30 * sim_time << " for=" << 0.06 * sim_time
       << " factor=0.5\n"
       << "stall link at=" << 0.50 * sim_time << " for=" << 0.005 * sim_time
       << "\n"
       << "down link at=" << 0.70 * sim_time << " for=" << 0.02 * sim_time
       << " mode=hold\n";
  return plan.str();
}

// Per cell: for each episode, the mean adjacent-pair ratio error in the
// before/during/after windows (NaN where a class pair saw no departures).
struct CellStats {
  std::vector<std::array<double, 3>> err;
  std::uint64_t fault_drops = 0;
  std::uint64_t episodes = 0;
  // Per-cell DDP conformance summary (iff --conformance-tau).
  std::uint64_t conf_windows = 0;
  std::uint64_t conf_violations = 0;
  std::uint64_t conf_during_faults = 0;
  double conf_max_error = 0.0;
};

// Mean over adjacent pairs of |achieved/target - 1| for departures in
// [t0, t1); NaN when any class pair lacks samples.
double ratio_error(const std::vector<pds::DepartureRecord>& packets,
                   const std::vector<double>& sdp, double t0, double t1) {
  std::vector<double> sum(sdp.size(), 0.0);
  std::vector<std::uint64_t> count(sdp.size(), 0);
  for (const auto& rec : packets) {
    if (rec.time < t0 || rec.time >= t1) continue;
    sum[rec.cls] += rec.delay;
    ++count[rec.cls];
  }
  double acc = 0.0;
  for (std::size_t c = 0; c + 1 < sdp.size(); ++c) {
    if (count[c] == 0 || count[c + 1] == 0 || sum[c + 1] == 0.0) return kNan;
    const double achieved =
        (sum[c] / static_cast<double>(count[c])) /
        (sum[c + 1] / static_cast<double>(count[c + 1]));
    const double target = sdp[c + 1] / sdp[c];
    acc += std::abs(achieved / target - 1.0);
  }
  return acc / static_cast<double>(sdp.size() - 1);
}

std::string cell_text(double v) {
  return std::isnan(v) ? "-" : pds::TablePrinter::num(v, 3);
}

// Sharded-kernel differential: outages and degradations on a graph
// scenario, serial vs --shards=N. Returns true when the run reports are
// byte-identical — fault episodes must survive the space partition.
bool sharded_faults_identical(std::uint32_t shards, double sim_time) {
  std::ostringstream text;
  text << "topology ring n=6 capacity=39.375 sched=wtp sdp=1,2,4,8\n"
          "route east from=n0 to=n2\n"
          "route west from=n2 to=n0\n"
          "route cross from=n0 to=n3\n"
          "source mix east fractions=40,30,20,10 gap=20 size=441 pareto=1.9\n"
          "source mix west fractions=40,30,20,10 gap=20 size=441 pareto=1.9\n"
          "flows cross class=3 users=8 size=441 think=1200 request=2"
          " response=2 deadline=400 rto=900 retries=2\n"
       << "run until=" << sim_time << " warmup=" << 0.1 * sim_time
       << " seed=7\n";
  std::ostringstream plan;
  plan << "degrade n0>n1 at=" << 0.25 * sim_time << " for=" << 0.1 * sim_time
       << " factor=0.5\n"
       << "down n1>n2 at=" << 0.50 * sim_time << " for=" << 0.05 * sim_time
       << " mode=drop\n"
       << "down n2>n1 at=" << 0.70 * sim_time << " for=" << 0.05 * sim_time
       << " mode=hold\n";
  const auto scenario = pds::parse_scenario(text.str());
  pds::ScenarioOptions options;
  options.fault_plan = plan.str();
  const auto serial =
      pds::scenario_run_report(scenario, pds::run_scenario(scenario, options),
                               scenario.run.seed)
          .dump();
  pds::ScenarioOptions sharded = options;
  sharded.shards = shards;
  sharded.shard_executor = [](std::size_t count,
                              const std::function<void(std::size_t)>& body) {
    pds::parallel_for(count, body);
  };
  const auto parallel =
      pds::scenario_run_report(scenario, pds::run_scenario(scenario, sharded),
                               scenario.run.seed)
          .dump();
  return parallel == serial;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seeds", "quick", "jobs", "spans-out",
                        "spans-wall", "conformance-tau", "report-out",
                        "report-volatile", "shards"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 1.2e5 : 4.0e5);
    const auto seeds =
        static_cast<std::uint32_t>(args.get_int("seeds", quick ? 2 : 5));
    const auto shards =
        static_cast<std::uint32_t>(args.get_int("shards", 1));
    pds::ThreadPool::set_global_workers(
        pds::ThreadPool::plan_workers(args.get_jobs(), shards));
    const auto spans_out = args.get_string("spans-out", "");
    const bool spans_wall = args.get_bool("spans-wall", false);
    const double conformance_tau = args.get_double("conformance-tau", 0.0);
    const auto report_out = args.get_string("report-out", "");
    const bool report_volatile = args.get_bool("report-volatile", false);

    const std::string plan_text = build_plan(sim_time);
    const auto plan = pds::parse_fault_plan(plan_text);
    const std::vector<pds::SchedulerKind> kinds{pds::SchedulerKind::kWtp,
                                                pds::SchedulerKind::kBpr,
                                                pds::SchedulerKind::kPad};
    const std::vector<const char*> names{"WTP", "BPR", "PAD"};

    std::cout << "=== Extension: ratio error under link faults ===\n"
              << "sim-time " << sim_time << " tu, " << seeds
              << " seed(s); rho 0.95, SDPs 1,2,4,8; plan:\n"
              << plan_text;

    // One cell per (scheduler, seed); each runs the full fault plan and
    // reduces its departure records to per-episode phase errors.
    const pds::SweepGrid grid({kinds.size(), seeds});
    pds::SweepTelemetry telemetry;
    pds::SupervisorOptions sup_opts;
    if (!spans_out.empty() || !report_out.empty()) {
      sup_opts.telemetry = &telemetry;
    }
    const auto sup = pds::run_supervised_sweep(
        grid.size(), sup_opts,
        [&](std::size_t i) {
          const auto at = grid.coords(i);
          pds::StudyAConfig config;
          config.scheduler = kinds[at[0]];
          config.sim_time = sim_time;
          config.seed = 1 + at[1];
          config.record_departures = true;
          config.fault_plan = plan_text;
          config.conformance_tau = conformance_tau;
          // Deterministic backstop: a healthy cell at this scale stays far
          // below the budget; a livelocked one is killed and reported.
          config.max_events = 500000000;
          const auto result = pds::run_study_a(config);

          CellStats stats;
          stats.fault_drops = result.fault_drops;
          stats.episodes = result.fault_episodes;
          stats.conf_windows = result.conformance.windows;
          stats.conf_violations = result.conformance.violations;
          stats.conf_during_faults = result.conformance.violations_during_faults;
          stats.conf_max_error = result.conformance.max_error;
          for (const auto& ep : plan.episodes) {
            const double window = ep.duration;
            stats.err.push_back(
                {ratio_error(result.per_packet, config.sdp,
                             ep.at - window, ep.at),
                 ratio_error(result.per_packet, config.sdp, ep.at, ep.end()),
                 ratio_error(result.per_packet, config.sdp, ep.end(),
                             ep.end() + window)});
          }
          return stats;
        });

    pds::TablePrinter table({"scheduler", "episode", "err before",
                             "err during", "err after"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (std::size_t e = 0; e < plan.episodes.size(); ++e) {
        // Average each phase over the seeds that measured it.
        std::array<double, 3> acc{0.0, 0.0, 0.0};
        std::array<std::uint32_t, 3> defined{0, 0, 0};
        for (std::uint32_t s = 0; s < seeds; ++s) {
          const auto& cell = sup.cells[grid.flat({k, s})];
          if (cell.err.empty()) continue;  // failed cell
          for (int p = 0; p < 3; ++p) {
            if (std::isnan(cell.err[e][p])) continue;
            acc[p] += cell.err[e][p];
            ++defined[p];
          }
        }
        std::array<double, 3> mean{kNan, kNan, kNan};
        for (int p = 0; p < 3; ++p) {
          if (defined[p] > 0) mean[p] = acc[p] / defined[p];
        }
        table.add_row({names[k], pds::to_string(plan.episodes[e].kind),
                       cell_text(mean[0]), cell_text(mean[1]),
                       cell_text(mean[2])});
      }
    }
    table.print(std::cout);

    std::uint64_t drops = 0;
    for (const auto& cell : sup.cells) drops += cell.fault_drops;
    std::cout << "\n" << grid.size() - sup.failures.size() << "/"
              << grid.size() << " cells completed, " << drops
              << " fault drop(s) total (hold mode: expected 0)\n";
    for (const auto& f : sup.failures) {
      std::cout << "cell " << f.index << " FAILED after " << f.attempts
                << " attempt(s): " << f.error << "\n";
    }
    if (conformance_tau > 0.0) {
      std::uint64_t violations = 0;
      std::uint64_t during = 0;
      for (const auto& cell : sup.cells) {
        violations += cell.conf_violations;
        during += cell.conf_during_faults;
      }
      std::cout << "conformance (tau " << conformance_tau << " tu): "
                << violations << " violation(s) across all cells, " << during
                << " during fault episodes\n";
    }

    if (!spans_out.empty()) {
      pds::SpanTracer spans(spans_wall ? pds::SpanMode::kWall
                                       : pds::SpanMode::kDeterministic);
      spans.add_sweep(telemetry);
      spans.write(spans_out);
      std::cout << "spans: " << spans.span_count() << " span(s) written to "
                << spans_out
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }

    if (!report_out.empty()) {
      pds::RunReport report("supervised_sweep");
      report.set_section("run",
                         pds::Json::object()
                             .set("bench", "ext_fault_resilience")
                             .set("sim_time", sim_time)
                             .set("seeds", seeds)
                             .set("cells", grid.size())
                             .set("fault_plan", plan_text));
      report.set_section(
          "supervisor",
          pds::Json::object()
              .set("cells", pds::sweep_cells_json(telemetry))
              .set("failures", pds::failures_json(sup.failures)));
      if (conformance_tau > 0.0) {
        pds::Json per_cell = pds::Json::array();
        for (std::size_t i = 0; i < sup.cells.size(); ++i) {
          const auto& cell = sup.cells[i];
          per_cell.push(pds::Json::object()
                            .set("index", i)
                            .set("windows", cell.conf_windows)
                            .set("violations", cell.conf_violations)
                            .set("during_faults", cell.conf_during_faults)
                            .set("max_error", cell.conf_max_error));
        }
        report.set_section(
            "conformance",
            pds::Json::object().set("tau", conformance_tau)
                .set("cells", std::move(per_cell)));
      }
      if (report_volatile) {
        report.set_section("volatile", pds::sweep_volatile_json(telemetry));
      }
      report.write(report_out);
      std::cout << "run report written to " << report_out << "\n";
    }

    std::cout << "\nReading: 'err' is the mean over adjacent class pairs of\n"
                 "|achieved ratio / target - 1| (0 = perfect proportional\n"
                 "differentiation); '-' means a window with no departures in\n"
                 "some class (e.g. during a hold-mode outage).\n";

    bool sharded_ok = true;
    if (shards > 1) {
      sharded_ok = sharded_faults_identical(shards, quick ? 3.0e4 : 1.0e5);
      std::cout << "\nsharded kernel (--shards=" << shards
                << "): faulted ring run report is "
                << (sharded_ok ? "byte-identical to serial"
                               : "DIFFERENT from serial (BUG)")
                << ".\n";
    }
    return sup.failures.empty() && sharded_ok ? 0 : 1;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
