// Extension — live reconfiguration and overload shedding (src/ctrl/).
//
// The paper treats the SDPs as fixed for a run. This bench asks how fast
// each scheduler re-converges to a NEW differentiation target pushed into
// the running simulation by the control plane: a scripted plan widens the
// SDPs from {1,2,4,8} to {1,3,9,27} mid-run, tunes them back, and finally
// swaps the scheduler to HPD with the backlog handed across live. For each
// boundary we measure the Eq. 2 ratio error — mean over adjacent pairs of
// |achieved/target - 1|, scored against the SDP vector in force in that
// window — before the change, in the transient window right after it, and
// in a settled window one transient later.
//
// Expected shape: WTP and HPD track the retune within the transient window
// (waiting-time priorities re-rank immediately); PAD drags its long-run
// average-delay history into the new regime so its transient error is
// larger; BPR re-seeds its virtual service on the swap boundary and
// recovers by the settled window. The swap row shows that a mid-run
// scheduler replacement costs at most a transient, not the run.
//
// The second table is the overload guard: the link degrades to 45% capacity
// (effective rho >> 1) with and without a shed window covering the episode.
// With the shed active the two lowest classes are dropped at the watermark
// and the protected classes keep bounded delays; without it the backlog —
// and every class's delay — grows for the whole episode.
//
// Every cell is an independent simulation on the experiment engine
// (run_supervised_sweep): a pathological cell is reported, not fatal, and
// the tables are byte-identical for any --jobs (control boundaries are
// scripted simulator events; see docs/control_plane.md).
//
// Knobs: --sim-time (time units), --seeds, --quick, --jobs. --shards=N
// additionally runs the controlled ring scenario through the sharded PDES
// kernel and asserts the run report is byte-identical to the serial one —
// live retunes, swaps and sheds must survive the space partition.
#include <array>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>

#include "core/study_a.hpp"
#include "exp/supervisor.hpp"
#include "exp/sweep.hpp"
#include "net/scenario.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

const std::vector<double> kBaseSdp{1.0, 2.0, 4.0, 8.0};
const std::vector<double> kWideSdp{1.0, 3.0, 9.0, 27.0};

// One measured control boundary: the instant, the SDP targets in force on
// each side, and a label for the table.
struct Boundary {
  const char* label;
  double at;
  const std::vector<double>* before_sdp;
  const std::vector<double>* after_sdp;
};

// The reconfiguration schedule, scaled to the run length: widen the SDPs at
// 30%, tune them back at 50%, swap the scheduler to HPD at 70%.
std::string build_plan(double sim_time) {
  std::ostringstream plan;
  plan << "retune link at=" << 0.30 * sim_time << " w=1,3,9,27\n"
       << "retune link at=" << 0.50 * sim_time << " w=1,2,4,8\n"
       << "swap link at=" << 0.70 * sim_time << " sched=hpd\n";
  return plan.str();
}

std::vector<Boundary> boundaries(double sim_time) {
  return {{"retune 1,3,9,27", 0.30 * sim_time, &kBaseSdp, &kWideSdp},
          {"retune 1,2,4,8", 0.50 * sim_time, &kWideSdp, &kBaseSdp},
          {"swap -> hpd", 0.70 * sim_time, &kBaseSdp, &kBaseSdp}};
}

// Mean over adjacent pairs of |achieved/target - 1| for departures in
// [t0, t1) against `sdp`; NaN when any class pair lacks samples.
double ratio_error(const std::vector<pds::DepartureRecord>& packets,
                   const std::vector<double>& sdp, double t0, double t1) {
  std::vector<double> sum(sdp.size(), 0.0);
  std::vector<std::uint64_t> count(sdp.size(), 0);
  for (const auto& rec : packets) {
    if (rec.time < t0 || rec.time >= t1) continue;
    sum[rec.cls] += rec.delay;
    ++count[rec.cls];
  }
  double acc = 0.0;
  for (std::size_t c = 0; c + 1 < sdp.size(); ++c) {
    if (count[c] == 0 || count[c + 1] == 0 || sum[c + 1] == 0.0) return kNan;
    const double achieved =
        (sum[c] / static_cast<double>(count[c])) /
        (sum[c + 1] / static_cast<double>(count[c + 1]));
    const double target = sdp[c + 1] / sdp[c];
    acc += std::abs(achieved / target - 1.0);
  }
  return acc / static_cast<double>(sdp.size() - 1);
}

// Per-class mean delay and departures inside [t0, t1).
struct WindowStats {
  std::vector<double> mean_delay;
  std::vector<std::uint64_t> departures;
};

WindowStats window_stats(const std::vector<pds::DepartureRecord>& packets,
                         std::size_t classes, double t0, double t1) {
  WindowStats w;
  w.mean_delay.assign(classes, 0.0);
  w.departures.assign(classes, 0);
  for (const auto& rec : packets) {
    if (rec.time < t0 || rec.time >= t1) continue;
    w.mean_delay[rec.cls] += rec.delay;
    ++w.departures[rec.cls];
  }
  for (std::size_t c = 0; c < classes; ++c) {
    if (w.departures[c] > 0) {
      w.mean_delay[c] /= static_cast<double>(w.departures[c]);
    } else {
      w.mean_delay[c] = kNan;
    }
  }
  return w;
}

struct RetuneCell {
  std::vector<std::array<double, 3>> err;  // per boundary: before/trans/settled
  std::uint64_t episodes = 0;
};

struct ShedCell {
  WindowStats during;
  std::uint64_t shed_drops = 0;
  std::uint64_t executed_events = 0;
};

std::string cell_text(double v) {
  return std::isnan(v) ? "-" : pds::TablePrinter::num(v, 3);
}

// Sharded-kernel differential: the full control-plane episode set on a
// graph scenario, serial vs --shards=N. Returns true when the run reports
// are byte-identical.
bool sharded_control_identical(std::uint32_t shards, double sim_time) {
  std::ostringstream text;
  text << "topology ring n=6 capacity=39.375 sched=wtp sdp=1,2,4,8\n"
          "route east from=n0 to=n2\n"
          "route west from=n2 to=n0\n"
          "route cross from=n0 to=n3\n"
          "source mix east fractions=40,30,20,10 gap=20 size=441 pareto=1.9\n"
          "source mix west fractions=40,30,20,10 gap=20 size=441 pareto=1.9\n"
          "flows cross class=3 users=8 size=441 think=1200 request=2"
          " response=2 deadline=400\n"
       << "run until=" << sim_time << " warmup=" << 0.1 * sim_time
       << " seed=7\n";
  std::ostringstream plan;
  plan << "retune n0>n1 at=" << 0.30 * sim_time << " w=1,3,9,27\n"
       << "swap n1>n2 at=" << 0.50 * sim_time << " sched=hpd\n"
       << "shed n1>n0 at=" << 0.70 * sim_time << " for=" << 0.1 * sim_time
       << " watermark=2 classes=2\n";
  const auto scenario = pds::parse_scenario(text.str());
  pds::ScenarioOptions options;
  options.control_plan = plan.str();
  const auto serial =
      pds::scenario_run_report(scenario, pds::run_scenario(scenario, options),
                               scenario.run.seed)
          .dump();
  pds::ScenarioOptions sharded = options;
  sharded.shards = shards;
  sharded.shard_executor = [](std::size_t count,
                              const std::function<void(std::size_t)>& body) {
    pds::parallel_for(count, body);
  };
  const auto parallel =
      pds::scenario_run_report(scenario, pds::run_scenario(scenario, sharded),
                               scenario.run.seed)
          .dump();
  return parallel == serial;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seeds", "quick", "jobs", "shards"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 1.2e5 : 4.0e5);
    const auto seeds =
        static_cast<std::uint32_t>(args.get_int("seeds", quick ? 2 : 5));
    const auto shards =
        static_cast<std::uint32_t>(args.get_int("shards", 1));
    pds::ThreadPool::set_global_workers(
        pds::ThreadPool::plan_workers(args.get_jobs(), shards));

    const std::string plan_text = build_plan(sim_time);
    const auto bounds = boundaries(sim_time);
    const double window = 0.06 * sim_time;  // transient length
    const std::vector<pds::SchedulerKind> kinds{
        pds::SchedulerKind::kWtp, pds::SchedulerKind::kBpr,
        pds::SchedulerKind::kPad, pds::SchedulerKind::kHpd};
    const std::vector<const char*> names{"WTP", "BPR", "PAD", "HPD"};

    std::cout << "=== Extension: ratio error across live retunes ===\n"
              << "sim-time " << sim_time << " tu, " << seeds
              << " seed(s); rho 0.95, SDPs 1,2,4,8; plan:\n"
              << plan_text;

    // --- Part 1: retune/swap recovery, one cell per (scheduler, seed) ----
    const pds::SweepGrid grid({kinds.size(), seeds});
    const auto sup = pds::run_supervised_sweep(
        grid.size(), pds::SupervisorOptions{},
        [&](std::size_t i) {
          const auto at = grid.coords(i);
          pds::StudyAConfig config;
          config.scheduler = kinds[at[0]];
          config.sim_time = sim_time;
          config.seed = 1 + at[1];
          config.record_departures = true;
          config.control_plan = plan_text;
          config.max_events = 500000000;
          const auto result = pds::run_study_a(config);

          RetuneCell cell;
          cell.episodes = result.control_episodes;
          for (const auto& b : bounds) {
            cell.err.push_back(
                {ratio_error(result.per_packet, *b.before_sdp, b.at - window,
                             b.at),
                 ratio_error(result.per_packet, *b.after_sdp, b.at,
                             b.at + window),
                 ratio_error(result.per_packet, *b.after_sdp, b.at + window,
                             b.at + 2.0 * window)});
          }
          return cell;
        });

    pds::TablePrinter table({"scheduler", "boundary", "err before",
                             "err transient", "err settled"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (std::size_t e = 0; e < bounds.size(); ++e) {
        std::array<double, 3> acc{0.0, 0.0, 0.0};
        std::array<std::uint32_t, 3> defined{0, 0, 0};
        for (std::uint32_t s = 0; s < seeds; ++s) {
          const auto& cell = sup.cells[grid.flat({k, s})];
          if (cell.err.empty()) continue;  // failed cell
          for (int p = 0; p < 3; ++p) {
            if (std::isnan(cell.err[e][p])) continue;
            acc[p] += cell.err[e][p];
            ++defined[p];
          }
        }
        std::array<double, 3> mean{kNan, kNan, kNan};
        for (int p = 0; p < 3; ++p) {
          if (defined[p] > 0) mean[p] = acc[p] / defined[p];
        }
        table.add_row({names[k], bounds[e].label, cell_text(mean[0]),
                       cell_text(mean[1]), cell_text(mean[2])});
      }
    }
    table.print(std::cout);
    std::cout << "\n" << grid.size() - sup.failures.size() << "/"
              << grid.size() << " retune cells completed\n";
    for (const auto& f : sup.failures) {
      std::cout << "cell " << f.index << " FAILED after " << f.attempts
                << " attempt(s): " << f.error << "\n";
    }

    // --- Part 2: overload shed guard, (shed off/on) x seeds --------------
    // The link degrades to 45% capacity for 30% of the run (effective rho
    // ~2.1); the shed variant covers the episode with a watermark guard
    // protecting the top two classes.
    const double ov_at = 0.30 * sim_time;
    const double ov_for = 0.30 * sim_time;
    std::ostringstream fault_plan;
    fault_plan << "degrade link at=" << ov_at << " for=" << ov_for
               << " factor=0.45\n";
    std::ostringstream shed_plan;
    shed_plan << "shed link at=" << ov_at << " for=" << ov_for
              << " watermark=" << (quick ? 200 : 400) << " classes=2\n";

    const pds::SweepGrid ov_grid({2, seeds});
    const auto ov = pds::run_supervised_sweep(
        ov_grid.size(), pds::SupervisorOptions{},
        [&](std::size_t i) {
          const auto at = ov_grid.coords(i);
          pds::StudyAConfig config;
          config.scheduler = pds::SchedulerKind::kWtp;
          config.sim_time = sim_time;
          config.seed = 1 + at[1];
          config.record_departures = true;
          config.fault_plan = fault_plan.str();
          if (at[0] == 1) config.control_plan = shed_plan.str();
          config.max_events = 500000000;
          const auto result = pds::run_study_a(config);

          ShedCell cell;
          cell.during = window_stats(result.per_packet, kBaseSdp.size(),
                                     ov_at, ov_at + ov_for);
          cell.shed_drops = result.shed_drops;
          cell.executed_events = result.executed_events;
          return cell;
        });

    pds::TablePrinter ov_table({"mode", "class", "delay during", "departures",
                                "shed drops"});
    const char* modes[] = {"no shed", "shed c0,c1"};
    for (std::size_t m = 0; m < 2; ++m) {
      for (std::size_t c = 0; c < kBaseSdp.size(); ++c) {
        double delay = 0.0;
        std::uint64_t dep = 0, drops = 0;
        std::uint32_t defined = 0;
        for (std::uint32_t s = 0; s < seeds; ++s) {
          const auto& cell = ov.cells[ov_grid.flat({m, s})];
          if (cell.during.mean_delay.empty()) continue;
          if (!std::isnan(cell.during.mean_delay[c])) {
            delay += cell.during.mean_delay[c];
            ++defined;
          }
          dep += cell.during.departures[c];
          drops += cell.shed_drops;
        }
        ov_table.add_row(
            {modes[m], "c" + std::to_string(c),
             cell_text(defined > 0 ? delay / defined : kNan),
             pds::TablePrinter::num(static_cast<double>(dep), 0),
             c == 0 ? pds::TablePrinter::num(static_cast<double>(drops), 0)
                    : ""});
      }
    }
    std::cout << "\n=== Overload: degrade to 45% capacity, rho ~2.1 ===\n"
              << fault_plan.str();
    ov_table.print(std::cout);
    std::cout << "\n" << ov_grid.size() - ov.failures.size() << "/"
              << ov_grid.size() << " overload cells completed\n";
    for (const auto& f : ov.failures) {
      std::cout << "cell " << f.index << " FAILED after " << f.attempts
                << " attempt(s): " << f.error << "\n";
    }

    std::cout << "\nReading: 'err' is the mean over adjacent class pairs of\n"
                 "|achieved ratio / target - 1| against the SDP vector in\n"
                 "force in that window (0 = perfect). The overload table\n"
                 "shows the shed guard trading class-0/1 arrivals for\n"
                 "bounded protected-class delays during the episode.\n";

    bool sharded_ok = true;
    if (shards > 1) {
      sharded_ok = sharded_control_identical(shards, quick ? 3.0e4 : 1.0e5);
      std::cout << "\nsharded kernel (--shards=" << shards
                << "): controlled ring run report is "
                << (sharded_ok ? "byte-identical to serial"
                               : "DIFFERENT from serial (BUG)")
                << ".\n";
    }
    return sup.failures.empty() && ov.failures.empty() && sharded_ok ? 0 : 1;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
