// Extension — proportional loss-rate differentiation (the paper's stated
// future work: Sections 1 and 7 defer "coupled delay and loss
// differentiation").
//
// A finite-buffer WTP link is driven into sustained overload (Study C
// harness, core/study_c.hpp). Three drop policies are compared:
//   * drop-tail (arriving packet discarded): loss rates follow the class
//     *load* shares, not any operator target;
//   * PLR(inf): loss-rate ratios pinned to the LDPs over the whole run;
//   * PLR(M):   same target over a sliding window of M arrivals.
//
// Expected shape: PLR variants hold l_i / l_{i+1} ~= sigma_i / sigma_{i+1}
// = 2 while drop-tail's ratios follow the load mix; meanwhile WTP keeps
// the surviving packets' *delay* ratios differentiated — coupled delay and
// loss differentiation from one node.
#include <cmath>
#include <iostream>

#include "core/study_c.hpp"
#include "exp/sweep.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

std::string loss_row(const pds::StudyCResult& r) {
  std::string out;
  for (std::size_t c = 0; c < r.loss_rates.size(); ++c) {
    out += pds::TablePrinter::num(100.0 * r.loss_rates[c], 1) + "%";
    if (c + 1 < r.loss_rates.size()) out += " / ";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known(
        {"sim-time", "seed", "overload", "mix", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    pds::StudyCConfig base;
    base.sim_time = args.get_double("sim-time", quick ? 5.0e4 : 2.0e5);
    base.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
    base.offered_load = args.get_double("overload", 1.3);
    base.load_fractions =
        args.get_double_list("mix", {0.25, 0.25, 0.25, 0.25});
    pds::ThreadPool::set_global_workers(args.get_jobs());

    std::cout << "=== Extension: proportional loss differentiation under "
              << pds::TablePrinter::num((base.offered_load - 1.0) * 100.0, 0)
              << "% overload ===\nLDPs sigma = 8,4,2,1 (higher class ->"
                 " less loss); target loss ratio 2 per pair\n\n";

    // The three drop-policy runs are independent cells; fan them out and
    // assemble the table after the barrier.
    const std::vector<std::tuple<std::string, pds::DropPolicy, std::uint64_t>>
        policies{{"drop-tail", pds::DropPolicy::kDropIncoming, 0},
                 {"PLR(inf)", pds::DropPolicy::kPlr, 0},
                 {"PLR(2000)", pds::DropPolicy::kPlr, 2000}};
    const auto cells = pds::run_sweep(policies.size(), [&](std::size_t i) {
      auto config = base;
      config.policy = std::get<1>(policies[i]);
      config.plr_window = std::get<2>(policies[i]);
      return pds::run_study_c(config);
    });

    pds::TablePrinter table({"policy", "loss c1/c2/c3/c4", "l1/l2", "l2/l3",
                             "l3/l4", "agg loss"});
    pds::StudyCResult plr_result;
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const auto& name = std::get<0>(policies[i]);
      const auto& r = cells[i];
      if (name == "PLR(inf)") plr_result = r;
      std::vector<std::string> row{name, loss_row(r)};
      for (const double ratio : r.loss_ratios) {
        row.push_back(std::isfinite(ratio)
                          ? pds::TablePrinter::num(ratio)
                          : std::string("inf"));
      }
      row.push_back(pds::TablePrinter::num(100.0 * r.aggregate_loss_rate, 1) +
                    "%");
      table.add_row(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nsurvivor delay ratios under PLR(inf) (WTP still"
                 " differentiates delays): ";
    for (const double r : plr_result.delay_ratios) {
      std::cout << pds::TablePrinter::num(r) << " ";
    }
    std::cout << "\nExpected: PLR rows pin the loss ratios at 2.00; the"
                 " drop-tail row\nfollows the load shares instead.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
