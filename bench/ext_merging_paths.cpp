// Extension — end-to-end consistency beyond the chain: merging paths.
//
// Study B's Figure 6 is a single chain. Real paths merge: two user
// populations enter on different access links and share a backbone link.
// Using the general Network substrate (net/topology.hpp), this bench builds
//
//      access A ──┐
//                 ├── backbone ── exit
//      access B ──┘
//
// with independent cross traffic on each access link and on the backbone.
// Per-class twin flows are launched simultaneously on both paths; the
// Table 1 methodology (ten delay percentiles per flow, consistency check,
// R_D) is applied to each path separately.
//
// Expected: the per-hop, class-based mechanism keeps both populations'
// differentiation consistent even though they only share one hop — R_D
// near 2.0 on both paths, no (or vanishingly few) percentile inversions.
#include <iostream>
#include <memory>

#include "exp/thread_pool.hpp"
#include "net/topology.hpp"
#include "stats/percentile.hpp"
#include "traffic/source.hpp"
#include "util/args.hpp"
#include "util/contracts.hpp"
#include "util/table.hpp"

namespace {

constexpr std::uint32_t kClasses = 4;

struct PathStats {
  double rd_sum = 0.0;
  std::uint64_t rd_terms = 0;
  std::uint64_t inconsistent = 0;
  std::uint64_t experiments = 0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"experiments", "rho", "seed", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const auto experiments = static_cast<std::uint32_t>(
        args.get_int("experiments", quick ? 10 : 40));
    const double rho = args.get_double("rho", 0.9);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));
    // One simulation only — the pool is sized for consistency with the
    // other benches (nothing fans out here).
    pds::ThreadPool::set_global_workers(args.get_jobs());

    const double bw_bps = 25e6;
    const double capacity = bw_bps / 8.0;
    const std::uint32_t pkt = 500;
    const double flow_gap = pkt * 8.0 / 50e3;  // R_u = 50 kbps
    const std::uint32_t flow_packets = 20;
    const double warmup = 10.0;

    pds::Simulator sim;
    pds::PacketIdAllocator ids;
    pds::Rng master(seed);

    pds::SchedulerConfig sc;
    sc.sdp = {1.0, 2.0, 4.0, 8.0};
    sc.link_capacity = capacity;

    pds::Network net(sim);
    const auto access_a =
        net.add_link(pds::SchedulerKind::kWtp, sc, capacity, "accessA");
    const auto access_b =
        net.add_link(pds::SchedulerKind::kWtp, sc, capacity, "accessB");
    const auto backbone =
        net.add_link(pds::SchedulerKind::kWtp, sc, capacity, "backbone");

    // Per-flow end-to-end delays: flow id = ((path * M) + experiment) *
    // kClasses + class.
    const std::uint32_t flows_total = 2 * experiments * kClasses;
    std::vector<pds::SampleSet> flow_delays(flows_total);
    const auto on_exit = [&](const pds::Packet& p, pds::SimTime) {
      flow_delays[p.flow].add(p.cum_queueing);
    };
    const auto route_a = net.add_route({access_a, backbone}, on_exit);
    const auto route_b = net.add_route({access_b, backbone}, on_exit);
    // Cross traffic exits after a single hop.
    const auto cross_sink = [](const pds::Packet&, pds::SimTime) {};
    const auto cross_a = net.add_route({access_a}, cross_sink);
    const auto cross_b = net.add_route({access_b}, cross_sink);
    const auto cross_bb = net.add_route({backbone}, cross_sink);

    // Cross load: each access link carries its user flows + cross; the
    // backbone carries BOTH user populations + its own cross. Calibrate
    // all three links to rho.
    const double user_rate =
        static_cast<double>(kClasses) * flow_packets * pkt / 1.0;  // per s
    const double access_cross = rho * capacity - user_rate;
    const double backbone_cross = rho * capacity - 2.0 * user_rate;
    PDS_CHECK(access_cross > 0 && backbone_cross > 0,
              "user flows exceed the utilization target");

    std::vector<std::unique_ptr<pds::ClassMixSource>> cross;
    const std::vector<double> mix{0.4, 0.3, 0.2, 0.1};
    const auto add_cross = [&](pds::RouteId route, double rate) {
      for (int s = 0; s < 4; ++s) {
        cross.push_back(std::make_unique<pds::ClassMixSource>(
            sim, ids, mix, pds::pareto_gaps(1.9, pkt / (rate / 4.0)),
            pds::fixed_size(pkt), master.split(),
            [&net, route](pds::Packet p) { net.inject(p, route); }));
        cross.back()->start(0.0);
      }
    };
    add_cross(cross_a, access_cross);
    add_cross(cross_b, access_cross);
    add_cross(cross_bb, backbone_cross);

    // Twin flows per experiment on each path, one per class.
    std::vector<std::unique_ptr<pds::CbrFlowSource>> flows;
    for (std::uint32_t path = 0; path < 2; ++path) {
      for (std::uint32_t k = 0; k < experiments; ++k) {
        for (pds::ClassId c = 0; c < kClasses; ++c) {
          const pds::FlowId id =
              (path * experiments + k) * kClasses + c;
          const auto route = path == 0 ? route_a : route_b;
          flows.push_back(std::make_unique<pds::CbrFlowSource>(
              sim, ids, c, id, flow_packets, pkt, flow_gap,
              [&net, route](pds::Packet p) { net.inject(p, route); }));
          flows.back()->start(warmup + k * 1.0);
        }
      }
    }

    const double t_stop =
        warmup + experiments * 1.0 + flow_packets * flow_gap + 1.0;
    sim.run_until(t_stop);
    for (auto& s : cross) s->stop();
    sim.run();

    // Table 1 methodology per path.
    const std::vector<double> ps{10, 20, 30, 40, 50, 60, 70, 80, 90, 99};
    pds::TablePrinter table({"path", "R_D (ideal 2.00)",
                             "inconsistent experiments", "backbone rho"});
    for (std::uint32_t path = 0; path < 2; ++path) {
      PathStats stats;
      for (std::uint32_t k = 0; k < experiments; ++k) {
        std::vector<std::vector<double>> pct(kClasses);
        for (pds::ClassId c = 0; c < kClasses; ++c) {
          pct[c] =
              flow_delays[(path * experiments + k) * kClasses + c]
                  .percentiles(ps);
        }
        bool inconsistent = false;
        for (pds::ClassId lo = 0; lo + 1 < kClasses; ++lo) {
          for (std::size_t q = 0; q < ps.size(); ++q) {
            if (pct[lo + 1][q] > pct[lo][q] * (1.0 + 1e-12)) {
              inconsistent = true;
            }
            if (pct[lo + 1][q] > 1e-9) {
              stats.rd_sum += pct[lo][q] / pct[lo + 1][q];
              ++stats.rd_terms;
            }
          }
        }
        if (inconsistent) ++stats.inconsistent;
      }
      table.add_row({path == 0 ? "A (via accessA)" : "B (via accessB)",
                     pds::TablePrinter::num(
                         stats.rd_sum / static_cast<double>(stats.rd_terms)),
                     std::to_string(stats.inconsistent) + " of " +
                         std::to_string(experiments),
                     pds::TablePrinter::num(net.link(backbone).busy_time() /
                                            sim.now())});
    }
    std::cout << "=== Extension: merging paths (Y topology), WTP per hop"
                 " ===\ntwo access links + shared backbone at rho = " << rho
              << ", " << experiments << " experiments per path\n\n";
    table.print(std::cout);
    std::cout << "\nExpected: both populations see consistent ~2x spacing"
                 " end to end even\nthough they share only the backbone"
                 " hop.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
