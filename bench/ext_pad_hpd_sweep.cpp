// Extension — the paper's open question, Section 5: "an interesting open
// question is whether there is a work-conserving scheduler that can achieve
// the proportional delay differentiation constraints, whenever this is
// feasible."
//
// The authors' own follow-on answer (Part II) is PAD and HPD, both
// implemented in sched/pad.hpp. This bench reruns the Figure 1a load sweep
// with all four schedulers so the trade-off is visible in one table:
//
//  * WTP:  accurate only in heavy load, best short timescales;
//  * BPR:  similar trend, noisier;
//  * PAD:  pins the long-term ratios from moderate load onward, but has no
//          short-timescale discipline;
//  * HPD:  g-weighted blend — close to PAD's long-term accuracy while
//          keeping most of WTP's short-timescale behaviour.
//
// The right-hand columns report the tau = 100 p-unit R_D inter-quartile
// range as the short-timescale quality measure (smaller = tighter).
#include <iostream>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "stats/percentile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  double long_term_worst;  // worst |ratio - 2| over the three pairs
  double iqr;              // tau=100p R_D inter-quartile range
};

Row run_one(pds::SchedulerKind kind, double rho, double sim_time,
            std::uint64_t seed) {
  pds::StudyAConfig config;
  config.scheduler = kind;
  config.utilization = rho;
  config.sim_time = sim_time;
  config.seed = seed;
  config.monitor_taus = {100.0 * pds::kPUnit};
  const auto result = pds::run_study_a(config);
  Row row{0.0, 0.0};
  for (const double r : result.ratios) {
    row.long_term_worst = std::max(row.long_term_worst, std::abs(r - 2.0));
  }
  const auto& rds = result.rd_per_tau[0];
  if (rds.size() >= 4) {
    const auto q = pds::percentiles(rds, {25.0, 75.0});
    row.iqr = q[1] - q[0];
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 2.0e5 : 1.0e6);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    std::cout << "=== Extension: proportional schedulers beyond the paper"
                 " ===\nSDPs 1,2,4,8 (target ratio 2.0), load 40/30/20/10\n"
                 "column A = worst |long-term ratio - 2|  (accuracy)\n"
                 "column B = IQR of R_D at tau = 100 p-units (short-term"
                 " tightness)\n\n";
    const std::vector<double> rhos{0.75, 0.85, 0.95};
    const std::vector<pds::SchedulerKind> kinds{
        pds::SchedulerKind::kWtp, pds::SchedulerKind::kBpr,
        pds::SchedulerKind::kPad, pds::SchedulerKind::kHpd};

    // Every (rho, scheduler) cell is one independent simulation; fan the
    // 3x4 grid out and assemble the table after the barrier.
    const pds::SweepRunner runner({rhos.size(), kinds.size()});
    const auto cells = runner.run(
        [&](const std::vector<std::size_t>& at, std::size_t) {
          return run_one(kinds[at[1]], rhos[at[0]], sim_time, seed);
        });

    pds::TablePrinter table({"rho", "WTP A", "WTP B", "BPR A", "BPR B",
                             "PAD A", "PAD B", "HPD A", "HPD B"});
    for (std::size_t u = 0; u < rhos.size(); ++u) {
      std::vector<std::string> row{
          pds::TablePrinter::num(rhos[u] * 100.0, 0) + "%"};
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        const auto& r = cells[runner.grid().flat({u, k})];
        row.push_back(pds::TablePrinter::num(r.long_term_worst));
        row.push_back(pds::TablePrinter::num(r.iqr));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected: PAD column A collapses to ~0 from rho = 0.85"
                 " on (it enforces\nthe long-term constraint directly"
                 " wherever it is feasible; at 0.75 even\nPAD rides the"
                 " Eq. 7 floor), at the price of a short-timescale IQR"
                 " that\nblows up with load. WTP/BPR column A shrinks only"
                 " as rho -> 1 but their\ncolumn B stays tight. HPD"
                 " (g = 0.875) buys most of WTP's tightness with\na"
                 " slightly better A.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
