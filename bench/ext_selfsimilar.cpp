// Extension — proportional differentiation under self-similar traffic.
//
// Section 1 motivates the whole design with Internet traffic that is
// "bursty over a wide range of timescales"; the Study A sources use Pareto
// renewal processes. This bench goes one step further and drives the link
// with aggregated Pareto on/off sources — the canonical self-similar
// construction — then reports:
//
//   1. the variance-time Hurst estimate of the offered traffic (checking it
//      really is long-range dependent, H >> 0.5), and
//   2. the long-term delay ratios under WTP and BPR on that traffic.
//
// Expected: H around 0.7-0.9 for the on/off aggregate (vs 0.5 for
// Poisson), and WTP still holding the proportional spacing — per-hop
// differentiation does not depend on the traffic being nice.
#include <iostream>
#include <memory>

#include "dsim/simulator.hpp"
#include "exp/sweep.hpp"
#include "packet/size_law.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"
#include "stats/delay_stats.hpp"
#include "stats/variance_time.hpp"
#include "traffic/onoff.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct RunResult {
  std::vector<double> ratios;
  double hurst = 0.0;
  double utilization = 0.0;
};

RunResult run(pds::SchedulerKind kind, double sim_time, std::uint64_t seed,
              int sources_per_class) {
  pds::Simulator sim;
  pds::PacketIdAllocator ids;
  pds::Rng master(seed);

  pds::SchedulerConfig sc;
  sc.sdp = {1.0, 2.0, 4.0, 8.0};
  sc.link_capacity = pds::kStudyACapacity;
  const auto sched = pds::make_scheduler(kind, sc);

  const double warmup = 0.1 * sim_time;
  pds::ClassDelayStats delays(4, warmup);
  pds::Link link(sim, *sched, pds::kStudyACapacity,
                 [&](pds::Packet&& p, pds::SimTime wait, pds::SimTime now) {
                   delays.record(p.cls, wait, now);
                 });

  // Per class: `sources_per_class` on/off sources whose aggregate mean
  // rate implements the 40/30/20/10 split at rho ~ 0.95. ON/OFF means of
  // 60/240 p-units with alpha = 1.5 give strong long-range dependence.
  pds::CountSeries counts(5.0 * pds::kPUnit, warmup);
  std::vector<std::unique_ptr<pds::OnOffSource>> sources;
  const std::vector<double> fractions{0.4, 0.3, 0.2, 0.1};
  for (pds::ClassId c = 0; c < 4; ++c) {
    const double class_rate =
        0.95 * pds::kStudyACapacity * fractions[c];  // bytes per tu
    for (int s = 0; s < sources_per_class; ++s) {
      pds::OnOffConfig cfg;
      cfg.cls = c;
      cfg.packet_bytes = 441;  // mean paper packet, fixed for rate control
      cfg.mean_on = 60.0 * pds::kPUnit;
      cfg.mean_off = 240.0 * pds::kPUnit;
      cfg.pareto_alpha = 1.5;
      // peak = rate / duty cycle so the long-run mean hits the target.
      cfg.peak_rate = class_rate / sources_per_class /
                      (cfg.mean_on / (cfg.mean_on + cfg.mean_off));
      sources.push_back(std::make_unique<pds::OnOffSource>(
          sim, ids, cfg, master.split(), [&](pds::Packet p) {
            counts.record(sim.now());
            link.arrive(std::move(p));
          }));
      sources.back()->start(0.0);
    }
  }

  sim.run_until(sim_time);
  for (auto& s : sources) s->stop();

  RunResult result;
  result.ratios = delays.successive_ratios();
  result.utilization = link.busy_time() / sim_time;
  const auto series = counts.finish();
  const auto points = pds::variance_time(series, {1, 4, 16, 64, 256});
  result.hurst = pds::hurst_from_slope(pds::variance_time_slope(points));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "sources", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 3.0e5 : 2.0e6);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 19));
    pds::ThreadPool::set_global_workers(args.get_jobs());
    const auto sources =
        static_cast<int>(args.get_int("sources", 8));

    std::cout << "=== Extension: WTP/BPR under self-similar (Pareto on/off)"
                 " traffic ===\n"
              << sources << " on/off sources per class, alpha = 1.5, target"
                 " rho = 0.95\n\n";
    // The two scheduler runs are independent cells; fan them out.
    const std::vector<pds::SchedulerKind> kinds{pds::SchedulerKind::kWtp,
                                                pds::SchedulerKind::kBpr};
    const auto cells = pds::run_sweep(kinds.size(), [&](std::size_t k) {
      return run(kinds[k], sim_time, seed, sources);
    });

    pds::TablePrinter table({"scheduler", "measured rho", "Hurst est.",
                             "d1/d2", "d2/d3", "d3/d4"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& r = cells[k];
      table.add_row({kinds[k] == pds::SchedulerKind::kWtp ? "WTP" : "BPR",
                     pds::TablePrinter::num(r.utilization),
                     pds::TablePrinter::num(r.hurst),
                     pds::TablePrinter::num(r.ratios[0]),
                     pds::TablePrinter::num(r.ratios[1]),
                     pds::TablePrinter::num(r.ratios[2])});
    }
    table.print(std::cout);
    std::cout << "\nExpected: Hurst well above the Poisson 0.5 (long-range-"
                 "dependent input),\nand the delay ratios still tracking the"
                 " 2.0 target in the heavy-load\nepisodes such traffic"
                 " creates.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
