// Figure 1 — "The effect of the aggregate load."
//
// Reproduces both panels: ratios of long-term average delays between
// successive classes under WTP and BPR as the link utilization sweeps from
// moderate (70%) to heavy (99.9%) load, for SDP spacings of 2 (Fig. 1a,
// s = 1,2,4,8) and 4 (Fig. 1b, s = 1,4,16,64). Load split 40/30/20/10,
// Pareto(1.9) interarrivals, paper packet-size law.
//
// Expected shape (paper): WTP converges to the inverse SDP ratio (2.0 / 4.0)
// as rho -> 1; BPR trends the same way but less exactly; at rho = 0.70 the
// achieved ratio sags to ~1.5 (target 2) and ~1.7 (target 4).
//
// Every (rho, scheduler, seed) cell is an independent simulation; the bench
// fans the whole panel out on the experiment engine and assembles the table
// after the barrier, so the output is byte-identical for any --jobs.
//
// Knobs: --sim-time (time units), --seeds, --quick (3e5 tu, 3 seeds),
// --jobs (worker threads; 0 = hardware). Defaults are the paper's scale:
// 1e6 time units, 10 seeds per point.
#include <iostream>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

void run_panel(const char* title, const std::vector<double>& sdp,
               double sim_time, std::uint32_t seeds) {
  const double target = sdp[1] / sdp[0];
  std::cout << "\n" << title << "  (desired average-delay ratio = " << target
            << ")\n";
  const std::vector<double> rhos{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.999};
  const std::vector<pds::SchedulerKind> kinds{pds::SchedulerKind::kWtp,
                                              pds::SchedulerKind::kBpr};

  // One sweep cell per (rho, scheduler, seed); the per-cell result is the
  // ratio vector of one replication, averaged per point after the barrier.
  const pds::SweepRunner runner({rhos.size(), kinds.size(), seeds});
  const auto cells = runner.run(
      [&](const std::vector<std::size_t>& at, std::size_t) {
        pds::StudyAConfig config;
        config.sdp = sdp;
        config.utilization = rhos[at[0]];
        config.sim_time = sim_time;
        config.scheduler = kinds[at[1]];
        config.seed = 1 + at[2];
        return pds::run_study_a(config).ratios;
      });

  pds::TablePrinter table({"rho", "WTP 1/2", "WTP 2/3", "WTP 3/4",
                           "BPR 1/2", "BPR 2/3", "BPR 3/4"});
  for (std::size_t r = 0; r < rhos.size(); ++r) {
    std::vector<std::string> row{pds::TablePrinter::num(rhos[r] * 100.0, 1) +
                                 "%"};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<double> acc(sdp.size() - 1, 0.0);
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto& ratios = cells[runner.grid().flat({r, k, s})];
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += ratios[i];
      }
      for (std::size_t i = 0; i < acc.size(); ++i) {
        row.push_back(
            pds::TablePrinter::num(acc[i] / static_cast<double>(seeds)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seeds", "quick", "jobs"});
    // Defaults are the paper's scale (1e6 tu, 10 seeds);
    // --quick trades accuracy for a sub-second run.
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 3.0e5 : 1.0e6);
    const auto seeds = static_cast<std::uint32_t>(
        args.get_int("seeds", quick ? 3 : 10));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    std::cout << "=== Figure 1: average-delay ratios vs link utilization ===\n"
              << "sim-time " << sim_time << " tu, " << seeds
              << " seed(s) per point; load split 40/30/20/10\n";
    run_panel("Figure 1a: SDPs 1,2,4,8", {1.0, 2.0, 4.0, 8.0}, sim_time,
              seeds);
    run_panel("Figure 1b: SDPs 1,4,16,64", {1.0, 4.0, 16.0, 64.0}, sim_time,
              seeds);
    std::cout << "\nPaper reference: WTP -> target as rho -> 1; BPR close but"
                 " noisier;\nat 70% load the ratio sags to ~1.5 (panel a) /"
                 " ~1.7 (panel b).\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
