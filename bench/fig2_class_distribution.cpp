// Figure 2 — "The effect of the class load distribution."
//
// Ratios of long-term average delays between successive classes at 95%
// utilization for seven class-load mixes, under WTP and BPR, for SDP
// spacings 2 (Fig. 2a) and 4 (Fig. 2b).
//
// Expected shape (paper): WTP delivers the target ratio almost exactly for
// every mix; BPR is accurate only for the uniform mix and deviates when
// some classes carry much more load (heavily loaded classes see more than
// their share of delay). The paper's figure does not list its seven mixes
// in the text; the mixes below cover the uniform case, both monotone
// orders, and each class taking a 70% hot spot (see DESIGN.md).
//
// Every (mix, scheduler, seed) cell fans out on the experiment engine;
// the table is assembled after the barrier (byte-identical for any --jobs).
#include <iostream>
#include <sstream>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

const std::vector<std::vector<double>> kMixes = {
    {0.40, 0.30, 0.20, 0.10}, {0.10, 0.20, 0.30, 0.40},
    {0.25, 0.25, 0.25, 0.25}, {0.70, 0.10, 0.10, 0.10},
    {0.10, 0.70, 0.10, 0.10}, {0.10, 0.10, 0.70, 0.10},
    {0.10, 0.10, 0.10, 0.70}};

std::string mix_name(const std::vector<double>& mix) {
  std::ostringstream os;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    os << static_cast<int>(mix[i] * 100.0 + 0.5)
       << (i + 1 < mix.size() ? "/" : "");
  }
  return os.str();
}

void run_panel(const char* title, const std::vector<double>& sdp,
               double sim_time, std::uint32_t seeds) {
  std::cout << "\n" << title << "  (desired ratio = " << sdp[1] / sdp[0]
            << ", rho = 95%)\n";
  const std::vector<pds::SchedulerKind> kinds{pds::SchedulerKind::kWtp,
                                              pds::SchedulerKind::kBpr};
  const pds::SweepRunner runner({kMixes.size(), kinds.size(), seeds});
  const auto cells = runner.run(
      [&](const std::vector<std::size_t>& at, std::size_t) {
        pds::StudyAConfig config;
        config.sdp = sdp;
        config.load_fractions = kMixes[at[0]];
        config.utilization = 0.95;
        config.sim_time = sim_time;
        config.scheduler = kinds[at[1]];
        config.seed = 1 + at[2];
        return pds::run_study_a(config).ratios;
      });

  pds::TablePrinter table({"mix (c1/c2/c3/c4)", "WTP 1/2", "WTP 2/3",
                           "WTP 3/4", "BPR 1/2", "BPR 2/3", "BPR 3/4"});
  for (std::size_t m = 0; m < kMixes.size(); ++m) {
    std::vector<std::string> row{mix_name(kMixes[m])};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<double> acc(sdp.size() - 1, 0.0);
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto& ratios = cells[runner.grid().flat({m, k, s})];
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += ratios[i];
      }
      for (std::size_t i = 0; i < acc.size(); ++i) {
        row.push_back(
            pds::TablePrinter::num(acc[i] / static_cast<double>(seeds)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seeds", "quick", "jobs"});
    // Defaults are the paper's scale; --quick for a sub-second sanity run.
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 3.0e5 : 1.0e6);
    const auto seeds = static_cast<std::uint32_t>(
        args.get_int("seeds", quick ? 3 : 10));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    std::cout << "=== Figure 2: average-delay ratios vs class load"
                 " distribution ===\n";
    run_panel("Figure 2a: SDPs 1,2,4,8", {1.0, 2.0, 4.0, 8.0}, sim_time,
              seeds);
    run_panel("Figure 2b: SDPs 1,4,16,64", {1.0, 4.0, 16.0, 64.0}, sim_time,
              seeds);
    std::cout << "\nPaper reference: WTP holds the target for every mix; BPR"
                 " is exact only\nnear the uniform mix and penalizes heavily"
                 " loaded classes.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
