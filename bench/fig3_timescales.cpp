// Figure 3 — short-timescale behaviour of WTP and BPR.
//
// For monitoring timescales tau of 10, 100, 1000, 10000 p-units (one p-unit
// = mean packet transmission time = 11.2 tu), measures the per-interval
// average-delay ratio metric R_D (Eq. 2 folded across class pairs, see
// stats/interval_monitor.hpp) and prints the paper's five percentiles
// (5/25/50/75/95) of its distribution at rho = 95%, SDPs 1,2,4,8.
//
// Expected shape (paper): at tau = 10000 p-units both schedulers sit on the
// target 2.0 in nearly all intervals; WTP's 25-75% box is tight even at tens
// of p-units, while BPR stays widely spread below hundreds of p-units.
#include <iostream>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "stats/percentile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

const std::vector<double>& taus_p_units() {
  static const std::vector<double> kTaus{10.0, 100.0, 1000.0, 10000.0};
  return kTaus;
}

pds::StudyAResult run_scheduler(pds::SchedulerKind kind, double sim_time,
                                std::uint64_t seed) {
  pds::StudyAConfig config;
  config.scheduler = kind;
  config.utilization = 0.95;
  config.sim_time = sim_time;
  config.seed = seed;
  for (const double tp : taus_p_units()) {
    config.monitor_taus.push_back(tp * pds::kPUnit);
  }
  return pds::run_study_a(config);
}

void print_scheduler(pds::SchedulerKind kind,
                     const pds::StudyAResult& result) {
  const auto& taus_p = taus_p_units();
  std::cout << "\n" << (kind == pds::SchedulerKind::kWtp ? "WTP" : "BPR")
            << "  (desired R_D = 2.0)\n";
  pds::TablePrinter table({"tau (p-units)", "intervals", "p5", "p25", "p50",
                           "p75", "p95"});
  for (std::size_t t = 0; t < taus_p.size(); ++t) {
    const auto& rds = result.rd_per_tau[t];
    if (rds.empty()) {
      table.add_row({pds::TablePrinter::num(taus_p[t], 0), "0", "-", "-",
                     "-", "-", "-"});
      continue;
    }
    const auto ps = pds::percentiles(rds, {5, 25, 50, 75, 95});
    table.add_row({pds::TablePrinter::num(taus_p[t], 0),
                   std::to_string(rds.size()), pds::TablePrinter::num(ps[0]),
                   pds::TablePrinter::num(ps[1]),
                   pds::TablePrinter::num(ps[2]),
                   pds::TablePrinter::num(ps[3]),
                   pds::TablePrinter::num(ps[4])});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "full", "quick", "jobs"});
    // Default exceeds the paper's 1e6 tu so even the tau = 10000 p-unit row
    // (112,000 tu per interval) gets a meaningful interval count.
    const bool full = args.get_bool("full", false);
    const bool quick = args.get_bool("quick", false);
    const double sim_time = args.get_double(
        "sim-time", full ? 2.0e7 : (quick ? 1.0e6 : 1.0e7));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    std::cout << "=== Figure 3: R_D percentiles vs monitoring timescale ===\n"
              << "rho = 95%, SDPs 1,2,4,8, load 40/30/20/10, sim-time "
              << sim_time << " tu\n";
    // The two scheduler runs are independent cells; fan them out.
    const std::vector<pds::SchedulerKind> kinds{pds::SchedulerKind::kWtp,
                                                pds::SchedulerKind::kBpr};
    const auto results = pds::run_sweep(kinds.size(), [&](std::size_t k) {
      return run_scheduler(kinds[k], sim_time, seed);
    });
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      print_scheduler(kinds[k], results[k]);
    }
    std::cout << "\nPaper reference: both tighten onto 2.0 by tau = 10000"
                 " p-units; WTP's\n25-75 box is tight already at tens of"
                 " p-units, BPR spreads below hundreds.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
