// Figure 4 — microscopic views of the BPR scheduler.
//
// Three classes, SDPs 1,2,4, rho = 95%. Emits the two views as CSV
// (fig4_bpr_view1.csv: 30-p-unit class averages; fig4_bpr_view2.csv:
// per-packet delays) and prints the sawtooth summary.
//
// Expected shape (paper): BPR shows sawtooth delay trajectories — delays of
// consecutive packets ramp up and collapse after new arrivals refill a
// nearly-empty queue (the simultaneous-clearing pathology of Prop. 1) — so
// its sawtooth index and collapse counts are well above WTP's (Figure 5,
// same arrivals, same seed).
#include <iostream>

#include "exp/thread_pool.hpp"
#include "micro_common.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "out-prefix", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 5.0e4 : 2.0e5);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
    pds::ThreadPool::set_global_workers(args.get_jobs());
    const auto prefix = args.get_string("out-prefix", "fig4_bpr");

    std::cout << "=== Figure 4: microscopic views, BPR (s = 1,2,4, rho=95%)"
                 " ===\n";
    pds::bench::run_micro_view(pds::SchedulerKind::kBpr, prefix, sim_time,
                               seed);
    std::cout << "\nPaper reference: sawtooth variations — compare the"
                 " sawtooth index and\ncollapse rate against fig5_wtp_micro"
                 " (same seed = same arrivals).\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
