// Figure 5 — microscopic views of the WTP scheduler.
//
// Identical setup and seed as fig4_bpr_micro (three classes, SDPs 1,2,4,
// rho = 95%, same arrival streams), so the two benches are directly
// comparable packet for packet.
//
// Expected shape (paper): WTP tracks the proportional spacing smoothly even
// packet-by-packet; its sawtooth index and collapse counts are much lower
// than BPR's.
#include <iostream>

#include "exp/thread_pool.hpp"
#include "micro_common.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seed", "out-prefix", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 5.0e4 : 2.0e5);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
    pds::ThreadPool::set_global_workers(args.get_jobs());
    const auto prefix = args.get_string("out-prefix", "fig5_wtp");

    std::cout << "=== Figure 5: microscopic views, WTP (s = 1,2,4, rho=95%)"
                 " ===\n";
    pds::bench::run_micro_view(pds::SchedulerKind::kWtp, prefix, sim_time,
                               seed);
    std::cout << "\nPaper reference: smooth proportional tracking — the"
                 " sawtooth index and\ncollapse rate sit well below"
                 " fig4_bpr_micro's on the same arrivals.\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
