// Shared driver for the microscopic-view benches (Figures 4 and 5): runs
// the three-class Study A setup with per-packet recording, dumps the two
// views as CSV for plotting, and prints summary statistics that capture the
// figures' qualitative content (smooth tracking vs sawtooth resets).
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "core/study_a.hpp"
#include "stats/sawtooth.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace pds::bench {

// Steady-state allocation guard for the packet-pipeline microbenches: with
// the arena-backed packet plane (PacketArena behind every class ring) the
// measured post-warmup region must be allocation-free — exactly 0.0
// allocs/packet. Returns an empty string when the budget holds, otherwise a
// diagnostic; google-benchmark callers feed it to State::SkipWithError so
// the bench run fails visibly instead of silently reporting a regression.
inline std::string check_zero_steady_allocs(std::uint64_t allocs,
                                            std::uint64_t packets) {
  if (packets == 0 || allocs == 0) return {};
  return "steady-state packet plane allocated: " + std::to_string(allocs) +
         " heap allocation(s) over " + std::to_string(packets) +
         " packets (expected 0.0 allocs/packet with the arena)";
}

inline void run_micro_view(SchedulerKind kind, const std::string& csv_prefix,
                           double sim_time, std::uint64_t seed) {
  StudyAConfig config;
  config.scheduler = kind;
  config.sdp = {1.0, 2.0, 4.0};
  config.load_fractions = {0.5, 0.3, 0.2};
  config.utilization = 0.95;
  config.sim_time = sim_time;
  config.seed = seed;
  config.record_departures = true;

  const auto result = run_study_a(config);
  const auto& packets = result.per_packet;

  // View I: average delay per class in consecutive 30-p-unit windows.
  const double window = 30.0 * kPUnit;
  {
    CsvWriter csv(csv_prefix + "_view1.csv",
                  {"window_end", "class1", "class2", "class3"});
    std::vector<double> sum(3, 0.0);
    std::vector<std::uint64_t> count(3, 0);
    double window_start = config.warmup_end();
    for (const auto& rec : packets) {
      while (rec.time >= window_start + window) {
        std::vector<double> row{window_start + window, 0.0, 0.0, 0.0};
        for (std::size_t c = 0; c < 3; ++c) {
          row[c + 1] = count[c] ? sum[c] / static_cast<double>(count[c]) : 0.0;
          sum[c] = 0.0;
          count[c] = 0;
        }
        csv.add_row(row);
        window_start += window;
      }
      sum[rec.cls] += rec.delay;
      ++count[rec.cls];
    }
    std::cout << "view I  (30-p-unit class averages) -> " << csv.path()
              << "\n";
  }

  // View II: every packet's delay at its departure time, over the full run
  // (the paper zooms into a ~1000 p-unit overloaded stretch; the CSV keeps
  // everything so any window can be plotted).
  {
    CsvWriter csv(csv_prefix + "_view2.csv", {"departure", "class", "delay"});
    for (const auto& rec : packets) {
      csv.add_row(std::vector<double>{rec.time,
                                      static_cast<double>(rec.cls + 1),
                                      rec.delay});
    }
    std::cout << "view II (per-packet delays)        -> " << csv.path()
              << "\n";
  }

  // Quantitative summary of the figures' message.
  TablePrinter table({"class", "mean delay (tu)", "sawtooth index",
                      "collapses/1k pkts"});
  SawtoothIndex saw(3);
  std::vector<std::uint64_t> count(3, 0);
  for (const auto& rec : packets) {
    saw.record(rec.cls, rec.delay);
    ++count[rec.cls];
  }
  for (ClassId c = 0; c < 3; ++c) {
    const double per_k =
        count[c] ? 1000.0 * static_cast<double>(saw.collapses(c)) /
                       static_cast<double>(count[c])
                 : 0.0;
    table.add_row({std::to_string(c + 1),
                   TablePrinter::num(result.mean_delays[c], 1),
                   TablePrinter::num(saw.index(c), 3),
                   TablePrinter::num(per_k, 2)});
  }
  table.print(std::cout);
  std::cout << "overall sawtooth index: "
            << TablePrinter::num(saw.overall(), 3) << "\n";
}

}  // namespace pds::bench
