// Event-queue and dispatch microbenchmarks: binary heap vs calendar queue
// under the hold-model workload (the standard benchmark for simulator event
// sets: alternate pop and push-at-future-time on a steady population), plus
// an end-to-end packet pipeline (source -> scheduler -> link) that measures
// the allocation cost of the kernel's event dispatch per simulated packet.
//
// Every benchmark reports `allocs_per_*` counters backed by the counting
// operator-new in alloc_counter.cpp — the regression guard for the hot-path
// allocation budget (see docs/architecture.md).
#include <benchmark/benchmark.h>

#include "alloc_counter.hpp"
#include "dsim/event_queue.hpp"
#include "dsim/simulator.hpp"
#include "micro_common.hpp"
#include "packet/arena.hpp"
#include "rng/rng.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"
#include "traffic/source.hpp"

namespace {

// Mimics the capture footprint of a link-completion event (two pointers and
// two doubles, 32 bytes): small enough for a 48-byte small-buffer event,
// too large for std::function's 16-byte inline storage.
struct TxPayload {
  void* link;
  void* packet;
  double wait;
  double tx;
};

void hold_model(benchmark::State& state, pds::EventQueueKind kind) {
  const auto population = static_cast<std::size_t>(state.range(0));
  std::uint64_t allocs = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto q = pds::make_event_queue(kind);
    pds::Rng rng(99);
    std::uint64_t seq = 0;
    TxPayload payload{nullptr, nullptr, 0.0, 0.0};
    for (std::size_t i = 0; i < population; ++i) {
      q->push(pds::EventItem{rng.uniform01() * 100.0, seq++,
                             [payload] { benchmark::DoNotOptimize(payload); }});
    }
    state.ResumeTiming();
    const std::uint64_t before = pds::bench::heap_allocations();
    // Hold model: each pop schedules a replacement a random offset ahead.
    for (int step = 0; step < 10000; ++step) {
      auto item = q->pop();
      item.time += rng.uniform01() * 100.0;
      item.seq = seq++;
      q->push(std::move(item));
    }
    allocs += pds::bench::heap_allocations() - before;
    ops += 10000;
    benchmark::DoNotOptimize(q->size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  state.counters["allocs_per_op"] =
      ops ? static_cast<double>(allocs) / static_cast<double>(ops) : 0.0;
}

void BM_Heap(benchmark::State& s) {
  hold_model(s, pds::EventQueueKind::kBinaryHeap);
}
void BM_Calendar(benchmark::State& s) {
  hold_model(s, pds::EventQueueKind::kCalendar);
}

// The kernel->link->source hot path end to end: four renewal sources feed a
// WTP link at ~90% utilization, with the class rings arena-backed as in the
// chain and graph scenarios. Items processed are executed kernel events;
// `allocs_per_pkt` is the steady-state heap-allocation cost of one simulated
// packet — measured after a warmup that lets the event queue and the class
// rings reach their working size, it must be exactly 0.0 (see the guard).
void packet_pipeline(benchmark::State& state, pds::EventQueueKind kind) {
  constexpr double kCapacity = 1000.0;    // bytes per time unit
  constexpr std::uint32_t kBytes = 500;   // fixed packet size
  constexpr double kMeanGap = 500.0 / 225.0;  // per-class load 0.225
  constexpr pds::SimTime kWarmup = 2500.0;
  constexpr pds::SimTime kRunTime = 7500.0;

  std::uint64_t allocs = 0;
  std::uint64_t packets = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    pds::Simulator sim(kind);
    // Declared before the scheduler so the rings release into a live arena.
    pds::PacketArena arena;
    pds::SchedulerConfig cfg;
    cfg.sdp = {1.0, 2.0, 4.0, 8.0};
    cfg.link_capacity = kCapacity;
    cfg.arena = &arena;
    auto sched = pds::make_scheduler(pds::SchedulerKind::kWtp, cfg);
    std::uint64_t departed = 0;
    pds::Link link(sim, *sched, kCapacity,
                   [&departed](pds::Packet&&, pds::SimTime, pds::SimTime) {
                     ++departed;
                   });
    pds::PacketIdAllocator ids;
    pds::Rng master(1234);
    std::vector<std::unique_ptr<pds::RenewalSource>> sources;
    for (pds::ClassId c = 0; c < 4; ++c) {
      sources.push_back(std::make_unique<pds::RenewalSource>(
          sim, ids, c, pds::exponential_gaps(kMeanGap),
          pds::fixed_size(kBytes), master.split(),
          [&link](pds::Packet p) { link.arrive(std::move(p)); }));
      sources.back()->start(pds::kTimeZero);
    }
    state.ResumeTiming();

    // Warmup grows the event queue and the class rings to steady state;
    // only the post-warmup stretch is charged to the allocation budget.
    sim.run_until(kWarmup);
    const std::uint64_t before = pds::bench::heap_allocations();
    const std::uint64_t departed_before = departed;
    sim.run_until(kRunTime);
    allocs += pds::bench::heap_allocations() - before;
    packets += departed - departed_before;
    events += sim.executed_events();

    state.PauseTiming();
    for (auto& src : sources) src->stop();
    state.ResumeTiming();
    benchmark::DoNotOptimize(departed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_pkt"] =
      packets ? static_cast<double>(allocs) / static_cast<double>(packets)
              : 0.0;
  state.counters["pkts"] = static_cast<double>(packets);
  const std::string err = pds::bench::check_zero_steady_allocs(allocs, packets);
  if (!err.empty()) state.SkipWithError(err.c_str());
}

void BM_PacketPipelineHeap(benchmark::State& s) {
  packet_pipeline(s, pds::EventQueueKind::kBinaryHeap);
}
void BM_PacketPipelineCalendar(benchmark::State& s) {
  packet_pipeline(s, pds::EventQueueKind::kCalendar);
}

}  // namespace

BENCHMARK(BM_Heap)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_Calendar)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_PacketPipelineHeap);
BENCHMARK(BM_PacketPipelineCalendar);
