// Event-queue microbenchmark: binary heap vs calendar queue under the
// hold-model workload (the standard benchmark for simulator event sets:
// alternate pop and push-at-future-time on a steady population).
#include <benchmark/benchmark.h>

#include "dsim/event_queue.hpp"
#include "rng/rng.hpp"

namespace {

void hold_model(benchmark::State& state, pds::EventQueueKind kind) {
  const auto population = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto q = pds::make_event_queue(kind);
    pds::Rng rng(99);
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < population; ++i) {
      q->push(pds::EventItem{rng.uniform01() * 100.0, seq++, [] {}});
    }
    state.ResumeTiming();
    // Hold model: each pop schedules a replacement a random offset ahead.
    for (int step = 0; step < 10000; ++step) {
      auto item = q->pop();
      item.time += rng.uniform01() * 100.0;
      item.seq = seq++;
      q->push(std::move(item));
    }
    benchmark::DoNotOptimize(q->size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}

void BM_Heap(benchmark::State& s) {
  hold_model(s, pds::EventQueueKind::kBinaryHeap);
}
void BM_Calendar(benchmark::State& s) {
  hold_model(s, pds::EventQueueKind::kCalendar);
}

}  // namespace

BENCHMARK(BM_Heap)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_Calendar)->Arg(64)->Arg(1024)->Arg(16384);
