// Microbenchmark — experiment-engine scaling and determinism.
//
// Runs the Figure 1a panel (rho sweep x {WTP, BPR} x seeds, one run_study_a
// per cell) through the work-stealing pool at 1, 2, 4, 8 and
// hardware_concurrency workers, and reports wall-clock, speedup over the
// single-worker run, and parallel efficiency (speedup / workers).
//
// The rendered result table of every worker count is byte-compared against
// the single-worker rendering — the engine's determinism contract says the
// fan-out must not change a single output byte. A mismatch is the only
// nonzero exit; slow hardware never fails the bench.
//
// Knobs: --sim-time, --seeds, --workers (comma list overriding the default
// ladder), --quick (small grid), --jobs (extra ladder entry, 0 = hardware).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

// One fan-out over the fig1a grid at the current global pool size; returns
// the rendered per-point table so runs can be byte-compared.
std::string run_grid(const std::vector<double>& rhos, double sim_time,
                     std::uint32_t seeds) {
  const std::vector<double> sdp{1.0, 2.0, 4.0, 8.0};
  const std::vector<pds::SchedulerKind> kinds{pds::SchedulerKind::kWtp,
                                              pds::SchedulerKind::kBpr};
  const pds::SweepRunner runner({rhos.size(), kinds.size(), seeds});
  const auto cells = runner.run(
      [&](const std::vector<std::size_t>& at, std::size_t) {
        pds::StudyAConfig config;
        config.sdp = sdp;
        config.utilization = rhos[at[0]];
        config.sim_time = sim_time;
        config.scheduler = kinds[at[1]];
        config.seed = 1 + at[2];
        return pds::run_study_a(config).ratios;
      });

  std::ostringstream os;
  pds::TablePrinter table({"rho", "WTP 1/2", "WTP 2/3", "WTP 3/4",
                           "BPR 1/2", "BPR 2/3", "BPR 3/4"});
  for (std::size_t r = 0; r < rhos.size(); ++r) {
    std::vector<std::string> row{pds::TablePrinter::num(rhos[r] * 100.0, 1) +
                                 "%"};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<double> acc(sdp.size() - 1, 0.0);
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto& ratios = cells[runner.grid().flat({r, k, s})];
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += ratios[i];
      }
      for (std::size_t i = 0; i < acc.size(); ++i) {
        row.push_back(
            pds::TablePrinter::num(acc[i] / static_cast<double>(seeds)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "seeds", "workers", "quick", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time =
        args.get_double("sim-time", quick ? 5.0e4 : 3.0e5);
    const auto seeds = static_cast<std::uint32_t>(
        args.get_int("seeds", quick ? 2 : 4));
    const std::vector<double> rhos =
        quick ? std::vector<double>{0.80, 0.95}
              : std::vector<double>{0.70, 0.80, 0.90, 0.95, 0.999};

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::uint32_t> ladder;
    for (const double w :
         args.get_double_list("workers", {1.0, 2.0, 4.0, 8.0,
                                          static_cast<double>(hw)})) {
      ladder.push_back(pds::ThreadPool::resolve_workers(
          static_cast<std::uint32_t>(w)));
    }
    if (const std::uint32_t jobs = args.get_jobs(); jobs != 0) {
      ladder.push_back(jobs);
    }
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());

    std::cout << "=== exp engine scaling: fig1a grid, "
              << rhos.size() * 2 * seeds << " cells, sim-time " << sim_time
              << " tu ===\nhardware_concurrency = " << hw << "\n\n";

    pds::TablePrinter table(
        {"workers", "wall (s)", "speedup", "efficiency"});
    std::string reference;  // single-worker (serial-order) rendering
    double reference_wall = 0.0;
    bool mismatch = false;
    for (const std::uint32_t workers : ladder) {
      pds::ThreadPool::set_global_workers(workers);
      const auto t0 = std::chrono::steady_clock::now();
      const std::string out = run_grid(rhos, sim_time, seeds);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      if (reference.empty()) {
        reference = out;
        reference_wall = wall;
      } else if (out != reference) {
        mismatch = true;
      }
      const double speedup = reference_wall / wall;
      table.add_row({std::to_string(workers), pds::TablePrinter::num(wall, 3),
                     pds::TablePrinter::num(speedup),
                     pds::TablePrinter::num(
                         speedup / static_cast<double>(workers))});
    }
    table.print(std::cout);
    std::cout << "\ndeterminism: every worker count produced "
              << (mismatch ? "DIFFERENT output (BUG)"
                           : "byte-identical output")
              << " vs 1 worker.\n";
    if (hw == 1) {
      std::cout << "note: single-core host — speedups ~1.0 are expected"
                   " here; the ladder\nexercises the pool paths, the"
                   " determinism check is the contract.\n";
    }
    return mismatch ? 1 : 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
