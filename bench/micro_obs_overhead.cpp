// Observability overhead guard.
//
// Quantifies what the obs hooks cost on the two hot paths they touch and
// asserts the "compiled in but disabled" configurations are effectively
// free (<5% by default):
//
//  1. Kernel event loop (guarded). Baseline replicates the pre-hook
//     Simulator loop exactly — same contract checks, same virtual queue
//     dispatch, same bookkeeping — minus the SimMonitor branch, i.e. the
//     binary you would get from -DPDS_OBS=OFF. Against it we time the real
//     Simulator with no monitor (the disabled branch) and with a
//     SimProfiler attached.
//  2. Link transmission path (informational). A WTP link with no probe vs a
//     PacketTracer at sample rate 0 (every packet pays the probe virtual
//     calls, backlog context and the hash-based sampling decision, but
//     records nothing) and at rate 1 (every event recorded). The no-probe
//     configuration is the disabled path; its only cost over compiled-out
//     is one null-pointer branch per lifecycle event.
//  3. Departure-side conformance monitoring (guarded). The same link run
//     with no ConformanceMonitor, with one constructed but disabled
//     (tau = 0, record() early-returns), and with live windowed monitoring.
//     The disabled configuration is what every run without
//     --conformance-tau pays and must stay within the threshold.
//
// The event-loop table also times a KernelSpanMonitor (span batching when
// --spans-out is live) next to the SimProfiler — informational, since the
// disabled-span path is exactly the "no monitor" row the guard covers.
//
// Each configuration is timed `--reps` times and the best run is kept, which
// filters scheduler noise on shared machines. Exits non-zero when a guarded
// overhead exceeds `--threshold` percent.
//
//   micro_obs_overhead [--events=2000000] [--packets=400000] [--reps=5]
//                      [--threshold=5]
#include <chrono>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dsim/event_queue.hpp"
#include "dsim/simulator.hpp"
#include "obs/conformance.hpp"
#include "obs/probe.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "packet/size_law.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"
#include "util/args.hpp"
#include "util/contracts.hpp"
#include "util/table.hpp"

namespace {

constexpr std::uint32_t kChains = 64;  // keeps a realistic queue population

template <typename F>
double best_seconds(std::uint32_t reps, F&& body) {
  double best = 0.0;
  for (std::uint32_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

// The kernel as it was before the SimMonitor hook existed: identical
// scheduling checks, virtual EventQueue dispatch and per-event bookkeeping,
// so the only difference from Simulator-without-monitor is the hook branch —
// the cost compiling obs out would remove.
struct RawKernel {
  std::unique_ptr<pds::EventQueue> q =
      pds::make_event_queue(pds::EventQueueKind::kBinaryHeap);
  pds::SimTime now = 0.0;
  std::uint64_t seq = 0;
  std::uint64_t executed = 0;
  bool stopped = false;

  // noinline keeps the comparison honest: the real Simulator's schedule/run
  // live in another translation unit, so the baseline must not win by
  // inlining into the benchmark loop.
  [[gnu::noinline]] void schedule_at(pds::SimTime t, pds::SimEvent action) {
    PDS_CHECK(t >= now, "cannot schedule an event in the past");
    PDS_CHECK(static_cast<bool>(action), "null event action");
    q->push(pds::EventItem{t, seq++, std::move(action)});
  }

  [[gnu::noinline]] void schedule_in(pds::SimTime dt, pds::SimEvent action) {
    PDS_CHECK(dt >= 0.0, "negative delay");
    schedule_at(now + dt, std::move(action));
  }

  [[gnu::noinline]] void drain(pds::SimTime horizon, bool bounded) {
    stopped = false;
    while (!q->empty() && !stopped) {
      if (bounded && q->next_time() > horizon) break;
      pds::EventItem ev = q->pop();
      PDS_REQUIRE(ev.time >= now);
      now = ev.time;
      ++executed;
      ev.action();
    }
    if (bounded && !stopped && now < horizon) now = horizon;
  }

  [[gnu::noinline]] void run() {
    drain(std::numeric_limits<pds::SimTime>::infinity(), /*bounded=*/false);
  }
};

void run_raw_event_chain(std::uint64_t events) {
  struct Chain {
    RawKernel* kernel;
    std::uint64_t* remaining;
    double gap;

    void arm() {
      kernel->schedule_in(gap, [this]() {
        // The budget is shared across chains; sibling events already in
        // flight when it reaches zero must not wrap it around.
        if (*remaining > 0 && --*remaining > 0) arm();
      });
    }
  };
  RawKernel kernel;
  std::uint64_t remaining = events;
  std::vector<Chain> chains(kChains);
  for (std::uint32_t i = 0; i < kChains; ++i) {
    chains[i] = Chain{&kernel, &remaining,
                      1.0 + 1e-3 * static_cast<double>(i)};
    chains[i].arm();
  }
  kernel.run();
}

void run_sim_event_chain(std::uint64_t events, pds::SimMonitor* monitor) {
  struct Chain {
    pds::Simulator* sim;
    std::uint64_t* remaining;
    double gap;

    void arm() {
      sim->schedule_in(
          gap,
          [this]() {
            if (*remaining > 0 && --*remaining > 0) arm();
          },
          "bench.chain");
    }
  };
  pds::Simulator sim;
  sim.set_monitor(monitor);
  std::uint64_t remaining = events;
  std::vector<Chain> chains(kChains);
  for (std::uint32_t i = 0; i < kChains; ++i) {
    chains[i] = Chain{&sim, &remaining, 1.0 + 1e-3 * static_cast<double>(i)};
    chains[i].arm();
  }
  sim.run();
}

void run_link_path(std::uint64_t packets, pds::PacketProbe* probe,
                   pds::ConformanceMonitor* conformance = nullptr) {
  pds::Simulator sim;
  pds::SchedulerConfig config;
  config.sdp = {1.0, 2.0, 4.0, 8.0};
  config.link_capacity = pds::kStudyACapacity;
  const auto sched = pds::make_scheduler(pds::SchedulerKind::kWtp, config);
  std::uint64_t departed = 0;
  // The branch + forwarded record() mirror the run_study_a departure path.
  pds::Link link(sim, *sched, config.link_capacity,
                 [&departed, conformance](pds::Packet&& p, pds::SimTime wait,
                                          pds::SimTime now) {
                   ++departed;
                   if (conformance) conformance->record(p.cls, wait, now);
                 });
  link.set_probe(probe);

  // Deterministic rho ~= 0.9 arrival chain, classes round-robin.
  struct Feeder {
    pds::Simulator* sim;
    pds::Link* link;
    std::uint64_t remaining;
    std::uint64_t next_id = 0;
    double gap;

    void arm() {
      sim->schedule_in(
          gap,
          [this]() {
            pds::Packet p;
            p.id = next_id++;
            p.cls = static_cast<pds::ClassId>(p.id % 4);
            p.size_bytes =
                static_cast<std::uint32_t>(pds::kPaperMeanPacketBytes);
            p.created = sim->now();
            link->arrive(p);
            if (--remaining > 0) arm();
          },
          "bench.feeder");
    }
  };
  Feeder feeder{&sim, &link, packets, 0,
                pds::kPaperMeanPacketBytes / config.link_capacity / 0.9};
  feeder.arm();
  sim.run();
  if (departed != packets) {
    throw std::logic_error("link bench lost packets");
  }
}

std::string pct(double ratio) {
  return pds::TablePrinter::num(100.0 * (ratio - 1.0), 2) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"events", "packets", "reps", "threshold", "help"});
    if (args.has("help")) {
      std::cerr << "usage: micro_obs_overhead [--events=2000000]\n"
                   "  [--packets=400000] [--reps=5] [--threshold=5]\n";
      return 0;
    }
    const auto events =
        static_cast<std::uint64_t>(args.get_int("events", 2000000));
    const auto packets =
        static_cast<std::uint64_t>(args.get_int("packets", 400000));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
    const double threshold = args.get_double("threshold", 5.0);

    // --- kernel event loop -------------------------------------------------
    const double t_raw =
        best_seconds(reps, [&]() { run_raw_event_chain(events); });
    const double t_nomon =
        best_seconds(reps, [&]() { run_sim_event_chain(events, nullptr); });
    const double t_prof = best_seconds(reps, [&]() {
      pds::SimProfiler profiler;
      run_sim_event_chain(events, &profiler);
    });
    const double t_span = best_seconds(reps, [&]() {
      pds::SpanBuffer buffer;
      pds::KernelSpanMonitor monitor(buffer);
      run_sim_event_chain(events, &monitor);
      monitor.finish();
    });

    // --- link transmission path -------------------------------------------
    const double t_noprobe =
        best_seconds(reps, [&]() { run_link_path(packets, nullptr); });
    const double t_trace0 = best_seconds(reps, [&]() {
      pds::PacketTracer tracer(0.0, 1);
      run_link_path(packets, &tracer);
    });
    const double t_trace1 = best_seconds(reps, [&]() {
      pds::PacketTracer tracer(1.0, 1);
      run_link_path(packets, &tracer);
    });

    // --- departure-side conformance monitoring ----------------------------
    const std::vector<double> sdp{1.0, 2.0, 4.0, 8.0};
    const double t_conf_off = best_seconds(reps, [&]() {
      pds::ConformanceOptions copts;
      copts.tau = 0.0;  // constructed but disabled: record() early-returns
      pds::ConformanceMonitor conformance(sdp, copts);
      run_link_path(packets, nullptr, &conformance);
    });
    const double t_conf_on = best_seconds(reps, [&]() {
      pds::ConformanceOptions copts;
      copts.tau = 500.0;  // live Eq. 2 windowing on every departure
      pds::ConformanceMonitor conformance(sdp, copts);
      run_link_path(packets, nullptr, &conformance);
      conformance.finish();
    });

    const double ev = static_cast<double>(events);
    const double pk = static_cast<double>(packets);
    pds::TablePrinter table(
        {"path", "configuration", "wall (ms)", "Mops/s", "overhead"});
    const auto row = [&](const char* path, const char* cfg, double t,
                         double ops, double base) {
      table.add_row({path, cfg, pds::TablePrinter::num(1e3 * t, 1),
                     pds::TablePrinter::num(ops / t / 1e6, 2),
                     t == base ? "-" : pct(t / base)});
    };
    row("event loop", "raw queue (no hooks)", t_raw, ev, t_raw);
    row("event loop", "simulator, no monitor", t_nomon, ev, t_raw);
    row("event loop", "simulator + SimProfiler", t_prof, ev, t_raw);
    row("event loop", "simulator + KernelSpanMonitor", t_span, ev, t_raw);
    row("link", "no probe", t_noprobe, pk, t_noprobe);
    row("link", "PacketTracer rate 0", t_trace0, pk, t_noprobe);
    row("link", "PacketTracer rate 1", t_trace1, pk, t_noprobe);
    row("link", "conformance disabled (tau 0)", t_conf_off, pk, t_noprobe);
    row("link", "conformance tau 500", t_conf_on, pk, t_noprobe);
    table.print(std::cout);

    // The guards: obs compiled in but disabled must stay within `threshold`
    // percent of the path without the hook — the monitor branch in the event
    // loop, and the conformance branch + early-return on the departure path.
    const double over = 100.0 * (t_nomon / t_raw - 1.0);
    const double conf_over = 100.0 * (t_conf_off / t_noprobe - 1.0);
    const bool pass = over < threshold && conf_over < threshold;
    std::cout << "\n"
              << (over < threshold ? "PASS" : "FAIL")
              << ": event loop with monitor hook disabled costs "
              << pds::TablePrinter::num(over, 2) << "% (threshold "
              << pds::TablePrinter::num(threshold, 0) << "%)\n"
              << (conf_over < threshold ? "PASS" : "FAIL")
              << ": departure path with conformance disabled costs "
              << pds::TablePrinter::num(conf_over, 2) << "% (threshold "
              << pds::TablePrinter::num(threshold, 0) << "%)\n";
    return pass ? 0 : 1;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
