// Microbenchmark — sharded conservative-PDES kernel scaling.
//
// Runs ONE large fat-tree scenario (k=4 and k=8, open-loop mix traffic on
// cross-pod routes plus a closed-loop RPC service) through the sharded
// kernel at 1, 2, 4 and 8 shards and reports wall-clock, speedup over the
// serial run, parallel efficiency, and the clock-protocol counters (rounds,
// cross-shard messages, messages per round).
//
// The rendered run report of every shard count is byte-compared against the
// --shards=1 rendering — the kernel's determinism contract says the
// partition must not change a single output byte. A mismatch is the only
// nonzero exit; slow or single-core hardware never fails the bench (the
// conservative windows cost barriers, so speedup needs real cores).
//
// Knobs: --sim-time (time units), --shards (comma ladder), --quick,
// --json=FILE (snapshot section for scripts/bench_snapshot.sh).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "dsim/shard.hpp"
#include "exp/thread_pool.hpp"
#include "net/scenario.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

// A loaded fat-tree: every pod's edge0 talks to the next pod (open-loop mix
// riding the full edge->agg->core->agg->edge path), edge1 pairs run a
// closed-loop RPC service, so both the packet plane and the workload plane
// cross shard cuts.
std::string scenario_text(std::uint32_t k, double sim_time) {
  std::ostringstream os;
  os << "topology fat_tree k=" << k << " capacity=39.375 sched=wtp sdp=1,2,4\n";
  for (std::uint32_t p = 0; p < k; ++p) {
    const std::uint32_t q = (p + 1) % k;
    os << "route ring" << p << " from=p" << p << "edge0 to=p" << q
       << "edge0\n"
       << "source mix ring" << p
       << " fractions=60,30,10 gap=26 size=441 pareto=1.9\n";
  }
  for (std::uint32_t p = 0; p + 1 < k; p += 2) {
    os << "route rpc" << p << " from=p" << p << "edge1 to=p" << (p + 1)
       << "edge1\n"
       << "flows rpc" << p << " class=2 users=12 size=441 think=1500"
       << " request=2 response=2 deadline=450\n";
  }
  os << "run until=" << sim_time << " warmup=" << 0.1 * sim_time
     << " seed=33\n";
  return os.str();
}

struct LadderPoint {
  std::uint32_t shards = 1;
  double wall = 0.0;
  pds::PdesStats stats;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"sim-time", "shards", "quick", "json", "jobs"});
    const bool quick = args.get_bool("quick", false);
    const double sim_time = args.get_double("sim-time", quick ? 4.0e4 : 2.0e5);
    std::vector<std::uint32_t> ladder;
    for (const double s : args.get_double_list("shards", {1, 2, 4, 8})) {
      ladder.push_back(std::max(1u, static_cast<std::uint32_t>(s)));
    }
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
    if (ladder.front() != 1) ladder.insert(ladder.begin(), 1);  // reference

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    pds::ThreadPool::set_global_workers(
        pds::ThreadPool::plan_workers(args.get_jobs(), ladder.back()));

    std::cout << "=== sharded PDES scaling: fat-tree scenarios, sim-time "
              << sim_time << " tu ===\nhardware_concurrency = " << hw
              << "\n";

    bool mismatch = false;
    std::ostringstream json;
    json << "{\n";
    bool first_entry = true;
    for (const std::uint32_t k : std::vector<std::uint32_t>{4, 8}) {
      const auto scenario = pds::parse_scenario(scenario_text(k, sim_time));
      std::string reference;
      double reference_wall = 0.0;
      std::vector<LadderPoint> points;
      for (const std::uint32_t shards : ladder) {
        pds::ScenarioOptions options;
        options.shards = shards;
        LadderPoint pt;
        pt.shards = shards;
        options.pdes_stats = &pt.stats;
        if (shards > 1) {
          options.shard_executor =
              [](std::size_t count,
                 const std::function<void(std::size_t)>& body) {
                pds::parallel_for(count, body);
              };
        }
        const auto t0 = std::chrono::steady_clock::now();
        const auto report = pds::run_scenario(scenario, options);
        const auto t1 = std::chrono::steady_clock::now();
        pt.wall = std::chrono::duration<double>(t1 - t0).count();
        const std::string out =
            pds::scenario_run_report(scenario, report, scenario.run.seed)
                .dump();
        if (reference.empty()) {
          reference = out;
          reference_wall = pt.wall;
        } else if (out != reference) {
          pt.identical = false;
          mismatch = true;
        }
        points.push_back(pt);
      }

      std::cout << "\n--- fat-tree k=" << k << " (" << scenario.links.size()
                << " links) ---\n";
      pds::TablePrinter table({"shards", "wall (s)", "speedup", "efficiency",
                               "rounds", "messages", "msgs/round", "report"});
      for (const auto& pt : points) {
        const double speedup = reference_wall / pt.wall;
        const double rounds = static_cast<double>(pt.stats.rounds);
        table.add_row(
            {std::to_string(pt.shards), pds::TablePrinter::num(pt.wall, 3),
             pds::TablePrinter::num(speedup),
             pds::TablePrinter::num(speedup / pt.shards),
             std::to_string(pt.stats.rounds),
             std::to_string(pt.stats.messages),
             pds::TablePrinter::num(
                 rounds > 0.0 ? static_cast<double>(pt.stats.messages) / rounds
                              : 0.0),
             pt.identical ? "identical" : "DIFFERENT"});
        if (!first_entry) json << ",\n";
        first_entry = false;
        json << "  \"fat_tree_k" << k << "/shards=" << pt.shards
             << "\": {\"wall_s\": " << pt.wall
             << ", \"items_per_second\": "
             << (pt.wall > 0.0
                     ? static_cast<double>(pt.stats.rounds) / pt.wall
                     : 0.0)
             << ", \"pdes_rounds\": " << pt.stats.rounds
             << ", \"pdes_messages\": " << pt.stats.messages << "}";
      }
      table.print(std::cout);
    }
    json << "\n}\n";

    std::cout << "\ndeterminism: every shard count produced "
              << (mismatch ? "DIFFERENT run reports (BUG)"
                           : "byte-identical run reports")
              << " vs --shards=1.\n";
    if (hw == 1) {
      std::cout << "note: single-core host — speedups <= 1.0 are expected"
                   " here (the barrier\nprotocol only pays off with real"
                   " cores); the byte-compare is the contract.\n";
    }

    const auto json_path = args.get_string("json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
      }
      out << json.str();
      std::cout << "snapshot section written to " << json_path << "\n";
    }
    return mismatch ? 1 : 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
