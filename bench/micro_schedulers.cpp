// Scheduler micro-benchmarks (google-benchmark).
//
// The paper claims both WTP and packetized BPR are O(N) per departure and
// "implementable even in very high-speed links" for small N (Section 4).
// These benchmarks measure the enqueue+dequeue cost per packet as the class
// count N grows, for every scheduler in the library, on a pre-generated
// backlog-heavy workload.
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc_counter.hpp"
#include "rng/rng.hpp"
#include "sched/factory.hpp"

namespace {

pds::SchedulerConfig make_config(std::uint32_t num_classes) {
  pds::SchedulerConfig c;
  double s = 1.0;
  for (std::uint32_t i = 0; i < num_classes; ++i) {
    c.sdp.push_back(s);
    s *= 2.0;
  }
  c.link_capacity = 39.375;
  return c;
}

std::vector<pds::Packet> make_workload(std::uint32_t num_classes,
                                       std::size_t count) {
  pds::Rng rng(7);
  std::vector<pds::Packet> packets;
  packets.reserve(count);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += 0.5;
    pds::Packet p;
    p.id = i;
    p.cls = static_cast<pds::ClassId>(rng.uniform_index(num_classes));
    p.size_bytes = 40 + static_cast<std::uint32_t>(rng.uniform_index(1460));
    p.arrival = t;
    packets.push_back(p);
  }
  return packets;
}

void run_pass(benchmark::State& state, pds::SchedulerKind kind) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto workload = make_workload(n, 4096);
  std::uint64_t allocs = 0;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto sched = pds::make_scheduler(kind, make_config(n));
    state.ResumeTiming();
    const std::uint64_t before = pds::bench::heap_allocations();
    // Build up a deep backlog, then alternate enqueue/dequeue (steady
    // state), then drain — exercising selection against full queues.
    std::size_t i = 0;
    for (; i < workload.size() / 2; ++i) {
      sched->enqueue(workload[i], workload[i].arrival);
    }
    double now = workload[i - 1].arrival;
    for (; i < workload.size(); ++i) {
      sched->enqueue(workload[i], workload[i].arrival);
      now = workload[i].arrival + 0.25;
      benchmark::DoNotOptimize(sched->dequeue(now));
    }
    while (auto p = sched->dequeue(now)) benchmark::DoNotOptimize(p);
    allocs += pds::bench::heap_allocations() - before;
    packets += workload.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
  state.counters["allocs_per_pkt"] =
      packets ? static_cast<double>(allocs) / static_cast<double>(packets)
              : 0.0;
}

void BM_Fcfs(benchmark::State& s) { run_pass(s, pds::SchedulerKind::kFcfs); }
void BM_StrictPriority(benchmark::State& s) {
  run_pass(s, pds::SchedulerKind::kStrictPriority);
}
void BM_Wtp(benchmark::State& s) { run_pass(s, pds::SchedulerKind::kWtp); }
void BM_Bpr(benchmark::State& s) { run_pass(s, pds::SchedulerKind::kBpr); }
void BM_Additive(benchmark::State& s) {
  run_pass(s, pds::SchedulerKind::kAdditiveWtp);
}
void BM_Pad(benchmark::State& s) { run_pass(s, pds::SchedulerKind::kPad); }
void BM_Hpd(benchmark::State& s) { run_pass(s, pds::SchedulerKind::kHpd); }
void BM_Drr(benchmark::State& s) { run_pass(s, pds::SchedulerKind::kDrr); }
void BM_Scfq(benchmark::State& s) { run_pass(s, pds::SchedulerKind::kScfq); }
void BM_VirtualClock(benchmark::State& s) {
  run_pass(s, pds::SchedulerKind::kVirtualClock);
}

}  // namespace

BENCHMARK(BM_Fcfs)->Arg(4)->Arg(16);
BENCHMARK(BM_StrictPriority)->Arg(4)->Arg(16);
BENCHMARK(BM_Wtp)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Bpr)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Additive)->Arg(4)->Arg(16);
BENCHMARK(BM_Pad)->Arg(4)->Arg(16);
BENCHMARK(BM_Hpd)->Arg(4)->Arg(16);
BENCHMARK(BM_Drr)->Arg(4)->Arg(16);
BENCHMARK(BM_Scfq)->Arg(4)->Arg(16);
BENCHMARK(BM_VirtualClock)->Arg(4)->Arg(16);
