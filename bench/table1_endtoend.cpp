// Table 1 — Study B: end-to-end delay differentiation from the user's
// perspective (Section 6, Figure 6 topology).
//
// K-hop chain of 25 Mbps WTP links (SDPs 1,2,4,8), 8 cross-traffic sources
// per hop (500 B packets, Pareto(1.9), class mix 40/30/20/10). Each "user
// experiment" launches four identical periodic flows, one per class, and the
// per-flow end-to-end queueing-delay percentiles are compared. Reports the
// paper's grid: {F = 10, 100 packets} x {R_u = 50, 200 kbps} for each of
// {K = 4, 8 hops} x {rho = 85%, 95%}, plus the count of *inconsistent*
// experiments (a higher class beaten on any percentile).
//
// Every (K, rho, F, R_u, run) cell is one independent Study B simulation;
// the whole grid fans out on the experiment engine and the table is
// assembled after the barrier, byte-identical for any --jobs.
//
// Expected shape (paper): R_D close to the ideal 2.0 everywhere, closer at
// higher load and more hops, and NO inconsistent differentiation at all.
//
// Knobs: --experiments (M per cell, paper: 100), --warmup (s), --seed,
// --full (paper scale), --quick (fast sanity run), --jobs (workers).
#include <algorithm>
#include <iostream>

#include "exp/sweep.hpp"
#include "net/study_b.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"experiments", "warmup", "seed", "runs", "scheduler",
                        "full", "quick", "jobs"});
    const bool full = args.get_bool("full", false);
    const bool quick = args.get_bool("quick", false);
    const auto experiments = static_cast<std::uint32_t>(
        args.get_int("experiments", full ? 100 : (quick ? 5 : 25)));
    const double warmup =
        args.get_double("warmup", full ? 100.0 : (quick ? 2.0 : 10.0));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    // The paper reports consistency over five runs with different seeds.
    const auto runs =
        static_cast<std::size_t>(args.get_int("runs", full ? 5 : 1));
    const auto scheduler = pds::scheduler_kind_from_string(
        args.get_string("scheduler", "wtp"));
    pds::ThreadPool::set_global_workers(args.get_jobs());

    std::cout << "=== Table 1: end-to-end R_D (ideal = 2.00) ===\n"
              << "M = " << experiments << " user experiments per cell, "
              << "warmup " << warmup << " s\n\n";

    const std::vector<std::uint32_t> kHops{4u, 8u};
    const std::vector<double> kRhos{0.85, 0.95};
    const std::vector<std::uint32_t> kFlowPackets{10u, 100u};
    const std::vector<double> kRatesKbps{50.0, 200.0};

    // One sweep cell per (K, rho, F, R_u, run): a full Study B simulation.
    const pds::SweepRunner runner({kHops.size(), kRhos.size(),
                                   kFlowPackets.size(), kRatesKbps.size(),
                                   runs});
    const auto cells = runner.run(
        [&](const std::vector<std::size_t>& at, std::size_t) {
          pds::StudyBConfig config;
          config.scheduler = scheduler;
          config.hops = kHops[at[0]];
          config.utilization = kRhos[at[1]];
          config.flow_packets = kFlowPackets[at[2]];
          config.flow_rate_kbps = kRatesKbps[at[3]];
          config.user_experiments = experiments;
          config.warmup_s = warmup;
          config.seed = seed + at[4];
          return pds::run_study_b(config);
        });

    pds::TablePrinter table({"K, rho", "F=10 Ru=50", "F=10 Ru=200",
                             "F=100 Ru=50", "F=100 Ru=200", "inconsistent"});
    std::uint64_t total_inconsistent = 0;
    std::uint64_t total_experiments = 0;
    double worst_violation = 0.0;
    for (std::size_t h = 0; h < kHops.size(); ++h) {
      for (std::size_t u = 0; u < kRhos.size(); ++u) {
        std::vector<std::string> row{
            "K=" + std::to_string(kHops[h]) + ", " +
            pds::TablePrinter::num(kRhos[u] * 100.0, 0) + "%"};
        std::uint64_t row_inconsistent = 0;
        for (std::size_t f = 0; f < kFlowPackets.size(); ++f) {
          for (std::size_t b = 0; b < kRatesKbps.size(); ++b) {
            double rd_sum = 0.0;
            for (std::size_t r = 0; r < runs; ++r) {
              const auto& result =
                  cells[runner.grid().flat({h, u, f, b, r})];
              rd_sum += result.rd;
              row_inconsistent += result.inconsistent_experiments;
              total_experiments += result.experiments;
              worst_violation =
                  std::max(worst_violation, result.worst_violation_s);
            }
            row.push_back(pds::TablePrinter::num(
                rd_sum / static_cast<double>(runs), 2));
          }
        }
        row.push_back(std::to_string(row_inconsistent));
        total_inconsistent += row_inconsistent;
        table.add_row(std::move(row));
      }
    }
    table.print(std::cout);
    std::cout << "\ntotal inconsistent experiments: " << total_inconsistent
              << " of " << total_experiments
              << "  (paper: none observed in any run)\n";
    if (total_inconsistent > 0) {
      std::cout << "worst percentile inversion: "
                << pds::TablePrinter::num(worst_violation * 1e6, 0)
                << " us (one 500 B packet = 160 us at 25 Mbps); these are\n"
                   "rare tail-percentile (99%) events at the lightest"
                   " settings — see EXPERIMENTS.md.\n";
    }
    std::cout
              << "Paper Table 1 reference values:\n"
              << "  K=4 85%: 2.3 2.2 2.2 2.1 | K=4 95%: 2.1 2.1 2.1 2.0\n"
              << "  K=8 85%: 2.0 2.0 2.0 2.0 | K=8 95%: 2.0 2.0 2.0 2.0\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
