file(REMOVE_RECURSE
  "CMakeFiles/ablation_additive.dir/ablation_additive.cpp.o"
  "CMakeFiles/ablation_additive.dir/ablation_additive.cpp.o.d"
  "ablation_additive"
  "ablation_additive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_additive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
