# Empty compiler generated dependencies file for ablation_additive.
# This may be replaced when dependencies are built.
