file(REMOVE_RECURSE
  "CMakeFiles/ext_delay_distributions.dir/ext_delay_distributions.cpp.o"
  "CMakeFiles/ext_delay_distributions.dir/ext_delay_distributions.cpp.o.d"
  "ext_delay_distributions"
  "ext_delay_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_delay_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
