# Empty dependencies file for ext_delay_distributions.
# This may be replaced when dependencies are built.
