file(REMOVE_RECURSE
  "CMakeFiles/ext_loss_differentiation.dir/ext_loss_differentiation.cpp.o"
  "CMakeFiles/ext_loss_differentiation.dir/ext_loss_differentiation.cpp.o.d"
  "ext_loss_differentiation"
  "ext_loss_differentiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_loss_differentiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
