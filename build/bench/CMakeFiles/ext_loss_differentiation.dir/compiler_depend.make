# Empty compiler generated dependencies file for ext_loss_differentiation.
# This may be replaced when dependencies are built.
