file(REMOVE_RECURSE
  "CMakeFiles/ext_merging_paths.dir/ext_merging_paths.cpp.o"
  "CMakeFiles/ext_merging_paths.dir/ext_merging_paths.cpp.o.d"
  "ext_merging_paths"
  "ext_merging_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_merging_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
