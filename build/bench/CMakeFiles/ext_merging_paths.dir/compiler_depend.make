# Empty compiler generated dependencies file for ext_merging_paths.
# This may be replaced when dependencies are built.
