file(REMOVE_RECURSE
  "CMakeFiles/ext_pad_hpd_sweep.dir/ext_pad_hpd_sweep.cpp.o"
  "CMakeFiles/ext_pad_hpd_sweep.dir/ext_pad_hpd_sweep.cpp.o.d"
  "ext_pad_hpd_sweep"
  "ext_pad_hpd_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pad_hpd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
