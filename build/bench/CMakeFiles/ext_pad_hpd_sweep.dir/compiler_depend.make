# Empty compiler generated dependencies file for ext_pad_hpd_sweep.
# This may be replaced when dependencies are built.
