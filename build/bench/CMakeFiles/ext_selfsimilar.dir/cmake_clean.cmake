file(REMOVE_RECURSE
  "CMakeFiles/ext_selfsimilar.dir/ext_selfsimilar.cpp.o"
  "CMakeFiles/ext_selfsimilar.dir/ext_selfsimilar.cpp.o.d"
  "ext_selfsimilar"
  "ext_selfsimilar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_selfsimilar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
