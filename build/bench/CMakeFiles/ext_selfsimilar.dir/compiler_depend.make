# Empty compiler generated dependencies file for ext_selfsimilar.
# This may be replaced when dependencies are built.
