# Empty dependencies file for fig1_load_sweep.
# This may be replaced when dependencies are built.
