file(REMOVE_RECURSE
  "CMakeFiles/fig3_timescales.dir/fig3_timescales.cpp.o"
  "CMakeFiles/fig3_timescales.dir/fig3_timescales.cpp.o.d"
  "fig3_timescales"
  "fig3_timescales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_timescales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
