# Empty compiler generated dependencies file for fig3_timescales.
# This may be replaced when dependencies are built.
