file(REMOVE_RECURSE
  "CMakeFiles/fig4_bpr_micro.dir/fig4_bpr_micro.cpp.o"
  "CMakeFiles/fig4_bpr_micro.dir/fig4_bpr_micro.cpp.o.d"
  "fig4_bpr_micro"
  "fig4_bpr_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bpr_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
