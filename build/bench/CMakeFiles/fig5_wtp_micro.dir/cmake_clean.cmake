file(REMOVE_RECURSE
  "CMakeFiles/fig5_wtp_micro.dir/fig5_wtp_micro.cpp.o"
  "CMakeFiles/fig5_wtp_micro.dir/fig5_wtp_micro.cpp.o.d"
  "fig5_wtp_micro"
  "fig5_wtp_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wtp_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
