file(REMOVE_RECURSE
  "CMakeFiles/table1_endtoend.dir/table1_endtoend.cpp.o"
  "CMakeFiles/table1_endtoend.dir/table1_endtoend.cpp.o.d"
  "table1_endtoend"
  "table1_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
