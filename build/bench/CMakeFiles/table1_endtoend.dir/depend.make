# Empty dependencies file for table1_endtoend.
# This may be replaced when dependencies are built.
