file(REMOVE_RECURSE
  "CMakeFiles/ecn_stability.dir/ecn_stability.cpp.o"
  "CMakeFiles/ecn_stability.dir/ecn_stability.cpp.o.d"
  "ecn_stability"
  "ecn_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecn_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
