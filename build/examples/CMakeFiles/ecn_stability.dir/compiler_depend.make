# Empty compiler generated dependencies file for ecn_stability.
# This may be replaced when dependencies are built.
