file(REMOVE_RECURSE
  "CMakeFiles/operator_provisioning.dir/operator_provisioning.cpp.o"
  "CMakeFiles/operator_provisioning.dir/operator_provisioning.cpp.o.d"
  "operator_provisioning"
  "operator_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
