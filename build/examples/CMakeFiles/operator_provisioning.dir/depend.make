# Empty dependencies file for operator_provisioning.
# This may be replaced when dependencies are built.
