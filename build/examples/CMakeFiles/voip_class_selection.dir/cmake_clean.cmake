file(REMOVE_RECURSE
  "CMakeFiles/voip_class_selection.dir/voip_class_selection.cpp.o"
  "CMakeFiles/voip_class_selection.dir/voip_class_selection.cpp.o.d"
  "voip_class_selection"
  "voip_class_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voip_class_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
