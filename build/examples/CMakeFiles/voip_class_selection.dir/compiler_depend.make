# Empty compiler generated dependencies file for voip_class_selection.
# This may be replaced when dependencies are built.
