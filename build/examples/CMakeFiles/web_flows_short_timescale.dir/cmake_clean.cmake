file(REMOVE_RECURSE
  "CMakeFiles/web_flows_short_timescale.dir/web_flows_short_timescale.cpp.o"
  "CMakeFiles/web_flows_short_timescale.dir/web_flows_short_timescale.cpp.o.d"
  "web_flows_short_timescale"
  "web_flows_short_timescale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_flows_short_timescale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
