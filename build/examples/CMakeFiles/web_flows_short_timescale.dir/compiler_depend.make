# Empty compiler generated dependencies file for web_flows_short_timescale.
# This may be replaced when dependencies are built.
