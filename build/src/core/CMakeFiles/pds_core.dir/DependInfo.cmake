
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feasibility.cpp" "src/core/CMakeFiles/pds_core.dir/feasibility.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/feasibility.cpp.o.d"
  "/root/repo/src/core/mg1.cpp" "src/core/CMakeFiles/pds_core.dir/mg1.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/mg1.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/pds_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/model.cpp.o.d"
  "/root/repo/src/core/provisioning.cpp" "src/core/CMakeFiles/pds_core.dir/provisioning.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/provisioning.cpp.o.d"
  "/root/repo/src/core/study_a.cpp" "src/core/CMakeFiles/pds_core.dir/study_a.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/study_a.cpp.o.d"
  "/root/repo/src/core/study_c.cpp" "src/core/CMakeFiles/pds_core.dir/study_c.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/study_c.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/pds_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/pds_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/trace_io.cpp.o.d"
  "/root/repo/src/core/trace_study.cpp" "src/core/CMakeFiles/pds_core.dir/trace_study.cpp.o" "gcc" "src/core/CMakeFiles/pds_core.dir/trace_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/pds_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/pds_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dropper/CMakeFiles/pds_dropper.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/pds_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pds_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
