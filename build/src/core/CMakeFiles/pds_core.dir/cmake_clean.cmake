file(REMOVE_RECURSE
  "CMakeFiles/pds_core.dir/feasibility.cpp.o"
  "CMakeFiles/pds_core.dir/feasibility.cpp.o.d"
  "CMakeFiles/pds_core.dir/mg1.cpp.o"
  "CMakeFiles/pds_core.dir/mg1.cpp.o.d"
  "CMakeFiles/pds_core.dir/model.cpp.o"
  "CMakeFiles/pds_core.dir/model.cpp.o.d"
  "CMakeFiles/pds_core.dir/provisioning.cpp.o"
  "CMakeFiles/pds_core.dir/provisioning.cpp.o.d"
  "CMakeFiles/pds_core.dir/study_a.cpp.o"
  "CMakeFiles/pds_core.dir/study_a.cpp.o.d"
  "CMakeFiles/pds_core.dir/study_c.cpp.o"
  "CMakeFiles/pds_core.dir/study_c.cpp.o.d"
  "CMakeFiles/pds_core.dir/trace.cpp.o"
  "CMakeFiles/pds_core.dir/trace.cpp.o.d"
  "CMakeFiles/pds_core.dir/trace_io.cpp.o"
  "CMakeFiles/pds_core.dir/trace_io.cpp.o.d"
  "CMakeFiles/pds_core.dir/trace_study.cpp.o"
  "CMakeFiles/pds_core.dir/trace_study.cpp.o.d"
  "libpds_core.a"
  "libpds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
