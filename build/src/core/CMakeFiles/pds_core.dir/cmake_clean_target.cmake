file(REMOVE_RECURSE
  "libpds_core.a"
)
