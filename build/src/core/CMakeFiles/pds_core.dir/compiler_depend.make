# Empty compiler generated dependencies file for pds_core.
# This may be replaced when dependencies are built.
