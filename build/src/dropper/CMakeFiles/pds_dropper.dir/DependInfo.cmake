
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dropper/lossy_link.cpp" "src/dropper/CMakeFiles/pds_dropper.dir/lossy_link.cpp.o" "gcc" "src/dropper/CMakeFiles/pds_dropper.dir/lossy_link.cpp.o.d"
  "/root/repo/src/dropper/plr_dropper.cpp" "src/dropper/CMakeFiles/pds_dropper.dir/plr_dropper.cpp.o" "gcc" "src/dropper/CMakeFiles/pds_dropper.dir/plr_dropper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/pds_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/pds_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
