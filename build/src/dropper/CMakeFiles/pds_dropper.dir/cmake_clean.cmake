file(REMOVE_RECURSE
  "CMakeFiles/pds_dropper.dir/lossy_link.cpp.o"
  "CMakeFiles/pds_dropper.dir/lossy_link.cpp.o.d"
  "CMakeFiles/pds_dropper.dir/plr_dropper.cpp.o"
  "CMakeFiles/pds_dropper.dir/plr_dropper.cpp.o.d"
  "libpds_dropper.a"
  "libpds_dropper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_dropper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
