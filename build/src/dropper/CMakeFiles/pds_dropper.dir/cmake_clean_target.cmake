file(REMOVE_RECURSE
  "libpds_dropper.a"
)
