# Empty dependencies file for pds_dropper.
# This may be replaced when dependencies are built.
