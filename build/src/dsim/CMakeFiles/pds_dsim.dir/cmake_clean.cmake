file(REMOVE_RECURSE
  "CMakeFiles/pds_dsim.dir/event_queue.cpp.o"
  "CMakeFiles/pds_dsim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pds_dsim.dir/simulator.cpp.o"
  "CMakeFiles/pds_dsim.dir/simulator.cpp.o.d"
  "libpds_dsim.a"
  "libpds_dsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_dsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
