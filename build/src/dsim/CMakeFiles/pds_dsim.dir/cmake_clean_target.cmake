file(REMOVE_RECURSE
  "libpds_dsim.a"
)
