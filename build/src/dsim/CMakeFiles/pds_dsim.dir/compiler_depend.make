# Empty compiler generated dependencies file for pds_dsim.
# This may be replaced when dependencies are built.
