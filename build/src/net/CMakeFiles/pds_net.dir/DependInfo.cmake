
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/chain.cpp" "src/net/CMakeFiles/pds_net.dir/chain.cpp.o" "gcc" "src/net/CMakeFiles/pds_net.dir/chain.cpp.o.d"
  "/root/repo/src/net/scenario.cpp" "src/net/CMakeFiles/pds_net.dir/scenario.cpp.o" "gcc" "src/net/CMakeFiles/pds_net.dir/scenario.cpp.o.d"
  "/root/repo/src/net/study_b.cpp" "src/net/CMakeFiles/pds_net.dir/study_b.cpp.o" "gcc" "src/net/CMakeFiles/pds_net.dir/study_b.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/pds_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/pds_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/pds_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/pds_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/pds_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
