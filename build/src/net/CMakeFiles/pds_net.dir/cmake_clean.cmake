file(REMOVE_RECURSE
  "CMakeFiles/pds_net.dir/chain.cpp.o"
  "CMakeFiles/pds_net.dir/chain.cpp.o.d"
  "CMakeFiles/pds_net.dir/scenario.cpp.o"
  "CMakeFiles/pds_net.dir/scenario.cpp.o.d"
  "CMakeFiles/pds_net.dir/study_b.cpp.o"
  "CMakeFiles/pds_net.dir/study_b.cpp.o.d"
  "CMakeFiles/pds_net.dir/topology.cpp.o"
  "CMakeFiles/pds_net.dir/topology.cpp.o.d"
  "libpds_net.a"
  "libpds_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
