file(REMOVE_RECURSE
  "libpds_net.a"
)
