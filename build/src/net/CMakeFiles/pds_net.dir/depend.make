# Empty dependencies file for pds_net.
# This may be replaced when dependencies are built.
