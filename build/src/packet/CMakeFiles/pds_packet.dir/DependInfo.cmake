
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/size_law.cpp" "src/packet/CMakeFiles/pds_packet.dir/size_law.cpp.o" "gcc" "src/packet/CMakeFiles/pds_packet.dir/size_law.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
