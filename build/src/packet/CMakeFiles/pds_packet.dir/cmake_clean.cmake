file(REMOVE_RECURSE
  "CMakeFiles/pds_packet.dir/size_law.cpp.o"
  "CMakeFiles/pds_packet.dir/size_law.cpp.o.d"
  "libpds_packet.a"
  "libpds_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
