file(REMOVE_RECURSE
  "libpds_packet.a"
)
