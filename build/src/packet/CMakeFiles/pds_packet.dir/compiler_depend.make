# Empty compiler generated dependencies file for pds_packet.
# This may be replaced when dependencies are built.
