file(REMOVE_RECURSE
  "CMakeFiles/pds_queueing.dir/backlog.cpp.o"
  "CMakeFiles/pds_queueing.dir/backlog.cpp.o.d"
  "libpds_queueing.a"
  "libpds_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
