file(REMOVE_RECURSE
  "libpds_queueing.a"
)
