# Empty compiler generated dependencies file for pds_queueing.
# This may be replaced when dependencies are built.
