file(REMOVE_RECURSE
  "CMakeFiles/pds_rng.dir/distributions.cpp.o"
  "CMakeFiles/pds_rng.dir/distributions.cpp.o.d"
  "CMakeFiles/pds_rng.dir/rng.cpp.o"
  "CMakeFiles/pds_rng.dir/rng.cpp.o.d"
  "libpds_rng.a"
  "libpds_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
