file(REMOVE_RECURSE
  "libpds_rng.a"
)
