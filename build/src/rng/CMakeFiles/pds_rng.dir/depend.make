# Empty dependencies file for pds_rng.
# This may be replaced when dependencies are built.
