
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/additive.cpp" "src/sched/CMakeFiles/pds_sched.dir/additive.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/additive.cpp.o.d"
  "/root/repo/src/sched/bpr.cpp" "src/sched/CMakeFiles/pds_sched.dir/bpr.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/bpr.cpp.o.d"
  "/root/repo/src/sched/bpr_fluid.cpp" "src/sched/CMakeFiles/pds_sched.dir/bpr_fluid.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/bpr_fluid.cpp.o.d"
  "/root/repo/src/sched/drr.cpp" "src/sched/CMakeFiles/pds_sched.dir/drr.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/drr.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/pds_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/sched/CMakeFiles/pds_sched.dir/fcfs.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/fcfs.cpp.o.d"
  "/root/repo/src/sched/link.cpp" "src/sched/CMakeFiles/pds_sched.dir/link.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/link.cpp.o.d"
  "/root/repo/src/sched/pad.cpp" "src/sched/CMakeFiles/pds_sched.dir/pad.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/pad.cpp.o.d"
  "/root/repo/src/sched/scfq.cpp" "src/sched/CMakeFiles/pds_sched.dir/scfq.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/scfq.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/pds_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/strict_priority.cpp" "src/sched/CMakeFiles/pds_sched.dir/strict_priority.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/strict_priority.cpp.o.d"
  "/root/repo/src/sched/virtual_clock.cpp" "src/sched/CMakeFiles/pds_sched.dir/virtual_clock.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/virtual_clock.cpp.o.d"
  "/root/repo/src/sched/wtp.cpp" "src/sched/CMakeFiles/pds_sched.dir/wtp.cpp.o" "gcc" "src/sched/CMakeFiles/pds_sched.dir/wtp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/pds_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/pds_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
