file(REMOVE_RECURSE
  "CMakeFiles/pds_sched.dir/additive.cpp.o"
  "CMakeFiles/pds_sched.dir/additive.cpp.o.d"
  "CMakeFiles/pds_sched.dir/bpr.cpp.o"
  "CMakeFiles/pds_sched.dir/bpr.cpp.o.d"
  "CMakeFiles/pds_sched.dir/bpr_fluid.cpp.o"
  "CMakeFiles/pds_sched.dir/bpr_fluid.cpp.o.d"
  "CMakeFiles/pds_sched.dir/drr.cpp.o"
  "CMakeFiles/pds_sched.dir/drr.cpp.o.d"
  "CMakeFiles/pds_sched.dir/factory.cpp.o"
  "CMakeFiles/pds_sched.dir/factory.cpp.o.d"
  "CMakeFiles/pds_sched.dir/fcfs.cpp.o"
  "CMakeFiles/pds_sched.dir/fcfs.cpp.o.d"
  "CMakeFiles/pds_sched.dir/link.cpp.o"
  "CMakeFiles/pds_sched.dir/link.cpp.o.d"
  "CMakeFiles/pds_sched.dir/pad.cpp.o"
  "CMakeFiles/pds_sched.dir/pad.cpp.o.d"
  "CMakeFiles/pds_sched.dir/scfq.cpp.o"
  "CMakeFiles/pds_sched.dir/scfq.cpp.o.d"
  "CMakeFiles/pds_sched.dir/scheduler.cpp.o"
  "CMakeFiles/pds_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/pds_sched.dir/strict_priority.cpp.o"
  "CMakeFiles/pds_sched.dir/strict_priority.cpp.o.d"
  "CMakeFiles/pds_sched.dir/virtual_clock.cpp.o"
  "CMakeFiles/pds_sched.dir/virtual_clock.cpp.o.d"
  "CMakeFiles/pds_sched.dir/wtp.cpp.o"
  "CMakeFiles/pds_sched.dir/wtp.cpp.o.d"
  "libpds_sched.a"
  "libpds_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
