file(REMOVE_RECURSE
  "libpds_sched.a"
)
