# Empty compiler generated dependencies file for pds_sched.
# This may be replaced when dependencies are built.
