
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/delay_stats.cpp" "src/stats/CMakeFiles/pds_stats.dir/delay_stats.cpp.o" "gcc" "src/stats/CMakeFiles/pds_stats.dir/delay_stats.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/pds_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/pds_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/interval_monitor.cpp" "src/stats/CMakeFiles/pds_stats.dir/interval_monitor.cpp.o" "gcc" "src/stats/CMakeFiles/pds_stats.dir/interval_monitor.cpp.o.d"
  "/root/repo/src/stats/jitter.cpp" "src/stats/CMakeFiles/pds_stats.dir/jitter.cpp.o" "gcc" "src/stats/CMakeFiles/pds_stats.dir/jitter.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/stats/CMakeFiles/pds_stats.dir/percentile.cpp.o" "gcc" "src/stats/CMakeFiles/pds_stats.dir/percentile.cpp.o.d"
  "/root/repo/src/stats/sawtooth.cpp" "src/stats/CMakeFiles/pds_stats.dir/sawtooth.cpp.o" "gcc" "src/stats/CMakeFiles/pds_stats.dir/sawtooth.cpp.o.d"
  "/root/repo/src/stats/variance_time.cpp" "src/stats/CMakeFiles/pds_stats.dir/variance_time.cpp.o" "gcc" "src/stats/CMakeFiles/pds_stats.dir/variance_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/pds_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
