file(REMOVE_RECURSE
  "CMakeFiles/pds_stats.dir/delay_stats.cpp.o"
  "CMakeFiles/pds_stats.dir/delay_stats.cpp.o.d"
  "CMakeFiles/pds_stats.dir/histogram.cpp.o"
  "CMakeFiles/pds_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/pds_stats.dir/interval_monitor.cpp.o"
  "CMakeFiles/pds_stats.dir/interval_monitor.cpp.o.d"
  "CMakeFiles/pds_stats.dir/jitter.cpp.o"
  "CMakeFiles/pds_stats.dir/jitter.cpp.o.d"
  "CMakeFiles/pds_stats.dir/percentile.cpp.o"
  "CMakeFiles/pds_stats.dir/percentile.cpp.o.d"
  "CMakeFiles/pds_stats.dir/sawtooth.cpp.o"
  "CMakeFiles/pds_stats.dir/sawtooth.cpp.o.d"
  "CMakeFiles/pds_stats.dir/variance_time.cpp.o"
  "CMakeFiles/pds_stats.dir/variance_time.cpp.o.d"
  "libpds_stats.a"
  "libpds_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
