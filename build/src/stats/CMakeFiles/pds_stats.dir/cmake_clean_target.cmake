file(REMOVE_RECURSE
  "libpds_stats.a"
)
