# Empty compiler generated dependencies file for pds_stats.
# This may be replaced when dependencies are built.
