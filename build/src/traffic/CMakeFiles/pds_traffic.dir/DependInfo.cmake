
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/calibration.cpp" "src/traffic/CMakeFiles/pds_traffic.dir/calibration.cpp.o" "gcc" "src/traffic/CMakeFiles/pds_traffic.dir/calibration.cpp.o.d"
  "/root/repo/src/traffic/ecn.cpp" "src/traffic/CMakeFiles/pds_traffic.dir/ecn.cpp.o" "gcc" "src/traffic/CMakeFiles/pds_traffic.dir/ecn.cpp.o.d"
  "/root/repo/src/traffic/onoff.cpp" "src/traffic/CMakeFiles/pds_traffic.dir/onoff.cpp.o" "gcc" "src/traffic/CMakeFiles/pds_traffic.dir/onoff.cpp.o.d"
  "/root/repo/src/traffic/source.cpp" "src/traffic/CMakeFiles/pds_traffic.dir/source.cpp.o" "gcc" "src/traffic/CMakeFiles/pds_traffic.dir/source.cpp.o.d"
  "/root/repo/src/traffic/token_bucket.cpp" "src/traffic/CMakeFiles/pds_traffic.dir/token_bucket.cpp.o" "gcc" "src/traffic/CMakeFiles/pds_traffic.dir/token_bucket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/pds_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/pds_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
