file(REMOVE_RECURSE
  "CMakeFiles/pds_traffic.dir/calibration.cpp.o"
  "CMakeFiles/pds_traffic.dir/calibration.cpp.o.d"
  "CMakeFiles/pds_traffic.dir/ecn.cpp.o"
  "CMakeFiles/pds_traffic.dir/ecn.cpp.o.d"
  "CMakeFiles/pds_traffic.dir/onoff.cpp.o"
  "CMakeFiles/pds_traffic.dir/onoff.cpp.o.d"
  "CMakeFiles/pds_traffic.dir/source.cpp.o"
  "CMakeFiles/pds_traffic.dir/source.cpp.o.d"
  "CMakeFiles/pds_traffic.dir/token_bucket.cpp.o"
  "CMakeFiles/pds_traffic.dir/token_bucket.cpp.o.d"
  "libpds_traffic.a"
  "libpds_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
