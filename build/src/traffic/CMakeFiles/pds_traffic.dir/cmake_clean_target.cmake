file(REMOVE_RECURSE
  "libpds_traffic.a"
)
