# Empty compiler generated dependencies file for pds_traffic.
# This may be replaced when dependencies are built.
