file(REMOVE_RECURSE
  "CMakeFiles/pds_util.dir/args.cpp.o"
  "CMakeFiles/pds_util.dir/args.cpp.o.d"
  "CMakeFiles/pds_util.dir/csv.cpp.o"
  "CMakeFiles/pds_util.dir/csv.cpp.o.d"
  "CMakeFiles/pds_util.dir/table.cpp.o"
  "CMakeFiles/pds_util.dir/table.cpp.o.d"
  "libpds_util.a"
  "libpds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
