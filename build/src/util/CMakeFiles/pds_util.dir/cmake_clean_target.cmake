file(REMOVE_RECURSE
  "libpds_util.a"
)
