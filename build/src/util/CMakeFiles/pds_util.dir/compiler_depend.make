# Empty compiler generated dependencies file for pds_util.
# This may be replaced when dependencies are built.
