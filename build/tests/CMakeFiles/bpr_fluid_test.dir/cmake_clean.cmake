file(REMOVE_RECURSE
  "CMakeFiles/bpr_fluid_test.dir/bpr_fluid_test.cpp.o"
  "CMakeFiles/bpr_fluid_test.dir/bpr_fluid_test.cpp.o.d"
  "bpr_fluid_test"
  "bpr_fluid_test.pdb"
  "bpr_fluid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpr_fluid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
