# Empty dependencies file for bpr_fluid_test.
# This may be replaced when dependencies are built.
