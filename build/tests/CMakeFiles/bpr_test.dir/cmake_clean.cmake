file(REMOVE_RECURSE
  "CMakeFiles/bpr_test.dir/bpr_test.cpp.o"
  "CMakeFiles/bpr_test.dir/bpr_test.cpp.o.d"
  "bpr_test"
  "bpr_test.pdb"
  "bpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
