# Empty compiler generated dependencies file for bpr_test.
# This may be replaced when dependencies are built.
