file(REMOVE_RECURSE
  "CMakeFiles/capacity_sched_test.dir/capacity_sched_test.cpp.o"
  "CMakeFiles/capacity_sched_test.dir/capacity_sched_test.cpp.o.d"
  "capacity_sched_test"
  "capacity_sched_test.pdb"
  "capacity_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
