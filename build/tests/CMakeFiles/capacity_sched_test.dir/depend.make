# Empty dependencies file for capacity_sched_test.
# This may be replaced when dependencies are built.
