file(REMOVE_RECURSE
  "CMakeFiles/dropper_test.dir/dropper_test.cpp.o"
  "CMakeFiles/dropper_test.dir/dropper_test.cpp.o.d"
  "dropper_test"
  "dropper_test.pdb"
  "dropper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
