# Empty dependencies file for dropper_test.
# This may be replaced when dependencies are built.
