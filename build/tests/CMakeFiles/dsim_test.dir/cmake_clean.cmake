file(REMOVE_RECURSE
  "CMakeFiles/dsim_test.dir/dsim_test.cpp.o"
  "CMakeFiles/dsim_test.dir/dsim_test.cpp.o.d"
  "dsim_test"
  "dsim_test.pdb"
  "dsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
