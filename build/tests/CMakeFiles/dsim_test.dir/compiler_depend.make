# Empty compiler generated dependencies file for dsim_test.
# This may be replaced when dependencies are built.
