file(REMOVE_RECURSE
  "CMakeFiles/lossy_property_test.dir/lossy_property_test.cpp.o"
  "CMakeFiles/lossy_property_test.dir/lossy_property_test.cpp.o.d"
  "lossy_property_test"
  "lossy_property_test.pdb"
  "lossy_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
