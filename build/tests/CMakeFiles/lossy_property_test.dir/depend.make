# Empty dependencies file for lossy_property_test.
# This may be replaced when dependencies are built.
