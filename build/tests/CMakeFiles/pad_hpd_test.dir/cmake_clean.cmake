file(REMOVE_RECURSE
  "CMakeFiles/pad_hpd_test.dir/pad_hpd_test.cpp.o"
  "CMakeFiles/pad_hpd_test.dir/pad_hpd_test.cpp.o.d"
  "pad_hpd_test"
  "pad_hpd_test.pdb"
  "pad_hpd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_hpd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
