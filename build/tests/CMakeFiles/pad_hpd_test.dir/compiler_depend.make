# Empty compiler generated dependencies file for pad_hpd_test.
# This may be replaced when dependencies are built.
