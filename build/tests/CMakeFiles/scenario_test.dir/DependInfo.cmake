
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/scenario_test.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/scenario_test.dir/scenario_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dropper/CMakeFiles/pds_dropper.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/pds_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/pds_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/pds_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/pds_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pds_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
