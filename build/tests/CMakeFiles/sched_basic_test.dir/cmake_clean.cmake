file(REMOVE_RECURSE
  "CMakeFiles/sched_basic_test.dir/sched_basic_test.cpp.o"
  "CMakeFiles/sched_basic_test.dir/sched_basic_test.cpp.o.d"
  "sched_basic_test"
  "sched_basic_test.pdb"
  "sched_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
