# Empty dependencies file for sched_basic_test.
# This may be replaced when dependencies are built.
