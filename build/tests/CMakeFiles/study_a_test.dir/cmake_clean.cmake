file(REMOVE_RECURSE
  "CMakeFiles/study_a_test.dir/study_a_test.cpp.o"
  "CMakeFiles/study_a_test.dir/study_a_test.cpp.o.d"
  "study_a_test"
  "study_a_test.pdb"
  "study_a_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_a_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
