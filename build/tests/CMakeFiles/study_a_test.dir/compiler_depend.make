# Empty compiler generated dependencies file for study_a_test.
# This may be replaced when dependencies are built.
