file(REMOVE_RECURSE
  "CMakeFiles/study_c_test.dir/study_c_test.cpp.o"
  "CMakeFiles/study_c_test.dir/study_c_test.cpp.o.d"
  "study_c_test"
  "study_c_test.pdb"
  "study_c_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_c_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
