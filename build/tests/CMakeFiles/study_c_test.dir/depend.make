# Empty dependencies file for study_c_test.
# This may be replaced when dependencies are built.
