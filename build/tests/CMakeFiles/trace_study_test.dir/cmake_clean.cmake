file(REMOVE_RECURSE
  "CMakeFiles/trace_study_test.dir/trace_study_test.cpp.o"
  "CMakeFiles/trace_study_test.dir/trace_study_test.cpp.o.d"
  "trace_study_test"
  "trace_study_test.pdb"
  "trace_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
