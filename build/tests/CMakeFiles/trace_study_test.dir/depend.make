# Empty dependencies file for trace_study_test.
# This may be replaced when dependencies are built.
