file(REMOVE_RECURSE
  "CMakeFiles/traffic_ext_test.dir/traffic_ext_test.cpp.o"
  "CMakeFiles/traffic_ext_test.dir/traffic_ext_test.cpp.o.d"
  "traffic_ext_test"
  "traffic_ext_test.pdb"
  "traffic_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
