# Empty compiler generated dependencies file for traffic_ext_test.
# This may be replaced when dependencies are built.
