file(REMOVE_RECURSE
  "CMakeFiles/variance_time_test.dir/variance_time_test.cpp.o"
  "CMakeFiles/variance_time_test.dir/variance_time_test.cpp.o.d"
  "variance_time_test"
  "variance_time_test.pdb"
  "variance_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
