file(REMOVE_RECURSE
  "CMakeFiles/wtp_test.dir/wtp_test.cpp.o"
  "CMakeFiles/wtp_test.dir/wtp_test.cpp.o.d"
  "wtp_test"
  "wtp_test.pdb"
  "wtp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
