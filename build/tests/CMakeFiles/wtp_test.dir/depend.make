# Empty dependencies file for wtp_test.
# This may be replaced when dependencies are built.
