// The operating regime behind Section 3's lossless model: ECN-regulated
// adaptive sources keeping a link near full utilization with a bounded
// queue and zero drops.
//
// Four AIMD sources (one per service class) send through a WTP link whose
// queue marks the ECN bit above a backlog threshold. The demo prints the
// trajectory of aggregate rate and backlog, then the per-class delay ratios
// — showing that proportional differentiation and congestion control
// compose: the classes share the same closed loop yet keep their delay
// spacing.
#include <iostream>
#include <memory>
#include <vector>

#include "dsim/simulator.hpp"
#include "packet/size_law.hpp"
#include "sched/wtp.hpp"
#include "sched/link.hpp"
#include "stats/delay_stats.hpp"
#include "traffic/ecn.hpp"
#include "util/table.hpp"

int main() {
  pds::Simulator sim;
  pds::PacketIdAllocator ids;
  pds::Rng master(23);

  pds::SchedulerConfig sc;
  sc.sdp = {1.0, 2.0, 4.0, 8.0};
  pds::WtpScheduler sched(sc);
  const double capacity = pds::kStudyACapacity;
  const pds::EcnMarker marker(40);

  const double sim_time = 4.0e5;
  const double warmup = 0.25 * sim_time;
  pds::ClassDelayStats delays(4, warmup);
  pds::Link link(sim, sched, capacity,
                 [&](pds::Packet&& p, pds::SimTime wait, pds::SimTime now) {
                   delays.record(p.cls, wait, now);
                 });

  std::vector<std::unique_ptr<pds::EcnAdaptiveSource>> sources;
  std::uint64_t max_backlog = 0;
  for (pds::ClassId c = 0; c < 4; ++c) {
    pds::EcnSourceConfig cfg;
    cfg.cls = c;
    cfg.packet_bytes = 441;
    cfg.initial_rate = 2.0;
    cfg.min_rate = 0.5;
    cfg.additive_increase = 0.15;
    sources.push_back(std::make_unique<pds::EcnAdaptiveSource>(
        sim, ids, cfg, master.split(), [&, c](pds::Packet p) {
          const bool mark = marker.should_mark(sched);
          std::uint64_t backlog = 0;
          for (pds::ClassId q = 0; q < 4; ++q) {
            backlog += sched.backlog_packets(q);
          }
          max_backlog = std::max(max_backlog, backlog);
          sources[c]->on_feedback(mark);  // zero-RTT ECN echo
          link.arrive(std::move(p));
        }));
    sources.back()->start(0.0);
  }

  // Sampled trajectory of the closed loop.
  std::cout << "ECN-regulated WTP link (marking threshold 40 packets)\n\n";
  pds::TablePrinter trajectory(
      {"time (p-units)", "aggregate rate / capacity", "backlog (pkts)"});
  pds::PeriodicProcess sampler(sim, 0.0, sim_time / 8.0,
                               [&](pds::SimTime now) {
                                 double rate = 0.0;
                                 for (const auto& s : sources) {
                                   rate += s->current_rate();
                                 }
                                 std::uint64_t backlog = 0;
                                 for (pds::ClassId q = 0; q < 4; ++q) {
                                   backlog += sched.backlog_packets(q);
                                 }
                                 trajectory.add_row(
                                     {pds::TablePrinter::num(
                                          now / pds::kPUnit, 0),
                                      pds::TablePrinter::num(rate / capacity),
                                      std::to_string(backlog)});
                               });
  sim.run_until(sim_time);
  for (auto& s : sources) s->stop();
  trajectory.print(std::cout);

  std::cout << "\nmeasured utilization: "
            << pds::TablePrinter::num(link.busy_time() / sim_time)
            << ", peak backlog: " << max_backlog
            << " packets, drops: 0 (lossless by regulation)\n\n";

  pds::TablePrinter table({"class", "mean delay (p-units)", "ratio to next"});
  const auto ratios = delays.successive_ratios();
  for (pds::ClassId c = 0; c < 4; ++c) {
    table.add_row({std::to_string(pds::paper_class_label(c)),
                   pds::TablePrinter::num(
                       delays.of(c).mean() / pds::kPUnit, 1),
                   c < 3 ? pds::TablePrinter::num(ratios[c])
                         : std::string("-")});
  }
  table.print(std::cout);
  std::cout << "\nCongestion control keeps the link loaded and lossless"
               " (Section 3's\nassumption); WTP simultaneously keeps the"
               " class delay spacing.\n";
  return 0;
}
