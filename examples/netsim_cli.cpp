// Scenario runner: execute a .pds scenario file (see net/scenario.hpp for
// the format) and print per-route per-class delays plus link utilization —
// the ns-2-script role for this library.
//
//   netsim_cli --file=examples/scenarios/y_merge.pds [--seed=7]
//
// With no --file, a built-in demonstration scenario (a Y merge) runs.
#include <fstream>
#include <iostream>
#include <sstream>

#include "net/scenario.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

const char* kBuiltin = R"(# Built-in demo: two access links merging into a backbone.
link accessA  capacity=39.375 sched=wtp sdp=1,2,4,8
link accessB  capacity=39.375 sched=wtp sdp=1,2,4,8
link backbone capacity=39.375 sched=wtp sdp=1,2,4,8
route pathA accessA backbone
route pathB accessB backbone
source mix pathA fractions=40,30,20,10 gap=24 size=441 pareto=1.9
source mix pathB fractions=40,30,20,10 gap=24 size=441 pareto=1.9
run until=300000 warmup=30000 seed=11
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"file", "seed", "help"});
    if (args.has("help")) {
      std::cout << "usage: netsim_cli [--file=SCENARIO.pds] [--seed=N]\n";
      return 0;
    }
    std::string text;
    const auto path = args.get_string("file", "");
    if (path.empty()) {
      std::cout << "(no --file given; running the built-in Y-merge demo)\n\n";
      text = kBuiltin;
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }

    std::optional<std::uint64_t> seed;
    if (args.has("seed")) {
      seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    }
    const auto report = pds::run_scenario(text, seed);

    pds::TablePrinter routes({"route", "class", "packets",
                              "mean e2e delay", "p95"});
    for (const auto& rs : report.route_stats) {
      routes.add_row({rs.route,
                      std::to_string(pds::paper_class_label(rs.cls)),
                      std::to_string(rs.packets),
                      pds::TablePrinter::num(rs.mean_delay, 1),
                      pds::TablePrinter::num(rs.p95_delay, 1)});
    }
    routes.print(std::cout);

    std::cout << "\n";
    pds::TablePrinter links({"link", "utilization", "packets sent"});
    for (const auto& ls : report.link_stats) {
      links.add_row({ls.link, pds::TablePrinter::num(ls.utilization),
                     std::to_string(ls.packets_sent)});
    }
    links.print(std::cout);
    std::cout << "\ntotal route exits: " << report.total_exits << "\n";
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
