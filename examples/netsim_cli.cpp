// Scenario runner: execute a .pds scenario file (see net/scenario.hpp for
// the format) and print per-route per-class delays plus link utilization —
// the ns-2-script role for this library. Scenarios with `flows` directives
// additionally report per-workload flow-completion-time percentiles and
// SLO attainment.
//
//   netsim_cli --file=examples/scenarios/y_merge.pds [--seed=7]
//   netsim_cli --file=examples/scenarios/fat_tree.pds --report-out=run.json
//   netsim_cli --file=... --sweep-users=10,20,40,80 --jobs=4
//
// With no --file, a built-in demonstration scenario (a Y merge) runs.
#include <fstream>
#include <iostream>
#include <sstream>

#include "dsim/shard.hpp"
#include "exp/sweep.hpp"
#include "net/scenario.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

const char* kBuiltin = R"(# Built-in demo: two access links merging into a backbone.
link accessA  capacity=39.375 sched=wtp sdp=1,2,4,8
link accessB  capacity=39.375 sched=wtp sdp=1,2,4,8
link backbone capacity=39.375 sched=wtp sdp=1,2,4,8
route pathA accessA backbone
route pathB accessB backbone
source mix pathA fractions=40,30,20,10 gap=24 size=441 pareto=1.9
source mix pathB fractions=40,30,20,10 gap=24 size=441 pareto=1.9
run until=300000 warmup=30000 seed=11
)";

constexpr const char kUsage[] =
    "usage: netsim_cli [--file=SCENARIO.pds] [--seed=N]\n"
    "  [--users=N] (override users= of every flows directive)\n"
    "  [--quick] (run 10% of the horizon; smoke-test mode)\n"
    "  [--horizon-scale=S] (scale until/warmup by S)\n"
    "  [--fault-plan=FILE] (fault-plan grammar; targets are link names)\n"
    "  [--control-plan=FILE] (control-plan grammar; targets are link"
    " names)\n"
    "  [--max-events=N] [--max-wall-seconds=S] (watchdog; 0 = off)\n"
    "  [--metrics-out=FILE(.csv|.jsonl)] [--metrics-window=5000] (tu)\n"
    "  [--report-out=FILE.json] (pds.run_report/1 document)\n"
    "  [--sweep-users=N1,N2,...] [--jobs=N] (closed-loop load sweep;\n"
    "   output is byte-identical for any --jobs)\n"
    "  [--shards=N] (sharded conservative-PDES kernel; output is\n"
    "   byte-identical to --shards=1) [--pdes-stats] (protocol counters\n"
    "   on stderr)\n";

std::string read_file(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument(std::string("cannot open ") + what + ": " +
                                path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void print_flow_table(const pds::ScenarioReport& report, std::ostream& out) {
  pds::TablePrinter flows({"route", "class", "users", "rpcs", "failed",
                           "retries", "fct p50", "fct p95", "fct p99",
                           "slo"});
  for (const auto& fs : report.flow_stats) {
    flows.add_row({fs.route, std::to_string(pds::paper_class_label(fs.cls)),
                   std::to_string(fs.users),
                   std::to_string(fs.completed + fs.failed),
                   std::to_string(fs.failed), std::to_string(fs.retries),
                   pds::TablePrinter::num(fs.fct_p50, 1),
                   pds::TablePrinter::num(fs.fct_p95, 1),
                   pds::TablePrinter::num(fs.fct_p99, 1),
                   pds::TablePrinter::num(fs.slo_attainment)});
  }
  flows.print(out);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"file", "seed", "users", "quick", "horizon-scale",
                        "fault-plan", "control-plan", "max-events",
                        "max-wall-seconds",
                        "metrics-out", "metrics-window", "report-out",
                        "sweep-users", "jobs", "shards", "pdes-stats",
                        "help"});
    if (args.has("help")) {
      std::cout << kUsage;
      return 0;
    }
    std::string text;
    const auto path = args.get_string("file", "");
    if (path.empty()) {
      std::cout << "(no --file given; running the built-in Y-merge demo)\n\n";
      text = kBuiltin;
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }

    pds::ScenarioOptions options;
    if (args.has("seed")) {
      options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    }
    if (args.has("users")) {
      options.users = static_cast<std::uint32_t>(args.get_int("users", 1));
    }
    options.horizon_scale =
        args.get_double("horizon-scale", args.get_bool("quick", false)
                                             ? 0.1
                                             : 1.0);
    const auto plan_path = args.get_string("fault-plan", "");
    if (!plan_path.empty()) {
      options.fault_plan = read_file(plan_path, "fault plan");
    }
    const auto control_path = args.get_string("control-plan", "");
    if (!control_path.empty()) {
      options.control_plan = read_file(control_path, "control plan");
    }
    options.max_events =
        static_cast<std::uint64_t>(args.get_int("max-events", 0));
    options.max_wall_seconds = args.get_double("max-wall-seconds", 0.0);
    options.metrics_out = args.get_string("metrics-out", "");
    options.metrics_window = args.get_double("metrics-window", 5000.0);
    const auto report_out = args.get_string("report-out", "");

    options.shards = static_cast<std::uint32_t>(args.get_int("shards", 1));
    pds::PdesStats pdes_stats;
    const bool want_pdes_stats = args.get_bool("pdes-stats", false);
    if (want_pdes_stats) options.pdes_stats = &pdes_stats;
    if (options.shards > 1) {
      // Size the pool for the wider of the two parallel layers; shard
      // windows nested under a --jobs sweep run inline, so this bounds the
      // live threads at the machine size instead of jobs x shards.
      pds::ThreadPool::set_global_workers(
          pds::ThreadPool::plan_workers(args.get_jobs(), options.shards));
      options.shard_executor =
          [](std::size_t count,
             const std::function<void(std::size_t)>& body) {
            pds::parallel_for(count, body);
          };
    }

    const pds::Scenario scenario = pds::parse_scenario(text);
    const std::uint64_t seed_used = options.seed.value_or(scenario.run.seed);

    const auto sweep_users = args.get_double_list("sweep-users", {});
    if (!sweep_users.empty()) {
      if (scenario.flows.empty()) {
        throw pds::UsageError(
            "--sweep-users needs a scenario with flows directives");
      }
      if (!options.metrics_out.empty() || !report_out.empty()) {
        throw pds::UsageError(
            "--metrics-out/--report-out are not available with "
            "--sweep-users");
      }
      if (want_pdes_stats) {
        throw pds::UsageError(
            "--pdes-stats is not available with --sweep-users");
      }
      pds::ThreadPool::set_global_workers(
          pds::ThreadPool::plan_workers(args.get_jobs(), options.shards));
      // One independent cell per load level; results land in grid order,
      // and the table is assembled after the barrier, so stdout is
      // byte-identical for any --jobs.
      const auto cells =
          pds::run_sweep(sweep_users.size(), [&](std::size_t i) {
            pds::ScenarioOptions cell = options;
            cell.users = static_cast<std::uint32_t>(sweep_users[i]);
            return pds::run_scenario(scenario, cell);
          });
      pds::TablePrinter table({"users", "route", "class", "rpcs", "failed",
                               "retries", "fct p50", "fct p95", "fct p99",
                               "slo"});
      for (std::size_t i = 0; i < cells.size(); ++i) {
        for (const auto& fs : cells[i].flow_stats) {
          table.add_row({std::to_string(static_cast<std::uint32_t>(
                             sweep_users[i])),
                         fs.route,
                         std::to_string(pds::paper_class_label(fs.cls)),
                         std::to_string(fs.completed + fs.failed),
                         std::to_string(fs.failed),
                         std::to_string(fs.retries),
                         pds::TablePrinter::num(fs.fct_p50, 1),
                         pds::TablePrinter::num(fs.fct_p95, 1),
                         pds::TablePrinter::num(fs.fct_p99, 1),
                         pds::TablePrinter::num(fs.slo_attainment)});
        }
      }
      table.print(std::cout);
      return 0;
    }

    const auto report = pds::run_scenario(scenario, options);

    if (want_pdes_stats) {
      // stderr, never stdout: stdout must stay byte-identical across
      // --shards values, and these counters are shard-count-dependent.
      std::cerr << "pdes: shards=" << options.shards
                << " rounds=" << pdes_stats.rounds
                << " null_rounds=" << pdes_stats.null_rounds
                << " messages=" << pdes_stats.messages
                << " max_channel_depth=" << pdes_stats.max_channel_depth
                << " final_sweeps=" << pdes_stats.final_sweeps
                << " barrier_seconds=" << pdes_stats.barrier_seconds << "\n";
    }

    pds::TablePrinter routes({"route", "class", "packets",
                              "mean e2e delay", "p95"});
    for (const auto& rs : report.route_stats) {
      routes.add_row({rs.route,
                      std::to_string(pds::paper_class_label(rs.cls)),
                      std::to_string(rs.packets),
                      pds::TablePrinter::num(rs.mean_delay, 1),
                      pds::TablePrinter::num(rs.p95_delay, 1)});
    }
    routes.print(std::cout);

    std::cout << "\n";
    pds::TablePrinter links({"link", "utilization", "packets sent"});
    for (const auto& ls : report.link_stats) {
      links.add_row({ls.link, pds::TablePrinter::num(ls.utilization),
                     std::to_string(ls.packets_sent)});
    }
    links.print(std::cout);

    if (!report.flow_stats.empty()) {
      std::cout << "\n";
      print_flow_table(report, std::cout);
    }
    std::cout << "\ntotal route exits: " << report.total_exits << "\n";
    if (report.faulted) {
      std::cout << "fault plan: " << report.fault_episodes
                << " episode(s) completed, " << report.fault_drops
                << " packet(s) dropped during outages\n";
    }
    if (report.controlled) {
      std::cout << "control plan: " << report.control_episodes
                << " episode(s) completed (" << report.control_retunes
                << " retune, " << report.control_swaps << " swap, "
                << report.control_class_changes << " class, "
                << report.control_sheds << " shed); " << report.shed_drops
                << " shed + " << report.drain_drops << " drain drop(s)\n";
    }
    if (!options.metrics_out.empty()) {
      std::cout << "metrics: " << report.metrics_snapshots
                << " snapshots (window "
                << pds::TablePrinter::num(options.metrics_window, 0)
                << " tu) written to " << options.metrics_out << "\n";
    }
    if (!report_out.empty()) {
      pds::scenario_run_report(scenario, report, seed_used).write(report_out);
      std::cout << "run report written to " << report_out << "\n";
    }
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
