// The network operator's workflow: choose DDPs, predict, check feasibility,
// validate.
//
// Section 3 gives the operator two analytic tools: Eq. 6 predicts each
// class's average delay from the DDPs, the class loads and the aggregate
// FCFS delay; Eq. 7 (Coffman-Mitrani) decides whether a DDP set is feasible
// at all. This example walks the full loop on measured traffic:
//
//   1. record an arrival trace of the link's traffic,
//   2. predict the per-class delays for a candidate DDP set (Eq. 6),
//   3. run the 2^N - 2 feasibility conditions against the trace (Eq. 7),
//   4. validate the prediction against an actual WTP simulation,
//   5. show a too-aggressive DDP set being rejected as infeasible.
#include <iostream>

#include "core/feasibility.hpp"
#include "core/model.hpp"
#include "core/provisioning.hpp"
#include "core/study_a.hpp"
#include "util/table.hpp"

int main() {
  // 1. Record the traffic (in practice: a router trace; here: a Study A run
  //    that also records its arrivals).
  pds::StudyAConfig traffic;
  traffic.scheduler = pds::SchedulerKind::kWtp;
  traffic.utilization = 0.95;
  traffic.sim_time = 3.0e5;
  traffic.seed = 77;
  traffic.record_trace = true;
  const auto measured = pds::run_study_a(traffic);
  const double warmup = traffic.warmup_end();

  std::cout << "operator provisioning on a 95%-utilized link ("
            << measured.trace.size() << " recorded arrivals)\n\n";

  // 2-3. Candidate DDPs from the business plan: 2x spacing per class.
  const auto ddp = pds::ddp_from_sdp({1.0, 2.0, 4.0, 8.0});
  const auto report = pds::check_feasibility(measured.trace, ddp,
                                             pds::kStudyACapacity, warmup);
  std::cout << "candidate DDPs 1, 1/2, 1/4, 1/8 -> " << report.summary()
            << "\n\n";

  // 4. Compare Eq. 6 predictions with what WTP actually delivered.
  pds::TablePrinter table({"class", "predicted delay (Eq.6, p-units)",
                           "measured under WTP", "error"});
  for (pds::ClassId c = 0; c < 4; ++c) {
    const double predicted = report.target_delays[c] / pds::kPUnit;
    const double actual = measured.mean_delays[c] / pds::kPUnit;
    table.add_row({std::to_string(pds::paper_class_label(c)),
                   pds::TablePrinter::num(predicted, 1),
                   pds::TablePrinter::num(actual, 1),
                   pds::TablePrinter::num(
                       100.0 * (actual - predicted) / predicted, 0) +
                       "%"});
  }
  table.print(std::cout);

  // 5. A spacing of 100x per class step cannot be scheduled at this load:
  //    the top class would need to beat its own solo-FCFS delay.
  const std::vector<double> greedy{1.0, 1e-2, 1e-4, 1e-6};
  const auto rejected = pds::check_feasibility(measured.trace, greedy,
                                               pds::kStudyACapacity, warmup);
  std::cout << "\ncandidate DDPs 1, 1e-2, 1e-4, 1e-6 -> "
            << rejected.summary() << "\n";
  for (const auto& check : rejected.checks) {
    if (check.satisfied) continue;
    std::cout << "  violated subset {";
    for (std::size_t i = 0; i < check.classes.size(); ++i) {
      std::cout << pds::paper_class_label(check.classes[i])
                << (i + 1 < check.classes.size() ? "," : "");
    }
    std::cout << "}: weighted delay " << pds::TablePrinter::num(check.lhs, 0)
              << " < FCFS floor " << pds::TablePrinter::num(check.rhs, 0)
              << "\n";
  }
  std::cout << "\nEq. 7's message: however clever the scheduler, a subset of"
               " classes cannot\nbeat the FCFS delay it would get with the"
               " link to itself.\n";

  // 6. The Section 7 question answered on this trace: how far apart can
  //    the classes be pushed at all, and what does a concrete top-class
  //    delay target cost in spacing?
  const auto boundary = pds::max_feasible_spacing(
      measured.trace, 4, pds::kStudyACapacity, warmup);
  std::cout << "\nfeasibility boundary: geometric spacing up to "
            << pds::TablePrinter::num(boundary.spacing)
            << " per class step is schedulable on this traffic\n"
            << "(at the boundary the top class would average "
            << pds::TablePrinter::num(
                   boundary.target_delays.back() / pds::kPUnit, 1)
            << " p-units)\n";

  const double want = 4.0 * pds::kPUnit;  // sell a "4 p-unit" top class
  const auto needed = pds::spacing_for_target_delay(
      measured.trace, 4, pds::kStudyACapacity, want, warmup);
  if (needed) {
    std::cout << "to average <= 4 p-units in the top class: spacing "
              << pds::TablePrinter::num(needed->spacing) << " ("
              << (needed->feasible ? "feasible" : "NOT feasible — Eq. 7"
                                                  " forbids it; lower the"
                                                  " load or the ambition")
              << ")\n";
  } else {
    std::cout << "a 4 p-unit top class is out of reach at any spacing\n";
  }
  return 0;
}
