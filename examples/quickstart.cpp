// Quickstart: one congested link with proportional delay differentiation.
//
// Builds the paper's canonical setup in a few lines — a WTP scheduler with
// SDPs 1,2,4,8 on a link at 95% utilization — and prints the per-class
// average queueing delays and their ratios. The ratios land near the
// operator-chosen spacing of 2x between adjacent classes regardless of the
// absolute delay level: that is the proportional differentiation model.
#include <iostream>

#include "core/study_a.hpp"
#include "util/table.hpp"

int main() {
  pds::StudyAConfig config;
  config.scheduler = pds::SchedulerKind::kWtp;
  config.sdp = {1.0, 2.0, 4.0, 8.0};            // class 4 is 8x "faster"
  config.load_fractions = {0.4, 0.3, 0.2, 0.1}; // most traffic is cheap
  config.utilization = 0.95;                    // heavy load
  config.sim_time = 2.0e5;                      // time units
  config.seed = 42;

  const auto result = pds::run_study_a(config);

  std::cout << "WTP link at " << config.utilization * 100
            << "% utilization, SDPs 1,2,4,8\n\n";
  pds::TablePrinter table(
      {"class", "SDP", "packets", "avg delay (p-units)", "vs next class"});
  for (pds::ClassId c = 0; c < 4; ++c) {
    table.add_row({std::to_string(pds::paper_class_label(c)),
                   pds::TablePrinter::num(config.sdp[c], 0),
                   std::to_string(result.departures[c]),
                   pds::TablePrinter::num(result.mean_delays[c] / pds::kPUnit,
                                          1),
                   c < 3 ? pds::TablePrinter::num(result.ratios[c]) + "x"
                         : std::string("-")});
  }
  table.print(std::cout);
  std::cout << "\nEach class sees ~2x the delay of the class above it —"
               " the operator's\nchosen spacing, independent of the class"
               " loads (Eq. 1 of the paper).\n";
  return 0;
}
