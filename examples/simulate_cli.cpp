// General-purpose single-link simulation driver.
//
// The "swiss-army" entry point a downstream user reaches for first: pick a
// scheduler, SDPs, load, mix and run length on the command line; get the
// per-class delay table, achieved ratios vs targets, optional short-
// timescale R_D percentiles, an optional Eq. 7 feasibility audit of the
// implied DDPs, and an optional trace dump for offline analysis.
//
// Examples:
//   simulate_cli --scheduler=wtp --rho=0.9 --sdp=1,2,4,8
//   simulate_cli --scheduler=bpr --rho=0.95 --mix=10,20,30,40 --taus=10,100
//   simulate_cli --scheduler=hpd --rho=0.8 --check-feasibility
//   simulate_cli --scheduler=sp --rho=0.95 --save-trace=run.csv
//   simulate_cli --metrics-out=metrics.csv --trace-out=trace.csv --profile
//   simulate_cli --fault-plan=flap.plan --max-events=50000000
//   simulate_cli --control-plan=retune.plan --conformance-tau=100
//   simulate_cli --controller=weights --conformance-tau=100
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/feasibility.hpp"
#include "core/model.hpp"
#include "core/study_a.hpp"
#include "core/trace_io.hpp"
#include "stats/percentile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: simulate_cli [--scheduler=wtp|bpr|fcfs|sp|"
    "additive|pad|hpd|drr|scfq|vc]\n"
    "  [--rho=0.95] [--sdp=1,2,4,8] [--mix=40,30,20,10]\n"
    "  [--arrivals=pareto|poisson]\n"
    "  [--sim-time=4e5] [--seed=1] [--taus=10,100,...]"
    " (p-units)\n"
    "  [--check-feasibility] [--save-trace=FILE]\n"
    "  [--metrics-out=FILE(.csv|.jsonl)]"
    " [--metrics-window=100] (p-units)\n"
    "  [--trace-out=FILE] [--trace-sample=0.01] [--profile]\n"
    "  [--fault-plan=FILE] (fault-plan grammar, target \"link\";"
    " see docs/robustness.md)\n"
    "  [--control-plan=FILE] (control-plan grammar, target \"link\";"
    " see docs/control_plane.md)\n"
    "  [--controller=off|weights|hpd-g] [--controller-period=100]"
    " (p-units)\n"
    "  [--controller-slo=0.10] [--controller-eta=0.5]"
    " [--controller-g-step=0.05]\n"
    "  [--max-events=N] [--max-wall-seconds=S] (watchdog; 0 = off)\n"
    "  [--spans-out=FILE.json] (Chrome trace-event timeline;"
    " open in Perfetto)\n"
    "  [--conformance-tau=T] (p-units; 0 = off)"
    " [--conformance-tolerance=0.25]\n"
    "  [--conformance-min-samples=10] [--conformance-out=FILE.jsonl]\n"
    "  [--report-out=FILE.json] [--report-volatile]"
    " (unified run report; see docs/observability.md)\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open plan file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known(
        {"scheduler", "rho", "sdp", "mix", "sim-time", "seed", "arrivals",
         "taus", "check-feasibility", "save-trace", "metrics-out",
         "metrics-window", "trace-out", "trace-sample", "profile",
         "fault-plan", "control-plan", "controller", "controller-period",
         "controller-slo", "controller-eta", "controller-g-step",
         "max-events", "max-wall-seconds", "spans-out",
         "conformance-tau", "conformance-tolerance", "conformance-min-samples",
         "conformance-out", "report-out", "report-volatile", "help"});
    if (args.has("help")) {
      std::cerr << kUsage;
      return 0;
    }

    pds::StudyAConfig config;
    config.scheduler = pds::scheduler_kind_from_string(
        args.get_string("scheduler", "wtp"));
    config.utilization = args.get_double("rho", 0.95);
    config.sdp = args.get_double_list("sdp", {1.0, 2.0, 4.0, 8.0});
    config.load_fractions =
        args.get_double_list("mix", {40.0, 30.0, 20.0, 10.0});
    // Normalize percentage-style mixes.
    double mix_total = 0.0;
    for (const double f : config.load_fractions) mix_total += f;
    for (double& f : config.load_fractions) f /= mix_total;
    config.sim_time = args.get_double("sim-time", 4.0e5);
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto arrivals = args.get_string("arrivals", "pareto");
    if (arrivals == "poisson") {
      config.arrivals = pds::ArrivalModel::kPoisson;
    } else if (arrivals != "pareto") {
      std::cerr << "--arrivals must be pareto or poisson\n";
      return 2;
    }
    const auto taus_p = args.get_double_list("taus", {});
    for (const double tp : taus_p) {
      config.monitor_taus.push_back(tp * pds::kPUnit);
    }
    const bool check = args.get_bool("check-feasibility", false);
    const auto trace_path = args.get_string("save-trace", "");
    config.record_trace = check || !trace_path.empty();
    config.metrics_out = args.get_string("metrics-out", "");
    config.metrics_window =
        args.get_double("metrics-window", 100.0) * pds::kPUnit;
    config.trace_out = args.get_string("trace-out", "");
    config.trace_sample = args.get_double("trace-sample", 0.01);
    config.profile = args.get_bool("profile", false);
    const auto plan_path = args.get_string("fault-plan", "");
    if (!plan_path.empty()) config.fault_plan = read_file(plan_path);
    const auto control_path = args.get_string("control-plan", "");
    if (!control_path.empty()) config.control_plan = read_file(control_path);
    config.controller.mode = pds::controller_mode_from_string(
        args.get_string("controller", "off"));
    config.controller.period =
        args.get_double("controller-period", 100.0) * pds::kPUnit;
    config.controller.slo = args.get_double("controller-slo", 0.10);
    config.controller.eta = args.get_double("controller-eta", 0.5);
    config.controller.g_step = args.get_double("controller-g-step", 0.05);
    config.max_events =
        static_cast<std::uint64_t>(args.get_int("max-events", 0));
    config.max_wall_seconds = args.get_double("max-wall-seconds", 0.0);
    config.spans_out = args.get_string("spans-out", "");
    config.conformance_tau =
        args.get_double("conformance-tau", 0.0) * pds::kPUnit;
    config.conformance_tolerance =
        args.get_double("conformance-tolerance", 0.25);
    config.conformance_min_samples = static_cast<std::uint64_t>(
        args.get_int("conformance-min-samples", 10));
    config.conformance_out = args.get_string("conformance-out", "");
    config.report_out = args.get_string("report-out", "");
    config.report_volatile = args.get_bool("report-volatile", false);

    const auto result = pds::run_study_a(config);

    std::cout << "scheduler " << args.get_string("scheduler", "wtp")
              << ", rho " << config.utilization << " (measured "
              << pds::TablePrinter::num(result.measured_utilization)
              << "), " << result.total_departures
              << " departures after warmup\n\n";

    pds::TablePrinter table({"class", "SDP", "packets",
                             "mean delay (p-units)", "jitter (p-units)",
                             "ratio to next", "target"});
    for (pds::ClassId c = 0; c < config.num_classes(); ++c) {
      const bool last = c + 1 == config.num_classes();
      table.add_row(
          {std::to_string(pds::paper_class_label(c)),
           pds::TablePrinter::num(config.sdp[c], 0),
           std::to_string(result.departures[c]),
           pds::TablePrinter::num(result.mean_delays[c] / pds::kPUnit, 1),
           pds::TablePrinter::num(result.jitter[c] / pds::kPUnit, 1),
           last ? "-" : pds::TablePrinter::num(result.ratios[c]),
           last ? "-"
                : pds::TablePrinter::num(config.sdp[c + 1] / config.sdp[c])});
    }
    table.print(std::cout);

    if (!config.monitor_taus.empty()) {
      std::cout << "\nshort-timescale R_D percentiles:\n";
      pds::TablePrinter rd({"tau (p-units)", "intervals", "p25", "p50",
                            "p75"});
      for (std::size_t t = 0; t < taus_p.size(); ++t) {
        const auto& rds = result.rd_per_tau[t];
        if (rds.size() < 4) {
          rd.add_row({pds::TablePrinter::num(taus_p[t], 0),
                      std::to_string(rds.size()), "-", "-", "-"});
          continue;
        }
        const auto q = pds::percentiles(rds, {25, 50, 75});
        rd.add_row({pds::TablePrinter::num(taus_p[t], 0),
                    std::to_string(rds.size()),
                    pds::TablePrinter::num(q[0]), pds::TablePrinter::num(q[1]),
                    pds::TablePrinter::num(q[2])});
      }
      rd.print(std::cout);
    }

    if (check) {
      const auto report = pds::check_feasibility(
          result.trace, pds::ddp_from_sdp(config.sdp), config.capacity,
          config.warmup_end());
      std::cout << "\nfeasibility of the implied DDPs (Eq. 7): "
                << report.summary() << "\n";
    }

    if (!trace_path.empty()) {
      pds::save_trace(trace_path, result.trace);
      std::cout << "\narrival trace (" << result.trace.size()
                << " records) written to " << trace_path << "\n";
    }

    if (!config.metrics_out.empty()) {
      std::cout << "\nmetrics: " << result.metrics_snapshots
                << " snapshots (window "
                << pds::TablePrinter::num(config.metrics_window / pds::kPUnit,
                                          0)
                << " p-units) written to " << config.metrics_out << "\n";
    }
    if (!config.trace_out.empty()) {
      std::cout << "lifecycle trace: " << result.trace_records
                << " sampled records (rate " << config.trace_sample
                << ") written to " << config.trace_out
                << " — inspect with trace_inspect --trace="
                << config.trace_out << "\n";
    }
    if (!config.fault_plan.empty()) {
      std::cout << "\nfault plan: " << result.fault_episodes
                << " episode(s) completed, " << result.fault_drops
                << " packet(s) dropped while the link was down\n";
    }
    if (!config.control_plan.empty()) {
      std::cout << "\ncontrol plan: " << result.control_episodes
                << " episode(s) completed (" << result.control_retunes
                << " retune, " << result.control_swaps << " swap, "
                << result.control_class_changes << " class, "
                << result.control_sheds << " shed); " << result.shed_drops
                << " shed + " << result.drain_drops
                << " drain drop(s)\n";
    }
    if (config.controller.enabled()) {
      std::cout << "\ncontroller (" << pds::to_string(config.controller.mode)
                << "): " << result.controller_ticks << " tick(s), "
                << result.controller_updates << " update(s)";
      if (config.controller.mode == pds::ControllerMode::kWeights) {
        std::cout << ", final weights";
        for (const double w : result.controller_weights) {
          std::cout << " " << pds::TablePrinter::num(w);
        }
      } else if (result.controller_updates > 0) {
        std::cout << ", final g "
                  << pds::TablePrinter::num(result.controller_g);
      }
      std::cout << "\n";
    }
    if (config.profile) {
      std::cout << "\nsimulator profile (wall time by event category):\n"
                << result.profile_report;
    }
    if (config.conformance_tau > 0.0) {
      std::cout << "\nconformance: " << result.conformance.windows
                << " window(s), " << result.conformance.pairs_checked
                << " pair(s) checked, " << result.conformance.violations
                << " violation(s)";
      if (result.conformance.violations > 0) {
        std::cout << " (max error "
                  << pds::TablePrinter::num(result.conformance.max_error)
                  << ", " << result.conformance.violations_during_faults
                  << " during faults)";
      }
      std::cout << "\n";
      if (!config.conformance_out.empty()) {
        std::cout << "violations written to " << config.conformance_out
                  << "\n";
      }
    }
    if (!config.spans_out.empty()) {
      std::cout << "\nspans: " << result.span_count << " span(s) written to "
                << config.spans_out
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!config.report_out.empty()) {
      std::cout << "run report written to " << config.report_out << "\n";
    }
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
