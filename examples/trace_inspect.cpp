// Offline inspector for observability artifacts written by simulate_cli.
//
// Loads a sampled packet-lifecycle trace (--trace=FILE, the PacketTracer CSV
// format) and/or a windowed metrics time series (--metrics=FILE, the
// MetricsSnapshotWriter CSV format) and prints aligned summary tables:
// per-class lifecycle counts and waiting times, per-hop attribution, and the
// final state of every registered metric.
//
// Examples:
//   simulate_cli --trace-out=t.csv --metrics-out=m.csv
//   trace_inspect --trace=t.csv --metrics=m.csv
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "packet/size_law.hpp"
#include "stats/running_stats.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct LifecycleAgg {
  std::uint64_t arrives = 0;
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t departs = 0;
  std::uint64_t drops = 0;
  pds::RunningStats wait;             // queueing delay at depart
  pds::RunningStats backlog_packets;  // backlog seen at enqueue

  void add(const pds::TraceRecord& r) {
    switch (r.kind) {
      case pds::TraceEventKind::kArrive:
        ++arrives;
        break;
      case pds::TraceEventKind::kEnqueue:
        ++enqueues;
        backlog_packets.add(static_cast<double>(r.backlog_packets));
        break;
      case pds::TraceEventKind::kDequeue:
        ++dequeues;
        break;
      case pds::TraceEventKind::kDepart:
        ++departs;
        wait.add(r.wait);
        break;
      case pds::TraceEventKind::kDrop:
        ++drops;
        break;
    }
  }
};

std::string p_units(double t) { return pds::TablePrinter::num(t / pds::kPUnit, 1); }

void print_trace(const std::vector<pds::TraceRecord>& records) {
  if (records.empty()) {
    std::cout << "trace: empty\n";
    return;
  }
  std::set<std::uint64_t> packets;
  double t_min = records.front().time;
  double t_max = records.front().time;
  std::map<pds::ClassId, LifecycleAgg> by_class;
  std::map<std::uint32_t, LifecycleAgg> by_hop;
  for (const auto& r : records) {
    packets.insert(r.packet_id);
    t_min = std::min(t_min, r.time);
    t_max = std::max(t_max, r.time);
    by_class[r.cls].add(r);
    by_hop[r.hop].add(r);
  }

  std::cout << "trace: " << records.size() << " records, " << packets.size()
            << " sampled packets, time span [" << p_units(t_min) << ", "
            << p_units(t_max) << "] p-units\n\n";

  std::cout << "per-class lifecycle (waits in p-units):\n";
  pds::TablePrinter cls_table({"class", "arrive", "enqueue", "dequeue",
                               "depart", "drop", "mean wait", "max wait",
                               "mean backlog"});
  for (const auto& [cls, agg] : by_class) {
    cls_table.add_row(
        {std::to_string(pds::paper_class_label(cls)),
         std::to_string(agg.arrives), std::to_string(agg.enqueues),
         std::to_string(agg.dequeues), std::to_string(agg.departs),
         std::to_string(agg.drops),
         agg.wait.count() > 0 ? p_units(agg.wait.mean()) : "-",
         agg.wait.count() > 0 ? p_units(agg.wait.max()) : "-",
         agg.backlog_packets.count() > 0
             ? pds::TablePrinter::num(agg.backlog_packets.mean(), 1)
             : "-"});
  }
  cls_table.print(std::cout);

  if (by_hop.size() > 1) {
    std::cout << "\nper-hop attribution (waits in p-units):\n";
    pds::TablePrinter hop_table(
        {"hop", "depart", "drop", "mean wait", "max wait"});
    for (const auto& [hop, agg] : by_hop) {
      hop_table.add_row(
          {std::to_string(hop), std::to_string(agg.departs),
           std::to_string(agg.drops),
           agg.wait.count() > 0 ? p_units(agg.wait.mean()) : "-",
           agg.wait.count() > 0 ? p_units(agg.wait.max()) : "-"});
    }
    hop_table.print(std::cout);
  }
}

void print_metrics(const std::vector<pds::MetricsRow>& rows) {
  if (rows.empty()) {
    std::cout << "metrics: empty\n";
    return;
  }
  // Per-metric rollup across snapshots. Counters carry a cumulative total in
  // `value` (last row wins); summaries are per-window, so the run-level view
  // is the count-weighted mean and the min/max envelope.
  struct Roll {
    std::string type;
    std::uint64_t snapshots = 0;
    double last = 0.0;          // counter total / gauge value (last row)
    double weighted_sum = 0.0;  // summary: sum(mean * count)
    double count = 0.0;         // summary: sum(count)
    double min = std::nan("");
    double max = std::nan("");
  };
  std::map<std::string, Roll> by_name;
  std::set<double> times;
  for (const auto& r : rows) {
    times.insert(r.time);
    Roll& roll = by_name[r.name];
    roll.type = r.type;
    ++roll.snapshots;
    roll.last = r.value;
    if (r.type == "summary" && !std::isnan(r.count) && r.count > 0) {
      roll.weighted_sum += r.mean * r.count;
      roll.count += r.count;
      if (std::isnan(roll.min) || r.min < roll.min) roll.min = r.min;
      if (std::isnan(roll.max) || r.max > roll.max) roll.max = r.max;
    }
  }

  std::cout << "metrics: " << by_name.size() << " series, " << times.size()
            << " snapshots, last at "
            << pds::TablePrinter::num(*times.rbegin() / pds::kPUnit, 1)
            << " p-units\n\n";
  pds::TablePrinter table(
      {"metric", "type", "final/total", "mean", "min", "max"});
  const auto opt = [](double v) {
    return std::isnan(v) ? std::string("-") : pds::TablePrinter::num(v);
  };
  for (const auto& [name, roll] : by_name) {
    if (roll.type == "summary") {
      const bool any = roll.count > 0;
      table.add_row({name, roll.type, pds::TablePrinter::num(roll.count, 0),
                     any ? pds::TablePrinter::num(roll.weighted_sum /
                                                  roll.count)
                         : "-",
                     any ? opt(roll.min) : "-", any ? opt(roll.max) : "-"});
    } else {
      table.add_row({name, roll.type, opt(roll.last), "-", "-", "-"});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const pds::ArgParser args(argc, argv);
    args.require_known({"trace", "metrics", "help"});
    const auto trace_path = args.get_string("trace", "");
    const auto metrics_path = args.get_string("metrics", "");
    if (args.has("help") || (trace_path.empty() && metrics_path.empty())) {
      std::cerr << "usage: trace_inspect [--trace=FILE] [--metrics=FILE]\n"
                   "  --trace    lifecycle trace CSV from --trace-out\n"
                   "  --metrics  windowed metrics CSV from --metrics-out\n";
      return args.has("help") ? 0 : 2;
    }

    if (!trace_path.empty()) {
      print_trace(pds::PacketTracer::load(trace_path));
    }
    if (!metrics_path.empty()) {
      if (!trace_path.empty()) std::cout << "\n";
      print_metrics(pds::load_metrics_csv(metrics_path));
    }
    return 0;
  } catch (const pds::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
