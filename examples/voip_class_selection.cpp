// End-system adaptation: an IP-telephony flow picks its service class.
//
// The relative differentiated services architecture gives no absolute
// guarantees; instead, applications adaptively choose the cheapest class
// that currently meets their needs (Section 1: "the choice of the service
// class [is] an additional dimension in the end-system adaptation space").
//
// This example simulates a VoIP-like probe flow against each class of a
// congested WTP link in turn, measures the 95th-percentile queueing delay a
// call would see, and picks the cheapest class whose delay fits a 40 p-unit
// jitter budget. It then shows the choice shifting when the link load
// rises — the class that was good enough at 85% no longer is at 97%.
#include <iostream>
#include <memory>
#include <vector>

#include "dsim/simulator.hpp"
#include "packet/size_law.hpp"
#include "rng/distributions.hpp"
#include "sched/wtp.hpp"
#include "sched/link.hpp"
#include "stats/percentile.hpp"
#include "traffic/calibration.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"
#include "util/table.hpp"

namespace {

// 95th-percentile queueing delay (p-units) of a 200 B probe flow (one
// packet every 4 p-units) sent in `probe_class` through a WTP link whose
// TOTAL utilization — background plus the probe's own ~11% — is `rho`.
double probe_delay_p95(pds::ClassId probe_class, double rho,
                       std::uint64_t seed) {
  pds::Simulator sim;
  pds::PacketIdAllocator ids;
  pds::Rng master(seed);

  pds::SchedulerConfig sc;
  sc.sdp = {1.0, 2.0, 4.0, 8.0};
  pds::WtpScheduler sched(sc);

  pds::SampleSet probe_delays;
  pds::Link link(sim, sched, pds::kStudyACapacity,
                 [&](pds::Packet&& p, pds::SimTime wait, pds::SimTime now) {
                   if (p.flow == 1 && now > 2.0e4) probe_delays.add(wait);
                 });

  // Background: the usual four-class mix, leaving room for the probe so
  // the link stays stable at the advertised total utilization.
  const double probe_rate = 200.0 / (4.0 * pds::kPUnit);  // bytes per tu
  const double background_rho = rho - probe_rate / pds::kStudyACapacity;
  PDS_CHECK(background_rho > 0.0, "probe alone exceeds the target load");
  const auto law = pds::paper_size_law();
  const auto gaps = pds::class_mean_interarrivals(
      background_rho, {0.4, 0.3, 0.2, 0.1}, pds::kStudyACapacity,
      law.mean());
  std::vector<std::unique_ptr<pds::RenewalSource>> bg;
  for (pds::ClassId c = 0; c < 4; ++c) {
    bg.push_back(std::make_unique<pds::RenewalSource>(
        sim, ids, c, pds::pareto_gaps(1.9, gaps[c]), pds::law_size(law),
        master.split(), [&link](pds::Packet p) { link.arrive(std::move(p)); }));
    bg.back()->start(0.0);
  }

  // The probe call: 200 B packets every 4 p-units (a light, smooth flow).
  pds::CbrFlowSource probe(sim, ids, probe_class, /*flow=*/1,
                           /*count=*/4000, /*size=*/200,
                           /*interval=*/4.0 * pds::kPUnit,
                           [&link](pds::Packet p) {
                             link.arrive(std::move(p));
                           });
  probe.start(0.0);

  sim.run_until(2.0e5);
  return probe_delays.empty() ? 0.0
                              : probe_delays.percentile(95.0) / pds::kPUnit;
}

void choose_class(double rho, double budget_p_units) {
  std::cout << "link utilization " << rho * 100 << "%, jitter budget "
            << budget_p_units << " p-units:\n";
  pds::TablePrinter table({"class", "probe p95 delay (p-units)", "fits?"});
  int chosen = -1;
  for (pds::ClassId c = 0; c < 4; ++c) {
    const double p95 = probe_delay_p95(c, rho, 11);
    const bool fits = p95 <= budget_p_units;
    if (fits && chosen < 0) chosen = pds::paper_class_label(c);
    table.add_row({std::to_string(pds::paper_class_label(c)),
                   pds::TablePrinter::num(p95, 1), fits ? "yes" : "no"});
  }
  table.print(std::cout);
  if (chosen > 0) {
    std::cout << "-> the call books class " << chosen
              << " (cheapest class meeting the budget)\n\n";
  } else {
    std::cout << "-> no class meets the budget; the call degrades or"
                 " defers\n\n";
  }
}

}  // namespace

int main() {
  std::cout << "VoIP end-system adaptation over proportional delay"
               " differentiation\n(classes 1-4, WTP, SDPs 1,2,4,8; higher"
               " class = lower delay = pricier)\n\n";
  choose_class(0.85, 40.0);
  choose_class(0.97, 40.0);
  std::cout << "As load rises every class slows down, but the *ordering and"
               " spacing*\nbetween classes persists — so the application"
               " can adapt by climbing\nexactly as many classes as it"
               " needs.\n";
  return 0;
}
