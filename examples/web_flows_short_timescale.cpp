// Why long-term averages are not enough: short Web-like flows.
//
// Section 2's motivating scenario: a user sends a short flow (a Web
// session) in a high class expecting lower delay than a lower class — but
// if the differentiation only holds for long-term averages, a burst can
// invert the ordering exactly while the short flow is in flight.
//
// This example launches many short "page loads" in adjacent classes
// simultaneously through two links carrying the same traffic:
//   * WTP with SDPs 1,2,4,8 (proportional delay differentiation);
//   * DRR with bandwidth shares 1:2:4:8 — the capacity-differentiation
//     recipe of Section 2.1, where the operator provisions each class's
//     share in proportion to its expected load (the background mix here is
//     exactly 1/15, 2/15, 4/15, 8/15).
//
// Expected: WTP keeps the per-flow ordering consistent in essentially
// every trial even at this tiny timescale. Under DRR the per-flow delay
// depends on the class's *instantaneous* backlog against its static share,
// so a burst in the pricier class regularly makes its page load slower
// than the cheaper twin (inversions), and the achieved spacing is whatever
// the load mix dictates rather than the configured 2x. Bandwidth
// differentiation is controllable; delay differentiation is not.
#include <iostream>
#include <memory>
#include <vector>

#include "dsim/simulator.hpp"
#include "packet/size_law.hpp"
#include "rng/distributions.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"
#include "traffic/calibration.hpp"
#include "traffic/source.hpp"
#include "util/table.hpp"

namespace {

constexpr int kTrials = 200;
constexpr int kPacketsPerFlow = 8;

struct TrialStats {
  int inversions = 0;        // higher class finished slower
  double mean_ratio = 0.0;   // lower-class / higher-class mean delay
};

TrialStats run(pds::SchedulerKind kind, std::uint64_t seed) {
  pds::Simulator sim;
  pds::PacketIdAllocator ids;
  pds::Rng master(seed);

  pds::SchedulerConfig sc;
  sc.sdp = {1.0, 2.0, 4.0, 8.0};
  sc.link_capacity = pds::kStudyACapacity;
  sc.drr_quantum_bytes = 441.0;
  const auto sched = pds::make_scheduler(kind, sc);

  // flow 2k   = trial k in class 2 (paper class 3)
  // flow 2k+1 = trial k in class 3 (paper class 4)
  std::vector<double> flow_delay_sum(2 * kTrials, 0.0);
  std::vector<int> flow_packets(2 * kTrials, 0);
  pds::Link link(sim, *sched, pds::kStudyACapacity,
                 [&](pds::Packet&& p, pds::SimTime wait, pds::SimTime) {
                   if (p.flow == pds::kNoFlow) return;
                   flow_delay_sum[p.flow] += wait;
                   ++flow_packets[p.flow];
                 });

  // Heavy bursty background whose class mix matches the DRR share ratios —
  // the "provision each class for its expected load" operating point.
  const auto law = pds::paper_size_law();
  const auto gaps = pds::class_mean_interarrivals(
      0.93, {1.0, 2.0, 4.0, 8.0}, pds::kStudyACapacity, law.mean());
  std::vector<std::unique_ptr<pds::RenewalSource>> bg;
  for (pds::ClassId c = 0; c < 4; ++c) {
    bg.push_back(std::make_unique<pds::RenewalSource>(
        sim, ids, c, pds::pareto_gaps(1.9, gaps[c]), pds::law_size(law),
        master.split(), [&link](pds::Packet p) { link.arrive(std::move(p)); }));
    bg.back()->start(0.0);
  }

  // Twin short flows per trial, classes 3 and 4, launched together every
  // 400 p-units after warmup.
  std::vector<std::unique_ptr<pds::CbrFlowSource>> flows;
  for (int k = 0; k < kTrials; ++k) {
    const double start = 2.0e4 + 400.0 * pds::kPUnit * k;
    for (int half = 0; half < 2; ++half) {
      flows.push_back(std::make_unique<pds::CbrFlowSource>(
          sim, ids, static_cast<pds::ClassId>(2 + half),
          static_cast<pds::FlowId>(2 * k + half), kPacketsPerFlow,
          /*size=*/550, /*interval=*/2.0 * pds::kPUnit,
          [&link](pds::Packet p) { link.arrive(std::move(p)); }));
      flows.back()->start(start);
    }
  }

  sim.run_until(2.0e4 + 400.0 * pds::kPUnit * (kTrials + 4));
  for (auto& s : bg) s->stop();
  sim.run();

  TrialStats stats;
  int counted = 0;
  for (int k = 0; k < kTrials; ++k) {
    if (flow_packets[2 * k] != kPacketsPerFlow ||
        flow_packets[2 * k + 1] != kPacketsPerFlow) {
      continue;  // flow truncated by the horizon
    }
    const double lo = flow_delay_sum[2 * k] / kPacketsPerFlow;
    const double hi = flow_delay_sum[2 * k + 1] / kPacketsPerFlow;
    if (hi > lo) ++stats.inversions;
    if (hi > 0.0) {
      stats.mean_ratio += lo / hi;
      ++counted;
    }
  }
  if (counted > 0) stats.mean_ratio /= counted;
  return stats;
}

}  // namespace

int main() {
  std::cout << "short 'page load' flows (8 packets) in class 3 vs class 4,"
               " launched together\nthrough a 93%-loaded link; " << kTrials
            << " trials; nominal spacing 2x\n\n";
  const auto wtp = run(pds::SchedulerKind::kWtp, 2);
  const auto drr = run(pds::SchedulerKind::kDrr, 2);
  pds::TablePrinter table(
      {"scheduler", "inversions (of 200)", "mean delay ratio c3/c4"});
  table.add_row({"WTP (proportional)", std::to_string(wtp.inversions),
                 pds::TablePrinter::num(wtp.mean_ratio)});
  table.add_row({"DRR (capacity diff.)", std::to_string(drr.inversions),
                 pds::TablePrinter::num(drr.mean_ratio)});
  table.print(std::cout);
  std::cout << "\nAn 'inversion' means the pricier class-4 page actually"
               " loaded slower than\nits class-3 twin. The forwarding"
               " mechanism — not provisioning — must keep\nshort-timescale"
               " ordering consistent (Section 2.1's argument).\n";
  return 0;
}
