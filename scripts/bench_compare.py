#!/usr/bin/env python3
"""Compare two bench_snapshot.sh JSON files and flag regressions.

    scripts/bench_compare.py BENCH_pr5.json BENCH_pr6.json
    scripts/bench_compare.py old.json new.json --threshold 10
    scripts/bench_compare.py old.json new.json --metric items_per_second

Prints a per-benchmark delta table for every metric the snapshots share;
--metric SUBSTR restricts the table (and the gate) to metrics whose name
contains SUBSTR. With --threshold PCT the script exits nonzero when any metric got worse by
more than PCT percent — "worse" is metric-aware: throughput metrics
(items_per_second) should not drop, cost metrics (ns_per_iter, ns_per_dequeue,
allocs_per_*) should not rise. A failing exit lists every regressed metric
with its baseline value, candidate value and delta. Stdlib only; no
third-party imports.

Caveat for gating: snapshots taken on different machines (see the embedded
"context" block) or from quick single-repetition runs are noisy — use a
generous threshold (>= 10%) or multi-repetition snapshots for CI-style gates.
"""

import argparse
import json
import sys

# Metrics where a larger value is an improvement; everything else numeric is
# treated as a cost. Section-level scalars (e.g. pipeline_calendar_over_heap)
# are reported but never gated — they are ratios, not regressions.
HIGHER_IS_BETTER = {"items_per_second"}
SKIP_KEYS = {"preset", "repetitions", "git", "context"}


def benchmark_sections(doc):
    """Yields (section, benchmark, metrics-dict) for every benchmark row."""
    for section, body in doc.items():
        if section in SKIP_KEYS or not isinstance(body, dict):
            continue
        for bench, metrics in body.items():
            if isinstance(metrics, dict):
                yield section, bench, metrics


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def fmt(v):
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.4g}"
    return f"{v:g}" if isinstance(v, float) else str(v)


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench snapshot JSON files")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="PCT",
        help="exit 1 if any metric regresses by more than PCT percent")
    parser.add_argument(
        "--metric", default=None, metavar="SUBSTR",
        help="only consider metrics whose name contains SUBSTR")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    base = {(s, b): m for s, b, m in benchmark_sections(base_doc)}
    cand = {(s, b): m for s, b, m in benchmark_sections(cand_doc)}

    shared = sorted(base.keys() & cand.keys())
    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())
    if not shared:
        sys.exit("error: the snapshots share no benchmarks")


    rows = []
    regressions = []
    for key in shared:
        section, bench = key
        for metric in base[key]:
            if args.metric is not None and args.metric not in metric:
                continue
            old, new = base[key][metric], cand[key].get(metric)
            if not isinstance(old, (int, float)) or \
                    not isinstance(new, (int, float)):
                continue
            if old == 0:
                delta_pct = 0.0 if new == 0 else float("inf")
            else:
                delta_pct = 100.0 * (new - old) / old
            worse = (-delta_pct if metric in HIGHER_IS_BETTER else delta_pct)
            rows.append((section, bench, metric, old, new, delta_pct, worse))
            if args.threshold is not None and worse > args.threshold:
                regressions.append(rows[-1])

    if not rows:
        sys.exit(f"error: no shared metric matches --metric {args.metric}")

    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    header = (f"{'section':<{widths[0]}}  {'benchmark':<{widths[1]}}  "
              f"{'metric':<{widths[2]}}  {'base':>12}  {'new':>12}  delta")
    print(f"baseline  {args.baseline} (git {base_doc.get('git', '?')})")
    print(f"candidate {args.candidate} (git {cand_doc.get('git', '?')})")
    print()
    print(header)
    print("-" * len(header))
    for section, bench, metric, old, new, delta_pct, worse in rows:
        gate = ""
        if args.threshold is not None and worse > args.threshold:
            gate = "  REGRESSION"
        print(f"{section:<{widths[0]}}  {bench:<{widths[1]}}  "
              f"{metric:<{widths[2]}}  {fmt(old):>12}  {fmt(new):>12}  "
              f"{delta_pct:+7.1f}%{gate}")

    for key in only_base:
        print(f"only in baseline: {key[0]}/{key[1]}")
    for key in only_cand:
        print(f"only in candidate: {key[0]}/{key[1]}")

    if args.threshold is not None:
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed past "
                  f"{args.threshold:g}% — failing:")
            for section, bench, metric, old, new, delta_pct, _ in regressions:
                print(f"  {section}/{bench}/{metric}: "
                      f"{fmt(old)} -> {fmt(new)} ({delta_pct:+.1f}%)")
            return 1
        print(f"\nno metric regressed past {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
