#!/usr/bin/env bash
# Snapshot the hot-path microbenchmarks into a reviewable JSON file.
#
#   scripts/bench_snapshot.sh                     # quick mode -> BENCH_pr10.json
#   scripts/bench_snapshot.sh --out FILE          # alternate output path
#   scripts/bench_snapshot.sh --preset bench      # use the Release+IPO tree
#   scripts/bench_snapshot.sh --preset bench-pgo  # Release+IPO+PGO (two-phase)
#
# Quick mode keeps wall time small (~30 s): 0.25 s per benchmark, one
# repetition. The JSON records events/s, ns per op, and the allocation
# counters for the event-queue hold model, the end-to-end packet pipeline
# (heap vs calendar), and the scheduler dequeue microbenches, plus the
# sharded-PDES scaling ladder (wall/speedup/protocol counters; the bench's
# byte-identity check gates the snapshot), so a PR diff shows hot-path
# regressions without anyone re-running the suite.
#
# The bench-pgo preset runs profile-guided optimization in two phases:
# configure with -DPDS_PGO=generate, build, run both microbench binaries as
# the training workload, then reconfigure the SAME tree with -DPDS_PGO=use,
# rebuild, and measure. The profile directory lives inside the build tree,
# so a later plain build of the preset is unaffected.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

OUT="BENCH_pr10.json"
PRESET="default"
MIN_TIME="0.25"
REPS="1"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out)    OUT="$2"; shift 2 ;;
    --preset) PRESET="$2"; shift 2 ;;
    --min-time) MIN_TIME="$2"; shift 2 ;;
    --reps)   REPS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

case "${PRESET}" in
  default)   BUILD_DIR="build" ;;
  bench)     BUILD_DIR="build-bench" ;;
  bench-pgo) BUILD_DIR="build-bench-pgo" ;;
  *) echo "unsupported preset: ${PRESET} (use default, bench or bench-pgo)" >&2
     exit 2 ;;
esac

# Reuse an already-configured tree as-is (its cached generator may differ
# from the preset's, e.g. a Makefiles tree on a box where the preset says
# Ninja); only a fresh tree goes through the preset.
configure() {
  if [[ -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
    cmake -B "${BUILD_DIR}" -S . "$@" >/dev/null
  else
    cmake --preset "${PRESET}" "$@" >/dev/null
  fi
}

build_benches() {
  cmake --build "${BUILD_DIR}" -j "${JOBS}" \
    --target micro_event_queue micro_schedulers micro_pdes_scaling >/dev/null
}

if [[ "${PRESET}" == "bench-pgo" ]]; then
  PGO_DIR="$(pwd)/${BUILD_DIR}/pgo"
  echo "bench-pgo phase 1/2: instrumented build + training run" >&2
  configure -DPDS_PGO=generate "-DPDS_PGO_DIR=${PGO_DIR}"
  build_benches
  # Training workload: the exact benchmarks we measure, short iterations.
  "./${BUILD_DIR}/bench/micro_event_queue" \
    --benchmark_min_time=0.1 >/dev/null 2>&1
  "./${BUILD_DIR}/bench/micro_schedulers" \
    --benchmark_min_time=0.1 >/dev/null 2>&1
  echo "bench-pgo phase 2/2: profile-guided rebuild" >&2
  configure -DPDS_PGO=use "-DPDS_PGO_DIR=${PGO_DIR}"
  # The flag change does not retrigger compilation by itself under every
  # generator; force a clean rebuild of the object files.
  cmake --build "${BUILD_DIR}" --target clean >/dev/null
  build_benches
else
  configure
  build_benches
fi

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

# With --reps > 1 the runner emits per-repetition rows plus aggregates; the
# parser below then keeps only the *_median rows, which tames scheduler
# noise on shared machines.
"./${BUILD_DIR}/bench/micro_event_queue" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_format=json >"${TMP}/event_queue.json" 2>/dev/null
"./${BUILD_DIR}/bench/micro_schedulers" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_format=json >"${TMP}/schedulers.json" 2>/dev/null
# Sharded-kernel scaling: byte-identity is the contract (a mismatch exits
# nonzero and kills the snapshot); the wall/speedup numbers are recorded
# for the PR diff but never gated across machines.
"./${BUILD_DIR}/bench/micro_pdes_scaling" --quick \
  --json="${TMP}/pdes_scaling.json" >/dev/null

python3 - "${TMP}" "${OUT}" "${PRESET}" "${REPS}" <<'PY'
import json
import subprocess
import sys

tmp, out, preset, reps = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])


def load(path):
    with open(path) as f:
        return json.load(f)


def rows(doc):
    result = {}
    for b in doc.get("benchmarks", []):
        if reps > 1:
            # Multi-repetition run: keep the median aggregate per benchmark.
            if b.get("aggregate_name") != "median":
                continue
            name = b["name"].removesuffix("_median")
        else:
            if b.get("run_type") == "aggregate":
                continue
            name = b["name"]
        entry = {"ns_per_iter": round(b["real_time"], 1)}
        if "items_per_second" in b:
            entry["items_per_second"] = round(b["items_per_second"])
        for counter in ("allocs_per_op", "allocs_per_pkt", "ns_per_dequeue"):
            if counter in b:
                entry[counter] = round(b[counter], 6)
        result[name] = entry
    return result


eq = load(f"{tmp}/event_queue.json")
sched = load(f"{tmp}/schedulers.json")
pdes = load(f"{tmp}/pdes_scaling.json")

git_rev = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"],
    capture_output=True, text=True).stdout.strip() or "unknown"

snapshot = {
    "preset": preset,
    "repetitions": reps,
    "git": git_rev,
    "context": {
        k: eq.get("context", {}).get(k)
        for k in ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
    },
    "event_queue": rows(eq),
    "schedulers": rows(sched),
    "pdes_scaling": pdes,
}

pipeline = snapshot["event_queue"]
heap = pipeline.get("BM_PacketPipelineHeap", {}).get("items_per_second")
cal = pipeline.get("BM_PacketPipelineCalendar", {}).get("items_per_second")
if heap and cal:
    snapshot["pipeline_calendar_over_heap"] = round(cal / heap, 3)

with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} (preset={preset})")
PY
