#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass.
#
#   scripts/check.sh          # plain build + ctest, then ASan/UBSan build + ctest
#   scripts/check.sh --fast   # plain build + ctest only
#
# The sanitizer configuration lives in build-asan/ so it never dirties the
# primary build/ tree. Both passes must be green before merging.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: plain build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== bench targets compile (micro benches guard the allocation budget) =="
cmake --build build -j "${JOBS}" --target micro_event_queue micro_schedulers

echo "== micro benches: quick run (hot-path smoke, ~5 s) =="
# Not a performance gate — a smoke run that exercises the event-queue and
# scheduler hot paths end to end, so a calendar-resize bug or allocation
# regression that the unit tests abstract away still fails the check.
./build/bench/micro_event_queue --benchmark_min_time=0.05 \
  --benchmark_format=console 2>/dev/null | tail -n +4
./build/bench/micro_schedulers --benchmark_min_time=0.05 \
  --benchmark_format=console 2>/dev/null | tail -n +4

echo "== scenario smoke: parse + short run of every examples/scenarios/*.pds =="
# Every shipped scenario must parse and run end to end (10% horizon); the
# fat-tree sweep additionally pins the sweep-mode determinism contract:
# stdout byte-identical for any --jobs.
for pds in examples/scenarios/*.pds; do
  echo "   ${pds}"
  ./build/examples/netsim_cli --file="${pds}" --quick >/dev/null
done
SWEEP_A="$(mktemp)"; SWEEP_B="$(mktemp)"
./build/examples/netsim_cli --file=examples/scenarios/fat_tree.pds \
  --quick --sweep-users=4,8 --jobs=1 > "${SWEEP_A}"
./build/examples/netsim_cli --file=examples/scenarios/fat_tree.pds \
  --quick --sweep-users=4,8 --jobs=4 > "${SWEEP_B}"
diff "${SWEEP_A}" "${SWEEP_B}"
rm -f "${SWEEP_A}" "${SWEEP_B}"

echo "== sharded kernel: --shards byte-identity on every shipped scenario =="
# The conservative-PDES kernel's contract: any --shards=N produces the exact
# stdout of the serial run — graph scenarios (ring, fat_tree) exercise real
# cross-shard channels, bare-link scenarios collapse onto shard 0.
SHARD_A="$(mktemp)"; SHARD_B="$(mktemp)"
for pds in examples/scenarios/*.pds; do
  ./build/examples/netsim_cli --file="${pds}" --quick > "${SHARD_A}"
  for n in 2 4; do
    echo "   ${pds} --shards=${n}"
    ./build/examples/netsim_cli --file="${pds}" --quick --shards="${n}" \
      > "${SHARD_B}"
    diff "${SHARD_A}" "${SHARD_B}"
  done
done
rm -f "${SHARD_A}" "${SHARD_B}"

echo "== control plane: reconfigured-run determinism + controller smoke =="
# A controlled run must stay byte-identical for any --jobs: every
# retune/swap/shed boundary is a plan-scripted simulator event
# (docs/control_plane.md). The plan exercises a prefix wildcard fan-out, a
# live scheduler swap and the overload shed guard on the fat-tree fabric;
# the simulate_cli line closes the loop through the feedback controller.
CTRL_PLAN="$(mktemp)"
cat > "${CTRL_PLAN}" <<'EOF'
retune p0* at=8000 w=1,3,9
swap core0>p1agg0 at=12000 sched=hpd
shed p0edge0>p0agg0 at=10000 for=10000 watermark=40 classes=1
EOF
CTRL_A="$(mktemp)"; CTRL_B="$(mktemp)"
./build/examples/netsim_cli --file=examples/scenarios/fat_tree.pds \
  --quick --control-plan="${CTRL_PLAN}" --sweep-users=4,8 --jobs=1 \
  > "${CTRL_A}"
./build/examples/netsim_cli --file=examples/scenarios/fat_tree.pds \
  --quick --control-plan="${CTRL_PLAN}" --sweep-users=4,8 --jobs=4 \
  > "${CTRL_B}"
diff "${CTRL_A}" "${CTRL_B}"
rm -f "${CTRL_PLAN}" "${CTRL_A}" "${CTRL_B}"
./build/examples/simulate_cli --scheduler=wtp --rho=0.9 --sim-time=30000 \
  --controller=weights --conformance-tau=50 >/dev/null

echo "== observability: compile-out proof + disabled-path overhead guard =="
# -DPDS_OBS=OFF must keep compiling everything that touches the telemetry
# plane (the macros and #if gates are only honest if both sides build), and
# the compiled-in-but-disabled paths must stay within the <5% contract. The
# overhead smoke uses reduced sizes: the guard thresholds are generous
# enough to hold there, and the full run stays available by hand.
cmake -B build-obsoff -S . -DPDS_OBS=OFF >/dev/null
cmake --build build-obsoff -j "${JOBS}" \
  --target simulate_cli ext_fault_resilience micro_obs_overhead \
  obs_test conformance_test telemetry_test
./build-obsoff/tests/obs_test
./build-obsoff/tests/conformance_test
./build-obsoff/tests/telemetry_test
cmake --build build -j "${JOBS}" --target micro_obs_overhead
./build/bench/micro_obs_overhead --events=300000 --packets=80000 --reps=3

echo "== batched packet plane: scalar fallback proof (-DPDS_SIMD=OFF) =="
# The scalar scan path must stay a first-class citizen: a -DPDS_SIMD=OFF
# tree has no vector kernels at all, and the dispatch-equivalence suite plus
# the scan/burst/scheduler suites must produce the same golden traces the
# SIMD build pins (bit-identical decisions are the contract, not a near
# match). Built in its own tree so the primary build/ keeps SIMD on.
cmake -B build-simdoff -S . -DPDS_SIMD=OFF >/dev/null
cmake --build build-simdoff -j "${JOBS}" \
  --target dispatch_equiv_test scan_test burst_test sched_basic_test \
  sched_property_test
./build-simdoff/tests/dispatch_equiv_test
./build-simdoff/tests/scan_test
./build-simdoff/tests/burst_test
./build-simdoff/tests/sched_basic_test
./build-simdoff/tests/sched_property_test

if [[ "${1:-}" == "--fast" ]]; then
  echo "== fast mode: targeted ASan/UBSan over fault + ctrl + supervisor + obs suites =="
  # Even the fast path sanitizes the robustness layer: fault injection,
  # live reconfiguration (scheduler swaps hand raw backlogs across) and
  # run supervision exercise exception unwinding and teardown ordering, the
  # classic breeding ground for use-after-free. The obs suites join them
  # because atomic-file commit/discard and span-buffer teardown live on the
  # same unwind paths.
  cmake -B build-asan -S . -DPDS_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "${JOBS}" \
    --target fault_test ctrl_test controller_test supervisor_test obs_test \
    conformance_test telemetry_test
  ./build-asan/tests/fault_test
  ./build-asan/tests/ctrl_test
  ./build-asan/tests/controller_test
  ./build-asan/tests/supervisor_test
  ./build-asan/tests/obs_test
  ./build-asan/tests/conformance_test
  ./build-asan/tests/telemetry_test
  echo "== done (fast mode, full sanitizer pass skipped) =="
  exit 0
fi

echo "== sanitizers: ASan + UBSan build + tests =="
cmake -B build-asan -S . -DPDS_SANITIZE=ON >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== sanitizers: TSan build + threaded suites (experiment engine) =="
# ASan and TSan cannot share a binary, so the TSan pass gets its own tree.
# Only the suites that exercise threads are run: the experiment engine
# (pool/steal/exception paths), the kernel it drives concurrently, the
# scenario suite (its controlled-sweep byte-identity test fans a
# reconfigured run over the pool), and the sharded-PDES suite (its window
# rounds run shard replicas on pool workers with SPSC channel handoffs).
cmake -B build-tsan -S . -DPDS_TSAN=ON -DPDS_BUILD_BENCH=OFF \
  -DPDS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "${JOBS}" \
  --target exp_test dsim_test supervisor_test scenario_test pdes_test
./build-tsan/tests/exp_test
./build-tsan/tests/dsim_test
./build-tsan/tests/supervisor_test
./build-tsan/tests/scenario_test
./build-tsan/tests/pdes_test

echo "== all checks passed =="
