# Renders the per-class delay CCDFs written by bench/ext_delay_distributions.
#
#   gnuplot -e "prefix='dist_wtp'" scripts/plot_ccdf.gp
#
# Produces <prefix>_ccdf.png with log-log axes; proportional delay
# differentiation shows up as uniformly shifted (not crossing) curves.

if (!exists("prefix")) prefix = 'dist_wtp'

set datafile separator ','
set grid
set logscale xy
set xlabel 'queueing delay (p-units)'
set ylabel 'P[delay > x]'
set yrange [1e-4:1]

set terminal pngcairo size 900,600
set output sprintf('%s_ccdf.png', prefix)
set title sprintf('%s — per-class queueing delay CCDF', prefix)
plot sprintf('%s_ccdf.csv', prefix) using 1:2 with linespoints title 'class 1', \
     ''                             using 1:3 with linespoints title 'class 2', \
     ''                             using 1:4 with linespoints title 'class 3', \
     ''                             using 1:5 with linespoints title 'class 4'
