# Renders the paper's Figures 4/5 microscopic views from the CSVs the
# fig4_bpr_micro / fig5_wtp_micro benches emit.
#
#   gnuplot -e "prefix='fig4_bpr'" scripts/plot_micro_views.gp
#   gnuplot -e "prefix='fig5_wtp'" scripts/plot_micro_views.gp
#
# Produces <prefix>_view1.png (30-p-unit class averages, cf. Figs. 4a/5a)
# and <prefix>_view2.png (per-packet delays, cf. Figs. 4b/5b).

if (!exists("prefix")) prefix = 'fig4_bpr'

set datafile separator ','
set grid
set xlabel 'time (time units)'
set ylabel 'queueing delay (time units)'

set terminal pngcairo size 1000,600
set output sprintf('%s_view1.png', prefix)
set title sprintf('%s — microscopic view I (30-p-unit class averages)', prefix)
plot sprintf('%s_view1.csv', prefix) using 1:2 with lines  title 'class 1', \
     ''                              using 1:3 with lines  title 'class 2', \
     ''                              using 1:4 with lines  title 'class 3'

set output sprintf('%s_view2.png', prefix)
set title sprintf('%s — microscopic view II (per-packet delays)', prefix)
plot sprintf('%s_view2.csv', prefix) using 1:($2==1?$3:1/0) with dots title 'class 1', \
     ''                              using 1:($2==2?$3:1/0) with dots title 'class 2', \
     ''                              using 1:($2==3?$3:1/0) with dots title 'class 3'
