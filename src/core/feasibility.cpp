#include "core/feasibility.hpp"

#include <sstream>

#include "core/model.hpp"
#include "util/contracts.hpp"

namespace pds {

std::string FeasibilityReport::summary() const {
  std::ostringstream os;
  os << (feasible ? "FEASIBLE" : "INFEASIBLE") << " (" << violated << "/"
     << checks.size() << " subset conditions violated; d(lambda)="
     << aggregate_fcfs_delay << ")";
  return os.str();
}

FeasibilityReport check_feasibility(const std::vector<ArrivalRecord>& trace,
                                    const std::vector<double>& ddp,
                                    double capacity, SimTime warmup_end,
                                    double rel_tolerance) {
  validate_ddp(ddp);
  PDS_CHECK(!trace.empty(), "empty trace");
  PDS_CHECK(rel_tolerance >= 0.0, "negative tolerance");
  const auto n = static_cast<std::uint32_t>(ddp.size());
  PDS_CHECK(n >= 2, "feasibility needs at least two classes");
  PDS_CHECK(n <= 16, "subset enumeration limited to 16 classes");

  FeasibilityReport report;

  // d(lambda): the full aggregate in a FCFS server.
  std::vector<bool> all(n, true);
  report.aggregate_fcfs_delay =
      fcfs_average_delay(trace, all, capacity, warmup_end);

  // Per-class packet counts stand in for the rates (common duration).
  const auto counts = class_counts(trace, n, warmup_end);
  std::vector<double> lambda;
  lambda.reserve(n);
  for (const auto c : counts) lambda.push_back(static_cast<double>(c));

  report.target_delays =
      proportional_delays(ddp, lambda, report.aggregate_fcfs_delay);

  const std::uint32_t subsets = (1u << n) - 1;  // skip empty; skip full below
  for (std::uint32_t mask = 1; mask < subsets; ++mask) {
    SubsetCheck check;
    std::vector<bool> included(n, false);
    double lhs = 0.0;
    double subset_rate = 0.0;
    for (ClassId c = 0; c < n; ++c) {
      if ((mask & (1u << c)) == 0) continue;
      included[c] = true;
      check.classes.push_back(c);
      lhs += lambda[c] * report.target_delays[c];
      subset_rate += lambda[c];
    }
    const double subset_delay =
        fcfs_average_delay(trace, included, capacity, warmup_end);
    check.lhs = lhs;
    check.rhs = subset_rate * subset_delay;
    check.satisfied = check.lhs >= check.rhs * (1.0 - rel_tolerance);
    if (!check.satisfied) ++report.violated;
    report.checks.push_back(std::move(check));
  }

  report.feasible = report.violated == 0;
  return report;
}

}  // namespace pds
