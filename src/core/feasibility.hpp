// Trace-driven feasibility check for a DDP set (Section 3, Eq. 7).
//
// Coffman & Mitrani: a vector of average class delays {d_i} is achievable by
// some work-conserving scheduler iff for every nonempty proper subset q of
// classes
//
//     sum_{i in q} lambda_i d_i  >=  (sum_{i in q} lambda_i) * d(q)
//
// where d(q) is the average delay of the subset's aggregate traffic in a
// FCFS server of full capacity (the subset cannot be served better than by
// having the link to itself). Equality over the full set is the conservation
// law. Given a trace, we (1) compute d(full) by FCFS replay, (2) derive the
// target delays from the DDPs via Eq. 6, and (3) test all 2^N - 2 subset
// inequalities, again by FCFS replay. N is small (the DS field allows only a
// handful of classes), so the enumeration is cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace pds {

struct SubsetCheck {
  std::vector<ClassId> classes;   // members of the subset
  double lhs;                     // sum lambda_i d_i (per-packet weighted)
  double rhs;                     // (sum lambda_i) * d(subset)
  bool satisfied;                 // lhs >= rhs (with tolerance)
};

struct FeasibilityReport {
  bool feasible = false;
  double aggregate_fcfs_delay = 0.0;        // d(lambda) over the full set
  std::vector<double> target_delays;        // Eq. 6 delays being tested
  std::vector<SubsetCheck> checks;          // one per proper nonempty subset
  std::uint64_t violated = 0;

  std::string summary() const;
};

// `rel_tolerance` absorbs finite-trace noise: a subset inequality counts as
// violated only when lhs < rhs * (1 - rel_tolerance).
FeasibilityReport check_feasibility(const std::vector<ArrivalRecord>& trace,
                                    const std::vector<double>& ddp,
                                    double capacity, SimTime warmup_end = 0.0,
                                    double rel_tolerance = 0.02);

}  // namespace pds
