#include "core/mg1.hpp"

#include "core/model.hpp"
#include "util/contracts.hpp"

namespace pds {

ServiceMoments service_moments(const DiscreteDist& size_law,
                               double capacity) {
  PDS_CHECK(capacity > 0.0, "capacity must be positive");
  ServiceMoments m;
  for (const auto& outcome : size_law.outcomes()) {
    const double s = outcome.value / capacity;
    m.mean += outcome.weight * s;
    m.second += outcome.weight * s * s;
  }
  return m;
}

double pk_waiting_time(double lambda, const ServiceMoments& moments) {
  PDS_CHECK(lambda >= 0.0, "negative arrival rate");
  PDS_CHECK(moments.mean > 0.0 && moments.second > 0.0,
            "degenerate service moments");
  if (lambda == 0.0) return 0.0;
  const double rho = lambda * moments.mean;
  PDS_CHECK(rho < 1.0, "unstable queue (rho >= 1)");
  return lambda * moments.second / (2.0 * (1.0 - rho));
}

std::vector<std::uint32_t> mg1_infeasible_subsets(
    const std::vector<double>& ddp, const std::vector<double>& lambda,
    const DiscreteDist& size_law, double capacity) {
  validate_ddp(ddp);
  PDS_CHECK(lambda.size() == ddp.size(), "lambda/DDP size mismatch");
  const auto n = static_cast<std::uint32_t>(ddp.size());
  PDS_CHECK(n >= 2 && n <= 16, "need 2..16 classes");

  const auto moments = service_moments(size_law, capacity);
  double total_rate = 0.0;
  for (const double l : lambda) {
    PDS_CHECK(l >= 0.0, "negative arrival rate");
    total_rate += l;
  }
  const double d_all = pk_waiting_time(total_rate, moments);
  const auto targets = proportional_delays(ddp, lambda, d_all);

  std::vector<std::uint32_t> violated;
  const std::uint32_t full = (1u << n) - 1;
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    double subset_rate = 0.0;
    double lhs = 0.0;
    for (std::uint32_t c = 0; c < n; ++c) {
      if ((mask & (1u << c)) == 0) continue;
      subset_rate += lambda[c];
      lhs += lambda[c] * targets[c];
    }
    // Superposition of Poisson streams is Poisson: the subset aggregate is
    // M/G/1 with the same size law at the reduced rate.
    const double rhs = subset_rate * pk_waiting_time(subset_rate, moments);
    if (lhs < rhs * (1.0 - 1e-12)) violated.push_back(mask);
  }
  return violated;
}

}  // namespace pds
