// M/G/1 analytics: the Pollaczek–Khinchine mean waiting time.
//
// Section 3 notes that applying the feasibility conditions requires an
// estimate of d(lambda) — the average FCFS delay of (sub)aggregates — and
// that estimating it from measurements "is by itself a challenging open
// issue". For Poisson arrivals the answer is closed-form:
//
//     W = lambda * E[S^2] / (2 (1 - rho)),   rho = lambda * E[S] < 1,
//
// with S the service (transmission) time. This module provides that
// estimate for an arbitrary packet-size law, plus an analytic variant of
// the Eq. 7 feasibility check built entirely on it (no trace needed). The
// analytic check is exact for Poisson traffic and a useful first-cut
// approximation otherwise; the trace-driven checker in feasibility.hpp
// remains the ground truth for bursty traffic.
#pragma once

#include <vector>

#include "rng/distributions.hpp"

namespace pds {

// First and second moments of the packet *service time* for a size law (in
// bytes) served at `capacity` bytes per time unit.
struct ServiceMoments {
  double mean = 0.0;     // E[S]
  double second = 0.0;   // E[S^2]
};

ServiceMoments service_moments(const DiscreteDist& size_law, double capacity);

// Pollaczek–Khinchine mean waiting time (excluding own service) for a
// Poisson arrival rate `lambda` (packets per time unit). Requires
// rho = lambda * moments.mean < 1; throws otherwise.
double pk_waiting_time(double lambda, const ServiceMoments& moments);

// Analytic counterpart of check_feasibility(): given per-class Poisson
// rates and a common size law, tests the 2^N - 2 subset conditions of
// Eq. 7 with every d(.) evaluated by Pollaczek–Khinchine. Returns the
// subset masks that violate the conditions (empty => feasible).
std::vector<std::uint32_t> mg1_infeasible_subsets(
    const std::vector<double>& ddp, const std::vector<double>& lambda,
    const DiscreteDist& size_law, double capacity);

}  // namespace pds
