#include "core/model.hpp"

#include "util/contracts.hpp"

namespace pds {

std::vector<double> ddp_from_sdp(const std::vector<double>& sdp) {
  PDS_CHECK(!sdp.empty(), "empty SDP vector");
  std::vector<double> ddp;
  ddp.reserve(sdp.size());
  for (const double s : sdp) {
    PDS_CHECK(s > 0.0, "SDPs must be positive");
    ddp.push_back(1.0 / s);
  }
  return ddp;
}

void validate_ddp(const std::vector<double>& ddp) {
  PDS_CHECK(!ddp.empty(), "empty DDP vector");
  for (std::size_t i = 0; i < ddp.size(); ++i) {
    PDS_CHECK(ddp[i] > 0.0, "DDPs must be positive");
    if (i > 0) {
      PDS_CHECK(ddp[i] <= ddp[i - 1],
                "DDPs must be non-increasing (higher class = lower delay)");
    }
  }
}

std::vector<double> proportional_delays(const std::vector<double>& ddp,
                                        const std::vector<double>& lambda,
                                        double aggregate_fcfs_delay) {
  validate_ddp(ddp);
  PDS_CHECK(lambda.size() == ddp.size(), "lambda/DDP size mismatch");
  PDS_CHECK(aggregate_fcfs_delay >= 0.0, "negative aggregate delay");
  double total_rate = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    PDS_CHECK(lambda[i] >= 0.0, "negative arrival rate");
    total_rate += lambda[i];
    weighted += ddp[i] * lambda[i];
  }
  PDS_CHECK(total_rate > 0.0, "no traffic");
  PDS_CHECK(weighted > 0.0, "all classes with positive DDP have zero rate");
  std::vector<double> out;
  out.reserve(ddp.size());
  for (const double delta : ddp) {
    out.push_back(delta * total_rate * aggregate_fcfs_delay / weighted);
  }
  return out;
}

double target_ratio(const std::vector<double>& ddp, std::size_t i,
                    std::size_t j) {
  validate_ddp(ddp);
  PDS_CHECK(i < ddp.size() && j < ddp.size(), "class index out of range");
  return ddp[i] / ddp[j];
}

}  // namespace pds
