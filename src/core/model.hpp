// The proportional differentiation model (Sections 2-3) as closed-form
// library math.
//
// Delay Differentiation Parameters (DDPs) delta_0 > delta_1 > ... > 0 target
//
//     d_i / d_j = delta_i / delta_j        (Eq. 1)
//
// (class 0 is the lowest class: largest delta, largest delay). Under the
// conservation law sum_i lambda_i d_i = lambda * d(lambda) (Eq. 5), the
// unique delay vector satisfying the constraints is
//
//     d_i = delta_i * lambda * d(lambda) / sum_j delta_j lambda_j   (Eq. 6)
//
// where lambda is the aggregate arrival rate and d(lambda) the average delay
// the aggregate would see in a work-conserving FCFS server of the same
// capacity. The four monotonicity properties stated in Section 3 follow from
// this expression and are exercised by the model tests.
#pragma once

#include <vector>

namespace pds {

// DDPs from SDPs: delta_i = 1 / s_i (Eq. 10/13: heavy-load WTP and BPR
// deliver d_i/d_j -> s_j/s_i).
std::vector<double> ddp_from_sdp(const std::vector<double>& sdp);

// Validates delta_0 >= delta_1 >= ... > 0; throws std::invalid_argument.
void validate_ddp(const std::vector<double>& ddp);

// Eq. 6. `lambda` holds per-class arrival rates (any consistent unit),
// `aggregate_fcfs_delay` is d(lambda). Returns per-class delays.
std::vector<double> proportional_delays(const std::vector<double>& ddp,
                                        const std::vector<double>& lambda,
                                        double aggregate_fcfs_delay);

// Target ratio d_i / d_j implied by a DDP set.
double target_ratio(const std::vector<double>& ddp, std::size_t i,
                    std::size_t j);

}  // namespace pds
