#include "core/provisioning.hpp"

#include <cmath>

#include "core/feasibility.hpp"
#include "core/model.hpp"
#include "util/contracts.hpp"

namespace pds {

std::vector<double> geometric_ddp(double spacing, std::uint32_t num_classes) {
  PDS_CHECK(spacing >= 1.0, "spacing must be at least 1");
  PDS_CHECK(num_classes >= 1, "need at least one class");
  std::vector<double> ddp;
  ddp.reserve(num_classes);
  double d = 1.0;
  for (std::uint32_t i = 0; i < num_classes; ++i) {
    ddp.push_back(d);
    d /= spacing;
  }
  return ddp;
}

namespace {

bool spacing_feasible(const std::vector<ArrivalRecord>& trace,
                      std::uint32_t num_classes, double capacity,
                      SimTime warmup_end, double spacing) {
  return check_feasibility(trace, geometric_ddp(spacing, num_classes),
                           capacity, warmup_end)
      .feasible;
}

// Eq. 6 delays for a geometric ladder on the measured trace.
std::vector<double> predicted_delays(const std::vector<ArrivalRecord>& trace,
                                     std::uint32_t num_classes,
                                     double capacity, SimTime warmup_end,
                                     double spacing) {
  std::vector<bool> all(num_classes, true);
  const double d_agg =
      fcfs_average_delay(trace, all, capacity, warmup_end);
  const auto counts = class_counts(trace, num_classes, warmup_end);
  std::vector<double> lambda;
  lambda.reserve(num_classes);
  for (const auto c : counts) lambda.push_back(static_cast<double>(c));
  return proportional_delays(geometric_ddp(spacing, num_classes), lambda,
                             d_agg);
}

}  // namespace

SpacingSearch max_feasible_spacing(const std::vector<ArrivalRecord>& trace,
                                   std::uint32_t num_classes, double capacity,
                                   SimTime warmup_end, double max_spacing,
                                   double tolerance) {
  PDS_CHECK(num_classes >= 2, "need at least two classes");
  PDS_CHECK(max_spacing > 1.0, "max spacing must exceed 1");
  PDS_CHECK(tolerance > 0.0, "tolerance must be positive");
  PDS_CHECK(
      spacing_feasible(trace, num_classes, capacity, warmup_end, 1.0),
      "even equal DDPs are infeasible — inconsistent trace or capacity");

  SpacingSearch out;
  if (spacing_feasible(trace, num_classes, capacity, warmup_end,
                       max_spacing)) {
    out.spacing = max_spacing;
    out.bounded = false;
  } else {
    double lo = 1.0;        // feasible
    double hi = max_spacing;  // infeasible
    while (hi - lo > tolerance) {
      const double mid = 0.5 * (lo + hi);
      (spacing_feasible(trace, num_classes, capacity, warmup_end, mid)
           ? lo
           : hi) = mid;
    }
    out.spacing = lo;
    out.bounded = true;
  }
  out.target_delays = predicted_delays(trace, num_classes, capacity,
                                       warmup_end, out.spacing);
  return out;
}

std::optional<TargetSearch> spacing_for_target_delay(
    const std::vector<ArrivalRecord>& trace, std::uint32_t num_classes,
    double capacity, double target_delay, SimTime warmup_end,
    double max_spacing, double tolerance) {
  PDS_CHECK(num_classes >= 2, "need at least two classes");
  PDS_CHECK(target_delay > 0.0, "target delay must be positive");
  PDS_CHECK(max_spacing > 1.0, "max spacing must exceed 1");
  PDS_CHECK(tolerance > 0.0, "tolerance must be positive");

  const auto top_delay = [&](double spacing) {
    return predicted_delays(trace, num_classes, capacity, warmup_end,
                            spacing)
        .back();
  };

  // The top class's Eq. 6 delay decreases monotonically in the spacing.
  if (top_delay(1.0) <= target_delay) {
    TargetSearch out;
    out.spacing = 1.0;
    out.feasible = true;  // equal DDPs (FCFS behaviour) are always feasible
    out.target_delays = predicted_delays(trace, num_classes, capacity,
                                         warmup_end, 1.0);
    return out;
  }
  if (top_delay(max_spacing) > target_delay) return std::nullopt;

  double lo = 1.0;          // above target
  double hi = max_spacing;  // at or below target
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    (top_delay(mid) > target_delay ? lo : hi) = mid;
  }
  TargetSearch out;
  out.spacing = hi;
  out.feasible =
      spacing_feasible(trace, num_classes, capacity, warmup_end, hi);
  out.target_delays =
      predicted_delays(trace, num_classes, capacity, warmup_end, hi);
  return out;
}

}  // namespace pds
