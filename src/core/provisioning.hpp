// Provisioning toolkit — the paper's closing question (Section 7): "a major
// question from a network operator's point of view is how to choose the
// class differentiation parameters".
//
// For geometric DDP ladders delta_i = a^-i (spacing `a` between adjacent
// classes, the configuration used throughout the paper's evaluation), two
// decisions become one-dimensional searches over `a`:
//
//  * max_feasible_spacing: the largest spacing the measured traffic can
//    support at all — the Eq. 7 feasibility boundary, located by bisection
//    on trace-driven subset checks (feasibility is monotone in `a`: wider
//    spacing pushes the top classes below their FCFS floors).
//  * spacing_for_target_delay: the smallest spacing that brings the top
//    class's Eq. 6 predicted average delay down to an operator target —
//    answering "how much spacing do I need to sell a <= X ms class?", and
//    reporting whether that spacing is also feasible.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/trace.hpp"

namespace pds {

// Geometric DDP ladder {1, 1/a, 1/a^2, ...} with `num_classes` rungs.
std::vector<double> geometric_ddp(double spacing, std::uint32_t num_classes);

struct SpacingSearch {
  double spacing = 1.0;              // the answer
  bool bounded = true;               // false: the search hit `max_spacing`
  std::vector<double> target_delays; // Eq. 6 delays at the answer
};

// Largest spacing a >= 1 (up to `max_spacing`) whose geometric DDPs pass
// the Eq. 7 feasibility check on `trace`. Bisection to `tolerance`.
SpacingSearch max_feasible_spacing(const std::vector<ArrivalRecord>& trace,
                                   std::uint32_t num_classes, double capacity,
                                   SimTime warmup_end = 0.0,
                                   double max_spacing = 64.0,
                                   double tolerance = 0.01);

// Smallest spacing whose Eq. 6 prediction gives the *top* class an average
// delay <= `target_delay` (same time units as the trace), or nullopt if
// even `max_spacing` cannot reach the target. `feasible` in the result
// reports whether the found spacing also passes Eq. 7.
struct TargetSearch {
  double spacing = 1.0;
  bool feasible = false;
  std::vector<double> target_delays;
};
std::optional<TargetSearch> spacing_for_target_delay(
    const std::vector<ArrivalRecord>& trace, std::uint32_t num_classes,
    double capacity, double target_delay, SimTime warmup_end = 0.0,
    double max_spacing = 64.0, double tolerance = 0.01);

}  // namespace pds
