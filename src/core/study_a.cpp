#include "core/study_a.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "sched/link.hpp"
#include "stats/delay_stats.hpp"
#include "stats/interval_monitor.hpp"
#include "stats/jitter.hpp"
#include "stats/percentile.hpp"
#include "traffic/calibration.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"

namespace pds {

void StudyAConfig::validate() const {
  SchedulerConfig sc{sdp, capacity, 0.875, 1500.0};
  sc.validate(/*needs_capacity=*/true);
  PDS_CHECK(load_fractions.size() == sdp.size(),
            "load fractions / SDP size mismatch");
  PDS_CHECK(utilization > 0.0 && utilization < 1.0,
            "utilization must be in (0,1) for a stable lossless system");
  PDS_CHECK(pareto_alpha > 1.0, "Pareto shape must exceed 1 (finite mean)");
  PDS_CHECK(sim_time > 0.0, "sim_time must be positive");
  PDS_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
            "warmup fraction must be in [0,1)");
  for (const double tau : monitor_taus) {
    PDS_CHECK(tau > 0.0, "monitoring timescale must be positive");
  }
  for (const double p : report_percentiles) {
    PDS_CHECK(p >= 0.0 && p <= 100.0, "percentile outside [0,100]");
  }
}

StudyAResult run_study_a(const StudyAConfig& config) {
  config.validate();
  const std::uint32_t n = config.num_classes();
  const SimTime warmup = config.warmup_end();

  Simulator sim(config.event_queue);
  PacketIdAllocator ids;
  Rng master(config.seed);

  SchedulerConfig sched_config;
  sched_config.sdp = config.sdp;
  sched_config.link_capacity = config.capacity;
  auto scheduler = make_scheduler(config.scheduler, sched_config);

  StudyAResult result;
  ClassDelayStats delays(n, warmup);
  SawtoothIndex sawtooth(n);
  JitterEstimator jitter(n);
  std::vector<IntervalDelayMonitor> monitors;
  monitors.reserve(config.monitor_taus.size());
  for (const double tau : config.monitor_taus) {
    monitors.emplace_back(n, tau, warmup);
  }

  std::vector<SampleSet> retained(
      config.report_percentiles.empty() ? 0 : n);
  Link link(sim, *scheduler, config.capacity,
            [&](Packet&& p, SimTime wait, SimTime now) {
              delays.record(p.cls, wait, now);
              for (auto& m : monitors) m.record(p.cls, wait, now);
              if (now >= warmup) {
                ++result.total_departures;
                sawtooth.record(p.cls, wait);
                jitter.record(p.cls, wait);
                if (config.record_departures) {
                  result.per_packet.push_back(
                      DepartureRecord{now, p.cls, wait});
                }
                if (!retained.empty()) retained[p.cls].add(wait);
              }
            });

  const DiscreteDist size_law = paper_size_law();
  const auto interarrivals = class_mean_interarrivals(
      config.utilization, config.load_fractions, config.capacity,
      size_law.mean());

  const auto make_gaps = [&](double mean) {
    return config.arrivals == ArrivalModel::kPareto
               ? pareto_gaps(config.pareto_alpha, mean)
               : exponential_gaps(mean);
  };

  std::vector<std::unique_ptr<RenewalSource>> sources;
  sources.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    sources.push_back(std::make_unique<RenewalSource>(
        sim, ids, c, make_gaps(interarrivals[c]),
        law_size(size_law), master.split(), [&](Packet p) {
          if (config.record_trace) {
            result.trace.push_back(
                ArrivalRecord{sim.now(), p.cls, p.size_bytes});
          }
          link.arrive(std::move(p));
        }));
    sources.back()->start(kTimeZero);
  }

  sim.run_until(config.sim_time);
  for (auto& s : sources) s->stop();
  for (auto& m : monitors) m.finish();

  result.mean_delays = delays.means();
  result.ratios = delays.successive_ratios();
  result.departures.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    result.departures.push_back(delays.of(c).count());
  }
  result.measured_utilization = link.busy_time() / config.sim_time;
  result.rd_per_tau.reserve(monitors.size());
  for (auto& m : monitors) result.rd_per_tau.push_back(m.rd_values());
  result.sawtooth_index.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    result.sawtooth_index.push_back(sawtooth.index(c));
  }
  result.sawtooth_collapses = sawtooth.total_collapses();
  result.jitter.reserve(n);
  for (ClassId c = 0; c < n; ++c) result.jitter.push_back(jitter.jitter(c));
  if (!retained.empty()) {
    result.delay_percentiles.reserve(n);
    for (ClassId c = 0; c < n; ++c) {
      result.delay_percentiles.push_back(
          retained[c].percentiles(config.report_percentiles));
    }
  }

  // The trace is recorded at arrival order = emission order per source, but
  // interleaving across sources already happens through the simulator, so
  // records are time-ordered by construction.
  return result;
}

std::vector<StudyAResult> run_study_a_replications(const StudyAConfig& config,
                                                   std::uint32_t seeds) {
  PDS_CHECK(seeds >= 1, "need at least one seed");
  config.validate();
  std::vector<StudyAResult> results(seeds);
  const std::uint32_t workers =
      std::min(seeds, std::max(1u, std::thread::hardware_concurrency()));
  std::atomic<std::uint32_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::uint32_t k = next.fetch_add(1);
        if (k >= seeds) return;
        StudyAConfig local = config;
        local.seed = config.seed + k;
        results[k] = run_study_a(local);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

std::vector<double> average_ratios_over_seeds(StudyAConfig config,
                                              std::uint32_t seeds) {
  const auto results = run_study_a_replications(config, seeds);
  std::vector<double> acc(results.front().ratios.size(), 0.0);
  for (const auto& result : results) {
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += result.ratios[i];
  }
  for (auto& r : acc) r /= static_cast<double>(seeds);
  return acc;
}

}  // namespace pds
