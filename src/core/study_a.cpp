#include "core/study_a.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "ctrl/control_injector.hpp"
#include "ctrl/control_plan.hpp"
#include "exp/supervisor.hpp"
#include "exp/thread_pool.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "sched/link.hpp"
#include "stats/delay_stats.hpp"
#include "stats/interval_monitor.hpp"
#include "stats/jitter.hpp"
#include "stats/percentile.hpp"
#include "traffic/calibration.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"

namespace pds {

void StudyAConfig::validate() const {
  SchedulerConfig sc{sdp, capacity, 0.875, 1500.0};
  sc.validate(/*needs_capacity=*/true);
  PDS_CHECK(load_fractions.size() == sdp.size(),
            "load fractions / SDP size mismatch");
  PDS_CHECK(utilization > 0.0 && utilization < 1.0,
            "utilization must be in (0,1) for a stable lossless system");
  PDS_CHECK(pareto_alpha > 1.0, "Pareto shape must exceed 1 (finite mean)");
  PDS_CHECK(sim_time > 0.0, "sim_time must be positive");
  PDS_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
            "warmup fraction must be in [0,1)");
  for (const double tau : monitor_taus) {
    PDS_CHECK(tau > 0.0, "monitoring timescale must be positive");
  }
  for (const double p : report_percentiles) {
    PDS_CHECK(p >= 0.0 && p <= 100.0, "percentile outside [0,100]");
  }
  if (!metrics_out.empty()) {
    PDS_CHECK(metrics_window > 0.0, "metrics window must be positive");
  }
  PDS_CHECK(trace_sample >= 0.0 && trace_sample <= 1.0,
            "trace sample rate must be in [0,1]");
  PDS_CHECK(max_wall_seconds >= 0.0, "watchdog wall deadline must be >= 0");
  PDS_CHECK(conformance_tau >= 0.0, "conformance tau must be >= 0");
  if (conformance_tau > 0.0) {
    PDS_CHECK(conformance_tolerance > 0.0,
              "conformance tolerance must be positive");
  }
  PDS_CHECK(conformance_out.empty() || conformance_tau > 0.0,
            "conformance output requires a conformance tau");
  controller.validate();
  PDS_CHECK(!controller.enabled() || conformance_tau > 0.0,
            "controller requires conformance_tau > 0 (its error sensor)");
}

StudyAResult run_study_a(const StudyAConfig& config) {
  config.validate();
  const std::uint32_t n = config.num_classes();
  const SimTime warmup = config.warmup_end();

  Simulator sim(config.event_queue);
  PacketIdAllocator ids;
  Rng master(config.seed);

  SchedulerConfig sched_config;
  sched_config.sdp = config.sdp;
  sched_config.link_capacity = config.capacity;
  auto scheduler = make_scheduler(config.scheduler, sched_config);

  // Optional observability session (metrics registry + windowed snapshot
  // writer, sampled lifecycle tracer, kernel profiler). All of it is
  // null-object by default: a run without obs flags takes none of these
  // branches.
  const auto cls_name = [](ClassId c) {
    return "c" + std::to_string(paper_class_label(c));
  };
  const auto ratio_name = [&](ClassId c) {
    return "delay_ratio." + cls_name(c) + "_" + cls_name(c + 1);
  };
  std::unique_ptr<MetricsRegistry> registry;
  std::vector<Summary*> delay_summaries;
  std::vector<Counter*> arrival_counters;
  std::vector<Counter*> departure_counters;
  std::unique_ptr<MetricsSnapshotWriter> writer;
  if (!config.metrics_out.empty()) {
    registry = std::make_unique<MetricsRegistry>();
    for (ClassId c = 0; c < n; ++c) {
      delay_summaries.push_back(&registry->summary("delay." + cls_name(c)));
      arrival_counters.push_back(
          &registry->counter("arrivals." + cls_name(c)));
      departure_counters.push_back(
          &registry->counter("departures." + cls_name(c)));
      registry->gauge("backlog." + cls_name(c) + ".pkts");
      registry->gauge("backlog." + cls_name(c) + ".bytes");
      if (c + 1 < n) registry->gauge(ratio_name(c));
    }
    // Pull-style gauges refreshed just before each snapshot: instantaneous
    // per-class backlog off the scheduler, and the achieved short-timescale
    // delay ratios (window-mean d_i / d_{i+1}, Eq. 2's runtime analogue;
    // 0 when a window lacks departures in either class).
    auto refresh = [reg = registry.get(), sched = scheduler.get(), n,
                    cls_name, ratio_name](SimTime) {
      for (ClassId c = 0; c < n; ++c) {
        reg->gauge("backlog." + cls_name(c) + ".pkts")
            .set(static_cast<double>(sched->backlog_packets(c)));
        reg->gauge("backlog." + cls_name(c) + ".bytes")
            .set(static_cast<double>(sched->backlog_bytes(c)));
      }
      for (ClassId c = 0; c + 1 < n; ++c) {
        const RunningStats& lo = reg->summary("delay." + cls_name(c)).window();
        const RunningStats& hi =
            reg->summary("delay." + cls_name(c + 1)).window();
        const bool defined =
            lo.count() > 0 && hi.count() > 0 && hi.mean() > 0.0;
        reg->gauge(ratio_name(c)).set(defined ? lo.mean() / hi.mean() : 0.0);
      }
    };
    writer = std::make_unique<MetricsSnapshotWriter>(
        sim, *registry, config.metrics_out, config.metrics_window,
        std::move(refresh));
  }
  std::unique_ptr<PacketTracer> tracer;
  if (!config.trace_out.empty()) {
    tracer = std::make_unique<PacketTracer>(config.trace_sample, config.seed);
  }
  std::unique_ptr<SimProfiler> profiler;
  if (config.profile) profiler = std::make_unique<SimProfiler>();
  std::unique_ptr<SpanTracer> spans;
  std::unique_ptr<KernelSpanMonitor> span_monitor;
  if (!config.spans_out.empty()) {
    spans = std::make_unique<SpanTracer>(SpanMode::kDeterministic);
    span_monitor = std::make_unique<KernelSpanMonitor>(spans->buffer());
  }
  // The kernel holds one monitor slot; mux only when both observers want it.
  SimMonitorMux monitor_mux;
  if (profiler && span_monitor) {
    monitor_mux.add(profiler.get());
    monitor_mux.add(span_monitor.get());
    sim.set_monitor(&monitor_mux);
  } else if (profiler) {
    sim.set_monitor(profiler.get());
  } else if (span_monitor) {
    sim.set_monitor(span_monitor.get());
  }

  // Live DDP conformance monitoring, fed from the departure callback.
  std::unique_ptr<ConformanceMonitor> conformance;
  std::unique_ptr<ViolationLog> violation_log;
  if (config.conformance_tau > 0.0) {
    ConformanceOptions copts;
    copts.tau = config.conformance_tau;
    copts.start = warmup;
    copts.tolerance = config.conformance_tolerance;
    copts.min_samples = config.conformance_min_samples;
    conformance = std::make_unique<ConformanceMonitor>(config.sdp, copts);
    conformance->set_class_namer(cls_name);
    if (registry) conformance->bind_metrics(*registry);
    if (!config.conformance_out.empty()) {
      violation_log =
          std::make_unique<ViolationLog>(config.conformance_out, cls_name);
      conformance->set_violation_sink(
          [log = violation_log.get()](const ConformanceViolation& v) {
            log->write(v);
          });
    }
  }

  StudyAResult result;
  ClassDelayStats delays(n, warmup);
  SawtoothIndex sawtooth(n);
  JitterEstimator jitter(n);
  std::vector<IntervalDelayMonitor> monitors;
  monitors.reserve(config.monitor_taus.size());
  for (const double tau : config.monitor_taus) {
    monitors.emplace_back(n, tau, warmup);
  }

  std::vector<SampleSet> retained(
      config.report_percentiles.empty() ? 0 : n);
  Link link(sim, *scheduler, config.capacity,
            [&](Packet&& p, SimTime wait, SimTime now) {
              delays.record(p.cls, wait, now);
              for (auto& m : monitors) m.record(p.cls, wait, now);
              if (conformance) conformance->record(p.cls, wait, now);
              if (registry) {
                delay_summaries[p.cls]->observe(wait);
                departure_counters[p.cls]->inc();
              }
              if (now >= warmup) {
                ++result.total_departures;
                sawtooth.record(p.cls, wait);
                jitter.record(p.cls, wait);
                if (config.record_departures) {
                  result.per_packet.push_back(
                      DepartureRecord{now, p.cls, wait});
                }
                if (!retained.empty()) retained[p.cls].add(wait);
              }
            });

  const DiscreteDist size_law = paper_size_law();
  const auto interarrivals = class_mean_interarrivals(
      config.utilization, config.load_fractions, config.capacity,
      size_law.mean());

  const auto make_gaps = [&](double mean) {
    return config.arrivals == ArrivalModel::kPareto
               ? pareto_gaps(config.pareto_alpha, mean)
               : exponential_gaps(mean);
  };

  std::vector<std::unique_ptr<RenewalSource>> sources;
  sources.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    sources.push_back(std::make_unique<RenewalSource>(
        sim, ids, c, make_gaps(interarrivals[c]),
        law_size(size_law), master.split(), [&](Packet p) {
          if (config.record_trace) {
            result.trace.push_back(
                ArrivalRecord{sim.now(), p.cls, p.size_bytes});
          }
          if (registry) arrival_counters[p.cls]->inc();
          link.arrive(std::move(p));
        }));
    sources.back()->start(kTimeZero);
  }
  if (tracer) link.set_probe(tracer.get());

  std::unique_ptr<FaultInjector> injector;
  if (!config.fault_plan.empty()) {
    injector = std::make_unique<FaultInjector>(
        sim, parse_fault_plan(config.fault_plan));
    injector->attach("link", link);
    injector->arm();
    if (spans) injector->set_span_buffer(&spans->buffer());
  }

  std::unique_ptr<ControlInjector> control;
  if (!config.control_plan.empty()) {
    control = std::make_unique<ControlInjector>(
        sim, parse_control_plan(config.control_plan));
    control->attach("link", link, config.scheduler, sched_config);
    control->arm();
    if (spans) control->set_span_buffer(&spans->buffer());
    if (registry) control->bind_metrics(*registry);
  }

  // Violation attribution: both planes contribute to the active-episode
  // context string ("down link+shed link") the monitor stamps on windows.
  if (conformance && (injector || control)) {
    conformance->set_fault_context(
        [inj = injector.get(), ctl = control.get()] {
          std::string s = inj ? inj->active_summary() : std::string();
          const std::string c = ctl ? ctl->active_summary() : std::string();
          if (!c.empty()) s = s.empty() ? c : s + "+" + c;
          return s;
        });
  }

  std::unique_ptr<Controller> controller;
  if (config.controller.enabled()) {
    PDS_REQUIRE(conformance != nullptr);  // validate() enforced the tau
    controller = std::make_unique<Controller>(
        sim, link, *conformance, config.sdp, config.controller);
    controller->arm(config.sim_time);
  }

  Watchdog watchdog(
      sim, WatchdogLimits{config.max_events, config.max_wall_seconds},
      [sched = scheduler.get(), n] {
        std::ostringstream os;
        for (ClassId c = 0; c < n; ++c) {
          os << "class " << c << " backlog=" << sched->backlog_packets(c)
             << "\n";
        }
        return os.str();
      });
  watchdog.run_until(config.sim_time);
  for (auto& s : sources) s->stop();
  for (auto& m : monitors) m.finish();
  if (writer) {
    writer->flush();
    result.metrics_snapshots = writer->snapshots_written();
  }
  if (tracer) {
    link.set_probe(nullptr);
    tracer->save(config.trace_out);
    result.trace_records = tracer->records().size();
  }
  if (profiler || span_monitor) sim.set_monitor(nullptr);
  if (profiler) {
    std::ostringstream os;
    profiler->print(os);
    result.profile_report = os.str();
  }
  if (conformance) {
    conformance->finish();
    if (violation_log) violation_log->close();
    result.conformance = conformance->summary();
    result.violations = conformance->violations();
  }
  if (spans) {
    span_monitor->finish();
    spans->write(config.spans_out);
    result.span_count = spans->span_count();
  }
  result.executed_events = sim.executed_events();
  // Attribute the deterministic work measure to the enclosing sweep cell (a
  // no-op outside supervised sweeps with telemetry).
  report_cell_work(sim.executed_events());

  result.mean_delays = delays.means();
  result.ratios = delays.successive_ratios();
  result.departures.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    result.departures.push_back(delays.of(c).count());
  }
  result.measured_utilization = link.busy_time() / config.sim_time;
  if (injector) result.fault_episodes = injector->episodes_completed();
  result.fault_drops = link.fault_drops();
  if (control) {
    result.control_episodes = control->episodes_completed();
    result.control_retunes = control->retunes_applied();
    result.control_swaps = control->swaps_applied();
    result.control_class_changes = control->class_changes_applied();
    result.control_sheds = control->sheds_applied();
    result.shed_drops = link.shed_drops();
    result.drain_drops = link.drain_drops();
  }
  if (controller) {
    result.controller_ticks = controller->ticks();
    result.controller_updates = controller->updates();
    result.controller_weights = controller->weights();
    result.controller_g = controller->g();
  }
  result.rd_per_tau.reserve(monitors.size());
  for (auto& m : monitors) result.rd_per_tau.push_back(m.rd_values());
  result.sawtooth_index.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    result.sawtooth_index.push_back(sawtooth.index(c));
  }
  result.sawtooth_collapses = sawtooth.total_collapses();
  result.jitter.reserve(n);
  for (ClassId c = 0; c < n; ++c) result.jitter.push_back(jitter.jitter(c));
  if (!retained.empty()) {
    result.delay_percentiles.reserve(n);
    for (ClassId c = 0; c < n; ++c) {
      result.delay_percentiles.push_back(
          retained[c].percentiles(config.report_percentiles));
    }
  }

  if (!config.report_out.empty()) {
    RunReport report("study_a");
    Json run = Json::object();
    run.set("scheduler", to_string(config.scheduler))
        .set("classes", n)
        .set("utilization", config.utilization)
        .set("sim_time", config.sim_time)
        .set("seed", config.seed)
        .set("fault_plan", config.fault_plan)
        .set("control_plan", config.control_plan)
        .set("controller", to_string(config.controller.mode));
    report.set_section("run", std::move(run));
    Json res = Json::object();
    Json means = Json::array();
    for (const double d : result.mean_delays) means.push(d);
    Json ratios = Json::array();
    for (const double r : result.ratios) ratios.push(r);
    res.set("executed_events", result.executed_events)
        .set("total_departures", result.total_departures)
        .set("measured_utilization", result.measured_utilization)
        .set("mean_delays", std::move(means))
        .set("ratios", std::move(ratios));
    report.set_section("results", std::move(res));
    if (registry) report.set_section("metrics", metrics_json(*registry));
    if (profiler) {
      report.set_section("profile",
                         profile_json(*profiler, config.report_volatile));
    }
    if (conformance) {
      report.set_section(
          "conformance",
          conformance_json(result.conformance, result.violations));
    }
    if (injector) {
      report.set_section("faults",
                         Json::object()
                             .set("scheduled", injector->scheduled_episodes())
                             .set("begun", injector->episodes_begun())
                             .set("completed", injector->episodes_completed())
                             .set("drops", result.fault_drops));
    }
    if (control || controller) {
      Json ctrl = Json::object();
      if (control) {
        ctrl.set("scheduled", control->scheduled_episodes())
            .set("applied", control->episodes_applied())
            .set("completed", control->episodes_completed())
            .set("retunes", control->retunes_applied())
            .set("swaps", control->swaps_applied())
            .set("class_changes", control->class_changes_applied())
            .set("sheds", control->sheds_applied())
            .set("shed_drops", result.shed_drops)
            .set("drain_drops", result.drain_drops);
      }
      if (controller) {
        Json weights = Json::array();
        for (const double w : controller->weights()) weights.push(w);
        ctrl.set("controller",
                 Json::object()
                     .set("mode", to_string(config.controller.mode))
                     .set("ticks", controller->ticks())
                     .set("updates", controller->updates())
                     .set("weights", std::move(weights))
                     .set("g", controller->g()));
      }
      report.set_section("control", std::move(ctrl));
    }
    if (spans) {
      report.set_section("spans",
                         Json::object().set("count", result.span_count));
    }
    report.write(config.report_out);
  }

  // The trace is recorded at arrival order = emission order per source, but
  // interleaving across sources already happens through the simulator, so
  // records are time-ordered by construction.
  return result;
}

std::vector<StudyAResult> run_study_a_replications(const StudyAConfig& config,
                                                   std::uint32_t seeds) {
  PDS_CHECK(seeds >= 1, "need at least one seed");
  config.validate();
  std::vector<StudyAResult> results(seeds);
  ThreadPool& pool = ThreadPool::global();
  // One config copy per pool participant, hoisted out of the claim loop;
  // each task mutates only the seed, so the monitor_taus /
  // report_percentiles vectors are copied once per worker, not once per
  // replication.
  std::vector<StudyAConfig> local(pool.workers(), config);
  pool.parallel_for(seeds, [&](std::uint32_t worker, std::size_t k) {
    StudyAConfig& c = local[worker];
    c.seed = config.seed + k;
    results[k] = run_study_a(c);
  });
  return results;
}

std::vector<double> average_ratios_over_seeds(StudyAConfig config,
                                              std::uint32_t seeds) {
  const auto results = run_study_a_replications(config, seeds);
  std::vector<double> acc(results.front().ratios.size(), 0.0);
  for (const auto& result : results) {
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += result.ratios[i];
  }
  for (auto& r : acc) r /= static_cast<double>(seeds);
  return acc;
}

}  // namespace pds
