// Study A harness (Section 5): one congested link, N per-class Pareto
// sources, a pluggable scheduler, and the paper's measurement pipeline —
// long-term per-class delays, interval (timescale-tau) R_D series,
// per-packet departure records for the microscopic views, and an optional
// arrival trace for feasibility checking.
//
// Defaults reproduce the paper's setup: 4 classes, SDPs {1,2,4,8}, load
// split 40/30/20/10, Pareto(1.9) interarrivals, the 40/550/1500 B size law,
// and a link normalized so the mean packet transmission time is one p-unit
// (11.2 time units).
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"
#include "ctrl/controller.hpp"
#include "dsim/event_queue.hpp"
#include "dsim/time.hpp"
#include "obs/conformance.hpp"
#include "packet/size_law.hpp"
#include "sched/factory.hpp"
#include "stats/sawtooth.hpp"

namespace pds {

// Interarrival law of the per-class sources.
enum class ArrivalModel {
  kPareto,   // the paper's bursty default (shape = pareto_alpha)
  kPoisson,  // exponential gaps — matches the M/G/1 analytics in mg1.hpp
};

struct StudyAConfig {
  SchedulerKind scheduler = SchedulerKind::kWtp;
  std::vector<double> sdp{1.0, 2.0, 4.0, 8.0};
  std::vector<double> load_fractions{0.4, 0.3, 0.2, 0.1};
  double utilization = 0.95;
  ArrivalModel arrivals = ArrivalModel::kPareto;
  double pareto_alpha = 1.9;

  // Link normalization: capacity in bytes per time unit. With the paper's
  // size law the default gives a mean transmission time of one p-unit.
  double capacity = kStudyACapacity;

  double sim_time = 4.0e5;        // run length in time units
  double warmup_fraction = 0.1;   // leading fraction excluded from stats
  std::uint64_t seed = 1;

  // Kernel pending-event set; results are identical for both (see the
  // event-queue differential tests), the calendar can be faster at large
  // event populations.
  EventQueueKind event_queue = EventQueueKind::kBinaryHeap;

  // Monitoring timescales (time units) for the Figure 3 metric; empty
  // disables interval monitoring.
  std::vector<double> monitor_taus;

  // Retains the arrival trace (for Eq. 7 feasibility checks). Memory scales
  // with packet count.
  bool record_trace = false;

  // Retains one record per departure (for the microscopic views).
  bool record_departures = false;

  // Per-class delay percentiles to report (e.g. {50, 95, 99}); empty
  // disables sample retention.
  std::vector<double> report_percentiles;

  // --- Observability (src/obs) ---
  // When non-empty, a MetricsRegistry snapshot writer appends one row per
  // metric to this file (.jsonl => JSON lines, else CSV) every
  // `metrics_window` time units: per-class backlog gauges, windowed delay
  // summaries, departure/arrival counters, and achieved delay-ratio gauges
  // (see docs/observability.md for the naming scheme).
  std::string metrics_out;
  SimTime metrics_window = 100.0 * kPUnit;

  // When non-empty, a PacketTracer samples `trace_sample` of the packets
  // (deterministically per seed) and writes their lifecycle events here.
  std::string trace_out;
  double trace_sample = 0.01;

  // Attaches a SimProfiler to the kernel; the rendered per-category report
  // lands in StudyAResult::profile_report.
  bool profile = false;

  // When non-empty, a SpanTracer writes a Chrome trace-event JSON timeline
  // here (chrome://tracing / Perfetto): kernel event batches by label plus
  // one span per fault episode, all on the simulation clock — byte-identical
  // across runs. Composes with `profile` through a SimMonitorMux.
  std::string spans_out;

  // Live DDP conformance monitoring (obs/conformance.hpp): every
  // `conformance_tau` time units (0 disables) the window's adjacent-class
  // delay ratios are checked against the configured SDPs; windows whose
  // relative error exceeds `conformance_tolerance` become violation events.
  // Monitoring starts after warmup. A pair only counts in windows where both
  // classes have `conformance_min_samples` departures.
  SimTime conformance_tau = 0.0;
  double conformance_tolerance = 0.25;
  std::uint64_t conformance_min_samples = 10;
  // When non-empty (requires conformance_tau > 0), violations stream to this
  // JSONL file as they are detected.
  std::string conformance_out;

  // When non-empty, a unified schema-versioned RunReport (obs/report.hpp)
  // aggregating run parameters, result summary, metrics totals, profiler
  // categories, conformance state, and fault accounting is written here.
  // `report_volatile` opts the wall-clock section in (profiler wall times);
  // default reports are byte-identical across runs and --jobs.
  std::string report_out;
  bool report_volatile = false;

  // --- Robustness (src/fault, exp/supervisor) ---
  // Fault plan text (fault_plan.hpp grammar). When non-empty, a
  // FaultInjector drives the scripted episodes against the congested link,
  // attached under the target name "link" (so plans say e.g.
  // "down link at=1000 for=500 mode=hold"). Episode boundaries are ordinary
  // simulator events and loss bursts are seeded from the plan, so a faulted
  // run keeps the byte-identical determinism contract.
  std::string fault_plan;

  // --- Runtime control plane (src/ctrl) ---
  // Control plan text (ctrl/control_plan.hpp grammar). When non-empty, a
  // ControlInjector drives the scripted reconfigurations against the
  // congested link, attached under the target name "link" (so plans say
  // e.g. "retune link at=1000 w=1,2,4,8" or "swap link at=2000 sched=pad").
  // Every episode boundary is an ordinary simulator event; a controlled run
  // keeps the byte-identical determinism contract.
  std::string control_plan;

  // Adaptive differentiation (ctrl/controller.hpp): a feedback loop from
  // the live Eq. 2 conformance errors to the scheduler's weights (or HPD's
  // g). Requires conformance_tau > 0 when enabled — the monitor is the
  // controller's sensor.
  ControllerConfig controller;

  // Watchdog limits for the run (0 = unlimited). max_events trips
  // deterministically; max_wall_seconds is a hang backstop. A trip throws
  // WatchdogError carrying a diagnostic snapshot with per-class backlogs.
  std::uint64_t max_events = 0;
  double max_wall_seconds = 0.0;

  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(sdp.size());
  }
  SimTime warmup_end() const { return sim_time * warmup_fraction; }

  void validate() const;
};

struct DepartureRecord {
  SimTime time;    // departure (end of transmission)
  ClassId cls;
  double delay;    // queueing delay at this hop (time units)
};

struct StudyAResult {
  std::vector<double> mean_delays;            // per class, time units
  std::vector<std::uint64_t> departures;      // per class, after warmup
  std::vector<double> ratios;                 // d_i / d_{i+1}
  double measured_utilization = 0.0;          // busy time / sim time
  std::uint64_t total_departures = 0;

  // Per requested tau, in the order given: the R_D values of all intervals.
  std::vector<std::vector<double>> rd_per_tau;

  std::vector<ArrivalRecord> trace;           // iff record_trace
  std::vector<DepartureRecord> per_packet;    // iff record_departures

  // delay_percentiles[cls][k] for report_percentiles[k] (time units);
  // empty unless requested.
  std::vector<std::vector<double>> delay_percentiles;
  std::vector<double> sawtooth_index;         // per class
  std::uint64_t sawtooth_collapses = 0;
  std::vector<double> jitter;                 // per class (RFC 3550 style)

  // Fault accounting (iff config.fault_plan): episode instances completed
  // and packets dropped by link-down episodes in drop mode. Burst-loss drops
  // are counted at the LossyLink layer and do not appear here (Study A's
  // link is lossless apart from faults).
  std::uint64_t fault_episodes = 0;
  std::uint64_t fault_drops = 0;

  // Control-plane accounting (iff config.control_plan): episode instances
  // completed plus per-kind application counts, and arrivals dropped by
  // class drains / the overload shed guard.
  std::uint64_t control_episodes = 0;
  std::uint64_t control_retunes = 0;
  std::uint64_t control_swaps = 0;
  std::uint64_t control_class_changes = 0;
  std::uint64_t control_sheds = 0;
  std::uint64_t shed_drops = 0;
  std::uint64_t drain_drops = 0;

  // Controller accounting (iff config.controller.enabled()): ticks taken,
  // knob updates applied, and the final knob state (weights for kWeights,
  // g for kHpdG; see ctrl/controller.hpp).
  std::uint64_t controller_ticks = 0;
  std::uint64_t controller_updates = 0;
  std::vector<double> controller_weights;
  double controller_g = 0.0;

  // Rendered SimProfiler tables (iff config.profile).
  std::string profile_report;
  // Lifecycle records actually traced (iff config.trace_out was set; the
  // same records are in the file).
  std::uint64_t trace_records = 0;
  std::uint64_t metrics_snapshots = 0;        // iff config.metrics_out

  // DDP conformance (iff config.conformance_tau > 0): the run-end summary
  // and every violation, in window order.
  ConformanceSummary conformance;
  std::vector<ConformanceViolation> violations;

  std::uint64_t span_count = 0;       // iff config.spans_out
  std::uint64_t executed_events = 0;  // kernel events over the whole run
};

StudyAResult run_study_a(const StudyAConfig& config);

// Runs `seeds` independent replications (seed, seed+1, ...) and returns the
// per-pair ratios averaged across runs, the paper's methodology for
// Figures 1 and 2 ("averaging over ten simulation runs with different
// seeds" — the Pareto tail rules out confidence intervals). Replications
// are embarrassingly parallel: they execute on the process-wide
// work-stealing pool (exp/thread_pool.hpp, sized by --jobs / PDS_JOBS);
// every Simulator and all per-run state is thread-local, and results are
// identical to the sequential order. Called from inside a sweep cell the
// loop runs inline on the calling worker (nested-fan-out rule).
std::vector<double> average_ratios_over_seeds(StudyAConfig config,
                                              std::uint32_t seeds);

// Parallel multi-seed runner returning every replication's full result,
// ordered by seed offset.
std::vector<StudyAResult> run_study_a_replications(const StudyAConfig& config,
                                                   std::uint32_t seeds);

}  // namespace pds
