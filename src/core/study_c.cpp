#include "core/study_c.hpp"

#include <limits>
#include <memory>

#include "stats/delay_stats.hpp"
#include "traffic/calibration.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"

namespace pds {

void StudyCConfig::validate() const {
  SchedulerConfig sc{sdp, capacity, 0.875, 1500.0};
  sc.validate(/*needs_capacity=*/true);
  PDS_CHECK(load_fractions.size() == sdp.size(),
            "load fractions / SDP size mismatch");
  if (policy == DropPolicy::kPlr) {
    PDS_CHECK(ldp.size() == sdp.size(), "LDP / SDP size mismatch");
  }
  PDS_CHECK(offered_load > 0.0, "offered load must be positive");
  PDS_CHECK(buffer_packets >= 1, "buffer must hold at least one packet");
  PDS_CHECK(packet_bytes > 0, "packet size must be positive");
  PDS_CHECK(pareto_alpha > 1.0, "Pareto shape must exceed 1");
  PDS_CHECK(sim_time > 0.0, "sim_time must be positive");
  PDS_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
            "warmup fraction must be in [0,1)");
}

StudyCResult run_study_c(const StudyCConfig& config) {
  config.validate();
  const std::uint32_t n = config.num_classes();
  const SimTime warmup = config.sim_time * config.warmup_fraction;

  Simulator sim;
  PacketIdAllocator ids;
  Rng master(config.seed);

  SchedulerConfig sched_config;
  sched_config.sdp = config.sdp;
  sched_config.link_capacity = config.capacity;
  auto scheduler = make_scheduler(config.scheduler, sched_config);

  std::unique_ptr<PlrDropper> plr;
  if (config.policy == DropPolicy::kPlr) {
    plr = std::make_unique<PlrDropper>(config.ldp, config.plr_window);
  }

  ClassDelayStats delays(n, warmup);
  LossyLink link(
      sim, *scheduler, config.capacity, config.buffer_packets, config.policy,
      std::move(plr),
      [&](Packet&& p, SimTime wait, SimTime now) {
        delays.record(p.cls, wait, now);
      },
      [](const Packet&, SimTime) {});

  // Per-class Pareto sources at the requested offered load (values above 1
  // are legal here — the dropper sheds the excess).
  const auto gaps = class_mean_interarrivals(
      config.offered_load, config.load_fractions, config.capacity,
      static_cast<double>(config.packet_bytes));
  std::vector<std::unique_ptr<RenewalSource>> sources;
  sources.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    sources.push_back(std::make_unique<RenewalSource>(
        sim, ids, c, pareto_gaps(config.pareto_alpha, gaps[c]),
        fixed_size(config.packet_bytes), master.split(),
        [&link](Packet p) { link.arrive(std::move(p)); }));
    sources.back()->start(kTimeZero);
  }

  sim.run_until(config.sim_time);
  for (auto& s : sources) s->stop();

  StudyCResult result;
  result.loss_rates.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    result.loss_rates.push_back(link.loss_rate(c));
    result.total_arrivals += link.arrivals(c);
    result.total_drops += link.drops(c);
  }
  for (ClassId c = 0; c + 1 < n; ++c) {
    const double hi = result.loss_rates[c + 1];
    result.loss_ratios.push_back(
        hi > 0.0 ? result.loss_rates[c] / hi
                 : std::numeric_limits<double>::infinity());
  }
  result.mean_delays = delays.means();
  result.delay_ratios = delays.successive_ratios();
  result.aggregate_loss_rate =
      result.total_arrivals > 0
          ? static_cast<double>(result.total_drops) /
                static_cast<double>(result.total_arrivals)
          : 0.0;
  result.measured_utilization = link.link().busy_time() / config.sim_time;
  return result;
}

}  // namespace pds
