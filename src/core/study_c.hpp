// Study C harness — coupled delay and loss differentiation (extension).
//
// The paper defers loss-rate differentiation to future work (Sections 1, 7)
// and notes that its Section 3 lossless model needs "an adequately large
// number of packet buffers". Study C drops that assumption: a finite-buffer
// link is driven at an offered load that may exceed capacity, a drop policy
// sheds the excess, and both the per-class *loss rates* (vs the LDP
// targets) and the per-class *queueing delays of survivors* (vs the DDP
// targets implied by the SDPs) are measured. This is the experiment behind
// the ext_loss_differentiation bench and the coupled-differentiation tests.
#pragma once

#include <cstdint>
#include <vector>

#include "dropper/lossy_link.hpp"
#include "packet/size_law.hpp"
#include "sched/factory.hpp"

namespace pds {

struct StudyCConfig {
  SchedulerKind scheduler = SchedulerKind::kWtp;
  std::vector<double> sdp{1.0, 2.0, 4.0, 8.0};

  // Loss Differentiation Parameters, non-increasing (higher class = less
  // loss); used only when policy == kPlr.
  std::vector<double> ldp{8.0, 4.0, 2.0, 1.0};

  std::vector<double> load_fractions{0.25, 0.25, 0.25, 0.25};

  // Offered load relative to capacity; values > 1 force sustained loss.
  double offered_load = 1.3;

  DropPolicy policy = DropPolicy::kPlr;
  std::uint64_t plr_window = 0;        // 0 = PLR(inf)
  std::uint64_t buffer_packets = 200;

  double capacity = kStudyACapacity;
  std::uint32_t packet_bytes = 441;    // fixed size keeps loss rates clean
  double pareto_alpha = 1.9;
  double sim_time = 2.0e5;
  double warmup_fraction = 0.1;
  std::uint64_t seed = 1;

  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(sdp.size());
  }
  void validate() const;
};

struct StudyCResult {
  std::vector<double> loss_rates;          // drops / arrivals per class
  std::vector<double> loss_ratios;         // l_i / l_{i+1}
  std::vector<double> mean_delays;         // survivors only (time units)
  std::vector<double> delay_ratios;        // d_i / d_{i+1}
  std::uint64_t total_arrivals = 0;
  std::uint64_t total_drops = 0;
  double aggregate_loss_rate = 0.0;
  double measured_utilization = 0.0;
};

StudyCResult run_study_c(const StudyCConfig& config);

}  // namespace pds
