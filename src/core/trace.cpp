#include "core/trace.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pds {

double fcfs_average_delay(const std::vector<ArrivalRecord>& trace,
                          const std::vector<bool>& included, double capacity,
                          SimTime warmup_end) {
  PDS_CHECK(capacity > 0.0, "capacity must be positive");
  double prev_finish = 0.0;
  double total_wait = 0.0;
  std::uint64_t counted = 0;
  SimTime prev_time = 0.0;
  for (const auto& rec : trace) {
    PDS_CHECK(rec.time >= prev_time, "trace not time-ordered");
    prev_time = rec.time;
    PDS_CHECK(rec.cls < included.size(), "class index out of range");
    if (!included[rec.cls]) continue;
    // Lindley recursion for the single-server FIFO queue.
    const double start = std::max(rec.time, prev_finish);
    const double wait = start - rec.time;
    prev_finish = start + static_cast<double>(rec.size_bytes) / capacity;
    if (rec.time >= warmup_end) {
      total_wait += wait;
      ++counted;
    }
  }
  if (counted == 0) return 0.0;
  return total_wait / static_cast<double>(counted);
}

std::vector<std::uint64_t> class_counts(
    const std::vector<ArrivalRecord>& trace, std::uint32_t num_classes,
    SimTime warmup_end) {
  std::vector<std::uint64_t> counts(num_classes, 0);
  for (const auto& rec : trace) {
    PDS_CHECK(rec.cls < num_classes, "class index out of range");
    if (rec.time >= warmup_end) ++counts[rec.cls];
  }
  return counts;
}

}  // namespace pds
