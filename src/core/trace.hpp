// Arrival traces and FCFS replay.
//
// The feasibility conditions (Eq. 7) compare the target class delays against
// the average delay every subset of classes would experience in a
// work-conserving FCFS server. Replaying a recorded arrival trace through
// the single-server queue recursion gives those subset delays exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "dsim/time.hpp"
#include "packet/packet.hpp"

namespace pds {

struct ArrivalRecord {
  SimTime time;
  ClassId cls;
  std::uint32_t size_bytes;
};

// Average queueing delay (wait before service, excluding transmission) of
// the records selected by `included[record.cls]`, served FCFS at `capacity`
// bytes per time unit. Records must be in non-decreasing time order.
// Departures whose *arrival* time is before `warmup_end` are excluded from
// the average (they are still served, so they shape later waits).
// Returns 0 when no selected record survives the warmup cut.
double fcfs_average_delay(const std::vector<ArrivalRecord>& trace,
                          const std::vector<bool>& included, double capacity,
                          SimTime warmup_end = 0.0);

// Per-class arrival counts after the warmup cut.
std::vector<std::uint64_t> class_counts(
    const std::vector<ArrivalRecord>& trace, std::uint32_t num_classes,
    SimTime warmup_end = 0.0);

}  // namespace pds
