#include "core/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/contracts.hpp"

namespace pds {

void save_trace(const std::string& path,
                const std::vector<ArrivalRecord>& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << "time,class,bytes\n";
  out.precision(17);
  for (const auto& rec : trace) {
    out << rec.time << "," << rec.cls << "," << rec.size_bytes << "\n";
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<ArrivalRecord> load_trace(const std::string& path,
                                      std::uint32_t num_classes) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::string line;
  PDS_CHECK(static_cast<bool>(std::getline(in, line)), "empty trace file");
  PDS_CHECK(line == "time,class,bytes",
            "unexpected trace header in " + path);
  std::vector<ArrivalRecord> trace;
  SimTime prev = 0.0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    ArrivalRecord rec{};
    char comma1 = 0;
    char comma2 = 0;
    row >> rec.time >> comma1 >> rec.cls >> comma2 >> rec.size_bytes;
    if (!row || comma1 != ',' || comma2 != ',') {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": malformed trace row: " + line);
    }
    PDS_CHECK(rec.time >= prev, "trace not time-ordered");
    PDS_CHECK(rec.size_bytes > 0, "zero-size packet in trace");
    if (num_classes > 0) {
      PDS_CHECK(rec.cls < num_classes, "class index out of range in trace");
    }
    prev = rec.time;
    trace.push_back(rec);
  }
  return trace;
}

std::size_t replay_trace(Simulator& sim,
                         const std::vector<ArrivalRecord>& trace,
                         std::function<void(const ArrivalRecord&)> handler) {
  PDS_CHECK(static_cast<bool>(handler), "null replay handler");
  // Every scheduled event shares one handler; the shared_ptr (16B) plus the
  // record (16B) fit in SimEvent's inline buffer, so scheduling a record
  // costs no allocation beyond the queue slot itself.
  auto shared = std::make_shared<std::function<void(const ArrivalRecord&)>>(
      std::move(handler));
  SimTime prev = 0.0;
  for (const auto& rec : trace) {
    PDS_CHECK(rec.time >= prev, "trace not time-ordered");
    prev = rec.time;
    sim.schedule_at(rec.time, SimEvent([shared, rec] { (*shared)(rec); },
                                       "trace.replay"));
  }
  return trace.size();
}

}  // namespace pds
