// Arrival-trace persistence and replay.
//
// Section 6 suggests using "bursty precomputed arrivals, common for all
// flows" to compare treatments on identical traffic; Section 7 calls for
// estimating d(lambda) from real link measurements. Both need traces as
// first-class artifacts: this module stores ArrivalRecord sequences as CSV
// (time,class,bytes — interoperable with external tooling), loads them
// back with validation, and replays them through a Simulator so any
// scheduler can be driven by a recorded or hand-built workload.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "dsim/simulator.hpp"

namespace pds {

// Writes `trace` to `path` (CSV with header). Throws std::runtime_error on
// I/O failure.
void save_trace(const std::string& path,
                const std::vector<ArrivalRecord>& trace);

// Loads a trace written by save_trace (or any CSV with the same header).
// Validates ordering, class indices against `num_classes` (0 = skip the
// class check) and positive sizes; throws std::runtime_error /
// std::invalid_argument on malformed input.
std::vector<ArrivalRecord> load_trace(const std::string& path,
                                      std::uint32_t num_classes = 0);

// Schedules one event per record on `sim`; each fires `handler(record)` at
// record.time. The records must be time-ordered. Returns the number of
// scheduled arrivals.
std::size_t replay_trace(Simulator& sim,
                         const std::vector<ArrivalRecord>& trace,
                         std::function<void(const ArrivalRecord&)> handler);

}  // namespace pds
