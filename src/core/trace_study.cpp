#include "core/trace_study.hpp"

#include "core/trace_io.hpp"
#include "sched/link.hpp"
#include "stats/delay_stats.hpp"
#include "util/contracts.hpp"

namespace pds {

void TraceStudyConfig::validate() const {
  SchedulerConfig sc{sdp, capacity, 0.875, 1500.0};
  sc.validate(/*needs_capacity=*/true);
  PDS_CHECK(warmup_end >= 0.0, "negative warmup");
}

TraceStudyResult run_trace_study(const std::vector<ArrivalRecord>& trace,
                                 const TraceStudyConfig& config) {
  config.validate();
  PDS_CHECK(!trace.empty(), "empty trace");
  const auto n = static_cast<std::uint32_t>(config.sdp.size());

  Simulator sim;
  SchedulerConfig sched_config;
  sched_config.sdp = config.sdp;
  sched_config.link_capacity = config.capacity;
  auto scheduler = make_scheduler(config.scheduler, sched_config);

  TraceStudyResult result;
  ClassDelayStats delays(n, /*warmup_end=*/0.0);
  Link link(sim, *scheduler, config.capacity,
            [&](Packet&& p, SimTime wait, SimTime now) {
              // The conservation-law quantity sums over EVERY packet: with
              // equal sizes the full-horizon total is scheduler-invariant,
              // while any subset's waits are not.
              result.total_wait += wait;
              result.makespan = now;
              // Per-class statistics cut warmup by *arrival* time so every
              // scheduler counts exactly the same packet population.
              if (p.created < config.warmup_end) return;
              delays.record(p.cls, wait, now);
            });

  std::uint64_t next_id = 0;
  replay_trace(sim, trace, [&](const ArrivalRecord& rec) {
    PDS_CHECK(rec.cls < n, "trace class exceeds scheduler classes");
    Packet p;
    p.id = next_id++;
    p.cls = rec.cls;
    p.size_bytes = rec.size_bytes;
    p.created = rec.time;
    link.arrive(std::move(p));
  });
  sim.run();

  result.mean_delays = delays.means();
  result.ratios = delays.successive_ratios();
  result.departures.reserve(n);
  for (ClassId c = 0; c < n; ++c) {
    result.departures.push_back(delays.of(c).count());
  }
  return result;
}

}  // namespace pds
