// Trace-driven scheduler study: run any scheduler over a *fixed* recorded
// arrival sequence. With identical arrivals, scheduler comparisons are
// exact — no seed noise — which is how the conservation law (Eq. 5) and the
// Figure 4/5 "same arriving packet streams" comparisons are made precise.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"
#include "sched/factory.hpp"

namespace pds {

struct TraceStudyConfig {
  SchedulerKind scheduler = SchedulerKind::kWtp;
  std::vector<double> sdp{1.0, 2.0, 4.0, 8.0};
  double capacity = 39.375;
  SimTime warmup_end = 0.0;  // departures of packets arriving earlier are
                             // served but excluded from the statistics
  void validate() const;
};

struct TraceStudyResult {
  std::vector<double> mean_delays;        // per class (time units)
  std::vector<std::uint64_t> departures;  // per class, post-warmup
  std::vector<double> ratios;             // d_i / d_{i+1}
  // Sum of ALL packets' waits over the whole run (ignores the warmup
  // cut) — the conservation-law quantity: exactly equal across schedulers
  // when packet sizes are equal.
  double total_wait = 0.0;
  SimTime makespan = 0.0;                 // last departure completion time
};

TraceStudyResult run_trace_study(const std::vector<ArrivalRecord>& trace,
                                 const TraceStudyConfig& config);

}  // namespace pds
