#include "ctrl/control_injector.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "fault/fault_plan.hpp"  // target_pattern_matches
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/pad.hpp"
#include "util/contracts.hpp"

namespace pds {

namespace {

[[noreturn]] void bad_plan(const std::string& msg) {
  throw std::invalid_argument("control plan: " + msg);
}

[[noreturn]] void bad_line(std::size_t line, const std::string& msg) {
  bad_plan("line " + std::to_string(line) + ": " + msg);
}

bool weight_capable(SchedulerKind kind) {
  return kind != SchedulerKind::kFcfs;
}

bool class_based(SchedulerKind kind) {
  return kind != SchedulerKind::kFcfs && kind != SchedulerKind::kScfq &&
         kind != SchedulerKind::kVirtualClock;
}

}  // namespace

ControlInjector::ControlInjector(Simulator& sim, ControlPlan plan)
    : sim_(sim), plan_(std::move(plan)) {}

void ControlInjector::attach(const std::string& name, Link& link,
                             SchedulerKind kind,
                             const SchedulerConfig& config) {
  PDS_CHECK(!armed_, "cannot attach targets after arm()");
  PDS_CHECK(!name.empty() && name != "*", "invalid target name");
  PDS_CHECK(name.back() != '*', "target name may not end in *");
  PDS_CHECK(targets_.find(name) == targets_.end(),
            "duplicate control target " + name);
  PDS_CHECK(config.num_classes() == link.scheduler().num_classes(),
            "config/scheduler class count mismatch");
  targets_[name] = Target{&link, kind, config};
  attach_order_.push_back(name);
}

void ControlInjector::arm() {
  PDS_CHECK(!armed_, "control injector armed twice");
  armed_ = true;

  // Expand wildcards over the attached targets — same contract as
  // FaultInjector: bare `*` in name order, prefix patterns in attach order.
  for (const auto& ep : plan_.episodes) {
    std::vector<std::string> names;
    if (ep.target == "*") {
      for (const auto& [name, target] : targets_) names.push_back(name);
      if (names.empty()) bad_plan("episode targets *, nothing attached");
    } else if (is_target_pattern(ep.target)) {
      for (const auto& name : attach_order_) {
        if (target_pattern_matches(ep.target, name)) names.push_back(name);
      }
      if (names.empty()) {
        bad_line(ep.line,
                 "pattern " + ep.target + " matches no attached target");
      }
    } else {
      if (targets_.find(ep.target) == targets_.end()) {
        bad_plan("unknown target " + ep.target);
      }
      names.push_back(ep.target);
    }
    for (const auto& name : names) {
      Instance inst;
      inst.episode = ep;
      inst.episode.target = name;
      inst.target = &targets_.at(name);
      instances_.push_back(std::move(inst));
    }
  }

  // Same-kind episodes on one target must not overlap. Instantaneous
  // episodes occupy a point, so two of a kind conflict only when they share
  // `at`; shed windows use interval overlap. Both plan lines are named.
  for (std::size_t a = 0; a < instances_.size(); ++a) {
    for (std::size_t b = a + 1; b < instances_.size(); ++b) {
      const auto& ea = instances_[a].episode;
      const auto& eb = instances_[b].episode;
      if (ea.kind != eb.kind || ea.target != eb.target) continue;
      const bool overlap = ea.at == eb.at ||
                           (ea.at < eb.end() && eb.at < ea.end());
      if (overlap) {
        bad_plan("overlapping " + to_string(ea.kind) + " episodes on " +
                 ea.target + " (lines " +
                 std::to_string(std::min(ea.line, eb.line)) + " and " +
                 std::to_string(std::max(ea.line, eb.line)) + ")");
      }
    }
  }

  // Validate each target's episode *timeline* and pre-construct swap
  // replacements. Kind and weights are tracked through earlier episodes so
  // a `retune g=` after a `swap sched=hpd` is legal, a retune after a swap
  // to FCFS-like kinds is caught here, and every replacement starts with
  // the weights in force at its swap instant.
  for (auto& [name, target] : targets_) {
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      if (instances_[i].episode.target == name) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return instances_[a].episode.at <
                              instances_[b].episode.at;
                     });
    SchedulerKind kind = target.kind;
    std::vector<double> sdp = target.config.sdp;
    double g = target.config.hpd_g;
    const std::uint32_t n = target.config.num_classes();
    for (const std::size_t i : order) {
      Instance& inst = instances_[i];
      const ControlEpisode& ep = inst.episode;
      switch (ep.kind) {
        case ControlKind::kRetune:
          if (!ep.weights.empty()) {
            if (!weight_capable(kind)) {
              bad_line(ep.line, "retune w targets " + name + ", which runs " +
                                    to_string(kind) + " (no weights)");
            }
            if (ep.weights.size() != n) {
              bad_line(ep.line, "w needs " + std::to_string(n) +
                                    " values (one per class), got " +
                                    std::to_string(ep.weights.size()));
            }
            sdp = ep.weights;
          }
          if (ep.g > 0.0 && kind != SchedulerKind::kHpd) {
            bad_line(ep.line, "retune g targets " + name + ", which runs " +
                                  to_string(kind) + " (not hpd) at t=" +
                                  std::to_string(ep.at));
          }
          if (ep.g > 0.0) g = ep.g;
          break;
        case ControlKind::kClass:
          if (ep.cls >= n) {
            bad_line(ep.line, "class index " + std::to_string(ep.cls) +
                                  " out of range (target " + name + " has " +
                                  std::to_string(n) + " classes)");
          }
          break;
        case ControlKind::kSwap: {
          if (!class_based(kind)) {
            bad_line(ep.line, "swap targets " + name + ", which runs " +
                                  to_string(kind) +
                                  " (not class-based) at t=" +
                                  std::to_string(ep.at));
          }
          if (ep.sched == SchedulerKind::kBpr &&
              target.config.link_capacity <= 0.0) {
            bad_line(ep.line, "swap to bpr needs a link capacity in the "
                              "scheduler config");
          }
          SchedulerConfig replacement_config = target.config;
          replacement_config.sdp = sdp;
          replacement_config.hpd_g = g;
          inst.replacement = make_scheduler(ep.sched, replacement_config);
          PDS_REQUIRE(dynamic_cast<ClassBasedScheduler*>(
                          inst.replacement.get()) != nullptr);
          kind = ep.sched;
          break;
        }
        case ControlKind::kShed:
          if (ep.shed.classes > n) {
            bad_line(ep.line, "shed classes=" +
                                  std::to_string(ep.shed.classes) +
                                  " exceeds the " + std::to_string(n) +
                                  " classes of target " + name);
          }
          break;
      }
    }
  }

  // Route control drops (drains, sheds) back through the injector so the
  // ctrl.* counters see them.
  for (auto& [name, target] : targets_) {
    target.link->set_control_drop_handler(
        [this](const Packet& p, ControlDropKind kind, SimTime) {
          note_control_drop(p, kind);
        });
  }

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const auto& ep = instances_[i].episode;
    PDS_CHECK(ep.at >= sim_.now(),
              "control episode starts before the current simulation time");
    if (ep.kind == ControlKind::kShed) {
      sim_.schedule_at(ep.at, SimEvent([this, i] { apply(i); }, "ctrl.begin"));
      sim_.schedule_at(ep.end(),
                       SimEvent([this, i] { end_shed(i); }, "ctrl.end"));
    } else {
      sim_.schedule_at(ep.at, SimEvent([this, i] { apply(i); }, "ctrl.apply"));
    }
  }
}

void ControlInjector::set_span_buffer(SpanBuffer* buffer,
                                      double us_per_time_unit) {
#if PDS_OBS_ENABLED
  spans_ = buffer;
  span_scale_ = us_per_time_unit;
#else
  (void)buffer;
  (void)us_per_time_unit;
#endif
}

void ControlInjector::bind_metrics(MetricsRegistry& registry) {
  metrics_ = &registry;
  registry.counter("ctrl.episodes");
  registry.counter("ctrl.shed.drops");
  registry.counter("ctrl.drain.drops");
}

std::uint64_t ControlInjector::shed_drops() const {
  std::uint64_t total = 0;
  for (const auto& [name, target] : targets_) {
    total += target.link->shed_drops();
  }
  return total;
}

std::uint64_t ControlInjector::drain_drops() const {
  std::uint64_t total = 0;
  for (const auto& [name, target] : targets_) {
    total += target.link->drain_drops();
  }
  return total;
}

std::string ControlInjector::active_summary() const {
  std::ostringstream os;
  bool first = true;
  for (const Instance& inst : instances_) {
    if (!inst.active) continue;
    if (!first) os << "+";
    first = false;
    os << to_string(inst.episode.kind) << " " << inst.episode.target;
  }
  return os.str();
}

Scheduler& ControlInjector::current_scheduler(const std::string& name) {
  const auto it = targets_.find(name);
  PDS_CHECK(it != targets_.end(), "unknown control target " + name);
  return it->second.link->scheduler_mut();
}

void ControlInjector::emit_span(const ControlEpisode& ep) {
#if PDS_OBS_ENABLED
  if (spans_ == nullptr) return;
  std::ostringstream args;
  args << "\"kind\":\"" << to_string(ep.kind) << "\",\"target\":\""
       << ep.target << "\"";
  if (ep.kind == ControlKind::kSwap) {
    args << ",\"sched\":\"" << to_string(ep.sched) << "\"";
  }
  spans_->emit(Span{ep.at * span_scale_, (ep.end() - ep.at) * span_scale_,
                    kSpanSimPid, kSpanCtrlTid,
                    to_string(ep.kind) + " " + ep.target, "ctrl",
                    args.str()});
#else
  (void)ep;
#endif
}

void ControlInjector::note_control_drop(const Packet& p,
                                        ControlDropKind kind) {
  if (metrics_ == nullptr) return;
  if (kind == ControlDropKind::kShed) {
    metrics_->counter("ctrl.shed.drops").inc();
    metrics_->counter("ctrl.shed.c" + std::to_string(p.cls)).inc();
  } else {
    metrics_->counter("ctrl.drain.drops").inc();
  }
}

void ControlInjector::apply(std::size_t index) {
  Instance& inst = instances_[index];
  const ControlEpisode& ep = inst.episode;
  Link& link = *inst.target->link;
  ++applied_;
  if (metrics_ != nullptr) metrics_->counter("ctrl.episodes").inc();
  switch (ep.kind) {
    case ControlKind::kRetune: {
      Scheduler& sched = link.scheduler_mut();
      if (!ep.weights.empty()) sched.set_weights(ep.weights);
      if (ep.g > 0.0) {
        auto* hpd = dynamic_cast<HpdScheduler*>(&sched);
        PDS_REQUIRE(hpd != nullptr);  // arm() validated the kind timeline
        hpd->set_g(ep.g);
      }
      ++retunes_;
      break;
    }
    case ControlKind::kClass:
      link.set_class_admission(ep.cls, !ep.drain);
      ++class_changes_;
      break;
    case ControlKind::kSwap: {
      auto* old_sched =
          dynamic_cast<ClassBasedScheduler*>(&link.scheduler_mut());
      auto* replacement =
          dynamic_cast<ClassBasedScheduler*>(inst.replacement.get());
      PDS_REQUIRE(old_sched != nullptr && replacement != nullptr);
      replacement->adopt_backlog(old_sched->release_backlog(), sim_.now());
      link.set_scheduler(*replacement);
      inst.target->kind = ep.sched;
      ++swaps_;
      break;
    }
    case ControlKind::kShed:
      link.set_shed(ep.shed);
      inst.active = true;
      ++sheds_;
      // Completion (and the span) happens at the window end.
      return;
  }
  ++completed_;
  emit_span(ep);
}

void ControlInjector::end_shed(std::size_t index) {
  Instance& inst = instances_[index];
  PDS_REQUIRE(inst.episode.kind == ControlKind::kShed && inst.active);
  inst.target->link->clear_shed();
  inst.active = false;
  ++completed_;
  emit_span(inst.episode);
}

}  // namespace pds
