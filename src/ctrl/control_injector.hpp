// ControlInjector: drives a ControlPlan against live links, clock-driven —
// the deterministic stand-in for an xds-style control channel.
//
// Usage:
//   ControlInjector inj(sim, parse_control_plan(text));
//   inj.attach("link", link, SchedulerKind::kWtp, sched_config);
//   inj.arm();                      // validate + schedule episodes
//   sim.run_until(t_end);
//
// attach() names a Link together with the kind and config of the scheduler
// currently serving it (the config is the template swap replacements are
// built from — same capacity, burst, arena). arm() expands wildcard targets
// (bare `*` in attach-name order, prefix patterns in attach order, exactly
// like FaultInjector), validates every episode against the target's
// scheduler *timeline* — a `retune g=` must land while the target runs HPD,
// retune/swap need a weight-capable / class-based scheduler, tracking kind
// changes through earlier swaps — rejects same-kind overlaps on one target
// (both plan lines named; instantaneous episodes conflict when they share
// `at`), pre-constructs every swap replacement, and schedules the episode
// boundaries as ordinary SimEvents ("ctrl.apply" for instantaneous
// episodes, "ctrl.begin"/"ctrl.end" for shed windows).
//
// Determinism contract (docs/control_plane.md): every control boundary is a
// plan-scripted simulator event; nothing reads the wall clock or thread
// identity. A controlled run is exactly as replayable as a plain one, and
// sweep cells carrying control plans keep the byte-identical --jobs
// contract of exp/sweep.hpp.
//
// The injector must outlive the simulation run (scheduled events capture
// `this`, and swapped-in schedulers are owned here).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/control_plan.hpp"
#include "dsim/simulator.hpp"
#include "sched/link.hpp"

namespace pds {

class MetricsRegistry;
class SpanBuffer;

class ControlInjector {
 public:
  ControlInjector(Simulator& sim, ControlPlan plan);

  ControlInjector(const ControlInjector&) = delete;
  ControlInjector& operator=(const ControlInjector&) = delete;

  // Registers a target before arm(). Names must be unique; the link (and
  // the scheduler currently serving it) must outlive the injector's run.
  // `kind`/`config` describe that scheduler; swap replacements are built
  // from `config` with only the kind (and any retuned weights) changed.
  void attach(const std::string& name, Link& link, SchedulerKind kind,
              const SchedulerConfig& config);

  // Validates the plan against the attached targets and schedules every
  // episode. Call exactly once, before running the simulator, at a
  // simulation time no later than the earliest episode. Throws
  // std::invalid_argument on unknown targets, unmatched patterns, class
  // indices out of range, retune/swap aimed at schedulers that cannot take
  // them, or same-kind overlapping episodes on one target.
  void arm();

  const ControlPlan& plan() const noexcept { return plan_; }

  // Episode instances after wildcard expansion (0 until arm()).
  std::size_t scheduled_episodes() const noexcept {
    return instances_.size();
  }
  std::uint64_t episodes_applied() const noexcept { return applied_; }
  std::uint64_t episodes_completed() const noexcept { return completed_; }

  // Per-kind application counts (instances, post-expansion).
  std::uint64_t retunes_applied() const noexcept { return retunes_; }
  std::uint64_t swaps_applied() const noexcept { return swaps_; }
  std::uint64_t class_changes_applied() const noexcept {
    return class_changes_;
  }
  std::uint64_t sheds_applied() const noexcept { return sheds_; }

  // Control-plane drops summed over the attached links (live totals).
  std::uint64_t shed_drops() const;
  std::uint64_t drain_drops() const;

  // Optional span emission (obs/span.hpp): each applied episode becomes one
  // span on the control track (kSpanCtrlTid; zero-duration for
  // instantaneous episodes), scaled by `us_per_time_unit`. Compiled out
  // when PDS_OBS_ENABLED=0. Set before running; the buffer must outlive the
  // run.
  void set_span_buffer(SpanBuffer* buffer, double us_per_time_unit = 1.0);

  // Optional metrics: counters `ctrl.episodes` (applied instances),
  // `ctrl.shed.drops`, `ctrl.drain.drops`, and per-class
  // `ctrl.shed.c<idx>` as sheds happen.
  void bind_metrics(MetricsRegistry& registry);

  // Human-readable "+"-joined list of currently active shed windows
  // ("shed link"); empty when none. Composes with
  // FaultInjector::active_summary for conformance attribution.
  std::string active_summary() const;

  // The scheduler currently serving an attached link (post-swap); for
  // tests and report assembly.
  Scheduler& current_scheduler(const std::string& name);

 private:
  struct Target {
    Link* link = nullptr;
    SchedulerKind kind = SchedulerKind::kWtp;  // current, updated by swaps
    SchedulerConfig config;                    // swap-replacement template
  };

  struct Instance {
    ControlEpisode episode;  // with a concrete (non-wildcard) target
    Target* target = nullptr;
    // kSwap only: the replacement, built at arm(), installed at apply time.
    std::unique_ptr<Scheduler> replacement;
    bool active = false;  // kShed only
  };

  void apply(std::size_t index);  // instantaneous episodes + shed begin
  void end_shed(std::size_t index);
  void emit_span(const ControlEpisode& ep);
  void note_control_drop(const Packet& p, ControlDropKind kind);

  Simulator& sim_;
  ControlPlan plan_;
  std::map<std::string, Target> targets_;
  std::vector<std::string> attach_order_;
  std::vector<Instance> instances_;
  bool armed_ = false;
  std::uint64_t applied_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t retunes_ = 0;
  std::uint64_t swaps_ = 0;
  std::uint64_t class_changes_ = 0;
  std::uint64_t sheds_ = 0;
  SpanBuffer* spans_ = nullptr;
  double span_scale_ = 1.0;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pds
