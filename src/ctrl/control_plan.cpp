#include "ctrl/control_plan.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace pds {

std::string to_string(ControlKind kind) {
  switch (kind) {
    case ControlKind::kRetune: return "retune";
    case ControlKind::kClass: return "class";
    case ControlKind::kSwap: return "swap";
    case ControlKind::kShed: return "shed";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("control plan line " + std::to_string(line_no) +
                              ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    tokens.push_back(tok);
  }
  return tokens;
}

double to_number(const std::string& raw, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    if (pos != raw.size()) fail(line_no, "malformed number: " + raw);
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, "malformed number: " + raw);
  }
}

// Comma-separated list of doubles ("1,3,6,12"), for w=.
std::vector<double> to_number_list(const std::string& raw,
                                   std::size_t line_no) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const auto comma = raw.find(',', start);
    const auto end = comma == std::string::npos ? raw.size() : comma;
    if (end == start) fail(line_no, "malformed number list: " + raw);
    values.push_back(to_number(raw.substr(start, end - start), line_no));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

// key=value options after the positional tokens (same idiom as the fault
// plan and scenario parsers).
class Options {
 public:
  Options(const std::vector<std::string>& tokens, std::size_t first,
          std::size_t line_no)
      : line_no_(line_no) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto& tok = tokens[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(line_no, "expected key=value, got " + tok);
      }
      values_[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }

  std::optional<std::string> take(const std::string& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    std::string v = it->second;
    values_.erase(it);
    return v;
  }

  double number(const std::string& key) {
    auto v = take(key);
    if (!v) fail(line_no_, "missing required option " + key + "=...");
    return to_number(*v, line_no_);
  }

  void finish() const {
    if (!values_.empty()) {
      fail(line_no_, "unknown option " + values_.begin()->first);
    }
  }

 private:
  std::size_t line_no_;
  std::map<std::string, std::string> values_;
};

ClassId to_class_index(double v, std::size_t line_no) {
  if (v < 0.0 || v != static_cast<double>(static_cast<ClassId>(v))) {
    fail(line_no, "class index must be a non-negative integer");
  }
  return static_cast<ClassId>(v);
}

}  // namespace

ControlPlan parse_control_plan(const std::string& text) {
  ControlPlan plan;
  bool saw_seed = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const auto& kind = tokens[0];

    if (kind == "seed") {
      if (saw_seed) fail(line_no, "duplicate seed directive");
      if (tokens.size() != 2) fail(line_no, "seed takes exactly one value");
      saw_seed = true;
      const double v = to_number(tokens[1], line_no);
      if (v < 0.0) fail(line_no, "seed must be non-negative");
      plan.seed = static_cast<std::uint64_t>(v);
      continue;
    }

    ControlEpisode ep;
    if (kind == "retune") {
      ep.kind = ControlKind::kRetune;
    } else if (kind == "class") {
      ep.kind = ControlKind::kClass;
    } else if (kind == "swap") {
      ep.kind = ControlKind::kSwap;
    } else if (kind == "shed") {
      ep.kind = ControlKind::kShed;
    } else {
      fail(line_no, "unknown directive " + kind);
    }
    if (tokens.size() < 2 || tokens[1].find('=') != std::string::npos) {
      fail(line_no, kind + " needs a target name (or *)");
    }
    ep.target = tokens[1];
    ep.line = line_no;

    Options opts(tokens, 2, line_no);
    ep.at = opts.number("at");
    if (ep.at < 0.0) fail(line_no, "at must be non-negative");
    switch (ep.kind) {
      case ControlKind::kRetune: {
        const auto w = opts.take("w");
        const auto g = opts.take("g");
        if (!w && !g) fail(line_no, "retune needs w=... and/or g=...");
        if (w) {
          ep.weights = to_number_list(*w, line_no);
          if (ep.weights.size() < 2) {
            fail(line_no, "w needs at least two values");
          }
          for (std::size_t i = 0; i < ep.weights.size(); ++i) {
            if (ep.weights[i] <= 0.0) fail(line_no, "w values must be positive");
            if (i > 0 && ep.weights[i] < ep.weights[i - 1]) {
              fail(line_no, "w values must be non-decreasing");
            }
          }
        }
        if (g) {
          ep.g = to_number(*g, line_no);
          if (ep.g <= 0.0 || ep.g > 1.0) fail(line_no, "g must be in (0, 1]");
        }
        break;
      }
      case ControlKind::kClass: {
        const auto drain = opts.take("drain");
        const auto add = opts.take("add");
        if (static_cast<bool>(drain) == static_cast<bool>(add)) {
          fail(line_no, "class needs exactly one of drain=<idx> or add=<idx>");
        }
        ep.drain = static_cast<bool>(drain);
        ep.cls = to_class_index(to_number(drain ? *drain : *add, line_no),
                                line_no);
        break;
      }
      case ControlKind::kSwap: {
        const auto sched = opts.take("sched");
        if (!sched) fail(line_no, "missing required option sched=...");
        try {
          ep.sched = scheduler_kind_from_string(*sched);
        } catch (const std::invalid_argument&) {
          fail(line_no, "unknown scheduler " + *sched);
        }
        if (ep.sched == SchedulerKind::kFcfs ||
            ep.sched == SchedulerKind::kScfq ||
            ep.sched == SchedulerKind::kVirtualClock) {
          // Only the class-based schedulers can adopt a live backlog.
          fail(line_no, "swap sched must be one of sp|wtp|bpr|additive|pad|"
                        "hpd|drr, got " + *sched);
        }
        break;
      }
      case ControlKind::kShed: {
        ep.duration = opts.number("for");
        if (ep.duration <= 0.0) fail(line_no, "for must be positive");
        const double wm = opts.number("watermark");
        if (wm < 1.0) fail(line_no, "watermark must be >= 1");
        ep.shed.watermark_packets = static_cast<std::uint64_t>(wm);
        if (const auto sojourn = opts.take("sojourn")) {
          ep.shed.sojourn = to_number(*sojourn, line_no);
          if (ep.shed.sojourn <= 0.0) fail(line_no, "sojourn must be positive");
        }
        if (const auto classes = opts.take("classes")) {
          const double k = to_number(*classes, line_no);
          if (k < 1.0 || k != static_cast<double>(static_cast<std::uint32_t>(k))) {
            fail(line_no, "classes must be a positive integer");
          }
          ep.shed.classes = static_cast<std::uint32_t>(k);
        }
        break;
      }
    }
    opts.finish();
    plan.episodes.push_back(std::move(ep));
  }
  return plan;
}

}  // namespace pds
