// Control plans: declarative, clock-driven reconfiguration scripts.
//
// The paper's Eq. 1/2 claim — delay ratios independent of class loads — is
// tested hardest when the *operator* changes their mind mid-flight. A
// ControlPlan scripts those changes against named targets (links) as a
// line-oriented text format extending the FaultPlan idiom (src/fault/);
// '#' starts a comment:
//
//   seed <n>                                            (optional, default 1)
//   retune <target> at=<t> [w=<v0,v1,...>] [g=<v>]
//   class  <target> at=<t> drain=<idx> | add=<idx>
//   swap   <target> at=<t> sched=<sp|wtp|bpr|additive|pad|hpd|drr>
//   shed   <target> at=<t> for=<dt> watermark=<pkts> [sojourn=<dt>]
//                                                     [classes=<k>]
//
// `target` is the name a Link was attached under (control_injector.hpp),
// `*` for every attached target, or a prefix wildcard (`core*`) — the same
// target language as fault plans. Times are absolute simulation time units.
//
// `retune` replaces the scheduler's per-class weights (w=, one value per
// class, positive non-decreasing) and/or HPD's blend parameter (g=, in
// (0,1], only valid while the target runs HPD) without touching backlogs.
// `class drain=<idx>` stops admitting arrivals of one class (its queued
// packets serve out; drops counted per link); `class add=<idx>` re-admits
// it. `swap` replaces the scheduler in place, handing the whole backlog —
// class rings and SoA mirror — to the replacement; only the class-based
// schedulers can give and take a backlog, so FCFS/SCFQ/VC are not
// swappable. `shed` arms the overload guard (ShedPolicy in sched/link.hpp)
// for the episode's duration.
//
// retune/class/swap are instantaneous (duration 0, applied at `at`); shed
// is the only windowed episode. Same-kind episodes on one target may not
// overlap — for instantaneous episodes that means not sharing the same
// `at`. All application happens as ordinary SimEvents at plan-scripted
// times, so a controlled run is exactly as replayable as a plain one.
//
// Example (a mid-run retune, then a swap under an armed overload guard):
//
//   retune link at=3e4 w=1,3,6,12
//   shed   link at=5e4 for=2e4 watermark=2000 classes=2
//   swap   link at=6e4 sched=bpr
//
// parse_control_plan validates structure and throws std::invalid_argument
// ("control plan line N: ..."). Target existence, wildcard matches, class
// counts, and overlap rules are enforced later, by ControlInjector::arm().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsim/time.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"

namespace pds {

enum class ControlKind { kRetune, kClass, kSwap, kShed };

// Short lowercase directive name ("retune", "class", "swap", "shed").
std::string to_string(ControlKind kind);

struct ControlEpisode {
  ControlKind kind = ControlKind::kRetune;
  std::string target;  // attach name, "*", or a prefix wildcard ("core*")
  SimTime at = 0.0;
  SimTime duration = 0.0;       // kShed only; the others are instantaneous
  std::vector<double> weights;  // kRetune: empty == no w= given
  double g = 0.0;               // kRetune: 0 == no g= given
  ClassId cls = 0;              // kClass
  bool drain = true;            // kClass: drain (true) or add (false)
  SchedulerKind sched = SchedulerKind::kWtp;  // kSwap
  ShedPolicy shed;                            // kShed
  std::size_t line = 0;  // 1-based plan line, for arm()-time diagnostics

  SimTime end() const noexcept { return at + duration; }
};

struct ControlPlan {
  std::uint64_t seed = 1;
  std::vector<ControlEpisode> episodes;

  bool empty() const noexcept { return episodes.empty(); }
};

// Parses the grammar above. Throws std::invalid_argument ("control plan
// line N: ...") on malformed input; an episode-free plan is legal (no-op).
ControlPlan parse_control_plan(const std::string& text);

}  // namespace pds
