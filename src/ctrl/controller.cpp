#include "ctrl/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sched/pad.hpp"
#include "util/contracts.hpp"

namespace pds {

std::string to_string(ControllerMode mode) {
  switch (mode) {
    case ControllerMode::kOff: return "off";
    case ControllerMode::kWeights: return "weights";
    case ControllerMode::kHpdG: return "hpd-g";
  }
  return "?";
}

ControllerMode controller_mode_from_string(const std::string& name) {
  if (name == "off") return ControllerMode::kOff;
  if (name == "weights") return ControllerMode::kWeights;
  if (name == "hpd-g") return ControllerMode::kHpdG;
  throw std::invalid_argument("unknown controller mode: " + name);
}

void ControllerConfig::validate() const {
  if (!enabled()) return;
  PDS_CHECK(period > 0.0, "controller period must be positive");
  PDS_CHECK(slo > 0.0, "controller slo must be positive");
  PDS_CHECK(eta > 0.0, "controller eta must be positive");
  PDS_CHECK(g_step > 0.0, "controller g_step must be positive");
  PDS_CHECK(g_min > 0.0 && g_min <= g_max && g_max <= 1.0,
            "controller g bounds must satisfy 0 < g_min <= g_max <= 1");
}

Controller::Controller(Simulator& sim, Link& link,
                       const ConformanceMonitor& monitor,
                       std::vector<double> operator_sdp,
                       ControllerConfig config)
    : sim_(sim),
      link_(link),
      monitor_(monitor),
      config_(config),
      operator_sdp_(std::move(operator_sdp)) {
  config_.validate();
  PDS_CHECK(!config_.enabled() || monitor_.enabled(),
            "controller needs an enabled conformance monitor");
  PDS_CHECK(operator_sdp_.size() >= 2, "controller needs at least 2 classes");
  ratios_.reserve(operator_sdp_.size() - 1);
  for (std::size_t c = 0; c + 1 < operator_sdp_.size(); ++c) {
    PDS_CHECK(operator_sdp_[c] > 0.0, "operator SDPs must be positive");
    ratios_.push_back(operator_sdp_[c + 1] / operator_sdp_[c]);
  }
  weights_ = operator_sdp_;
}

void Controller::arm(SimTime until) {
  if (!config_.enabled()) return;
  const SimTime first = sim_.now() + config_.period;
  if (first > until) return;
  sim_.schedule_at(first, SimEvent([this, until] { tick(until); },
                                   "ctrl.tick"));
}

void Controller::tick(SimTime until) {
  ++ticks_;
  // Only act on fresh evidence: the monitor closes windows lazily on
  // departures, so a tick may land before the window covering it closed.
  const std::uint64_t windows = monitor_.windows_closed();
  if (windows > last_windows_) {
    last_windows_ = windows;
    if (config_.mode == ControllerMode::kWeights) {
      tick_weights();
    } else {
      tick_hpd_g();
    }
  }
  const SimTime next = sim_.now() + config_.period;
  if (next <= until) {
    sim_.schedule_at(next, SimEvent([this, until] { tick(until); },
                                    "ctrl.tick"));
  }
}

void Controller::tick_weights() {
  const std::vector<double>& errors = monitor_.last_window_errors();
  PDS_REQUIRE(errors.size() == ratios_.size());
  bool changed = false;
  for (std::size_t c = 0; c < ratios_.size(); ++c) {
    const double e = errors[c];
    if (std::isnan(e) || e == 0.0) continue;
    const double step = std::clamp(e, -0.5, 0.5);
    const double next = std::max(1.0, ratios_[c] / (1.0 + config_.eta * step));
    if (next != ratios_[c]) {
      ratios_[c] = next;
      changed = true;
    }
  }
  if (!changed) return;
  std::vector<double> w(operator_sdp_.size());
  w[0] = operator_sdp_[0];
  for (std::size_t c = 0; c + 1 < w.size(); ++c) {
    w[c + 1] = w[c] * ratios_[c];
  }
  link_.scheduler_mut().set_weights(w);
  weights_ = std::move(w);
  ++updates_;
}

void Controller::tick_hpd_g() {
  auto* hpd = dynamic_cast<HpdScheduler*>(&link_.scheduler_mut());
  if (hpd == nullptr) return;  // swapped away from HPD; nothing to steer
  const std::vector<double>& errors = monitor_.last_window_errors();
  double worst = -1.0;
  for (const double e : errors) {
    if (!std::isnan(e)) worst = std::max(worst, std::fabs(e));
  }
  if (worst < 0.0) return;  // no defined pair in the last window
  const double g = hpd->g();
  double next = g;
  if (worst > config_.slo) {
    next = std::min(config_.g_max, g + config_.g_step);
  } else if (worst < 0.5 * config_.slo) {
    next = std::max(config_.g_min, g - config_.g_step);
  }
  if (next == g) return;
  hpd->set_g(next);
  g_ = next;
  ++updates_;
}

}  // namespace pds
