// Controller: a deterministic feedback loop from the live Eq. 2 monitors to
// the scheduler's knobs — adaptive differentiation toward an operator SLO.
//
// Every `period` simulation time units the controller samples the
// ConformanceMonitor's most recently closed window (the signed per-pair
// ratio errors e_c = observed/target - 1, NaN where undefined) and nudges
// one knob family with a fixed-step rule; all arithmetic is driven by
// simulation time and deterministic state, never the wall clock, so a
// controlled run stays byte-identical for any --jobs.
//
//  * kWeights — multiplicative ratio correction (motivated by the
//    DRR-parameter-optimization line of work: treat the weight vector as
//    the decision variable). The knob is the adjacent-pair weight ratio
//    r_c = w_{c+1}/w_c, seeded from the operator SDP. Each update applies
//
//        r_c <- r_c / (1 + eta * clamp(e_c, -0.5, +0.5))
//
//    (e_c > 0 means the lower class waited proportionally too long, i.e.
//    the pair was over-differentiated: shrink the ratio), clamps r_c >= 1
//    to keep the weight vector non-decreasing, rebuilds w anchored at the
//    operator's w_0, and pushes it with Scheduler::set_weights. The
//    monitor keeps scoring against the *operator* targets, so the loop
//    steers the achieved ratios toward the SLO rather than chasing its own
//    tail.
//  * kHpdG — deadband step on HPD's blend parameter: when the worst
//    defined |e_c| exceeds `slo`, step g up by g_step toward pure WTP
//    (better short-timescale conformance); when it is below slo/2, relax g
//    down by g_step (toward PAD's long-term accuracy); otherwise hold.
//    g stays in [g_min, g_max]. Skipped while the link runs a non-HPD
//    scheduler (e.g. after a swap episode).
//
// A tick only acts when the monitor has closed a new window since the last
// tick (the error signal is otherwise stale), so `period` is naturally
// chosen >= the monitor's tau.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsim/simulator.hpp"
#include "obs/conformance.hpp"
#include "sched/link.hpp"

namespace pds {

enum class ControllerMode { kOff, kWeights, kHpdG };

// "off", "weights", "hpd-g".
std::string to_string(ControllerMode mode);
// Parses the names above; throws std::invalid_argument on unknown names.
ControllerMode controller_mode_from_string(const std::string& name);

struct ControllerConfig {
  ControllerMode mode = ControllerMode::kOff;
  SimTime period = 0.0;  // sampling period; required > 0 when enabled
  double slo = 0.10;     // target band for the worst |e_c| (both modes)
  double eta = 0.5;      // kWeights: multiplicative gain
  double g_step = 0.05;  // kHpdG: additive step
  double g_min = 0.05;
  double g_max = 1.0;

  bool enabled() const noexcept { return mode != ControllerMode::kOff; }

  // Throws std::invalid_argument on malformed parameters when enabled().
  void validate() const;
};

class Controller {
 public:
  // `monitor` must be enabled and outlive the run; `operator_sdp` seeds the
  // weight knobs and is the SLO the monitor keeps scoring against.
  Controller(Simulator& sim, Link& link, const ConformanceMonitor& monitor,
             std::vector<double> operator_sdp, ControllerConfig config);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // Schedules chained "ctrl.tick" events at period, 2*period, ... <= until.
  // Call exactly once, before running the simulator.
  void arm(SimTime until);

  const ControllerConfig& config() const noexcept { return config_; }
  std::uint64_t ticks() const noexcept { return ticks_; }
  std::uint64_t updates() const noexcept { return updates_; }

  // Current knob state: the weight vector last pushed (equal to the
  // operator SDP until the first kWeights update) and the g last pushed
  // (0 until the first kHpdG update).
  const std::vector<double>& weights() const noexcept { return weights_; }
  double g() const noexcept { return g_; }

 private:
  void tick(SimTime until);
  void tick_weights();
  void tick_hpd_g();

  Simulator& sim_;
  Link& link_;
  const ConformanceMonitor& monitor_;
  ControllerConfig config_;
  std::vector<double> operator_sdp_;
  std::vector<double> ratios_;   // knob: r_c = w_{c+1}/w_c
  std::vector<double> weights_;  // last pushed weight vector
  double g_ = 0.0;
  std::uint64_t last_windows_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace pds
