#include "dropper/lossy_link.hpp"

#include "util/contracts.hpp"

namespace pds {

LossyLink::LossyLink(Simulator& sim, Scheduler& sched, double capacity,
                     std::uint64_t buffer_packets, DropPolicy policy,
                     std::unique_ptr<PlrDropper> plr,
                     DepartureHandler on_departure, DropHandler on_drop)
    : sim_(sim),
      buffer_packets_(buffer_packets),
      policy_(policy),
      plr_(std::move(plr)),
      on_drop_(std::move(on_drop)),
      link_(sim, sched, capacity, std::move(on_departure)),
      arrivals_(sched.num_classes(), 0),
      drops_(sched.num_classes(), 0) {
  PDS_CHECK(buffer_packets >= 1, "buffer must hold at least one packet");
  PDS_CHECK(static_cast<bool>(on_drop_), "null drop handler");
  if (policy_ == DropPolicy::kPlr) {
    PDS_CHECK(plr_ != nullptr, "PLR policy requires a dropper");
    PDS_CHECK(plr_->num_classes() == sched.num_classes(),
              "dropper/scheduler class count mismatch");
  } else {
    PDS_CHECK(plr_ == nullptr, "dropper given but policy is not PLR");
  }
}

void LossyLink::notify_drop(const Packet& p) {
  const Scheduler& sched = link_.scheduler();
  PDS_OBS_NOTIFY(probe_,
                 on_drop(p,
                         ProbeContext{hop_, sched.backlog_packets(p.cls),
                                      sched.backlog_bytes(p.cls)},
                         sim_.now()));
}

std::uint64_t LossyLink::queued_packets() const {
  return link_.scheduler().total_backlog_packets();
}

void LossyLink::set_burst_loss(double rate, Rng rng) {
  PDS_CHECK(rate > 0.0 && rate <= 1.0, "burst loss rate must be in (0, 1]");
  burst_rate_ = rate;
  burst_rng_ = rng;
}

void LossyLink::arrive(Packet p) {
  const ClassId cls = p.cls;
  PDS_CHECK(cls < arrivals_.size(), "class index out of range");
  ++arrivals_[cls];
  if (plr_) plr_->note_arrival(cls);

  // Fault-injected burst loss sits in front of the buffer: a lost packet
  // never contends for admission and never charges the drop policy.
  if (burst_rate_ > 0.0 && burst_rng_.uniform01() < burst_rate_) {
    ++burst_drops_;
    notify_drop(p);
    on_drop_(p, sim_.now());
    return;
  }

  if (queued_packets() < buffer_packets_) {
    link_.arrive(std::move(p));
    return;
  }

  // Buffer overflow.
  if (policy_ == DropPolicy::kDropIncoming) {
    ++drops_[cls];
    notify_drop(p);
    on_drop_(p, sim_.now());
    return;
  }

  // PLR: the arriving packet's class is a candidate victim even when it has
  // nothing queued (the arrival itself would be pushed out). The scratch
  // vector is a member so repeated overflows reuse its capacity.
  Scheduler& sched = link_.scheduler_mut();
  backlogged_.assign(sched.num_classes(), false);
  for (ClassId c = 0; c < sched.num_classes(); ++c) {
    backlogged_[c] = sched.backlog_packets(c) > 0;
  }
  backlogged_[cls] = true;
  const auto victim = plr_->pick_victim(backlogged_);
  PDS_REQUIRE(victim.has_value());
  ++drops_[*victim];
  if (*victim == cls && sched.backlog_packets(cls) == 0) {
    notify_drop(p);
    on_drop_(p, sim_.now());
    return;
  }
  auto pushed_out = sched.drop_tail(*victim);
  PDS_REQUIRE(pushed_out.has_value());
  notify_drop(*pushed_out);
  on_drop_(*pushed_out, sim_.now());
  link_.arrive(std::move(p));
}

std::uint64_t LossyLink::arrivals(ClassId cls) const {
  PDS_CHECK(cls < arrivals_.size(), "class index out of range");
  return arrivals_[cls];
}

std::uint64_t LossyLink::drops(ClassId cls) const {
  PDS_CHECK(cls < drops_.size(), "class index out of range");
  return drops_[cls];
}

double LossyLink::loss_rate(ClassId cls) const {
  PDS_CHECK(cls < arrivals_.size(), "class index out of range");
  if (arrivals_[cls] == 0) return 0.0;
  return static_cast<double>(drops_[cls]) /
         static_cast<double>(arrivals_[cls]);
}

}  // namespace pds
