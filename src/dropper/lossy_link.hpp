// Lossy output link: a Link variant with a finite shared packet buffer and a
// pluggable drop policy. Extends the paper's lossless Section 3 model toward
// the coupled delay+loss differentiation it names as future work.
//
// On an arrival that would exceed the buffer:
//  * kDropIncoming (drop-tail baseline): the arriving packet is discarded.
//  * kPlr: the PLR dropper picks a victim class; the victim's most recent
//    packet is pushed out and the arrival is admitted. (If the arriving
//    packet's own class is chosen and it has no queued packets, the arrival
//    itself is the victim.)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dropper/plr_dropper.hpp"
#include "dsim/simulator.hpp"
#include "rng/rng.hpp"
#include "sched/link.hpp"
#include "sched/scheduler.hpp"

namespace pds {

enum class DropPolicy {
  kDropIncoming,
  kPlr,
};

class LossyLink {
 public:
  using DepartureHandler = Link::DepartureHandler;
  // Called for every dropped packet.
  using DropHandler = std::function<void(const Packet&, SimTime now)>;

  // `buffer_packets` caps the total queued packets (the one in transmission
  // does not count against the buffer). `plr` must be non-null iff policy
  // is kPlr; its class count must match the scheduler's.
  LossyLink(Simulator& sim, Scheduler& sched, double capacity,
            std::uint64_t buffer_packets, DropPolicy policy,
            std::unique_ptr<PlrDropper> plr, DepartureHandler on_departure,
            DropHandler on_drop);

  LossyLink(const LossyLink&) = delete;
  LossyLink& operator=(const LossyLink&) = delete;

  void arrive(Packet p);

  std::uint64_t arrivals(ClassId cls) const;
  std::uint64_t drops(ClassId cls) const;
  double loss_rate(ClassId cls) const;

  const Link& link() const noexcept { return link_; }

  // Mutable access to the inner transmission link, for fault injection
  // (down/degrade/stall act on the Link itself; see src/fault/).
  Link& link_mut() noexcept { return link_; }

  // --- Fault injection: bursty loss episodes -----------------------------
  // While active, every arrival is independently dropped with probability
  // `rate` before any buffer/policy logic, using the (deterministically
  // seeded) generator handed in by the fault injector. Burst drops are NOT
  // counted in drops()/loss_rate() — those track the drop *policy* under
  // test — but they do fire the probe's on_drop, the DropHandler, and the
  // burst_drops() counter.
  void set_burst_loss(double rate, Rng rng);
  void clear_burst_loss() noexcept { burst_rate_ = 0.0; }
  bool burst_loss_active() const noexcept { return burst_rate_ > 0.0; }
  std::uint64_t burst_drops() const noexcept { return burst_drops_; }

  // Observability: attaches a lifecycle probe to the inner link/scheduler
  // (arrive/enqueue/dequeue/depart) and to this dropper, which emits exactly
  // one on_drop per lost packet — whether the victim is the arriving packet
  // or a pushed-out queued one.
  void set_probe(PacketProbe* probe, std::uint32_t hop = 0) noexcept {
    probe_ = probe;
    hop_ = hop;
    link_.set_probe(probe, hop);
  }

 private:
  std::uint64_t queued_packets() const;
  void notify_drop(const Packet& p);
  // All scheduler reads go through the inner link (link_.scheduler()), so a
  // live scheduler swap (src/ctrl/) keeps the drop policy and the service
  // plane consistent — there is deliberately no cached Scheduler& here.

  Simulator& sim_;
  std::uint64_t buffer_packets_;
  DropPolicy policy_;
  std::unique_ptr<PlrDropper> plr_;
  DropHandler on_drop_;
  Link link_;
  std::vector<std::uint64_t> arrivals_;
  std::vector<std::uint64_t> drops_;
  std::vector<bool> backlogged_;  // PLR victim-pick scratch, reused
  double burst_rate_ = 0.0;       // 0 = no burst-loss episode active
  Rng burst_rng_;
  std::uint64_t burst_drops_ = 0;
  PacketProbe* probe_ = nullptr;
  std::uint32_t hop_ = 0;
};

}  // namespace pds
