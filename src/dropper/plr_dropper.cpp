#include "dropper/plr_dropper.hpp"

#include "util/contracts.hpp"

namespace pds {

LossHistory::LossHistory(std::uint32_t num_classes, std::uint64_t window)
    : window_(window), arrivals_(num_classes, 0), drops_(num_classes, 0) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
}

void LossHistory::evict() {
  while (events_.size() > window_) {
    const Event& e = events_.front();
    --arrivals_[e.cls];
    if (e.dropped) --drops_[e.cls];
    events_.pop_front();
  }
}

void LossHistory::note_arrival(ClassId cls) {
  PDS_CHECK(cls < arrivals_.size(), "class index out of range");
  ++arrivals_[cls];
  if (window_ > 0) {
    events_.push_back(Event{cls, false});
    evict();
  }
}

void LossHistory::note_drop(ClassId cls) {
  PDS_CHECK(cls < drops_.size(), "class index out of range");
  ++drops_[cls];
  if (window_ > 0) {
    // Mark the most recent un-dropped event of this class as dropped so the
    // window's drop count tracks its arrival count. Searching backwards is
    // cheap: drops cluster near the tail (the victim just arrived or is
    // near the tail of its queue).
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
      if (it->cls == cls && !it->dropped) {
        it->dropped = true;
        return;
      }
    }
    // The victim's arrival already left the window: count it against the
    // newest event slot so totals stay consistent.
    events_.push_back(Event{cls, true});
    ++arrivals_[cls];
    evict();
  }
}

std::uint64_t LossHistory::arrivals(ClassId cls) const {
  PDS_CHECK(cls < arrivals_.size(), "class index out of range");
  return arrivals_[cls];
}

std::uint64_t LossHistory::drops(ClassId cls) const {
  PDS_CHECK(cls < drops_.size(), "class index out of range");
  return drops_[cls];
}

double LossHistory::loss_rate(ClassId cls) const {
  PDS_CHECK(cls < arrivals_.size(), "class index out of range");
  if (arrivals_[cls] == 0) return 0.0;
  return static_cast<double>(drops_[cls]) /
         static_cast<double>(arrivals_[cls]);
}

PlrDropper::PlrDropper(std::vector<double> ldp, std::uint64_t window)
    : ldp_(std::move(ldp)),
      history_(static_cast<std::uint32_t>(ldp_.size()), window) {
  PDS_CHECK(!ldp_.empty(), "need at least one class");
  for (std::size_t i = 0; i < ldp_.size(); ++i) {
    PDS_CHECK(ldp_[i] > 0.0, "LDPs must be positive");
    if (i > 0) {
      PDS_CHECK(ldp_[i] <= ldp_[i - 1],
                "LDPs must be non-increasing (higher class = less loss)");
    }
  }
}

void PlrDropper::note_arrival(ClassId cls) { history_.note_arrival(cls); }

std::optional<ClassId> PlrDropper::pick_victim(
    const std::vector<bool>& backlogged) {
  PDS_CHECK(backlogged.size() == ldp_.size(),
            "backlog/LDP class count mismatch");
  bool found = false;
  ClassId victim = 0;
  double best = 0.0;
  for (ClassId c = 0; c < backlogged.size(); ++c) {
    if (!backlogged[c]) continue;
    const double normalized = history_.loss_rate(c) / ldp_[c];
    // `<` (not <=): on ties prefer the *lower* class, protecting higher
    // classes, consistent with the delay-side tie-breaks.
    if (!found || normalized < best) {
      found = true;
      victim = c;
      best = normalized;
    }
  }
  if (!found) return std::nullopt;
  history_.note_drop(victim);
  return victim;
}

}  // namespace pds
