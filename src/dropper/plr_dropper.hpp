// Proportional Loss Rate (PLR) droppers — the "coupled delay and loss
// differentiation" direction the paper explicitly defers to future work
// (Sections 1, 7). Modeled after the authors' follow-on work (Part II):
//
// Loss Differentiation Parameters (LDPs) sigma_0 >= sigma_1 >= ... > 0
// target  l_i / l_j = sigma_i / sigma_j  for the class loss *rates*
// (fraction of arrived packets dropped). Higher classes have smaller sigma
// and therefore lower loss.
//
// When the buffer overflows, the dropper picks the backlogged class whose
// normalized loss rate l_i / sigma_i is smallest — the class furthest below
// its target share — and a packet is pushed out from that class's tail.
//
//  * PLR(inf): loss rates measured over the whole run (infinite history).
//  * PLR(M):   loss rates measured over the last M arrivals (sliding
//              window), which adapts when class load shares drift.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "packet/packet.hpp"

namespace pds {

class LossHistory {
 public:
  // window == 0 means infinite history (PLR(inf)).
  LossHistory(std::uint32_t num_classes, std::uint64_t window);

  void note_arrival(ClassId cls);
  void note_drop(ClassId cls);

  std::uint64_t arrivals(ClassId cls) const;
  std::uint64_t drops(ClassId cls) const;

  // Loss rate drops/arrivals; 0 when the class has no recorded arrivals.
  double loss_rate(ClassId cls) const;

 private:
  void evict();

  struct Event {
    ClassId cls;
    bool dropped;
  };

  std::uint64_t window_;  // 0 = infinite
  std::vector<std::uint64_t> arrivals_;
  std::vector<std::uint64_t> drops_;
  std::deque<Event> events_;  // only maintained for finite windows
};

class PlrDropper {
 public:
  // `ldp` must be positive and non-increasing (higher class = smaller
  // sigma = less loss). `window` 0 selects PLR(inf).
  PlrDropper(std::vector<double> ldp, std::uint64_t window);

  // Must be called for every packet arrival (before any drop decision).
  void note_arrival(ClassId cls);

  // Picks the victim class among those with `backlogged[c] == true`;
  // records the drop in the history. Returns nullopt when no class is
  // backlogged.
  std::optional<ClassId> pick_victim(const std::vector<bool>& backlogged);

  const LossHistory& history() const noexcept { return history_; }
  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(ldp_.size());
  }

 private:
  std::vector<double> ldp_;
  LossHistory history_;
};

}  // namespace pds
