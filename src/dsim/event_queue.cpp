#include "dsim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pds {

// ----------------------------------------------------------------- heap

void HeapEventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void HeapEventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    if (left < n && earlier(heap_[left], heap_[best])) best = left;
    if (right < n && earlier(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void HeapEventQueue::push(EventItem item) {
  heap_.push_back(std::move(item));
  sift_up(heap_.size() - 1);
}

EventItem HeapEventQueue::pop() {
  PDS_REQUIRE(!heap_.empty());
  EventItem item = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return item;
}

SimTime HeapEventQueue::next_time() const {
  PDS_REQUIRE(!heap_.empty());
  return heap_.front().time;
}

// ------------------------------------------------------------- calendar

namespace {
constexpr std::size_t kMinDays = 4;
constexpr double kMinWidth = 1e-9;
}  // namespace

CalendarEventQueue::CalendarEventQueue() : days_(kMinDays) {}

std::size_t CalendarEventQueue::day_of(SimTime t) const {
  const double virtual_day = std::floor(t / width_);
  return static_cast<std::size_t>(
             std::fmod(virtual_day, static_cast<double>(days_.size())));
}

void CalendarEventQueue::insert_sorted(Day& day, EventItem item) {
  const auto pos = std::upper_bound(
      day.begin(), day.end(), item,
      [](const EventItem& a, const EventItem& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
      });
  day.insert(pos, std::move(item));
}

void CalendarEventQueue::push(EventItem item) {
  PDS_CHECK(item.time >= 0.0, "negative event time");
  cache_valid_ = false;
  insert_sorted(days_[day_of(item.time)], std::move(item));
  ++count_;
  maybe_resize();
}

void CalendarEventQueue::locate_next() const {
  if (cache_valid_) return;
  PDS_REQUIRE(count_ > 0);
  const std::size_t start_day = day_of(last_popped_);
  double day_end = (std::floor(last_popped_ / width_) + 1.0) * width_;
  for (std::size_t i = 0; i < days_.size(); ++i) {
    const std::size_t d = (start_day + i) % days_.size();
    if (!days_[d].empty() && days_[d].front().time < day_end) {
      cached_day_ = d;
      cache_valid_ = true;
      return;
    }
    day_end += width_;
  }
  // Every pending event lies a full year or more ahead: fall back to a
  // direct minimum scan across bucket heads.
  bool found = false;
  std::size_t best = 0;
  for (std::size_t d = 0; d < days_.size(); ++d) {
    if (days_[d].empty()) continue;
    if (!found) {
      found = true;
      best = d;
      continue;
    }
    const auto& a = days_[d].front();
    const auto& b = days_[best].front();
    if (a.time < b.time || (a.time == b.time && a.seq < b.seq)) best = d;
  }
  PDS_REQUIRE(found);
  cached_day_ = best;
  cache_valid_ = true;
}

EventItem CalendarEventQueue::pop() {
  locate_next();
  Day& day = days_[cached_day_];
  EventItem item = std::move(day.front());
  day.erase(day.begin());
  --count_;
  last_popped_ = item.time;
  cache_valid_ = false;
  maybe_resize();
  return item;
}

SimTime CalendarEventQueue::next_time() const {
  locate_next();
  return days_[cached_day_].front().time;
}

void CalendarEventQueue::maybe_resize() {
  const std::size_t n = days_.size();
  if (count_ > 2 * n) {
    resize(2 * n);
  } else if (n > kMinDays && count_ < n / 2) {
    resize(std::max(kMinDays, n / 2));
  }
}

void CalendarEventQueue::resize(std::size_t new_days) {
  std::vector<EventItem> all;
  all.reserve(count_);
  for (auto& day : days_) {
    for (auto& item : day) all.push_back(std::move(item));
    day.clear();
  }
  // New day width from the population's time span: aim for O(1) events per
  // day across the occupied window.
  if (all.size() >= 2) {
    double lo = all.front().time;
    double hi = lo;
    for (const auto& item : all) {
      lo = std::min(lo, item.time);
      hi = std::max(hi, item.time);
    }
    if (hi > lo) {
      width_ = std::max(kMinWidth,
                        2.0 * (hi - lo) / static_cast<double>(all.size()));
    }
  }
  // clear+resize instead of assign: EventItem is move-only, and assign's
  // fill path copy-assigns the prototype bucket.
  days_.clear();
  days_.resize(new_days);
  for (auto& item : all) {
    insert_sorted(days_[day_of(item.time)], std::move(item));
  }
  cache_valid_ = false;
}

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kBinaryHeap:
      return std::make_unique<HeapEventQueue>();
    case EventQueueKind::kCalendar:
      return std::make_unique<CalendarEventQueue>();
  }
  PDS_REQUIRE(false);
}

}  // namespace pds
