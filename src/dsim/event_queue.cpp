#include "dsim/event_queue.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace pds {

// ------------------------------------------------------------- calendar
//
// Only the cold path lives here: resize() runs O(count) a logarithmic
// number of times per population swing, while push/pop/next_time are
// header-inline so the kernel's instantiated run loop flattens them.

namespace {
constexpr double kMinWidth = 1e-9;
// Day-width estimation samples at most this many event times on resize.
constexpr std::size_t kWidthSample = 64;
}  // namespace

void CalendarEventQueue::resize(std::size_t new_days) {
  std::vector<EventItem>& all = scratch_;
  all.clear();
  all.reserve(count_);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (auto& day : days_) {
    for (std::size_t i = day.live; i < day.items.size(); ++i) {
      lo = std::min(lo, day.items[i].time);
      hi = std::max(hi, day.items[i].time);
      all.push_back(std::move(day.items[i]));
    }
    day.items.clear();
    day.live = 0;
  }

  // New day width: target a few events per day over the *dense* part of
  // the population. Wider days mean more pops land in the cached window
  // (the repeat-pop fast path) and fewer window steps per locate, so small
  // populations — where that per-pop overhead dominates — get wider days;
  // large populations pay per-push for in-day crowding (the shift-insert
  // scales with events per day) while the locate amortizes over many more
  // pops, so they get narrower ones. A strided sample of event times is
  // sorted and its largest quartile of gaps discarded, so one far-future
  // straggler (common: a drained source's final rearm) cannot stretch the
  // day width until every live event lands in the same bucket. Falls back
  // to the plain span-over-count estimate for degenerate samples.
  const double events_per_day = all.size() <= 2048 ? 6.0 : 4.0;
  if (all.size() >= 2 && hi > lo) {
    double width =
        events_per_day * (hi - lo) / static_cast<double>(all.size());
    const std::size_t stride =
        std::max<std::size_t>(1, all.size() / kWidthSample);
    std::array<double, kWidthSample> sample{};
    std::size_t m = 0;
    for (std::size_t i = 0; i < all.size() && m < kWidthSample; i += stride) {
      sample[m++] = all[i].time;
    }
    if (m >= 4) {
      std::sort(sample.begin(),
                sample.begin() + static_cast<std::ptrdiff_t>(m));
      std::array<double, kWidthSample> gaps{};
      for (std::size_t i = 1; i < m; ++i) {
        gaps[i - 1] = sample[i] - sample[i - 1];
      }
      std::sort(gaps.begin(),
                gaps.begin() + static_cast<std::ptrdiff_t>(m - 1));
      const std::size_t keep = ((m - 1) * 3 + 3) / 4;  // lower ~3/4 of gaps
      double sum = 0.0;
      for (std::size_t i = 0; i < keep; ++i) sum += gaps[i];
      if (sum > 0.0) {
        // Mean sample gap scaled back to a per-event gap: the sample
        // covers the population at `stride`, so divide by it.
        const double event_gap =
            sum / static_cast<double>(keep) / static_cast<double>(stride);
        width = events_per_day * event_gap;
      }
    }
    // Snap to the nearest power of two: at most a factor sqrt(2) off the
    // estimate, in exchange for exact reciprocal scaling on every push
    // and locate (see the width_ comment in the header).
    width_ = std::exp2(std::round(std::log2(std::max(kMinWidth, width))));
    inv_width_ = 1.0 / width_;
  }

  // Plain resize (not clear+resize or assign): surviving buckets keep their
  // item capacity, so a same-size width recalibration redistributes into
  // already-sized vectors; assign's fill path would copy-assign the
  // prototype bucket, and EventItem is move-only anyway. The buckets were
  // emptied by the collection loop above.
  if (new_days != days_.size()) days_.resize(new_days);
  day_mask_ = new_days - 1;
  // Capacity floor: compaction (see insert_sorted) bounds every day's item
  // count well under kDayReserve for a day count that fits the population,
  // so pre-sizing here moves all bucket growth into this cold path and the
  // steady-state push becomes allocation-free.
  for (auto& day : days_) {
    if (day.items.capacity() < kDayReserve) day.items.reserve(kDayReserve);
  }
  for (auto& item : all) {
    insert_sorted(days_[day_of(item.time)], std::move(item));
  }
  cache_valid_ = false;
  fallback_pops_ = 0;
  // Every resize re-estimates the width, so a pending (or future) pop-count
  // recalibration would be pure overhead — disarm it. Fallback distress
  // re-arms if the new estimate still misfits.
  recalibrate_at_ = std::numeric_limits<std::uint64_t>::max();
}

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind) {
  return std::make_unique<EventQueue>(kind);
}

}  // namespace pds
