// Pending-event sets for the simulation kernel.
//
// The default is a binary heap: O(log n), robust for any event-time
// distribution. The alternative is a calendar queue (Brown, CACM 1988) — the
// structure ns-2's scheduler made famous — which buckets events by time
// modulo a rotating "year" and achieves amortized O(1) enqueue/dequeue when
// event times are roughly uniform over a window, the common case for packet
// simulations. The calendar resizes itself (doubling / halving the day count
// and re-estimating the day width from a sample of queued events) as the
// population changes.
//
// Both implementations provide the same total order: ascending time, FIFO
// (sequence) within equal times — the determinism contract the rest of the
// library relies on. The differential tests drive both with identical
// workloads and require identical output.
//
// Neither implementation is virtual. `EventQueue` is a *sealed* two-way
// variant: the kernel's run loop is instantiated once per concrete queue
// (see Simulator::drain), so every push/pop/next_time on the hot path is a
// direct — and for the heap, fully inlined — call. The virtual interface
// this replaced cost one indirect call per queue operation per event.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "dsim/sim_event.hpp"
#include "dsim/time.hpp"
#include "util/contracts.hpp"

namespace pds {

// Move-only: the action is a SimEvent (small-buffer callable with the
// profiling label folded in — see dsim/sim_event.hpp). Queue operations
// relocate items without copying, so closures may own packets by move and
// per-event heap traffic is zero for inline-sized captures.
struct EventItem {
  SimTime time;
  std::uint64_t seq;
  SimEvent action;

  const char* label() const noexcept { return action.label(); }
};

// Binary-heap implementation (the default). Hand-rolled over a vector
// rather than std::priority_queue: pop() must *move* the root out (the
// move-only EventItem forbids the copy std::priority_queue's top()/pop()
// split implies), and sift-down with a hole avoids redundant relocations.
// Header-inline so the kernel's instantiated run loop can flatten push/pop
// into straight-line code.
class HeapEventQueue final {
 public:
  void push(EventItem item) {
    // Hole technique: grow by one empty slot, shift ancestors down into
    // the hole, and place the new item once — one relocation per level
    // instead of the three a swap-based sift-up performs.
    std::size_t i = heap_.size();
    heap_.emplace_back();
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(item, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(item);
  }

  // Removes and returns the earliest item (time, then seq). Requires
  // !empty().
  EventItem pop() {
    PDS_REQUIRE(!heap_.empty());
    EventItem item = std::move(heap_.front());
    EventItem last = std::move(heap_.back());
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      // Sift the former tail down through the root hole, again with one
      // relocation per level.
      std::size_t i = 0;
      for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        const std::size_t right = child + 1;
        if (right < n && earlier(heap_[right], heap_[child])) child = right;
        if (!earlier(heap_[child], last)) break;
        heap_[i] = std::move(heap_[child]);
        i = child;
      }
      heap_[i] = std::move(last);
    }
    return item;
  }

  // Time of the earliest item. Requires !empty().
  SimTime next_time() const {
    PDS_REQUIRE(!heap_.empty());
    return heap_.front().time;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

 private:
  static bool earlier(const EventItem& a, const EventItem& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::vector<EventItem> heap_;  // min-heap on (time, seq)
};

// Calendar-queue implementation.
//
// Buckets ("days") keep events sorted ascending (time, seq) behind a live
// cursor: pop is a cursor bump instead of an O(day) erase-from-front, and
// the dead prefix is reclaimed when the day drains or on insert once it
// outweighs the live tail. Day lookup is a division plus a power-of-two
// mask (the day count is always a power of two, so the mask is exactly the
// fmod it replaces). A one-day cache keeps next_time()/pop() O(1) between
// pops: a push only moves the cache, never invalidates it.
class CalendarEventQueue final {
 public:
  CalendarEventQueue() : days_(kMinDays), day_mask_(kMinDays - 1) {}

  void push(EventItem item) {
    PDS_CHECK(item.time >= 0.0, "negative event time");
    // width_ is always a power of two, so multiplying by its reciprocal
    // is exact IEEE scaling — bit-identical to the division it replaces,
    // at a fraction of the latency.
    const double virtual_day = item.time * inv_width_;
    std::size_t d;
    double window_end;
    if (virtual_day < kMaxExactDay) [[likely]] {
      d = static_cast<std::size_t>(virtual_day) & day_mask_;
      window_end =
          (static_cast<double>(static_cast<std::uint64_t>(virtual_day)) +
           1.0) *
          width_;
    } else {
      d = static_cast<std::size_t>(std::fmod(
          std::floor(virtual_day), static_cast<double>(days_.size())));
      window_end = -1.0;  // beyond exact integer range: no fast path
    }
    // The cache survives pushes: the global minimum only changes if the
    // new item is earlier than the current one, in which case the new
    // item's day becomes the cached day (inserting into the cached day
    // keeps its front correct either way). The probe compares against the
    // mirrored scalar minimum instead of dereferencing the cached day's
    // front — no pointer chase on the hottest path. The window end rides
    // along so the repeat-pop fast path (see pop()) stays armed.
    if (cache_valid_ &&
        (item.time < cached_min_time_ ||
         (item.time == cached_min_time_ && item.seq < cached_min_seq_))) {
      cached_day_ = d;
      cached_day_end_ = window_end;
      cached_min_time_ = item.time;
      cached_min_seq_ = item.seq;
    }
    insert_sorted(days_[d], std::move(item));
    ++count_;
    if (count_ > kGrowFactor * days_.size()) [[unlikely]] {
      resize(2 * days_.size());
    }
  }

  EventItem pop() {
    // Single maintenance branch for both width-recalibration triggers:
    // the one-shot early calibration (the default day width is arbitrary,
    // and a steady workload whose width is merely mediocre would keep it
    // forever — count-triggered resizes never fire on a steady
    // population), and fallback distress (locate_next arms recalibrate_at_
    // once the direct-scan fallback has run often enough to prove a
    // mis-fitted width). Both re-estimate the width from the live
    // population at an unchanged day count.
    if (++pops_ >= recalibrate_at_) [[unlikely]] resize(days_.size());
    locate_next();
    Day& day = days_[cached_day_];
    EventItem item = std::move(day.front());
    day.pop_front();
    --count_;
    last_popped_ = item.time;
    // Repeat-pop fast path: a window index determines its day uniquely,
    // so if the popped day's new front still lies inside the cached
    // window, every event elsewhere sits in a later window — the front is
    // the new global minimum and the cache stays valid, skipping the
    // division and day scan of the next locate entirely. Consecutive
    // events usually share a day (~2 per day by construction), so this is
    // the common case.
    if (day.empty() || !(day.front().time < cached_day_end_)) {
      cache_valid_ = false;
    } else {
      cached_min_time_ = day.front().time;
      cached_min_seq_ = day.front().seq;
    }
    const std::size_t n = days_.size();
    if (n > kMinDays && count_ < n / kShrinkDivisor) [[unlikely]] {
      resize(n / 2);
    }
    return item;
  }

  SimTime next_time() const {
    locate_next();
    return cached_min_time_;
  }

  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  // Introspection for tests.
  std::size_t num_days() const noexcept { return days_.size(); }
  double day_width() const noexcept { return width_; }

 private:
  // Resize policy (see resize() for the day-width estimator). Growth at
  // count > 2n is Brown's classic setting; shrinking waits for count < n/4
  // (not n/2) so a population oscillating around one threshold never
  // ping-pongs between sizes — a resize is O(n), so hysteresis matters
  // more than tight occupancy.
  static constexpr std::size_t kMinDays = 4;  // power of two
  static constexpr std::size_t kGrowFactor = 2;
  static constexpr std::size_t kShrinkDivisor = 4;
  // Fallback pops tolerated before a width-only recalibration.
  static constexpr std::size_t kRecalibrateAfter = 16;
  // Pop count at which the one-shot early width calibration runs.
  static constexpr std::uint64_t kEarlyCalibrateAt = 256;
  // Reclaim a day's popped prefix during an insert once it passes this
  // length and outweighs the live tail; until then a pop is a cursor bump.
  static constexpr std::size_t kCompactThreshold = 32;
  // Capacity floor resize() guarantees for every day bucket. Compaction
  // bounds a day's size by kCompactThreshold + 1 dead items plus the live
  // tail (≤ kGrowFactor * days while the day count fits the population), so
  // this floor makes steady-state pushes allocation-free for any
  // well-calibrated workload; a day crowding past it merely falls back to
  // ordinary vector growth.
  static constexpr std::size_t kDayReserve = 2 * kCompactThreshold;
  // Above 2^53 a double no longer represents the virtual-day integer
  // exactly; fall back to the fmod path (never reached by realistic sim
  // times).
  static constexpr double kMaxExactDay = 9007199254740992.0;

  struct Day {
    std::vector<EventItem> items;  // ascending (time, seq) from `live`
    std::size_t live = 0;          // index of the first un-popped item

    bool empty() const noexcept { return live == items.size(); }
    EventItem& front() noexcept { return items[live]; }
    const EventItem& front() const noexcept { return items[live]; }
    void pop_front() noexcept {
      ++live;
      if (live == items.size()) {
        items.clear();
        live = 0;
      }
    }
  };

  static bool earlier(const EventItem& a, const EventItem& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::size_t day_of(SimTime t) const {
    const double virtual_day = t * inv_width_;
    if (virtual_day < kMaxExactDay) {
      // Truncation == floor for non-negative times, and the power-of-two
      // mask is exactly fmod(floor(t/w), days): identical bucketing to the
      // fmod formulation at a fraction of the cost.
      return static_cast<std::size_t>(virtual_day) & day_mask_;
    }
    return static_cast<std::size_t>(std::fmod(
        std::floor(virtual_day), static_cast<double>(days_.size())));
  }

  void insert_sorted(Day& day, EventItem item) {
    // Reclaim the popped prefix on *every* insert path once it outweighs
    // the live tail. Compacting only on the (rare) shift-insert path let an
    // append-only day that interleaves pushes and pops without ever fully
    // draining grow its vector without bound — a slow capacity ratchet that
    // shows up as steady-state heap allocations. With this check on the
    // append path too, a day's size is bounded by the prefix threshold plus
    // the live population (itself capped at kGrowFactor * days by the grow
    // trigger), so the kDayReserve capacity floor set in resize() makes the
    // steady state allocation-free.
    if (day.live > kCompactThreshold && 2 * day.live >= day.items.size()) {
      day.items.erase(
          day.items.begin(),
          day.items.begin() + static_cast<std::ptrdiff_t>(day.live));
      day.live = 0;
    }
    // Append fast path: event times drift forward, so the common insert
    // lands at the tail of its day. seq breaks the tie, so an equal-time
    // arrival also appends.
    if (day.empty() || !earlier(item, day.items.back())) {
      day.items.push_back(std::move(item));
      return;
    }
    // Backward shift-insert: a day holds a handful of items, so the
    // linear scan beats upper_bound's branchy binary search, and the
    // hole technique moves each shifted element once.
    day.items.emplace_back();
    std::size_t i = day.items.size() - 1;
    while (i > day.live && earlier(item, day.items[i - 1])) {
      day.items[i] = std::move(day.items[i - 1]);
      --i;
    }
    day.items[i] = std::move(item);
  }

  void resize(std::size_t new_days);

  // Finds the next item without removing it; fills cache fields.
  void locate_next() const {
    if (cache_valid_) return;
    PDS_REQUIRE(count_ > 0);
    // One scaling serves both the starting day index and the day
    // boundary (truncation == floor for the non-negative clock).
    const double virtual_day = std::floor(last_popped_ * inv_width_);
    const std::size_t start_day =
        virtual_day < kMaxExactDay
            ? static_cast<std::size_t>(virtual_day) & day_mask_
            : static_cast<std::size_t>(
                  std::fmod(virtual_day, static_cast<double>(days_.size())));
    for (std::size_t i = 0; i < days_.size(); ++i) {
      const std::size_t d = (start_day + i) & day_mask_;
      // Multiply-per-step rather than accumulated addition: keeps the
      // window boundary bit-identical with the one push() derives for the
      // same window, so the repeat-pop fast path and the scan agree.
      const double day_end = (virtual_day + 1.0 + static_cast<double>(i)) *
                             width_;
      if (!days_[d].empty() && days_[d].front().time < day_end) {
        cached_day_ = d;
        cached_day_end_ = day_end;
        cached_min_time_ = days_[d].front().time;
        cached_min_seq_ = days_[d].front().seq;
        cache_valid_ = true;
        return;
      }
    }
    // Every pending event lies a full year or more ahead: fall back to a
    // direct minimum scan across bucket heads (and count the miss — see
    // pop() for the width recalibration it can trigger).
    if (++fallback_pops_ >= kRecalibrateAfter) recalibrate_at_ = 0;
    bool found = false;
    std::size_t best = 0;
    for (std::size_t d = 0; d < days_.size(); ++d) {
      if (days_[d].empty()) continue;
      if (!found || earlier(days_[d].front(), days_[best].front())) {
        found = true;
        best = d;
      }
    }
    PDS_REQUIRE(found);
    cached_day_ = best;
    cached_day_end_ = -1.0;  // outside any window: no repeat-pop fast path
    cached_min_time_ = days_[best].front().time;
    cached_min_seq_ = days_[best].front().seq;
    cache_valid_ = true;
  }

  std::vector<Day> days_;         // size is always a power of two
  // Resize-time staging buffer for the live events. A member (rather than a
  // resize() local) so repeated width recalibrations on a steady population
  // reuse its capacity instead of reallocating — the packet plane's
  // steady-state zero-allocation budget includes the event queue.
  std::vector<EventItem> scratch_;
  std::size_t day_mask_;          // days_.size() - 1
  // Day length in time units. Always a power of two, so inv_width_ is its
  // exact reciprocal and t * inv_width_ == t / width_ bit-for-bit (IEEE
  // scaling by a power of two is exact) — and window boundaries
  // (k * width_) are themselves exact, so an event can never straddle a
  // boundary by a rounding ulp and be missed by the window scan.
  double width_ = 1.0;
  double inv_width_ = 1.0;
  std::size_t count_ = 0;
  SimTime last_popped_ = 0.0;

  // When valid, days_[cached_day_].front() is the global (time, seq)
  // minimum. Maintained across pushes, rebuilt lazily after a pop.
  mutable bool cache_valid_ = false;
  mutable std::size_t cached_day_ = 0;
  // Real-time end of the cached minimum's window; -1 when unknown
  // (fallback locate or beyond-2^53 push). Gates the repeat-pop fast
  // path in pop().
  mutable double cached_day_end_ = -1.0;
  // Scalar mirror of the cached minimum's (time, seq): push's cache probe
  // and next_time() read these instead of chasing days_[cached_day_]'s
  // front through two levels of vector indirection.
  mutable double cached_min_time_ = 0.0;
  mutable std::uint64_t cached_min_seq_ = 0;
  // Pops served by the direct-scan fallback since the last resize.
  mutable std::size_t fallback_pops_ = 0;
  // Lifetime pop count, and the pop count at which the next width
  // recalibration fires. Starts at the one-shot early calibration (the
  // default width is arbitrary, and a steady population never triggers a
  // count-based resize, so a merely mediocre width would persist forever);
  // locate_next's fallback branch pulls it forward on distress; any
  // resize — which re-estimates the width anyway — disarms it.
  std::uint64_t pops_ = 0;
  mutable std::uint64_t recalibrate_at_ = kEarlyCalibrateAt;
};

enum class EventQueueKind { kBinaryHeap, kCalendar };

// Sealed pending-event set: exactly the two implementations above behind a
// tag, no virtual dispatch. The forwarding methods are one predictable
// branch; performance-critical callers dispatch once per *run* via visit()
// and then use the concrete queue directly.
class EventQueue final {
 public:
  explicit EventQueue(EventQueueKind kind) : kind_(kind) {}

  EventQueueKind kind() const noexcept { return kind_; }

  void push(EventItem item) {
    if (kind_ == EventQueueKind::kBinaryHeap) {
      heap_.push(std::move(item));
    } else {
      calendar_.push(std::move(item));
    }
  }

  EventItem pop() {
    return kind_ == EventQueueKind::kBinaryHeap ? heap_.pop()
                                                : calendar_.pop();
  }

  SimTime next_time() const {
    return kind_ == EventQueueKind::kBinaryHeap ? heap_.next_time()
                                                : calendar_.next_time();
  }

  bool empty() const noexcept {
    return kind_ == EventQueueKind::kBinaryHeap ? heap_.empty()
                                                : calendar_.empty();
  }

  std::size_t size() const noexcept {
    return kind_ == EventQueueKind::kBinaryHeap ? heap_.size()
                                                : calendar_.size();
  }

  // Invokes `v` with the concrete queue (HeapEventQueue& or
  // CalendarEventQueue&). The kernel's run loop uses this to instantiate
  // its drain once per implementation, hoisting the kind branch out of the
  // per-event path entirely.
  template <typename Visitor>
  decltype(auto) visit(Visitor&& v) {
    return kind_ == EventQueueKind::kBinaryHeap ? v(heap_) : v(calendar_);
  }

 private:
  EventQueueKind kind_;
  HeapEventQueue heap_;
  CalendarEventQueue calendar_;
};

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind);

}  // namespace pds
