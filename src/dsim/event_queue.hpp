// Pluggable pending-event sets for the simulation kernel.
//
// The default is a binary heap (std::priority_queue): O(log n), robust for
// any event-time distribution. The alternative is a calendar queue (Brown,
// CACM 1988) — the structure ns-2's scheduler made famous — which buckets
// events by time modulo a rotating "year" and achieves amortized O(1)
// enqueue/dequeue when event times are roughly uniform over a window, the
// common case for packet simulations. The calendar resizes itself (doubling
// / halving the day count and re-sizing the day width from a sample of
// queued events) as the population changes.
//
// Both implementations provide the same total order: ascending time, FIFO
// (sequence) within equal times — the determinism contract the rest of the
// library relies on. The differential tests drive both with identical
// workloads and require identical output.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dsim/sim_event.hpp"
#include "dsim/time.hpp"

namespace pds {

// Move-only: the action is a SimEvent (small-buffer callable with the
// profiling label folded in — see dsim/sim_event.hpp). Queue operations
// relocate items without copying, so closures may own packets by move and
// per-event heap traffic is zero for inline-sized captures.
struct EventItem {
  SimTime time;
  std::uint64_t seq;
  SimEvent action;

  const char* label() const noexcept { return action.label(); }
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;
  virtual void push(EventItem item) = 0;
  // Removes and returns the earliest item (time, then seq). Requires
  // !empty().
  virtual EventItem pop() = 0;
  // Time of the earliest item. Requires !empty().
  virtual SimTime next_time() const = 0;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
};

// Binary-heap implementation (the default). Hand-rolled over a vector
// rather than std::priority_queue: pop() must *move* the root out (the
// move-only EventItem forbids the copy std::priority_queue's top()/pop()
// split implies), and sift-down with a hole avoids redundant relocations.
class HeapEventQueue final : public EventQueue {
 public:
  void push(EventItem item) override;
  EventItem pop() override;
  SimTime next_time() const override;
  bool empty() const override { return heap_.empty(); }
  std::size_t size() const override { return heap_.size(); }

 private:
  static bool earlier(const EventItem& a, const EventItem& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<EventItem> heap_;  // min-heap on (time, seq)
};

// Calendar-queue implementation.
class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue();

  void push(EventItem item) override;
  EventItem pop() override;
  SimTime next_time() const override;
  bool empty() const override { return count_ == 0; }
  std::size_t size() const override { return count_; }

  // Introspection for tests.
  std::size_t num_days() const noexcept { return days_.size(); }
  double day_width() const noexcept { return width_; }

 private:
  using Day = std::vector<EventItem>;  // kept sorted ascending (time, seq)

  std::size_t day_of(SimTime t) const;
  void insert_sorted(Day& day, EventItem item);
  void resize(std::size_t new_days);
  void maybe_resize();
  // Finds the next item without removing it; fills cache fields.
  void locate_next() const;

  std::vector<Day> days_;
  double width_ = 1.0;            // day length in time units
  SimTime year_start_ = 0.0;      // start time of the current year's day 0
  std::size_t current_day_ = 0;   // cursor within the year
  std::size_t count_ = 0;
  SimTime last_popped_ = 0.0;

  mutable bool cache_valid_ = false;
  mutable std::size_t cached_day_ = 0;
};

enum class EventQueueKind { kBinaryHeap, kCalendar };

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind);

}  // namespace pds
