#include "dsim/shard.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace pds {

namespace {

// A horizon-time message cascade alternates finish() and splice(); each
// sweep needs at least one moved message to continue and every hop of the
// cascade either crosses a positive-transmission link (timestamp moves past
// the horizon, message discarded) or consumes one zero-lookahead injection
// edge, so real cascades are bounded by the longest route. The cap only
// exists to turn a protocol bug into a loud failure.
constexpr std::uint64_t kMaxFinalSweeps = 4096;

}  // namespace

ShardEngine::ShardEngine(std::vector<Shard> shards,
                         std::vector<SimTime> lookahead, SimTime horizon)
    : shards_(std::move(shards)),
      lookahead_(std::move(lookahead)),
      horizon_(horizon) {
  const std::size_t n = shards_.size();
  PDS_CHECK(n >= 1, "ShardEngine needs at least one shard");
  PDS_CHECK(lookahead_.size() == n * n,
            "lookahead matrix must be shards x shards");
  PDS_CHECK(horizon_ >= 0.0, "horizon must be non-negative");
  for (const Shard& s : shards_) {
    PDS_CHECK(static_cast<bool>(s.next_time) &&
                  static_cast<bool>(s.run_window) &&
                  static_cast<bool>(s.finish),
              "every shard needs next_time/run_window/finish hooks");
  }
  exec_ = [](std::size_t count, const std::function<void(std::size_t)>& body) {
    for (std::size_t i = 0; i < count; ++i) body(i);
  };
}

void ShardEngine::set_splice(std::function<SpliceResult()> splice) {
  splice_ = std::move(splice);
}

void ShardEngine::set_executor(Executor exec) {
  PDS_CHECK(static_cast<bool>(exec), "null executor");
  exec_ = std::move(exec);
}

void ShardEngine::set_round_hook(RoundHook hook) {
  round_hook_ = std::move(hook);
}

void ShardEngine::solve_windows(const std::vector<SimTime>& next,
                                const std::vector<SimTime>& lookahead,
                                std::vector<SimTime>& earliest,
                                std::vector<SimTime>& safe) {
  const std::size_t n = next.size();
  PDS_CHECK(lookahead.size() == n * n, "lookahead matrix size mismatch");
  earliest.assign(next.begin(), next.end());
  safe.assign(n, kSimTimeInfinity);
  // E only ever decreases and each pass propagates bounds one edge further,
  // so n passes reach the fixpoint even through zero-lookahead chains.
  for (std::size_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      SimTime s = kSimTimeInfinity;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const SimTime la = lookahead[j * n + i];
        if (la == kSimTimeInfinity) continue;
        s = std::min(s, earliest[j] + la);
      }
      const SimTime e = std::min(next[i], s);
      if (e < earliest[i]) {
        earliest[i] = e;
        changed = true;
      }
    }
    if (!changed) break;
  }
  for (std::size_t i = 0; i < n; ++i) {
    SimTime s = kSimTimeInfinity;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const SimTime la = lookahead[j * n + i];
      if (la == kSimTimeInfinity) continue;
      s = std::min(s, earliest[j] + la);
    }
    safe[i] = s;
  }
}

PdesStats ShardEngine::run() {
  PDS_CHECK(static_cast<bool>(splice_), "set_splice before run");
  using WallClock = std::chrono::steady_clock;
  const std::size_t n = shards_.size();
  PdesStats stats;

  std::vector<SimTime> next(n), earliest(n), safe(n), bounds(n);
  std::vector<std::uint64_t> processed(n, 0);
  SimTime prev_min_earliest = -kSimTimeInfinity;

  while (true) {
    const SpliceResult spliced = splice_();
    stats.messages += spliced.moved;
    stats.max_channel_depth =
        std::max(stats.max_channel_depth, spliced.max_batch);

    for (std::size_t i = 0; i < n; ++i) next[i] = shards_[i].next_time();
    solve_windows(next, lookahead_, earliest, safe);
    const SimTime min_earliest =
        *std::min_element(earliest.begin(), earliest.end());
    if (min_earliest >= horizon_) break;

    for (std::size_t i = 0; i < n; ++i) {
      bounds[i] = std::min(safe[i], horizon_);
    }

    const WallClock::time_point window_start = WallClock::now();
    exec_(n, [&](std::size_t i) {
      processed[i] = shards_[i].run_window(bounds[i]);
    });
    stats.barrier_seconds +=
        std::chrono::duration<double>(WallClock::now() - window_start)
            .count();

    ++stats.rounds;
    std::uint64_t total = 0;
    for (std::uint64_t p : processed) total += p;
    if (total == 0) {
      ++stats.null_rounds;
      if (spliced.moved == 0 && min_earliest <= prev_min_earliest) {
        throw std::logic_error(
            "pdes: no progress — zero-lookahead cycle or stuck channel");
      }
    }
    prev_min_earliest = min_earliest;
    if (round_hook_) round_hook_(stats.rounds - 1, bounds, processed);
  }

  // Final phase: drain every shard through the horizon (inclusive), then
  // keep applying the horizon-time message cascade until the channels are
  // quiet. Messages stamped beyond the horizon are discarded by finish():
  // their serial counterparts (completion events past the horizon) never
  // executed either.
  const WallClock::time_point final_start = WallClock::now();
  exec_(n, [&](std::size_t i) { shards_[i].finish(horizon_); });
  for (std::uint64_t sweep = 0;; ++sweep) {
    PDS_CHECK(sweep < kMaxFinalSweeps, "pdes: horizon cascade did not settle");
    const SpliceResult spliced = splice_();
    stats.messages += spliced.moved;
    stats.max_channel_depth =
        std::max(stats.max_channel_depth, spliced.max_batch);
    if (spliced.moved == 0) break;
    ++stats.final_sweeps;
    exec_(n, [&](std::size_t i) { shards_[i].finish(horizon_); });
  }
  stats.barrier_seconds +=
      std::chrono::duration<double>(WallClock::now() - final_start).count();
  return stats;
}

}  // namespace pds
