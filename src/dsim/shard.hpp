// Conservative sharded kernel: the Chandy–Misra–Bryant-style clock protocol
// that lets one large simulation run as N space-partitioned Simulators.
//
// The topology graph is partitioned into shards (net/partition.hpp); each
// shard owns a full Simulator plus a staged inbox of timestamped cross-shard
// messages. The engine advances everything in barrier-synchronous lookahead
// windows:
//
//   1. Between barriers the (serial) coordinator splices every channel's
//      published batch into the destination shard's inbox, reads each
//      shard's earliest pending work `next_i`, and solves the conservative
//      fixpoint
//          E_i = min(next_i, min_j(E_j + la[j][i]))
//      where la[j][i] is the lookahead of the j->i cut edges (the minimum
//      delay any message sent by j can impose on i). E_i is a lower bound on
//      the timestamp of anything shard i will ever process or emit.
//   2. Each shard's safe bound is S_i = min_j(E_j + la[j][i]): no message
//      with timestamp below S_i can still be produced. A parallel window
//      then lets every shard process all local events and staged messages
//      with timestamp *strictly* below min(S_i, horizon).
//   3. Messages published during a window become visible at the next splice
//      (double buffering). This is safe: anything shard j emits during its
//      window carries timestamp >= E_j + la[j][i] >= S_i, so it cannot land
//      inside the window shard i just executed.
//
// Determinism: window bounds are a pure function of queue states and the
// lookahead matrix — never of thread scheduling — and each inbox is applied
// in (timestamp, source shard, channel sequence) order, so the execution is
// byte-identical for any worker count, including the 1-worker (fully
// inline) pool. Deadlock freedom relies on every cycle of lookahead edges
// having positive total lookahead; the engine additionally throws if a
// round makes no progress at all.
//
// Layering: dsim sits below the experiment engine, so the parallel executor
// is injected (`set_executor`); the net-layer runner passes
// pds::parallel_for, tests may leave the default serial loop.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "dsim/time.hpp"

namespace pds {

inline constexpr SimTime kSimTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

// Deterministic counters of the clock protocol plus wall-clock telemetry.
// Everything except `barrier_seconds` is a pure function of the simulation
// inputs; `barrier_seconds` (time spent inside the parallel sections and
// barriers) is volatile and must never reach byte-compared output.
struct PdesStats {
  std::uint64_t rounds = 0;
  std::uint64_t null_rounds = 0;  // rounds where no shard processed work
  std::uint64_t messages = 0;     // cross-shard messages spliced
  std::uint64_t max_channel_depth = 0;  // largest single-splice batch
  std::uint64_t final_sweeps = 0;  // horizon-time message cascades
  double barrier_seconds = 0.0;
};

// One timestamped cross-shard message. `seq` is assigned per channel in
// publish order; together with the source shard id it makes the merge order
// (ts, src_shard, seq) a deterministic total order.
template <typename T>
struct ShardMessage {
  SimTime ts;
  std::uint64_t seq;
  T payload;
};

// Single-producer/single-consumer double-buffered channel. The producing
// shard appends during its window (inside the parallel section); only the
// coordinator, between barriers, moves the batch out. The pool barrier is
// the synchronization point — no atomics on the publish path, and the
// buffers keep their capacity, so a warm channel publishes without
// allocating (the SimEvent discipline applied to messages).
template <typename T>
class ShardChannel {
 public:
  void publish(SimTime ts, T payload) {
    back_.push_back(ShardMessage<T>{ts, next_seq_++, std::move(payload)});
  }

  // Coordinator-only: appends the published batch to `inbox` (clearing the
  // back buffer) and returns the batch size.
  std::size_t splice_into(std::vector<ShardMessage<T>>& inbox) {
    const std::size_t moved = back_.size();
    for (auto& m : back_) inbox.push_back(std::move(m));
    back_.clear();
    return moved;
  }

  std::size_t pending() const noexcept { return back_.size(); }

 private:
  std::vector<ShardMessage<T>> back_;
  std::uint64_t next_seq_ = 0;
};

class ShardEngine {
 public:
  // The engine is payload-agnostic: shards expose their queue state and
  // window execution through hooks, and the owner (net/scenario layer)
  // keeps the channels/inboxes.
  struct Shard {
    // Earliest pending local work: min over the simulator's next event time
    // and every staged inbound message timestamp; kSimTimeInfinity if idle.
    std::function<SimTime()> next_time;
    // Processes all local events and staged messages with timestamp
    // strictly below `bound`; returns how many work items ran.
    std::function<std::uint64_t(SimTime bound)> run_window;
    // Final phase: applies staged messages with timestamp <= horizon
    // (discarding later ones — their serial counterparts never executed)
    // and drains events through the horizon inclusively, leaving the clock
    // at the horizon. Returns how many work items ran. Called repeatedly
    // while horizon-time messages keep cascading.
    std::function<std::uint64_t(SimTime horizon)> finish;
  };

  struct SpliceResult {
    std::uint64_t moved = 0;      // messages moved into inboxes
    std::uint64_t max_batch = 0;  // largest single channel batch
  };

  // `lookahead` is a flattened shards x shards matrix, la[src * n + dst]:
  // the minimum timestamp increment of any src->dst message relative to
  // src's earliest pending work. kSimTimeInfinity where no edge exists;
  // the diagonal is ignored. Zero entries are legal as long as no cycle
  // has zero total lookahead.
  ShardEngine(std::vector<Shard> shards, std::vector<SimTime> lookahead,
              SimTime horizon);

  // Coordinator-side channel flip, called between barriers. Required.
  void set_splice(std::function<SpliceResult()> splice);

  // Parallel executor: exec(count, body) must invoke body(i) for every
  // i in [0, count) and return only when all are done. Defaults to a serial
  // loop; the scenario runner injects pds::parallel_for.
  using Executor =
      std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;
  void set_executor(Executor exec);

  // Observation hook, fired by the coordinator after every round with the
  // per-shard window bounds and processed-work counts (deterministic).
  // The net-layer runner turns these into pdes.* counters and per-shard
  // window spans.
  using RoundHook = std::function<void(
      std::uint64_t round, const std::vector<SimTime>& bounds,
      const std::vector<std::uint64_t>& processed)>;
  void set_round_hook(RoundHook hook);

  // Runs the protocol to the horizon. Throws std::logic_error if a round
  // moves no messages, processes no work, and fails to advance any bound
  // (a zero-lookahead cycle).
  PdesStats run();

  // The window fixpoint, exposed for unit tests: given each shard's
  // earliest pending work and the lookahead matrix, fills E (earliest
  // possible execution per shard) and S (safe inbound bound per shard,
  // kSimTimeInfinity when the shard has no in-edges).
  static void solve_windows(const std::vector<SimTime>& next,
                            const std::vector<SimTime>& lookahead,
                            std::vector<SimTime>& earliest,
                            std::vector<SimTime>& safe);

 private:
  std::vector<Shard> shards_;
  std::vector<SimTime> lookahead_;
  SimTime horizon_;
  std::function<SpliceResult()> splice_;
  Executor exec_;
  RoundHook round_hook_;
};

}  // namespace pds
