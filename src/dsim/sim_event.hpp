// SimEvent: the kernel's event callable.
//
// A move-only, small-buffer-optimized replacement for std::function<void()>
// on the event hot path. Every simulated packet turns into a handful of
// scheduled events; with std::function, any capture beyond 16 trivially
// copyable bytes forces a heap allocation per event, and the copy-on-pop of
// the pending-event set doubles the cost. SimEvent stores callables of up to
// kInlineCapacity (48) bytes inline, never copies (move-only — closures may
// own Packets or shared_ptrs by move), and falls back to the heap only for
// oversized captures. The profiling label (see SimMonitor) is folded into
// the event instead of riding beside it in EventItem.
//
// Dispatch is a hand-rolled three-entry operation table rather than a
// virtual base: one pointer per event, no RTTI, and relocation (the
// operation the event queue performs most) is a single indirect call that
// move-constructs into the destination buffer.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pds {

class SimEvent {
 public:
  // Inline capture budget. Sized for the library's hot-path closures (a
  // `this` pointer plus a few scalars, or a moved-through shared_ptr): the
  // link completion handler and the source rearm events all fit.
  static constexpr std::size_t kInlineCapacity = 48;

  SimEvent() noexcept = default;

  // Caller's promise that the callable may be relocated by memcpy without
  // running its move constructor or destroying the source — true whenever
  // every capture is either trivially copyable or a standard smart pointer
  // (their move constructor copies the representation and nulls the
  // source, whose destructor is then a no-op). The kernel's rearm chains
  // opt in with this tag so steady-state queue churn never makes an
  // indirect call per relocation.
  struct TrustedRelocation {};

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SimEvent> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SimEvent(F&& f, const char* label = nullptr)  // NOLINT(runtime/explicit)
      : label_(label) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SimEvent(TrustedRelocation, F&& f, const char* label = nullptr)
      : label_(label) {
    using Fn = std::decay_t<F>;
    static_assert(fits_inline<Fn>,
                  "trusted-relocation captures must fit inline");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &TrustedOps<Fn>::ops;
  }

  SimEvent(SimEvent&& other) noexcept { move_from(other); }

  SimEvent& operator=(SimEvent&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  ~SimEvent() { reset(); }

  // Requires a non-empty event (callers check operator bool at the
  // scheduling boundary; the kernel never stores empty events).
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Optional profiling category for the SimMonitor hook. Must point at a
  // string with static storage duration; nullptr means "unlabeled".
  const char* label() const noexcept { return label_; }
  void set_label(const char* label) noexcept { label_ = label; }

  // True when callables of type F are stored inline (compile-time; exposed
  // so tests and benches can assert the allocation budget).
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    return fits_inline<std::decay_t<F>>;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs the callable into `dst` raw storage and destroys the
    // source. noexcept: inline storage requires a nothrow move constructor,
    // heap storage relocates by pointer. nullptr means "relocate by
    // memcpy": the queue's relocation — the operation it performs most —
    // then never leaves straight-line code. Trivially copyable captures
    // and the heap fallback's pointer slot both qualify.
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr means trivially destructible: reset() skips the call.
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineCapacity &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* self) noexcept { static_cast<Fn*>(self)->~Fn(); }
    static constexpr Ops ops{
        &invoke,
        std::is_trivially_copyable_v<Fn> ? nullptr : &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  // Like InlineOps, but relocation is forced onto the memcpy path on the
  // caller's TrustedRelocation promise; destruction still runs normally.
  template <typename Fn>
  struct TrustedOps {
    static void invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void destroy(void* self) noexcept { static_cast<Fn*>(self)->~Fn(); }
    static constexpr Ops ops{
        &invoke, nullptr,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* ptr(void* self) noexcept { return *static_cast<Fn**>(self); }
    static void invoke(void* self) { (*ptr(self))(); }
    static void destroy(void* self) noexcept { delete ptr(self); }
    // The inline slot holds a plain pointer: relocation is always a memcpy.
    static constexpr Ops ops{&invoke, nullptr, &destroy};
  };

  void move_from(SimEvent& other) noexcept {
    ops_ = other.ops_;
    label_ = other.label_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, other.buf_);
      } else {
        // Copying the whole fixed-size buffer (three 16-byte chunks)
        // beats an indirect call even for small captures, and the branch
        // is perfectly predicted in queue churn loops.
        std::memcpy(buf_, other.buf_, kInlineCapacity);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
  const char* label_ = nullptr;
};

static_assert(sizeof(SimEvent) == SimEvent::kInlineCapacity + 2 * sizeof(void*),
              "SimEvent should stay one cache line (64 bytes)");

}  // namespace pds
