#include "dsim/simulator.hpp"

#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "util/contracts.hpp"

namespace pds {

Simulator::Simulator(EventQueueKind queue) : events_(queue) {}

void Simulator::schedule_at(SimTime t, Action action, const char* label) {
  PDS_CHECK(t >= now_, "cannot schedule an event in the past");
  PDS_CHECK(static_cast<bool>(action), "null event action");
  if (label != nullptr) action.set_label(label);
  events_.push(EventItem{t, next_seq_++, std::move(action)});
}

void Simulator::schedule_in(SimTime dt, Action action, const char* label) {
  PDS_CHECK(dt >= 0.0, "negative delay");
  schedule_at(now_ + dt, std::move(action), label);
}

void Simulator::run() {
  drain(std::numeric_limits<SimTime>::infinity(), DrainBound::kNone);
}

void Simulator::run_until(SimTime t_end) {
  PDS_CHECK(t_end >= now_, "horizon is in the past");
  drain(t_end, DrainBound::kInclusive);
}

void Simulator::run_before(SimTime bound) {
  PDS_CHECK(bound >= now_, "bound is in the past");
  drain(bound, DrainBound::kStrict);
}

void Simulator::advance_to(SimTime t) {
  PDS_CHECK(t >= now_, "cannot advance the clock backwards");
  PDS_CHECK(events_.empty() || events_.next_time() >= t,
            "advance_to would skip a pending event");
  now_ = t;
}

void Simulator::drain(SimTime horizon, DrainBound bound) {
  events_.visit([&](auto& queue) { drain_impl(queue, horizon, bound); });
}

template <typename Queue>
void Simulator::drain_impl(Queue& queue, SimTime horizon, DrainBound bound) {
  // The wall-clock half of the budget is only sampled every
  // kWallCheckPeriod events: the check never influences which events run
  // (it aborts, it does not reorder), and amortized it costs nothing.
  constexpr std::uint64_t kWallCheckPeriod = 4096;
  using WallClock = std::chrono::steady_clock;
  const bool budgeted = has_budget();
  const WallClock::time_point run_start =
      budgeted ? WallClock::now() : WallClock::time_point{};
  std::uint64_t run_executed = 0;

  stopped_ = false;
  while (!queue.empty() && !stopped_) {
    if (bound == DrainBound::kInclusive && queue.next_time() > horizon) break;
    if (bound == DrainBound::kStrict && queue.next_time() >= horizon) break;
    if (budgeted) {
      if (budget_events_ > 0 && run_executed >= budget_events_) {
        throw SimBudgetExceeded(
            "event budget exceeded: " + std::to_string(run_executed) +
                " events executed in one run call (limit " +
                std::to_string(budget_events_) + ")",
            now_, run_executed, queue.size());
      }
      if (budget_wall_seconds_ > 0.0 &&
          run_executed % kWallCheckPeriod == 0) {
        const std::chrono::duration<double> elapsed =
            WallClock::now() - run_start;
        if (elapsed.count() > budget_wall_seconds_) {
          throw SimBudgetExceeded(
              "wall-clock budget exceeded: " +
                  std::to_string(elapsed.count()) + " s elapsed (limit " +
                  std::to_string(budget_wall_seconds_) + " s)",
              now_, run_executed, queue.size());
        }
      }
    }
    EventItem ev = queue.pop();
    PDS_REQUIRE(ev.time >= now_);
    now_ = ev.time;
    ++executed_;
    ++run_executed;
    if (monitor_ != nullptr) {
      monitor_->on_event_begin(now_, ev.label(), queue.size());
      ev.action();
      monitor_->on_event_end(now_, ev.label());
    } else {
      ev.action();
    }
  }
  // Advance to the horizon only on a normal run_until exit. After stop() the
  // queue may still hold events before the horizon; jumping the clock past
  // them would make them "past" events and break a subsequent run. A strict
  // drain (run_before) never touches the clock: events at exactly the bound
  // are still pending.
  if (bound == DrainBound::kInclusive && !stopped_ && now_ < horizon) {
    now_ = horizon;
  }
}

struct PeriodicProcess::State {
  Simulator& sim;
  SimTime period;
  std::function<void(SimTime)> body;
  bool cancelled = false;

  // Runs the body once and re-arms. The pending event *owns* one shared_ptr
  // reference (keeping the state alive even if the PeriodicProcess handle
  // was destroyed — destruction cancels) and moves it into the next event on
  // every rearm: after the initial schedule there is no refcount traffic and
  // no allocation per tick.
  static void fire(std::shared_ptr<State> st) {
    if (st->cancelled) return;
    st->body(st->sim.now());
    if (st->cancelled) return;
    Simulator& sim = st->sim;
    const SimTime period = st->period;
    sim.schedule_in(period,
                    SimEvent(SimEvent::TrustedRelocation{},
                             [st = std::move(st)]() mutable {
                               fire(std::move(st));
                             }, "dsim.periodic"));
  }
};

PeriodicProcess::PeriodicProcess(Simulator& sim, SimTime start, SimTime period,
                                 std::function<void(SimTime)> body)
    : state_(std::make_shared<State>(State{sim, period, std::move(body)})) {
  PDS_CHECK(period > 0.0, "period must be positive");
  PDS_CHECK(static_cast<bool>(state_->body), "null process body");
  sim.schedule_at(start,
                  SimEvent(SimEvent::TrustedRelocation{},
                           [st = state_]() mutable { State::fire(std::move(st)); },
                           "dsim.periodic"));
}

PeriodicProcess::~PeriodicProcess() {
  if (state_) state_->cancelled = true;
}

void PeriodicProcess::cancel() noexcept {
  if (state_) state_->cancelled = true;
}

bool PeriodicProcess::cancelled() const noexcept {
  return !state_ || state_->cancelled;
}

}  // namespace pds
