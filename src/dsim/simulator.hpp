// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue and a clock. Events are
// arbitrary callables scheduled at absolute or relative times; events with
// equal timestamps fire in FIFO scheduling order (stable tie-break via a
// monotone sequence number), which the schedulers rely on for deterministic
// replay across runs with the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>

#include "dsim/event_queue.hpp"
#include "dsim/sim_event.hpp"
#include "dsim/time.hpp"

namespace pds {

// Thrown by run()/run_until() when a run budget (see Simulator::set_budget)
// is exhausted. The simulator is left in a consistent state: the clock sits
// at the last executed event and no pending event has been lost, so the
// caller may inspect the wreck (or even clear the budget and resume). The
// exp-layer Watchdog converts this into a WatchdogError carrying a fuller
// diagnostic snapshot.
class SimBudgetExceeded : public std::runtime_error {
 public:
  SimBudgetExceeded(const std::string& message, SimTime trip_now,
                    std::uint64_t trip_executed, std::size_t trip_pending)
      : std::runtime_error(message),
        now(trip_now),
        executed(trip_executed),
        pending(trip_pending) {}

  SimTime now;             // clock when the budget tripped
  std::uint64_t executed;  // events executed in the tripping run call
  std::size_t pending;     // pending-event heap size at the trip
};

// Kernel-level observer invoked around every executed event. The profiler in
// obs/profiler.hpp is the canonical implementation; the hook is defined here
// so the kernel stays free of higher-layer dependencies. Implementations must
// not schedule events or mutate the simulator from inside the callbacks.
class SimMonitor {
 public:
  virtual ~SimMonitor() = default;

  // Fired after the clock advanced to the event's time, before the action
  // runs. `pending` is the queue size excluding the event being executed.
  virtual void on_event_begin(SimTime now, const char* label,
                              std::size_t pending) noexcept = 0;

  // Fired after the action returned (labels match on_event_begin pairwise;
  // events never nest — drain is not reentrant).
  virtual void on_event_end(SimTime now, const char* label) noexcept = 0;
};

class Simulator {
 public:
  // Events are SimEvents: move-only, small-buffer callables (any callable
  // up to SimEvent::kInlineCapacity bytes schedules without touching the
  // heap; closures may own their captures by move). See dsim/sim_event.hpp.
  using Action = SimEvent;

  // The pending-event set defaults to a binary heap; packet-level
  // workloads with roughly uniform event spacing can opt into the calendar
  // queue (see dsim/event_queue.hpp). Both give identical execution orders.
  // The queue is a sealed variant held by value — no virtual dispatch and
  // no pointer indirection on the per-event path.
  explicit Simulator(EventQueueKind queue = EventQueueKind::kBinaryHeap);

  // Non-copyable: scheduled actions capture `this` of client objects.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  // Schedules `action` at absolute time `t >= now()`. Throws
  // std::invalid_argument if `t` is in the past.
  //
  // Scheduling at exactly now() — including from inside a running event —
  // is guaranteed to (a) never throw and (b) preserve FIFO order: the new
  // event receives the next sequence number, so among all events with equal
  // timestamps it fires after every previously scheduled one, during the
  // current run (even when `t` equals a `run_until` horizon).
  //
  // `label` is an optional profiling category for the SimMonitor hook; it
  // must be a literal / static string (the event stores the pointer). A
  // non-null `label` overrides any label the SimEvent already carries.
  void schedule_at(SimTime t, Action action, const char* label = nullptr);

  // Schedules `action` `dt >= 0` after the current time.
  void schedule_in(SimTime dt, Action action, const char* label = nullptr);

  // Runs events until the queue is empty, `run_until` horizon is reached, or
  // stop() is called. Events exactly at the horizon still fire. When the
  // horizon is reached normally the clock advances to it; when stop() ended
  // the run early the clock stays at the last executed event so pending
  // events are still in the future and a later run resumes cleanly.
  void run();
  void run_until(SimTime t_end);

  // Runs events with time strictly below `bound`, leaving the clock at the
  // last executed event (never bumped to the bound). Events at exactly
  // `bound` stay pending. This is the conservative-PDES window primitive
  // (dsim/shard.hpp): a shard drains everything below its safe bound, then
  // interleaves cross-shard messages via advance_to().
  void run_before(SimTime bound);

  // Jumps the clock to `t` without executing anything. Requires t >= now()
  // and no pending event before `t` — the caller asserts it already drained
  // the prefix (via run_before). Used to deliver a cross-shard message whose
  // timestamp falls between local events.
  void advance_to(SimTime t);

  // Timestamp of the earliest pending event; +infinity when idle.
  SimTime next_time() const noexcept {
    return events_.empty() ? std::numeric_limits<SimTime>::infinity()
                           : events_.next_time();
  }

  // Requests that the run loop exits after the current event returns.
  void stop() noexcept { stopped_ = true; }

  // Run-budget watchdog hook. When armed, every run()/run_until() call
  // throws SimBudgetExceeded once it has executed more than `max_events`
  // events (0 = unlimited; deterministic — it trips at the same event on
  // every run) or once `max_wall_seconds` of real time have elapsed since
  // the run call started (0 = unlimited; checked every few thousand events,
  // so it only catches real hangs and never perturbs event order). The
  // budget applies to each run call independently and stays armed until
  // cleared.
  void set_budget(std::uint64_t max_events,
                  double max_wall_seconds = 0.0) noexcept {
    budget_events_ = max_events;
    budget_wall_seconds_ = max_wall_seconds;
  }
  void clear_budget() noexcept { set_budget(0, 0.0); }
  bool has_budget() const noexcept {
    return budget_events_ > 0 || budget_wall_seconds_ > 0.0;
  }

  // Installs (or clears, with nullptr) the kernel observer invoked around
  // every event; see SimMonitor. The monitor must outlive the run.
  void set_monitor(SimMonitor* monitor) noexcept { monitor_ = monitor; }
  SimMonitor* monitor() const noexcept { return monitor_; }

  bool empty() const noexcept { return events_.empty(); }
  std::size_t pending_events() const noexcept { return events_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  // kInclusive: events at exactly the horizon fire and the clock advances to
  // the horizon on a normal exit (run_until). kStrict: only events strictly
  // below the horizon fire and the clock stays at the last executed event
  // (run_before).
  enum class DrainBound : std::uint8_t { kNone, kInclusive, kStrict };

  void drain(SimTime horizon, DrainBound bound);
  // The run loop, instantiated once per concrete queue type so every queue
  // operation inside it is a direct (inlinable) call. drain() dispatches on
  // the sealed EventQueue's kind exactly once per run call.
  template <typename Queue>
  void drain_impl(Queue& queue, SimTime horizon, DrainBound bound);

  EventQueue events_;
  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  SimMonitor* monitor_ = nullptr;
  std::uint64_t budget_events_ = 0;     // 0 = unlimited
  double budget_wall_seconds_ = 0.0;    // 0 = unlimited
};

// Repeatedly runs `body` every `period` time units until the simulator stops
// or `cancel()` is called. The first invocation happens at `start`.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, SimTime start, SimTime period,
                  std::function<void(SimTime)> body);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void cancel() noexcept;
  bool cancelled() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace pds
