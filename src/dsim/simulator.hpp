// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue and a clock. Events are
// arbitrary callables scheduled at absolute or relative times; events with
// equal timestamps fire in FIFO scheduling order (stable tie-break via a
// monotone sequence number), which the schedulers rely on for deterministic
// replay across runs with the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dsim/event_queue.hpp"
#include "dsim/time.hpp"

namespace pds {

class Simulator {
 public:
  using Action = std::function<void()>;

  // The pending-event set defaults to a binary heap; packet-level
  // workloads with roughly uniform event spacing can opt into the calendar
  // queue (see dsim/event_queue.hpp). Both give identical execution orders.
  explicit Simulator(EventQueueKind queue = EventQueueKind::kBinaryHeap);

  // Non-copyable: scheduled actions capture `this` of client objects.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  // Schedules `action` at absolute time `t >= now()`. Throws
  // std::invalid_argument if `t` is in the past.
  void schedule_at(SimTime t, Action action);

  // Schedules `action` `dt >= 0` after the current time.
  void schedule_in(SimTime dt, Action action);

  // Runs events until the queue is empty, `run_until` horizon is reached, or
  // stop() is called. Events exactly at the horizon still fire.
  void run();
  void run_until(SimTime t_end);

  // Requests that the run loop exits after the current event returns.
  void stop() noexcept { stopped_ = true; }

  bool empty() const noexcept { return events_->empty(); }
  std::size_t pending_events() const noexcept { return events_->size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  void drain(SimTime horizon, bool bounded);

  std::unique_ptr<EventQueue> events_;
  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

// Repeatedly runs `body` every `period` time units until the simulator stops
// or `cancel()` is called. The first invocation happens at `start`.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, SimTime start, SimTime period,
                  std::function<void(SimTime)> body);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void cancel() noexcept;
  bool cancelled() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace pds
