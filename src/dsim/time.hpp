// Simulation time is a double in abstract "time units". Study A (single link)
// follows the paper's normalization where the mean packet transmission time
// is 11.2 units (one "p-unit"); Study B uses seconds.
#pragma once

namespace pds {

using SimTime = double;

inline constexpr SimTime kTimeZero = 0.0;

}  // namespace pds
