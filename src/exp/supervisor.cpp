#include "exp/supervisor.hpp"

#include <sstream>

namespace pds {

namespace detail {

CellRecord*& active_cell_record() noexcept {
  thread_local CellRecord* t_record = nullptr;
  return t_record;
}

}  // namespace detail

void report_cell_work(std::uint64_t work) noexcept {
  if (CellRecord* record = detail::active_cell_record()) {
    // Accumulate: a cell that runs several simulations (e.g. seed
    // replications) reports the sum of their work measures.
    record->work += work;
  }
}

Watchdog::Watchdog(Simulator& sim, WatchdogLimits limits, SnapshotFn snapshot)
    : sim_(sim), limits_(limits), snapshot_(std::move(snapshot)) {}

Watchdog::~Watchdog() { sim_.clear_budget(); }

void Watchdog::run_until(SimTime t_end) {
  if (!limits_.enabled()) {
    sim_.run_until(t_end);
    return;
  }
  sim_.set_budget(limits_.max_events, limits_.max_wall_seconds);
  try {
    sim_.run_until(t_end);
  } catch (const SimBudgetExceeded& e) {
    tripped_ = true;
    sim_.clear_budget();
    std::ostringstream snap;
    snap << "watchdog: " << e.what() << "\n  now=" << e.now
         << " executed=" << e.executed << " pending=" << e.pending;
    if (snapshot_) {
      const std::string extra = snapshot_();
      // Indent each caller-supplied line under the header.
      std::istringstream lines(extra);
      std::string line;
      while (std::getline(lines, line)) {
        if (!line.empty()) snap << "\n  " << line;
      }
    }
    throw WatchdogError(snap.str(), e.now, e.executed, e.pending);
  }
  sim_.clear_budget();
}

}  // namespace pds
