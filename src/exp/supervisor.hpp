// Run supervision: failure isolation for sweep cells and a watchdog for
// stuck simulations.
//
// run_sweep (exp/sweep.hpp) propagates the first cell exception and abandons
// the rest of the grid — right for programming errors, wrong for long
// multi-hour sweeps where one pathological cell should not cost the other
// thousand. run_supervised_sweep keeps the same determinism contract
// (results written by flat index into a pre-sized vector, byte-identical
// output for any --jobs) but catches per-cell exceptions: a throwing cell is
// recorded as a CellFailure carrying the exception text, optionally retried
// once, and never kills sibling cells. Failed cells hold a
// default-constructed result.
//
// Watchdog wraps Simulator::run_until with the kernel run budget
// (Simulator::set_budget): an event-count budget catches livelocks
// deterministically (same trip point on every run), a wall-clock deadline
// catches genuine hangs. When the budget trips, the Watchdog assembles a
// diagnostic snapshot — simulation clock, events executed, pending-heap
// size, plus any caller-supplied detail such as per-class backlogs — and
// throws WatchdogError with the snapshot embedded in what(). Nothing is
// printed: under run_supervised_sweep the snapshot lands in the cell's
// CellFailure record, keeping sweep output byte-identical across --jobs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dsim/simulator.hpp"
#include "dsim/time.hpp"
#include "exp/thread_pool.hpp"

namespace pds {

// One failed sweep cell: the flat grid index, the what() text of the last
// attempt's exception, and how many attempts were made.
struct CellFailure {
  std::size_t index = 0;
  std::string error;
  int attempts = 0;
};

// Per-cell execution telemetry captured by run_supervised_sweep when
// SupervisorOptions::telemetry is set. The deterministic fields (index,
// work, attempts, failed) are identical for any --jobs; worker / wall times
// are schedule-dependent and feed only the wall-mode span view and the
// volatile run-report section (see obs/span.hpp, obs/report.hpp).
struct CellRecord {
  std::size_t index = 0;
  std::uint32_t worker = 0;   // participant that executed the cell
  double start_s = 0.0;       // wall time from sweep submit to cell start
  double run_s = 0.0;         // wall time inside the cell body
  std::uint64_t work = 0;     // deterministic work measure (report_cell_work)
  int attempts = 0;
  bool failed = false;
};

// Everything a sweep run can report about how it executed: one record per
// cell (in grid order) plus the pool-level accounting delta for the sweep.
struct SweepTelemetry {
  std::vector<CellRecord> cells;
  std::uint32_t workers = 0;
  std::uint64_t steals = 0;             // across the sweep, all workers
  std::vector<double> worker_busy_s;    // per participant, this sweep
  double elapsed_s = 0.0;               // submit to post-barrier assembly
};

// Reports a deterministic work measure (e.g. simulator events executed) for
// the sweep cell currently running on this thread; a no-op outside a
// supervised sweep with telemetry enabled. The measure is attributed to the
// cell regardless of which worker ran it, so it survives the byte-identical
// --jobs contract.
void report_cell_work(std::uint64_t work) noexcept;

namespace detail {
// Thread-local slot report_cell_work writes through; owned by the supervised
// sweep while a cell body runs.
CellRecord*& active_cell_record() noexcept;
}  // namespace detail

// All cells in grid order (failed cells default-constructed) plus the
// failures sorted by index — both deterministic regardless of worker count.
template <typename T>
struct SupervisedResult {
  std::vector<T> cells;
  std::vector<CellFailure> failures;

  bool ok() const noexcept { return failures.empty(); }
};

struct SupervisorOptions {
  // Re-run a throwing cell once before recording it as failed. Useful when
  // cells can trip a wall-clock watchdog on a transiently loaded machine;
  // deterministic failures simply fail twice.
  bool retry_once = false;

  // When set, the sweep fills one CellRecord per cell (worker, wall times,
  // attempts, report_cell_work measure) plus the pool stats delta — the raw
  // material for span traces and run reports. Costs two steady_clock reads
  // per cell; null skips all of it.
  SweepTelemetry* telemetry = nullptr;
};

// Like run_sweep(cells, fn) but with per-cell failure isolation.
template <typename Fn>
auto run_supervised_sweep(std::size_t cells, const SupervisorOptions& opts,
                          Fn&& fn)
    -> SupervisedResult<decltype(fn(std::size_t{0}))> {
  SupervisedResult<decltype(fn(std::size_t{0}))> out;
  out.cells.resize(cells);
  std::mutex mu;
  const int max_attempts = opts.retry_once ? 2 : 1;
  SweepTelemetry* telemetry = opts.telemetry;
  ThreadPool& pool = ThreadPool::global();
  PoolStats stats_before;
  std::chrono::steady_clock::time_point submit_at{};
  if (telemetry) {
    *telemetry = SweepTelemetry{};
    telemetry->cells.resize(cells);
    telemetry->workers = pool.workers();
    stats_before = pool.stats();
    submit_at = std::chrono::steady_clock::now();
  }
  pool.parallel_for(cells, [&](std::uint32_t worker, std::size_t i) {
    CellRecord* record = nullptr;
    std::chrono::steady_clock::time_point t0{};
    if (telemetry) {
      record = &telemetry->cells[i];
      record->index = i;
      record->worker = worker;
      t0 = std::chrono::steady_clock::now();
      record->start_s =
          std::chrono::duration<double>(t0 - submit_at).count();
      detail::active_cell_record() = record;
    }
    std::string error;
    int attempts = 0;
    bool ok = false;
    while (attempts < max_attempts && !ok) {
      ++attempts;
      if (record) record->work = 0;  // a retry re-reports from scratch
      try {
        out.cells[i] = fn(i);
        ok = true;
      } catch (const std::exception& e) {
        error = e.what();
      } catch (...) {
        error = "unknown exception";
      }
    }
    if (record) {
      detail::active_cell_record() = nullptr;
      record->run_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      record->attempts = attempts;
      record->failed = !ok;
    }
    if (!ok) {
      const std::lock_guard<std::mutex> lock(mu);
      out.failures.push_back(CellFailure{i, std::move(error), attempts});
    }
  });
  // Failures arrive in execution order (worker-dependent); sort by index so
  // the report is as deterministic as the cell vector.
  std::sort(out.failures.begin(), out.failures.end(),
            [](const CellFailure& a, const CellFailure& b) {
              return a.index < b.index;
            });
  if (telemetry) {
    const PoolStats stats_after = pool.stats();
    telemetry->steals =
        stats_after.total_steals() - stats_before.total_steals();
    telemetry->worker_busy_s.resize(stats_after.workers.size());
    for (std::size_t w = 0; w < stats_after.workers.size(); ++w) {
      const double before = w < stats_before.workers.size()
                                ? stats_before.workers[w].busy_seconds
                                : 0.0;
      telemetry->worker_busy_s[w] =
          stats_after.workers[w].busy_seconds - before;
    }
    telemetry->elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - submit_at)
                               .count();
  }
  return out;
}

// Watchdog limits. Zero means "unlimited" for each independently.
struct WatchdogLimits {
  std::uint64_t max_events = 0;   // per run_until call, deterministic
  double max_wall_seconds = 0.0;  // per run_until call, hang backstop

  bool enabled() const noexcept {
    return max_events > 0 || max_wall_seconds > 0.0;
  }
};

// Thrown by Watchdog::run_until when the budget trips. what() is the full
// diagnostic snapshot (multi-line); snapshot() returns the same text.
class WatchdogError : public std::runtime_error {
 public:
  WatchdogError(const std::string& snapshot_text, SimTime trip_now,
                std::uint64_t trip_executed, std::size_t trip_pending)
      : std::runtime_error(snapshot_text),
        now(trip_now),
        executed(trip_executed),
        pending(trip_pending) {}

  const char* snapshot() const noexcept { return what(); }

  SimTime now;             // clock when the budget tripped
  std::uint64_t executed;  // events executed in the tripping run call
  std::size_t pending;     // pending-event heap size at the trip
};

// Supervises one simulator run. Arms the kernel budget for the duration of
// each run_until call and converts SimBudgetExceeded into a WatchdogError
// whose what() is a diagnostic snapshot:
//
//   watchdog: event budget exceeded (100000 events)
//     now=812.5 executed=100000 pending=37
//     class 0 backlog=12
//     class 1 backlog=25
//
// The indented tail comes from the optional SnapshotFn, which the caller
// supplies to report domain state (per-class backlogs, episode counters).
// The snapshot function runs after the budget trips, outside the event loop;
// it must not schedule events.
class Watchdog {
 public:
  using SnapshotFn = std::function<std::string()>;

  Watchdog(Simulator& sim, WatchdogLimits limits, SnapshotFn snapshot = {});
  ~Watchdog();  // disarms the budget

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Runs the simulator to t_end under the limits. Throws WatchdogError when
  // the budget trips; the simulator itself is left consistent (clock at the
  // last executed event, pending events intact).
  void run_until(SimTime t_end);

  bool tripped() const noexcept { return tripped_; }

 private:
  Simulator& sim_;
  WatchdogLimits limits_;
  SnapshotFn snapshot_;
  bool tripped_ = false;
};

}  // namespace pds
