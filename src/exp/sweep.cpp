#include "exp/sweep.hpp"

#include <limits>

#include "util/contracts.hpp"

namespace pds {

SweepGrid::SweepGrid(std::vector<std::size_t> extents)
    : extents_(std::move(extents)) {
  PDS_CHECK(!extents_.empty(), "sweep grid needs at least one axis");
  for (const std::size_t e : extents_) {
    PDS_CHECK(e > 0, "sweep axis extent must be positive");
    PDS_CHECK(size_ <= std::numeric_limits<std::size_t>::max() / e,
              "sweep grid size overflows");
    size_ *= e;
  }
}

std::vector<std::size_t> SweepGrid::coords(std::size_t flat) const {
  PDS_REQUIRE(flat < size_);
  std::vector<std::size_t> at(extents_.size());
  for (std::size_t axis = extents_.size(); axis-- > 0;) {
    at[axis] = flat % extents_[axis];
    flat /= extents_[axis];
  }
  return at;
}

std::size_t SweepGrid::flat(const std::vector<std::size_t>& coords) const {
  PDS_REQUIRE(coords.size() == extents_.size());
  std::size_t flat = 0;
  for (std::size_t axis = 0; axis < extents_.size(); ++axis) {
    PDS_REQUIRE(coords[axis] < extents_[axis]);
    flat = flat * extents_[axis] + coords[axis];
  }
  return flat;
}

}  // namespace pds
