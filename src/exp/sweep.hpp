// Sweep-cell fan-out over a cartesian experiment grid.
//
// The evaluation benches enumerate grids like rho x scheduler x seed and
// run one independent simulation per cell. SweepGrid names the index space
// (row-major, last axis fastest), and run_sweep / SweepRunner execute one
// cell per parallel_for index on the global ThreadPool, writing each
// result into its grid slot. Because results are stored by flat index and
// cells are seeded independently, the returned vector — and any table
// assembled from it after the barrier — is byte-identical whether the pool
// has 1 or N workers (the determinism contract; pinned by
// tests/exp_test.cpp).
//
// Granularity rule (see docs/architecture.md): fan out at *cell*
// granularity — one run_sweep over every (parameter, scheduler, seed)
// combination a table needs — and keep any nested per-cell parallelism
// (e.g. run_study_a_replications inside a cell) as it is; nested
// parallel_for runs inline, so composing the two is safe and the outer,
// wider fan-out wins the hardware.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "exp/thread_pool.hpp"

namespace pds {

// A cartesian index space. coords/flat convert between the flat cell index
// and per-axis coordinates; axis 0 is the slowest (outermost loop).
class SweepGrid {
 public:
  explicit SweepGrid(std::vector<std::size_t> extents);

  std::size_t size() const { return size_; }
  std::size_t rank() const { return extents_.size(); }
  const std::vector<std::size_t>& extents() const { return extents_; }

  std::vector<std::size_t> coords(std::size_t flat) const;
  std::size_t flat(const std::vector<std::size_t>& coords) const;

 private:
  std::vector<std::size_t> extents_;
  std::size_t size_ = 1;
};

// Runs fn(flat_index) for every cell in [0, cells) on the global pool and
// returns the results in grid order. The result type must be
// default-constructible (results are written into a pre-sized vector).
template <typename Fn>
auto run_sweep(std::size_t cells, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(cells);
  parallel_for(cells,
               [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

// Grid-shaped variant: fn(coords, flat_index) -> Result.
template <typename Fn>
auto run_sweep(const SweepGrid& grid, Fn&& fn)
    -> std::vector<decltype(fn(std::vector<std::size_t>{},
                               std::size_t{0}))> {
  std::vector<decltype(fn(std::vector<std::size_t>{}, std::size_t{0}))> out(
      grid.size());
  parallel_for(grid.size(), [&](std::size_t i) { out[i] = fn(grid.coords(i), i); });
  return out;
}

// Named wrapper when a bench wants to hold the grid and reuse it for
// result lookup after the barrier:
//   SweepRunner runner({rhos.size(), kinds.size()});
//   const auto cells = runner.run([&](const auto& at, std::size_t) {...});
//   ... cells[runner.grid().flat({r, k})] ...
class SweepRunner {
 public:
  explicit SweepRunner(SweepGrid grid) : grid_(std::move(grid)) {}
  explicit SweepRunner(std::vector<std::size_t> extents)
      : grid_(std::move(extents)) {}

  const SweepGrid& grid() const { return grid_; }

  template <typename Fn>
  auto run(Fn&& fn) const {
    return run_sweep(grid_, std::forward<Fn>(fn));
  }

 private:
  SweepGrid grid_;
};

}  // namespace pds
