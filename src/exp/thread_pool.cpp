#include "exp/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "util/contracts.hpp"

namespace pds {

namespace {

// Worker index of the current thread while inside a parallel_for body;
// 0 (the submitter id) otherwise. Nested parallel_for calls inherit it.
thread_local std::uint32_t t_worker_id = 0;
thread_local bool t_in_parallel = false;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

// A per-participant deque of loop indices. Both ends are claimed under the
// shard mutex: the owner pops `begin`, thieves pop `end`. Contention is
// negligible — a steal only happens when the thief's own shard is empty,
// and sweep cells are orders of magnitude heavier than one lock op.
struct ThreadPool::Shard {
  std::mutex mu;
  std::size_t begin = 0;
  std::size_t end = 0;

  bool claim_front(std::size_t& index) {
    std::lock_guard<std::mutex> lk(mu);
    if (begin >= end) return false;
    index = begin++;
    return true;
  }
  bool claim_back(std::size_t& index) {
    std::lock_guard<std::mutex> lk(mu);
    if (begin >= end) return false;
    index = --end;
    return true;
  }
};

struct ThreadPool::Job {
  const IndexedBody* body = nullptr;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  // Per-participant work accounting: each participant writes only its own
  // slot while the job runs; the submitter folds the slots into the pool
  // totals after the idle barrier, when no worker touches the job anymore.
  std::vector<PoolWorkerStats> slots;
};

ThreadPool::ThreadPool(std::uint32_t workers)
    : n_participants_(resolve_workers(workers)) {
  stats_.workers.resize(n_participants_);
  threads_.reserve(n_participants_ - 1);
  for (std::uint32_t id = 1; id < n_participants_; ++id) {
    threads_.emplace_back([this, id] { worker_main(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::in_parallel_region() { return t_in_parallel; }

PoolStats ThreadPool::stats() const {
  PDS_CHECK(!t_in_parallel,
            "cannot snapshot pool stats from inside a parallel region");
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void ThreadPool::reset_stats() {
  PDS_CHECK(!t_in_parallel,
            "cannot reset pool stats from inside a parallel region");
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_ = PoolStats{};
  stats_.workers.resize(n_participants_);
}

std::uint32_t ThreadPool::resolve_workers(std::uint32_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PDS_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    PDS_CHECK(end != env && *end == '\0',
              "PDS_JOBS must be a non-negative integer");
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::uint32_t ThreadPool::plan_workers(std::uint32_t jobs,
                                       std::uint32_t shards) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::uint32_t hw = hw_raw > 0 ? hw_raw : 1;
  const std::uint32_t want =
      std::max(resolve_workers(jobs), shards > 0 ? shards : 1u);
  return std::min(want, hw);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(resolve_workers(0));
  }
  return *g_global_pool;
}

void ThreadPool::set_global_workers(std::uint32_t workers) {
  PDS_CHECK(!t_in_parallel,
            "cannot resize the pool from inside a parallel region");
  std::lock_guard<std::mutex> lk(g_global_mu);
  const std::uint32_t want = resolve_workers(workers);
  if (g_global_pool && g_global_pool->workers() == want) return;
  g_global_pool.reset();  // join the old crew before starting the new one
  g_global_pool = std::make_unique<ThreadPool>(want);
}

void ThreadPool::parallel_for(std::size_t count, const IndexedBody& body) {
  if (count == 0) return;
  if (t_in_parallel || threads_.empty() || count == 1) {
    // Nested, single-worker, or trivial: run inline on this participant.
    // Nested loops are not separately accounted — their wall time already
    // belongs to the enclosing body's claim.
    const bool was_in_parallel = t_in_parallel;
    t_in_parallel = true;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      for (std::size_t i = 0; i < count; ++i) body(t_worker_id, i);
    } catch (...) {
      t_in_parallel = was_in_parallel;
      throw;
    }
    t_in_parallel = was_in_parallel;
    if (!was_in_parallel) {
      const auto t1 = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.jobs;
      PoolWorkerStats& slot = stats_.workers[t_worker_id];
      slot.claimed += count;
      slot.busy_seconds += std::chrono::duration<double>(t1 - t0).count();
    }
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mu_);
  Job job;
  job.body = &body;
  job.slots.resize(n_participants_);
  const auto shard_count = static_cast<std::uint32_t>(
      std::min<std::size_t>(n_participants_, count));
  job.shards.reserve(shard_count);
  const std::size_t base = count / shard_count;
  const std::size_t rem = count % shard_count;
  std::size_t at = 0;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->begin = at;
    at += base + (s < rem ? 1 : 0);
    shard->end = at;
    job.shards.push_back(std::move(shard));
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++epoch_;
  }
  wake_.notify_all();
  work_on(job, /*self=*/0);
  {
    // The shards are drained, but a worker may still be running its last
    // claimed body (or scanning for steals); the job lives on this stack
    // frame, so wait for every worker to leave it before retiring it.
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [&] { return busy_ == 0; });
    job_ = nullptr;
  }
  {
    // Every worker has left the job, so its slots are quiescent.
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.jobs;
    for (std::uint32_t w = 0; w < n_participants_; ++w) {
      stats_.workers[w].claimed += job.slots[w].claimed;
      stats_.workers[w].stolen += job.slots[w].stolen;
      stats_.workers[w].busy_seconds += job.slots[w].busy_seconds;
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_main(std::uint32_t id) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    wake_.wait(lk, [&] {
      return stop_ || (job_ != nullptr && epoch_ != seen_epoch);
    });
    if (stop_) return;
    Job* job = job_;
    seen_epoch = epoch_;
    ++busy_;
    lk.unlock();
    work_on(*job, id);
    lk.lock();
    if (--busy_ == 0) idle_.notify_all();
  }
}

void ThreadPool::work_on(Job& job, std::uint32_t self) {
  const auto shard_count = static_cast<std::uint32_t>(job.shards.size());
  const std::uint32_t prev_id = t_worker_id;
  const bool was_in_parallel = t_in_parallel;
  t_worker_id = self;
  t_in_parallel = true;
  const std::uint32_t home = self % shard_count;
  PoolWorkerStats& slot = job.slots[self];
  std::size_t index = 0;
  const auto timed_run = [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    run_index(job, self, i);
    const auto t1 = std::chrono::steady_clock::now();
    slot.busy_seconds += std::chrono::duration<double>(t1 - t0).count();
  };
  while (!job.failed.load(std::memory_order_relaxed)) {
    if (job.shards[home]->claim_front(index)) {
      ++slot.claimed;
      timed_run(index);
      continue;
    }
    bool stole = false;
    for (std::uint32_t off = 1; off < shard_count && !stole; ++off) {
      if (job.shards[(home + off) % shard_count]->claim_back(index)) {
        stole = true;
        ++slot.stolen;
        timed_run(index);
      }
    }
    if (!stole) break;  // every shard is dry
  }
  t_worker_id = prev_id;
  t_in_parallel = was_in_parallel;
}

void ThreadPool::run_index(Job& job, std::uint32_t self, std::size_t index) {
  try {
    (*job.body)(self, index);
  } catch (...) {
    std::lock_guard<std::mutex> lk(job.error_mu);
    if (!job.error) job.error = std::current_exception();
    job.failed.store(true, std::memory_order_relaxed);
  }
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(
      count, [&body](std::uint32_t, std::size_t i) { body(i); });
}

void parallel_for(std::size_t count, const ThreadPool::IndexedBody& body) {
  ThreadPool::global().parallel_for(count, body);
}

}  // namespace pds
