// Experiment engine: a process-wide persistent work-stealing thread pool.
//
// The paper's evaluation is a large grid of independent simulations (rho x
// SDP spacing x scheduler x seed cells); this pool is the fan-out substrate
// every bench and study harness shares. One pool instance serves the whole
// process (ThreadPool::global(), lazily created on first use) so repeated
// parallel_for calls reuse the same worker threads instead of spawning and
// joining a fresh crew per call.
//
// Execution model: parallel_for(count, body) splits [0, count) into one
// contiguous shard per participant (a per-worker deque). Each participant
// pops indices from the *front* of its own shard and, when it runs dry,
// steals from the *back* of a victim's shard — classic work stealing, so a
// slow cell on one worker never strands the rest of its shard. The
// submitting thread is participant 0 and works too: a pool of `workers`
// executes with `workers` concurrent bodies on `workers - 1` threads, and a
// 1-worker pool runs the loop inline on the caller, making `--jobs=1`
// exactly the serial execution.
//
// Contracts:
//  * Exceptions thrown by a body propagate to the submitter (the first one
//    wins; claiming stops as soon as a body has thrown).
//  * Nested parallel_for calls — a body that itself fans out — execute
//    inline on the calling participant: no deadlock, no oversubscription,
//    and the nesting callee keeps the caller's worker index.
//  * One job runs at a time; concurrent submitters from distinct threads
//    serialize on an internal mutex.
//  * Worker count resolution: explicit argument > PDS_JOBS env >
//    hardware_concurrency; 0 means "auto" at every level.
//
// Determinism: the pool promises nothing about execution *order*. Callers
// that need deterministic output write results by index into pre-sized
// storage (see exp/sweep.hpp) and keep per-index work independent (e.g.
// per-cell seeds); then the assembled output is byte-identical to a
// single-worker run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pds {

// Lifetime work accounting for one pool participant. `claimed` counts
// indices popped from the participant's own shard, `stolen` those taken from
// a victim's shard; `busy_seconds` is wall time spent inside bodies. All of
// it is wall-clock / schedule-dependent telemetry: it feeds run reports and
// the wall-mode span view, never deterministic output.
struct PoolWorkerStats {
  std::uint64_t claimed = 0;
  std::uint64_t stolen = 0;
  double busy_seconds = 0.0;
};

struct PoolStats {
  std::uint64_t jobs = 0;  // parallel_for calls (including inline ones)
  std::vector<PoolWorkerStats> workers;

  std::uint64_t total_steals() const noexcept {
    std::uint64_t n = 0;
    for (const auto& w : workers) n += w.stolen;
    return n;
  }
};

class ThreadPool {
 public:
  // body(worker, index): `worker` is the participant id in [0, workers()),
  // stable for the duration of one body call — use it to index per-worker
  // scratch state hoisted out of the loop.
  using IndexedBody = std::function<void(std::uint32_t, std::size_t)>;

  explicit ThreadPool(std::uint32_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of concurrent participants (including the submitting thread).
  std::uint32_t workers() const { return n_participants_; }

  void parallel_for(std::size_t count, const IndexedBody& body);

  // Cumulative work accounting since construction (or the last
  // reset_stats()); one entry per participant. Folded in at the end of every
  // parallel_for, so a snapshot taken between jobs is consistent. Must not
  // be called from inside a parallel region.
  PoolStats stats() const;
  void reset_stats();

  // True while the current thread is executing inside a parallel_for body
  // (worker thread or participating submitter).
  static bool in_parallel_region();

  // The process-wide pool. First use creates it with resolve_workers(0).
  static ThreadPool& global();

  // Replaces the global pool (joining the old workers) unless it already
  // has the requested size. `workers == 0` means auto. Must not be called
  // from inside a parallel region.
  static void set_global_workers(std::uint32_t workers);

  // requested > 0 -> requested; else PDS_JOBS env (when a positive
  // integer); else hardware_concurrency (min 1).
  static std::uint32_t resolve_workers(std::uint32_t requested);

  // Oversubscription guard for runs that layer parallelism (--jobs sweeps
  // around --shards simulations): enough workers to serve both the resolved
  // --jobs request and `shards` concurrent shard windows, clamped to the
  // hardware concurrency. Nested parallel_for calls already run inline, so
  // the clamp bounds the total live threads at the machine size instead of
  // jobs x shards.
  static std::uint32_t plan_workers(std::uint32_t jobs, std::uint32_t shards);

 private:
  struct Shard;
  struct Job;

  void worker_main(std::uint32_t id);
  void work_on(Job& job, std::uint32_t self);
  static void run_index(Job& job, std::uint32_t self, std::size_t index);

  std::uint32_t n_participants_;
  std::vector<std::thread> threads_;

  mutable std::mutex stats_mu_;
  PoolStats stats_;

  std::mutex mu_;
  std::condition_variable wake_;  // workers: a new job epoch is available
  std::condition_variable idle_;  // submitter: all workers left the job
  Job* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::uint32_t busy_ = 0;  // workers currently inside work_on
  bool stop_ = false;

  std::mutex submit_mu_;  // one job at a time
};

// Convenience wrappers over ThreadPool::global().
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body);
void parallel_for(std::size_t count, const ThreadPool::IndexedBody& body);

}  // namespace pds
