#include "fault/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

#include <sstream>

#include "net/chain.hpp"
#include "net/topology.hpp"
#include "obs/probe.hpp"
#include "obs/span.hpp"
#include "rng/rng.hpp"
#include "util/contracts.hpp"

namespace pds {

namespace {

[[noreturn]] void bad_plan(const std::string& msg) {
  throw std::invalid_argument("fault plan: " + msg);
}

// SplitMix64 finalizer: decorrelates (plan seed, episode index) pairs into
// independent loss-burst streams.
std::uint64_t episode_seed(std::uint64_t plan_seed, std::uint64_t index) {
  std::uint64_t z = plan_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {}

void FaultInjector::attach(const std::string& name, Link& link) {
  PDS_CHECK(!armed_, "cannot attach targets after arm()");
  PDS_CHECK(!name.empty() && name != "*", "invalid target name");
  PDS_CHECK(links_.find(name) == links_.end(),
            "duplicate fault target " + name);
  PDS_CHECK(name.back() != '*', "target name may not end in *");
  links_[name] = &link;
  attach_order_.push_back(name);
}

void FaultInjector::attach(const std::string& name, LossyLink& lossy) {
  attach(name, lossy.link_mut());
  lossies_[name] = &lossy;
}

void FaultInjector::arm() {
  PDS_CHECK(!armed_, "fault injector armed twice");
  armed_ = true;

  // Expand wildcards over the attached targets. A bare `*` expands in name
  // order (the historical contract: loss-episode seeds depend on instance
  // order); prefix patterns expand in attach order (link-id order for
  // attach_network), so topology plans follow the topology's numbering.
  for (const auto& ep : plan_.episodes) {
    std::vector<std::string> targets;
    if (ep.target == "*") {
      for (const auto& [name, link] : links_) targets.push_back(name);
      if (targets.empty()) bad_plan("episode targets *, nothing attached");
    } else if (is_target_pattern(ep.target)) {
      for (const auto& name : attach_order_) {
        if (target_pattern_matches(ep.target, name)) targets.push_back(name);
      }
      if (targets.empty()) {
        bad_plan("line " + std::to_string(ep.line) + ": pattern " +
                 ep.target + " matches no attached target");
      }
    } else {
      if (links_.find(ep.target) == links_.end()) {
        bad_plan("unknown target " + ep.target);
      }
      targets.push_back(ep.target);
    }
    for (const auto& name : targets) {
      if (ep.kind == FaultKind::kLoss &&
          lossies_.find(name) == lossies_.end()) {
        bad_plan("loss episode targets " + name +
                 ", which is not a lossy link");
      }
      Instance inst;
      inst.episode = ep;
      inst.episode.target = name;
      inst.link = links_.at(name);
      const auto lossy = lossies_.find(name);
      inst.lossy = lossy == lossies_.end() ? nullptr : lossy->second;
      instances_.push_back(std::move(inst));
    }
  }

  // Same-kind episodes on one target must not overlap — their begin/end
  // boundaries would race for the same link state.
  for (std::size_t a = 0; a < instances_.size(); ++a) {
    for (std::size_t b = a + 1; b < instances_.size(); ++b) {
      const auto& ea = instances_[a].episode;
      const auto& eb = instances_[b].episode;
      if (ea.kind != eb.kind || ea.target != eb.target) continue;
      if (ea.at < eb.end() && eb.at < ea.end()) {
        // Name both offending plan lines: with wildcard expansion the pair
        // may come from distant lines, and "one side" is useless to fix.
        bad_plan("overlapping " + to_string(ea.kind) + " episodes on " +
                 ea.target + " (lines " +
                 std::to_string(std::min(ea.line, eb.line)) + " and " +
                 std::to_string(std::max(ea.line, eb.line)) + ")");
      }
    }
  }

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const auto& ep = instances_[i].episode;
    PDS_CHECK(ep.at >= sim_.now(),
              "fault episode starts before the current simulation time");
    sim_.schedule_at(ep.at, SimEvent([this, i] { begin(i); }, "fault.begin"));
    sim_.schedule_at(ep.end(), SimEvent([this, i] { end(i); }, "fault.end"));
  }
}

void FaultInjector::set_span_buffer(SpanBuffer* buffer,
                                    double us_per_time_unit) {
#if PDS_OBS_ENABLED
  spans_ = buffer;
  span_scale_ = us_per_time_unit;
#else
  (void)buffer;
  (void)us_per_time_unit;
#endif
}

std::string FaultInjector::active_summary() const {
  std::ostringstream os;
  bool first = true;
  for (const Instance& inst : instances_) {
    if (!inst.active) continue;
    if (!first) os << "+";
    first = false;
    os << to_string(inst.episode.kind) << " " << inst.episode.target;
  }
  return os.str();
}

void FaultInjector::begin(std::size_t index) {
  Instance& inst = instances_[index];
  ++begun_;
  inst.active = true;
  switch (inst.episode.kind) {
    case FaultKind::kDown:
      inst.link->take_down(inst.episode.mode);
      break;
    case FaultKind::kDegrade:
      inst.link->set_capacity_factor(inst.episode.factor);
      break;
    case FaultKind::kStall:
      inst.link->stall();
      break;
    case FaultKind::kLoss:
      inst.lossy->set_burst_loss(
          inst.episode.rate,
          Rng(episode_seed(plan_.seed,
                           static_cast<std::uint64_t>(index))));
      break;
  }
}

void FaultInjector::end(std::size_t index) {
  Instance& inst = instances_[index];
  ++completed_;
  inst.active = false;
#if PDS_OBS_ENABLED
  if (spans_ != nullptr) {
    const FaultEpisode& ep = inst.episode;
    std::ostringstream args;
    args << "\"kind\":\"" << to_string(ep.kind) << "\",\"target\":\""
         << ep.target << "\"";
    spans_->emit(Span{ep.at * span_scale_,
                      (ep.end() - ep.at) * span_scale_, kSpanSimPid,
                      kSpanFaultTid, to_string(ep.kind) + " " + ep.target,
                      "fault", args.str()});
  }
#endif
  switch (inst.episode.kind) {
    case FaultKind::kDown:
      inst.link->bring_up();
      break;
    case FaultKind::kDegrade:
      inst.link->set_capacity_factor(1.0);
      break;
    case FaultKind::kStall:
      inst.link->resume();
      break;
    case FaultKind::kLoss:
      inst.lossy->clear_burst_loss();
      break;
  }
}

void attach_chain(FaultInjector& injector, ChainNetwork& chain) {
  for (std::uint32_t h = 0; h < chain.hops(); ++h) {
    injector.attach("hop" + std::to_string(h), chain.link_mut(h));
  }
}

void attach_network(FaultInjector& injector, Network& net) {
  for (LinkId id = 0; id < net.num_links(); ++id) {
    if (LossyLink* lossy = net.lossy(id)) {
      injector.attach(net.link_name(id), *lossy);  // enables loss episodes
    } else {
      injector.attach(net.link_name(id), net.link_mut(id));
    }
  }
}

}  // namespace pds
