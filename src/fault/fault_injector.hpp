// FaultInjector: drives a FaultPlan against live links, clock-driven.
//
// Usage:
//   FaultInjector inj(sim, parse_fault_plan(text));
//   inj.attach("backbone", link);       // plain Link: down/degrade/stall
//   inj.attach("edge", lossy_link);     // LossyLink: additionally loss
//   inj.arm();                          // validate + schedule episodes
//   sim.run_until(t_end);
//
// arm() expands wildcard targets over everything attached, validates that
// every episode references a known target (and that loss episodes reference
// a LossyLink), rejects overlapping episodes of the same kind on the same
// target (their begin/end semantics would be ambiguous, reported with both
// plan line numbers), and schedules one begin and one end event per episode
// ("fault.begin"/"fault.end" labels). A bare `*` expands in attach-name
// order (the historical contract — loss episode seeds depend on instance
// order); a prefix wildcard (`pod0*`) expands in attach order, which for
// attach_network is link-id order.
//
// Determinism contract (docs/robustness.md): every fault boundary is an
// ordinary simulator event at a plan-scripted time, and loss-burst
// randomness comes from an Rng seeded by (plan seed, episode index) — never
// from the host thread, wall clock, or execution order. A faulted run is
// therefore exactly as replayable as a fault-free one, and sweep cells
// carrying fault plans keep the byte-identical --jobs contract of
// exp/sweep.hpp.
//
// The injector must outlive the simulation run (scheduled events capture
// `this`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dropper/lossy_link.hpp"
#include "dsim/simulator.hpp"
#include "fault/fault_plan.hpp"
#include "sched/link.hpp"

namespace pds {

class ChainNetwork;
class Network;
class SpanBuffer;

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Registers a target before arm(). Names must be unique; the link must
  // outlive the injector's run.
  void attach(const std::string& name, Link& link);
  void attach(const std::string& name, LossyLink& lossy);

  // Validates the plan against the attached targets and schedules every
  // episode boundary. Call exactly once, before running the simulator, at a
  // simulation time no later than the earliest episode. Throws
  // std::invalid_argument on unknown targets, loss episodes aimed at plain
  // links, or same-kind overlapping episodes on one target.
  void arm();

  const FaultPlan& plan() const noexcept { return plan_; }

  // Episode instances after `*` expansion (0 until arm()).
  std::size_t scheduled_episodes() const noexcept {
    return instances_.size();
  }
  std::uint64_t episodes_begun() const noexcept { return begun_; }
  std::uint64_t episodes_completed() const noexcept { return completed_; }
  bool any_active() const noexcept { return begun_ > completed_; }

  // Optional span emission (obs/span.hpp): each completed episode becomes
  // one span [at, end] on the fault track, scaled by `us_per_time_unit`.
  // Timestamps are plan times — fully deterministic. Compiled out (the calls
  // become no-ops) when PDS_OBS_ENABLED=0. Set before running the simulator;
  // the buffer must outlive the run.
  void set_span_buffer(SpanBuffer* buffer, double us_per_time_unit = 1.0);

  // Human-readable "<kind> <target>" list of currently active episodes, in
  // instance order, "+"-joined ("down link+loss edge"); empty when none.
  // Feeds ConformanceMonitor::set_fault_context for violation attribution.
  std::string active_summary() const;

 private:
  struct Instance {
    FaultEpisode episode;  // with a concrete (non-*) target
    Link* link = nullptr;
    LossyLink* lossy = nullptr;  // non-null iff target is a LossyLink
    bool active = false;
  };

  void begin(std::size_t index);
  void end(std::size_t index);

  Simulator& sim_;
  FaultPlan plan_;
  std::map<std::string, Link*> links_;
  std::map<std::string, LossyLink*> lossies_;
  std::vector<std::string> attach_order_;  // prefix-wildcard expansion order
  std::vector<Instance> instances_;
  bool armed_ = false;
  std::uint64_t begun_ = 0;
  std::uint64_t completed_ = 0;
  SpanBuffer* spans_ = nullptr;
  double span_scale_ = 1.0;
};

// Convenience attachments: every hop of a chain as "hop0".."hop<K-1>", and
// every link of a routed Network under its link_name().
void attach_chain(FaultInjector& injector, ChainNetwork& chain);
void attach_network(FaultInjector& injector, Network& net);

}  // namespace pds
