#include "fault/fault_plan.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace pds {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDown: return "down";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kStall: return "stall";
    case FaultKind::kLoss: return "loss";
  }
  return "?";
}

bool is_target_pattern(const std::string& pattern) {
  return !pattern.empty() && pattern.back() == '*';
}

bool target_pattern_matches(const std::string& pattern,
                            const std::string& name) {
  if (!is_target_pattern(pattern)) return pattern == name;
  const std::size_t prefix_len = pattern.size() - 1;
  return name.compare(0, prefix_len, pattern, 0, prefix_len) == 0;
}

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("fault plan line " + std::to_string(line_no) +
                              ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    tokens.push_back(tok);
  }
  return tokens;
}

double to_number(const std::string& raw, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    if (pos != raw.size()) fail(line_no, "malformed number: " + raw);
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, "malformed number: " + raw);
  }
}

// key=value options after the positional tokens (same idiom as the
// scenario parser in net/scenario.cpp).
class Options {
 public:
  Options(const std::vector<std::string>& tokens, std::size_t first,
          std::size_t line_no)
      : line_no_(line_no) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto& tok = tokens[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(line_no, "expected key=value, got " + tok);
      }
      values_[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }

  std::optional<std::string> take(const std::string& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    std::string v = it->second;
    values_.erase(it);
    return v;
  }

  double number(const std::string& key) {
    auto v = take(key);
    if (!v) fail(line_no_, "missing required option " + key + "=...");
    return to_number(*v, line_no_);
  }

  void finish() const {
    if (!values_.empty()) {
      fail(line_no_, "unknown option " + values_.begin()->first);
    }
  }

 private:
  std::size_t line_no_;
  std::map<std::string, std::string> values_;
};

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  bool saw_seed = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const auto& kind = tokens[0];

    if (kind == "seed") {
      if (saw_seed) fail(line_no, "duplicate seed directive");
      if (tokens.size() != 2) fail(line_no, "seed takes exactly one value");
      saw_seed = true;
      const double v = to_number(tokens[1], line_no);
      if (v < 0.0) fail(line_no, "seed must be non-negative");
      plan.seed = static_cast<std::uint64_t>(v);
      continue;
    }

    FaultEpisode ep;
    if (kind == "down") {
      ep.kind = FaultKind::kDown;
    } else if (kind == "degrade") {
      ep.kind = FaultKind::kDegrade;
    } else if (kind == "stall") {
      ep.kind = FaultKind::kStall;
    } else if (kind == "loss") {
      ep.kind = FaultKind::kLoss;
    } else {
      fail(line_no, "unknown directive " + kind);
    }
    if (tokens.size() < 2 || tokens[1].find('=') != std::string::npos) {
      fail(line_no, kind + " needs a target name (or *)");
    }
    ep.target = tokens[1];
    ep.line = line_no;

    Options opts(tokens, 2, line_no);
    ep.at = opts.number("at");
    if (ep.at < 0.0) fail(line_no, "at must be non-negative");
    ep.duration = opts.number("for");
    if (ep.duration <= 0.0) fail(line_no, "for must be positive");
    switch (ep.kind) {
      case FaultKind::kDown: {
        const auto mode = opts.take("mode").value_or("drop");
        if (mode == "drop") {
          ep.mode = OutageMode::kDropArrivals;
        } else if (mode == "hold") {
          ep.mode = OutageMode::kHoldArrivals;
        } else {
          fail(line_no, "mode must be drop or hold, got " + mode);
        }
        break;
      }
      case FaultKind::kDegrade:
        ep.factor = opts.number("factor");
        if (ep.factor <= 0.0 || ep.factor >= 1.0) {
          fail(line_no, "factor must be in (0, 1)");
        }
        break;
      case FaultKind::kStall:
        break;
      case FaultKind::kLoss:
        ep.rate = opts.number("rate");
        if (ep.rate <= 0.0 || ep.rate > 1.0) {
          fail(line_no, "rate must be in (0, 1]");
        }
        break;
    }
    opts.finish();
    plan.episodes.push_back(std::move(ep));
  }
  return plan;
}

}  // namespace pds
