// Fault plans: declarative, clock-driven failure scripts.
//
// The paper's Eq. 1/2 claim — delay ratios independent of class loads — is
// only interesting if it survives the transients a real router sees. A
// FaultPlan scripts those transients against named targets (links / hops)
// as a line-oriented text format; '#' starts a comment:
//
//   seed <n>                                      (optional, default 1)
//   down    <target> at=<t> for=<dt> [mode=drop|hold]
//   degrade <target> at=<t> for=<dt> factor=<f>
//   stall   <target> at=<t> for=<dt>
//   loss    <target> at=<t> for=<dt> rate=<p>
//
// `target` is the name a Link/LossyLink was attached under (see
// fault_injector.hpp), `*` for every attached target, or a prefix wildcard
// (`pod0*`) matching every attached name that starts with the prefix —
// topology-aware plans fail whole pods/tiers by naming convention. A prefix
// pattern that matches nothing is a plan error, reported with its line
// number. Times are absolute
// simulation time units; `for` is the episode duration. `down` takes the
// link out of service: `mode=drop` (default) discards arrivals during the
// outage, `mode=hold` queues them and releases the backlog on recovery.
// `degrade` scales the effective service rate by `factor` in (0, 1).
// `stall` pauses the scheduler (arrivals queue, nothing transmits).
// `loss` drops each arrival at a LossyLink with probability `rate` in
// (0, 1], using an Rng derived deterministically from the plan seed and
// the episode index — faults never perturb byte-identical replay.
//
// Example (a flap plus a brown-out):
//
//   seed 7
//   down backbone at=1e4 for=2e3 mode=hold
//   degrade * at=2e4 for=5e3 factor=0.5
//
// parse_fault_plan validates structure and throws std::invalid_argument
// with the offending line number. Overlap rules are enforced later, by
// FaultInjector::arm(), once `*` can be expanded over the attached targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsim/time.hpp"
#include "sched/link.hpp"

namespace pds {

enum class FaultKind { kDown, kDegrade, kStall, kLoss };

// Short lowercase directive name ("down", "degrade", ...).
std::string to_string(FaultKind kind);

struct FaultEpisode {
  FaultKind kind = FaultKind::kDown;
  std::string target;  // attach name, "*", or a prefix wildcard ("pod0*")
  SimTime at = 0.0;
  SimTime duration = 0.0;
  OutageMode mode = OutageMode::kDropArrivals;  // kDown only
  double factor = 1.0;                          // kDegrade only
  double rate = 0.0;                            // kLoss only
  std::size_t line = 0;  // 1-based plan line, for arm()-time diagnostics

  SimTime end() const noexcept { return at + duration; }
};

// True when `pattern` is a prefix wildcard ("pod0*", or the bare "*"):
// a trailing '*' after zero or more literal characters.
bool is_target_pattern(const std::string& pattern);

// True when `pattern` names `name` exactly or is a prefix wildcard whose
// prefix starts `name`. Shared by the fault and control injectors.
bool target_pattern_matches(const std::string& pattern,
                            const std::string& name);

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEpisode> episodes;

  bool empty() const noexcept { return episodes.empty(); }
};

// Parses the grammar above. Throws std::invalid_argument ("fault plan line
// N: ...") on malformed input; an episode-free plan is legal (no-op).
FaultPlan parse_fault_plan(const std::string& text);

}  // namespace pds
