#include "net/chain.hpp"

#include "util/contracts.hpp"

namespace pds {

ChainNetwork::ChainNetwork(Simulator& sim, std::uint32_t hops,
                           SchedulerKind kind,
                           const SchedulerConfig& sched_config,
                           double capacity, ExitHandler on_user_exit)
    : sim_(sim), on_user_exit_(std::move(on_user_exit)) {
  PDS_CHECK(hops >= 1, "need at least one hop");
  PDS_CHECK(static_cast<bool>(on_user_exit_), "null exit handler");
  schedulers_.reserve(hops);
  links_.reserve(hops);
  SchedulerConfig config = sched_config;
  if (config.arena == nullptr) config.arena = &arena_;
  for (std::uint32_t h = 0; h < hops; ++h) {
    schedulers_.push_back(make_scheduler(kind, config));
    links_.push_back(std::make_unique<Link>(
        sim, *schedulers_.back(), capacity,
        [this, h](Packet&& p, SimTime wait, SimTime) {
          on_departure(h, std::move(p), wait);
        }));
    links_.back()->set_burst(config.burst);
  }
}

void ChainNetwork::inject_user(Packet p) {
  PDS_CHECK(p.flow != kNoFlow, "user packets need a flow id");
  links_.front()->arrive(std::move(p));
}

void ChainNetwork::inject_cross(std::uint32_t hop, Packet p) {
  PDS_CHECK(hop < links_.size(), "hop index out of range");
  PDS_CHECK(p.flow == kNoFlow, "cross packets must not carry a flow id");
  links_[hop]->arrive(std::move(p));
}

const Link& ChainNetwork::link(std::uint32_t hop) const {
  PDS_CHECK(hop < links_.size(), "hop index out of range");
  return *links_[hop];
}

Link& ChainNetwork::link_mut(std::uint32_t hop) {
  PDS_CHECK(hop < links_.size(), "hop index out of range");
  return *links_[hop];
}

void ChainNetwork::set_hop_observer(HopObserver observer) {
  hop_observer_ = std::move(observer);
}

void ChainNetwork::set_probe(PacketProbe* probe) noexcept {
  for (std::uint32_t h = 0; h < links_.size(); ++h) {
    links_[h]->set_probe(probe, h);
  }
}

void ChainNetwork::on_departure(std::uint32_t hop, Packet&& p, SimTime wait) {
  if (hop_observer_) hop_observer_(hop, p, wait, sim_.now());
  if (p.flow == kNoFlow) {
    ++cross_sunk_;  // cross traffic exits after its single hop
    return;
  }
  if (hop + 1 < links_.size()) {
    links_[hop + 1]->arrive(std::move(p));
  } else {
    on_user_exit_(p, sim_.now());
  }
}

}  // namespace pds
