// Multi-hop substrate for Study B (Section 6, Figure 6): a chain of K
// congested hops. User flows enter at hop 0 and traverse every hop;
// cross-traffic enters at each hop, crosses that single hop, and exits to a
// sink. Every hop has its own scheduler instance and output link.
//
// Propagation and per-hop transmission delays are deliberately not added to
// the end-to-end metric — the paper compares only accumulated *queueing*
// delays, which the Link already folds into Packet::cum_queueing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dsim/simulator.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"

namespace pds {

class ChainNetwork {
 public:
  // Called when a user-flow packet exits the last hop; `p.cum_queueing`
  // holds the end-to-end queueing delay.
  using ExitHandler = std::function<void(const Packet& p, SimTime now)>;

  // Optional per-hop observer: fired for EVERY departure (user and cross)
  // with that hop's queueing delay. Install before traffic starts.
  using HopObserver = std::function<void(std::uint32_t hop, const Packet& p,
                                         SimTime wait, SimTime now)>;

  ChainNetwork(Simulator& sim, std::uint32_t hops, SchedulerKind kind,
               const SchedulerConfig& sched_config, double capacity,
               ExitHandler on_user_exit);

  ChainNetwork(const ChainNetwork&) = delete;
  ChainNetwork& operator=(const ChainNetwork&) = delete;

  // Entry point for user flows (hop 0). Packets must carry a FlowId.
  void inject_user(Packet p);

  // Entry point for cross traffic at a specific hop; the packet exits to a
  // sink after that hop.
  void inject_cross(std::uint32_t hop, Packet p);

  std::uint32_t hops() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  const Link& link(std::uint32_t hop) const;

  // Mutable access for fault injection (attach_chain in src/fault/ registers
  // every hop with a FaultInjector through this).
  Link& link_mut(std::uint32_t hop);

  // Cross-traffic packets absorbed so far (all hops).
  std::uint64_t cross_sunk() const noexcept { return cross_sunk_; }

  void set_hop_observer(HopObserver observer);

  // Observability: attaches one lifecycle probe across every hop; each
  // hop's link/scheduler stamps its events with its hop index, giving the
  // per-hop attribution the end-to-end (Study B) experiments need. Pass
  // nullptr to detach.
  void set_probe(PacketProbe* probe) noexcept;

 private:
  void on_departure(std::uint32_t hop, Packet&& p, SimTime wait);

  Simulator& sim_;
  ExitHandler on_user_exit_;
  HopObserver hop_observer_;
  // Backs every hop's class rings; declared before the schedulers so their
  // queues release into a still-live arena at destruction.
  PacketArena arena_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t cross_sunk_ = 0;
};

}  // namespace pds
