#include "net/flows.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pds {

void RpcConfig::validate() const {
  PDS_CHECK(users >= 1, "flows need at least one user");
  PDS_CHECK(request_packets >= 1, "request needs at least one packet");
  PDS_CHECK(response_packets >= 1, "response needs at least one packet");
  PDS_CHECK(size_bytes >= 1, "flow packets need a positive size");
  PDS_CHECK(think_mean >= 0.0, "think time must be non-negative");
  PDS_CHECK(deadline >= 0.0, "deadline must be non-negative");
  PDS_CHECK(rto >= 0.0, "rto must be non-negative");
  PDS_CHECK(max_retries == 0 || rto > 0.0,
            "retries need a positive rto");
  PDS_CHECK(backoff >= 1.0, "backoff multiplier must be >= 1");
  PDS_CHECK(rto_cap >= 0.0, "rto cap must be non-negative");
  PDS_CHECK(throttle_tokens >= 0.0, "throttle tokens must be non-negative");
  PDS_CHECK(throttle_ratio > 0.0 || throttle_tokens == 0.0,
            "throttle ratio must be positive when throttling");
}

RpcWorkload::RpcWorkload(Simulator& sim, Network& net, PacketIdAllocator& ids,
                         FlowIdAllocator& flows, RouteId forward,
                         RouteId reverse, RpcConfig config, Rng rng)
    : sim_(sim),
      net_(net),
      ids_(ids),
      flows_(flows),
      forward_(forward),
      reverse_(reverse),
      config_(config),
      rto_cap_(config.rto_cap > 0.0 ? config.rto_cap : 10.0 * config.rto),
      think_(ExponentialDist(config.think_mean > 0.0 ? config.think_mean
                                                     : 1.0)),
      tokens_(config.throttle_tokens) {
  config_.validate();
  PDS_CHECK(forward < net.num_routes() && reverse < net.num_routes(),
            "flows reference unknown routes");
  users_.reserve(config_.users);
  // Per-user streams split in user order — byte-reproducible from the seed.
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    User user;
    user.rng = rng.split();
    users_.push_back(std::move(user));
  }
}

void RpcWorkload::start(SimTime at) {
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    const double phase =
        config_.think_mean > 0.0 ? think_.sample(users_[u].rng) : 0.0;
    sim_.schedule_at(at + phase, [this, u] { issue_rpc(u); }, "flow.issue");
  }
}

void RpcWorkload::schedule_think(std::uint32_t user) {
  const double gap =
      config_.think_mean > 0.0 ? think_.sample(users_[user].rng) : 0.0;
  sim_.schedule_in(gap, [this, user] { issue_rpc(user); }, "flow.issue");
}

void RpcWorkload::issue_rpc(std::uint32_t user) {
  User& u = users_[user];
  PDS_REQUIRE(!u.waiting);
  u.waiting = true;
  ++waiting_;
  u.issue_time = sim_.now();
  u.attempts = 0;
  u.cur_rto = config_.rto;
  ++stats_.issued;
  send_attempt(user);
}

void RpcWorkload::send_attempt(std::uint32_t user) {
  User& u = users_[user];
  ++u.attempts;
  const FlowId flow = flows_.next();
  attempts_.emplace(flow, Attempt{user, config_.request_packets,
                                  config_.response_packets});
  u.outstanding.push_back(flow);
  for (std::uint32_t k = 0; k < config_.request_packets; ++k) {
    Packet p;
    p.id = ids_.next();
    p.cls = config_.cls;
    p.size_bytes = config_.size_bytes;
    p.flow = flow;
    p.created = sim_.now();
    net_.inject(std::move(p), forward_);
  }
  if (config_.rto > 0.0) {
    const std::uint64_t seq = u.seq;
    const std::uint32_t attempt = u.attempts;
    sim_.schedule_in(
        u.cur_rto,
        [this, user, seq, attempt] { on_timeout(user, seq, attempt); },
        "flow.rto");
  }
}

void RpcWorkload::on_route_exit(const Packet& p, SimTime now) {
  const auto it = attempts_.find(p.flow);
  if (it == attempts_.end()) return;  // foreign workload or abandoned attempt
  Attempt& attempt = it->second;
  if (attempt.remaining_request > 0) {
    if (--attempt.remaining_request == 0) {
      // Server turnaround: the response leaves immediately with the same
      // flow id on the reverse route.
      const FlowId flow = it->first;
      for (std::uint32_t k = 0; k < config_.response_packets; ++k) {
        Packet r;
        r.id = ids_.next();
        r.cls = config_.cls;
        r.size_bytes = config_.size_bytes;
        r.flow = flow;
        r.created = now;
        net_.inject(std::move(r), reverse_);
      }
    }
    return;
  }
  PDS_REQUIRE(attempt.remaining_response > 0);
  if (--attempt.remaining_response == 0) finish_rpc(attempt.user, true, now);
}

void RpcWorkload::on_timeout(std::uint32_t user, std::uint64_t seq,
                             std::uint32_t attempt) {
  User& u = users_[user];
  // Stale timer: the RPC completed/failed, or a newer attempt re-armed.
  if (!u.waiting || u.seq != seq || u.attempts != attempt) return;

  // A timeout is a failure signal: it always costs a throttle token
  // (grpc retry_filter semantics), whether or not a retry follows.
  const bool throttling = config_.throttle_tokens > 0.0;
  if (throttling) tokens_ = std::max(0.0, tokens_ - 1.0);

  const bool retries_left = u.attempts <= config_.max_retries;
  const bool throttle_open =
      !throttling || tokens_ > config_.throttle_tokens / 2.0;
  if (retries_left && throttle_open) {
    ++stats_.retries;
    u.cur_rto = std::min(u.cur_rto * config_.backoff, rto_cap_);
    send_attempt(user);
    return;
  }
  if (retries_left) ++stats_.throttled;
  finish_rpc(user, false, sim_.now());
}

void RpcWorkload::finish_rpc(std::uint32_t user, bool completed,
                             SimTime now) {
  User& u = users_[user];
  PDS_REQUIRE(u.waiting);
  for (const FlowId flow : u.outstanding) attempts_.erase(flow);
  u.outstanding.clear();
  u.waiting = false;
  --waiting_;
  ++u.seq;

  if (completed && config_.throttle_tokens > 0.0) {
    tokens_ = std::min(config_.throttle_tokens,
                       tokens_ + config_.throttle_ratio);
  }
  if (u.issue_time >= warmup_) {
    if (completed) {
      const double fct = now - u.issue_time;
      ++stats_.completed;
      stats_.fct.add(fct);
      if (config_.deadline <= 0.0 || fct <= config_.deadline) {
        ++stats_.slo_met;
      }
    } else {
      ++stats_.failed;
    }
  }
  schedule_think(user);
}

}  // namespace pds
