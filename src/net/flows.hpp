// Closed-loop RPC flow layer over the routed Network fabric.
//
// The paper's traffic plane is open-loop packet streams; production traffic
// is closed-loop users running request/response RPCs. An RpcWorkload models
// N users of one service class on a (forward, reverse) route pair. Each
// user loops forever:
//
//   think ~ Exp(think_mean)  ->  issue RPC  ->  wait for the response  ->  ...
//
// An RPC attempt injects `request_packets` packets (one flow id per
// attempt) on the forward route; when the last request packet exits, the
// "server" immediately injects `response_packets` packets with the same
// flow id on the reverse route; when the last response packet exits, the
// RPC completes. Flow-completion time (FCT) is measured from the FIRST
// attempt's issue to completion, and the per-class SLO is attained when
// FCT <= deadline.
//
// Retries (exemplar: grpc's retry_filter): an optional retry timer of
// `rto` arms with each attempt. On expiry the user retries with
// exponential backoff (rto *= backoff, capped at rto_cap) up to
// max_retries times, gated by a retry-throttle token budget: every timeout
// costs one token, every success restores throttle_ratio tokens (capped at
// throttle_tokens), and retries are permitted only while the budget is
// above half full — so retry storms self-extinguish instead of amplifying
// an overload. When no retry is permitted (retries exhausted or throttle
// blocked) the RPC fails: it scores as an SLO miss and the user moves on,
// which keeps the closed loop alive even when a fault outage drops every
// copy of a request.
//
// Every attempt carries a fresh FlowId from a shared FlowIdAllocator, so
// multiple workloads can share routes and stale packets of abandoned
// attempts are ignored on exit. All timing comes from Simulator events and
// all randomness from the per-user Rng streams split off the workload Rng
// at construction — runs are byte-reproducible from the scenario seed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "rng/distributions.hpp"
#include "stats/percentile.hpp"
#include "traffic/source.hpp"

namespace pds {

// Shared monotone flow-id counter so attempt ids are unique across every
// workload of a run (mirrors PacketIdAllocator).
class FlowIdAllocator {
 public:
  FlowId next() noexcept { return next_++; }

 private:
  FlowId next_ = 0;
};

struct RpcConfig {
  ClassId cls = 0;
  std::uint32_t users = 1;
  std::uint32_t request_packets = 1;   // k packets per request
  std::uint32_t response_packets = 1;  // k packets per response
  std::uint32_t size_bytes = 441;     // wire size of every flow packet
  double think_mean = 0.0;            // Exp mean between RPCs; 0 = saturating
  double deadline = 0.0;              // SLO deadline on FCT; 0 = no deadline
  double rto = 0.0;                   // initial retry timeout; 0 = no retries
  std::uint32_t max_retries = 0;      // extra attempts beyond the first
  double backoff = 2.0;               // rto multiplier per retry
  double rto_cap = 0.0;               // backoff ceiling; 0 = 10 * rto
  double throttle_tokens = 0.0;       // token budget; 0 = throttle disabled
  double throttle_ratio = 0.1;        // tokens restored per success

  // Throws std::invalid_argument on nonsensical combinations.
  void validate() const;
};

// Counters and FCT samples. completed/failed/slo_met and the FCT set cover
// only *scored* RPCs (first issue at or after the warmup horizon); issued
// counts every RPC regardless.
struct RpcStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;   // scored completions
  std::uint64_t failed = 0;      // scored failures (retries exhausted/throttled)
  std::uint64_t slo_met = 0;     // scored completions with FCT <= deadline
  std::uint64_t retries = 0;     // retry attempts sent (all, scored or not)
  std::uint64_t throttled = 0;   // retries suppressed by the token budget
  SampleSet fct;                 // scored completion times

  std::uint64_t scored() const noexcept { return completed + failed; }
  // SLO attainment over scored RPCs; 1.0 when nothing scored yet.
  double slo_attainment() const noexcept {
    return scored() == 0 ? 1.0
                         : static_cast<double>(slo_met) /
                               static_cast<double>(scored());
  }
};

class RpcWorkload {
 public:
  // `forward` and `reverse` must be routes of `net`; they may coincide
  // (request exits are counted before any response is injected). The
  // workload must outlive the simulation run (scheduled events capture
  // `this`).
  RpcWorkload(Simulator& sim, Network& net, PacketIdAllocator& ids,
              FlowIdAllocator& flows, RouteId forward, RouteId reverse,
              RpcConfig config, Rng rng);

  RpcWorkload(const RpcWorkload&) = delete;
  RpcWorkload& operator=(const RpcWorkload&) = delete;

  // Schedules every user's first RPC at `at` plus one think draw (a phase
  // draw, so users do not align). Call once before running.
  void start(SimTime at);

  // RPCs whose first attempt is issued before `t` are excluded from
  // completed/failed/slo/FCT scoring (default 0 = score everything).
  void set_warmup(SimTime t) noexcept { warmup_ = t; }

  // Exit hook: call for EVERY packet leaving the forward or reverse route
  // (the scenario runner folds this into the routes' exit handlers).
  // Packets of unknown flows — other workloads, abandoned attempts — are
  // ignored.
  void on_route_exit(const Packet& p, SimTime now);

  const RpcConfig& config() const noexcept { return config_; }
  const RpcStats& stats() const noexcept { return stats_; }
  // Users currently waiting on an outstanding RPC.
  std::uint32_t waiting_users() const noexcept { return waiting_; }
  double throttle_balance() const noexcept { return tokens_; }

 private:
  struct Attempt {
    std::uint32_t user = 0;
    std::uint32_t remaining_request = 0;
    std::uint32_t remaining_response = 0;
  };
  struct User {
    Rng rng;
    std::uint64_t seq = 0;       // current RPC sequence (staleness guard)
    bool waiting = false;
    SimTime issue_time = kTimeZero;
    double cur_rto = 0.0;
    std::uint32_t attempts = 0;  // attempts issued for the current RPC
    std::vector<FlowId> outstanding;
  };

  void schedule_think(std::uint32_t user);
  void issue_rpc(std::uint32_t user);
  void send_attempt(std::uint32_t user);
  void on_timeout(std::uint32_t user, std::uint64_t seq,
                  std::uint32_t attempt);
  void finish_rpc(std::uint32_t user, bool completed, SimTime now);

  Simulator& sim_;
  Network& net_;
  PacketIdAllocator& ids_;
  FlowIdAllocator& flows_;
  RouteId forward_;
  RouteId reverse_;
  RpcConfig config_;
  double rto_cap_ = 0.0;
  ExponentialDist think_;
  std::vector<User> users_;
  std::unordered_map<FlowId, Attempt> attempts_;
  RpcStats stats_;
  SimTime warmup_ = kTimeZero;
  double tokens_ = 0.0;
  std::uint32_t waiting_ = 0;
};

}  // namespace pds
