#include "net/partition.hpp"

#include <algorithm>

#include "dsim/shard.hpp"
#include "util/contracts.hpp"

namespace pds {

namespace {

constexpr std::uint32_t kUnassigned = ~std::uint32_t{0};

std::vector<std::uint32_t> greedy_node_shards(
    std::uint32_t num_nodes, const std::vector<GraphEdge>& edges,
    const std::vector<double>& link_capacity, std::uint32_t shards) {
  // Symmetric node-pair weights: the capacity crossing between two nodes in
  // either direction (a fat-tree edge is two directed links).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(num_nodes);
  for (const GraphEdge& e : edges) {
    const double w = link_capacity[e.link];
    adj[e.from].emplace_back(e.to, w);
    adj[e.to].emplace_back(e.from, w);
  }

  std::vector<std::uint32_t> assigned(num_nodes, kUnassigned);
  // Total weight from each unassigned node into the shard being grown;
  // rebuilt per shard, updated incrementally per absorbed node.
  std::vector<double> attraction(num_nodes, 0.0);
  std::uint32_t remaining = num_nodes;
  for (std::uint32_t s = 0; s < shards && remaining > 0; ++s) {
    const std::uint32_t remaining_shards = shards - s;
    const std::uint32_t target =
        (remaining + remaining_shards - 1) / remaining_shards;
    std::fill(attraction.begin(), attraction.end(), 0.0);
    std::uint32_t size = 0;
    while (size < target && remaining > 0) {
      std::uint32_t pick = kUnassigned;
      if (size == 0) {
        // Fresh seed: lowest unassigned id.
        for (std::uint32_t v = 0; v < num_nodes; ++v) {
          if (assigned[v] == kUnassigned) {
            pick = v;
            break;
          }
        }
      } else {
        // Strongest attachment to the growing shard, ties to the lowest id;
        // falls back to a fresh seed when nothing unassigned touches it.
        double best = 0.0;
        for (std::uint32_t v = 0; v < num_nodes; ++v) {
          if (assigned[v] != kUnassigned) continue;
          if (attraction[v] > best) {
            best = attraction[v];
            pick = v;
          }
        }
        if (pick == kUnassigned) {
          for (std::uint32_t v = 0; v < num_nodes; ++v) {
            if (assigned[v] == kUnassigned) {
              pick = v;
              break;
            }
          }
        }
      }
      PDS_REQUIRE(pick != kUnassigned);
      assigned[pick] = s;
      --remaining;
      ++size;
      for (const auto& [peer, w] : adj[pick]) {
        if (assigned[peer] == kUnassigned) attraction[peer] += w;
      }
    }
  }
  PDS_REQUIRE(remaining == 0);
  return assigned;
}

}  // namespace

Partition partition_topology(std::uint32_t num_nodes, std::uint32_t num_links,
                             const std::vector<GraphEdge>& edges,
                             const std::vector<double>& link_capacity,
                             std::uint32_t shards, PartitionMethod method) {
  PDS_CHECK(shards >= 1, "partition needs at least one shard");
  PDS_CHECK(link_capacity.size() == num_links,
            "one capacity entry per link required");
  Partition part;
  part.shards = shards;
  if (method == PartitionMethod::kRoundRobin || shards == 1) {
    part.node_shard.resize(num_nodes);
    for (std::uint32_t v = 0; v < num_nodes; ++v) {
      part.node_shard[v] = v % shards;
    }
  } else {
    part.node_shard =
        greedy_node_shards(num_nodes, edges, link_capacity, shards);
  }
  // A directed link is the output port of its upstream node; unbound links
  // (never listed as an edge) belong to shard 0.
  part.link_owner.assign(num_links, 0);
  for (const GraphEdge& e : edges) {
    PDS_CHECK(e.link < num_links && e.from < num_nodes,
              "edge references unknown link or node");
    part.link_owner[e.link] = part.node_shard[e.from];
  }
  return part;
}

std::vector<SimTime> make_lookahead(std::uint32_t shards) {
  PDS_CHECK(shards >= 1, "lookahead matrix needs at least one shard");
  return std::vector<SimTime>(static_cast<std::size_t>(shards) * shards,
                              kSimTimeInfinity);
}

void add_lookahead_edge(std::vector<SimTime>& lookahead, std::uint32_t shards,
                        std::uint32_t src, std::uint32_t dst, SimTime value) {
  PDS_CHECK(lookahead.size() ==
                static_cast<std::size_t>(shards) * shards,
            "lookahead matrix size mismatch");
  PDS_CHECK(src < shards && dst < shards && src != dst,
            "lookahead edge endpoints out of range");
  PDS_CHECK(value >= 0.0, "lookahead must be non-negative");
  SimTime& slot = lookahead[static_cast<std::size_t>(src) * shards + dst];
  slot = std::min(slot, value);
}

void add_route_lookahead(std::vector<SimTime>& lookahead,
                         const Partition& part,
                         const std::vector<std::vector<LinkId>>& route_paths,
                         const std::vector<std::uint32_t>& route_exit_shard,
                         const std::vector<double>& link_capacity,
                         double min_packet_bytes) {
  PDS_CHECK(route_exit_shard.size() == route_paths.size(),
            "one exit shard per route required");
  PDS_CHECK(min_packet_bytes > 0.0, "packet size floor must be positive");
  const auto floor_of = [&](LinkId id) {
    PDS_CHECK(id < link_capacity.size(), "route references unknown link");
    return min_packet_bytes / link_capacity[id];
  };
  for (std::size_t r = 0; r < route_paths.size(); ++r) {
    const auto& path = route_paths[r];
    PDS_CHECK(!path.empty(), "route with empty path");
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const std::uint32_t src = part.link_owner[path[h]];
      const std::uint32_t dst = part.link_owner[path[h + 1]];
      if (src != dst) {
        add_lookahead_edge(lookahead, part.shards, src, dst,
                           floor_of(path[h]));
      }
    }
    const std::uint32_t last = part.link_owner[path.back()];
    if (last != route_exit_shard[r]) {
      add_lookahead_edge(lookahead, part.shards, last, route_exit_shard[r],
                         floor_of(path.back()));
    }
  }
}

}  // namespace pds
