// Deterministic graph partitioning and lookahead derivation for the sharded
// conservative-PDES kernel (dsim/shard.hpp).
//
// A partition assigns every topology node to a shard; a directed link is
// owned by the shard of its *upstream* node (the node whose output port it
// is), so the transmission that moves a packet across a cut happens on the
// sending shard and the handoff message carries the full transmission time
// as lookahead. Links not bound to a node pair (the scenario grammar's bare
// `link` directive) belong to shard 0 along with every other piece of
// non-graph state (workloads, injectors).
//
// Both methods are pure functions of the graph — never of memory layout or
// thread schedule — so the same scenario always partitions the same way:
//
//  * kRoundRobin: node id modulo shard count. The baseline; cheap, usually
//    cuts many edges.
//  * kGreedy: METIS-lite greedy growth. Shards are carved one at a time;
//    each starts from the lowest-id unassigned node and repeatedly absorbs
//    the unassigned node with the largest total link capacity into the
//    growing shard (ties: lowest node id), until the shard reaches its
//    balanced size ceil(remaining_nodes / remaining_shards). Maximizing
//    absorbed capacity minimizes the capacity of the cut, which is what the
//    cross-shard channels pay for.
//
// Lookahead: a cut edge's lookahead is the minimum time a message on it can
// lag the sender's clock. Every cross-shard handoff rides a transmission
// whose finish time is at least min_packet_bytes / link_capacity after its
// start, so that ratio — the transmission floor of the upstream link — is
// the lookahead of both hop-to-hop and route-exit cut edges. The only
// zero-lookahead edges are workload injections (shard 0 hands a packet to
// the first hop's owner at the current time); they are safe because shard 0
// always advances at the global minimum (see dsim/shard.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "dsim/time.hpp"
#include "net/topology.hpp"

namespace pds {

enum class PartitionMethod : std::uint8_t {
  kRoundRobin,  // node id % shards
  kGreedy,      // greedy capacity-weight growth (the default)
};

struct Partition {
  std::uint32_t shards = 1;
  std::vector<std::uint32_t> node_shard;  // per NodeId
  std::vector<std::uint32_t> link_owner;  // per LinkId
};

// Partitions `num_nodes` nodes connected by `edges` (ascending link id, as
// Network::edges() keeps them) into `shards` shards. `link_capacity` holds
// one entry per link id in [0, num_links); links that appear in no edge are
// assigned to shard 0. Shards may end up empty when there are fewer nodes
// than shards — harmless, they just stay idle.
Partition partition_topology(std::uint32_t num_nodes, std::uint32_t num_links,
                             const std::vector<GraphEdge>& edges,
                             const std::vector<double>& link_capacity,
                             std::uint32_t shards, PartitionMethod method);

// A flattened shards x shards matrix with every entry "no edge"
// (kSimTimeInfinity), ready for add_lookahead_edge / ShardEngine.
std::vector<SimTime> make_lookahead(std::uint32_t shards);

// Declares (or tightens) the src->dst cut edge to at most `value`.
void add_lookahead_edge(std::vector<SimTime>& lookahead, std::uint32_t shards,
                        std::uint32_t src, std::uint32_t dst, SimTime value);

// Adds every cut edge implied by the routes: for consecutive hops that
// change owners, a src->dst edge with the upstream link's transmission
// floor; for the last hop of a route whose exit handler lives on another
// shard (`route_exit_shard`), the same floor on owner(last)->exit. The
// floor uses `min_packet_bytes`, the smallest wire size any source emits.
void add_route_lookahead(std::vector<SimTime>& lookahead,
                         const Partition& part,
                         const std::vector<std::vector<LinkId>>& route_paths,
                         const std::vector<std::uint32_t>& route_exit_shard,
                         const std::vector<double>& link_capacity,
                         double min_packet_bytes);

}  // namespace pds
