#include "net/scenario.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "net/topology.hpp"
#include "stats/percentile.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"

namespace pds {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                              ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    tokens.push_back(tok);
  }
  return tokens;
}

// key=value options after the positional tokens.
class Options {
 public:
  Options(const std::vector<std::string>& tokens, std::size_t first,
          std::size_t line_no)
      : line_no_(line_no) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto& tok = tokens[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos) {
        flags_.push_back(tok);
      } else {
        values_[tok.substr(0, eq)] = tok.substr(eq + 1);
      }
    }
  }

  bool flag(const std::string& name) {
    for (auto it = flags_.begin(); it != flags_.end(); ++it) {
      if (*it == name) {
        flags_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::optional<std::string> take(const std::string& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    std::string v = it->second;
    values_.erase(it);
    return v;
  }

  std::string require(const std::string& key) {
    auto v = take(key);
    if (!v) fail(line_no_, "missing required option " + key + "=...");
    return *v;
  }

  double number(const std::string& key) {
    return to_number(require(key));
  }

  double number_or(const std::string& key, double def) {
    const auto v = take(key);
    return v ? to_number(*v) : def;
  }

  std::vector<double> list(const std::string& key) {
    const std::string raw = require(key);
    std::vector<double> out;
    std::size_t start = 0;
    while (start <= raw.size()) {
      const auto comma = raw.find(',', start);
      const auto item = raw.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (item.empty()) fail(line_no_, "empty element in " + key);
      out.push_back(to_number(item));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return out;
  }

  void finish() const {
    if (!values_.empty()) {
      fail(line_no_, "unknown option " + values_.begin()->first);
    }
    if (!flags_.empty()) {
      fail(line_no_, "unknown flag " + flags_.front());
    }
  }

 private:
  double to_number(const std::string& raw) const {
    try {
      std::size_t pos = 0;
      const double v = std::stod(raw, &pos);
      if (pos != raw.size()) fail(line_no_, "malformed number: " + raw);
      return v;
    } catch (const std::invalid_argument&) {
      fail(line_no_, "malformed number: " + raw);
    }
  }

  std::size_t line_no_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> flags_;
};

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  bool saw_run = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const auto& kind = tokens[0];

    if (kind == "link") {
      if (tokens.size() < 2) fail(line_no, "link needs a name");
      ScenarioLink link;
      link.name = tokens[1];
      for (const auto& existing : scenario.links) {
        if (existing.name == link.name) {
          fail(line_no, "duplicate link name " + link.name);
        }
      }
      Options opts(tokens, 2, line_no);
      link.capacity = opts.number("capacity");
      link.kind = scheduler_kind_from_string(opts.require("sched"));
      link.sdp = opts.list("sdp");
      opts.finish();
      scenario.links.push_back(std::move(link));
    } else if (kind == "route") {
      if (tokens.size() < 3) fail(line_no, "route needs a name and links");
      ScenarioRoute route;
      route.name = tokens[1];
      for (const auto& existing : scenario.routes) {
        if (existing.name == route.name) {
          fail(line_no, "duplicate route name " + route.name);
        }
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        bool known = false;
        for (const auto& l : scenario.links) known |= l.name == tokens[i];
        if (!known) fail(line_no, "unknown link " + tokens[i]);
        route.links.push_back(tokens[i]);
      }
      scenario.routes.push_back(std::move(route));
    } else if (kind == "source") {
      if (tokens.size() < 3) fail(line_no, "source needs a kind and route");
      ScenarioSource src;
      const auto& sk = tokens[1];
      if (sk == "renewal") {
        src.kind = ScenarioSourceKind::kRenewal;
      } else if (sk == "mix") {
        src.kind = ScenarioSourceKind::kMix;
      } else if (sk == "cbr") {
        src.kind = ScenarioSourceKind::kCbr;
      } else {
        fail(line_no, "unknown source kind " + sk);
      }
      src.route = tokens[2];
      bool known = false;
      for (const auto& r : scenario.routes) known |= r.name == src.route;
      if (!known) fail(line_no, "unknown route " + src.route);

      Options opts(tokens, 3, line_no);
      src.start = opts.number_or("start", 0.0);
      src.size_bytes =
          static_cast<std::uint32_t>(opts.number("size"));
      switch (src.kind) {
        case ScenarioSourceKind::kRenewal:
          src.cls = static_cast<ClassId>(opts.number("class"));
          src.gap = opts.number("gap");
          src.pareto_alpha =
              opts.flag("poisson") ? 0.0 : opts.number_or("pareto", 1.9);
          break;
        case ScenarioSourceKind::kMix:
          src.fractions = opts.list("fractions");
          src.gap = opts.number("gap");
          src.pareto_alpha =
              opts.flag("poisson") ? 0.0 : opts.number_or("pareto", 1.9);
          break;
        case ScenarioSourceKind::kCbr:
          src.cls = static_cast<ClassId>(opts.number("class"));
          src.count = static_cast<std::uint32_t>(opts.number("count"));
          src.interval = opts.number("interval");
          break;
      }
      opts.finish();
      scenario.sources.push_back(std::move(src));
    } else if (kind == "run") {
      if (saw_run) fail(line_no, "duplicate run directive");
      saw_run = true;
      Options opts(tokens, 1, line_no);
      scenario.run.until = opts.number("until");
      scenario.run.warmup = opts.number_or("warmup", 0.0);
      scenario.run.seed =
          static_cast<std::uint64_t>(opts.number_or("seed", 1.0));
      opts.finish();
    } else {
      fail(line_no, "unknown directive " + kind);
    }
  }
  if (scenario.links.empty()) {
    throw std::invalid_argument("scenario defines no links");
  }
  if (!saw_run) throw std::invalid_argument("scenario has no run directive");
  if (scenario.sources.empty()) {
    throw std::invalid_argument("scenario defines no sources");
  }
  PDS_CHECK(scenario.run.until > scenario.run.warmup,
            "run horizon must exceed the warmup");
  return scenario;
}

ScenarioReport run_scenario(const std::string& text,
                            std::optional<std::uint64_t> seed_override) {
  const Scenario scenario = parse_scenario(text);
  const double warmup = scenario.run.warmup;

  Simulator sim;
  PacketIdAllocator ids;
  Rng master(seed_override.value_or(scenario.run.seed));

  Network net(sim);
  std::map<std::string, LinkId> link_ids;
  std::uint32_t max_classes = 1;
  for (const auto& link : scenario.links) {
    SchedulerConfig sc;
    sc.sdp = link.sdp;
    sc.link_capacity = link.capacity;
    link_ids[link.name] = net.add_link(link.kind, sc, link.capacity,
                                       link.name);
    max_classes = std::max(
        max_classes, static_cast<std::uint32_t>(link.sdp.size()));
  }

  ScenarioReport report;
  // (route index, class) -> samples of end-to-end queueing delay.
  std::vector<std::vector<SampleSet>> samples(
      scenario.routes.size(), std::vector<SampleSet>(max_classes));
  std::map<std::string, RouteId> route_ids;
  for (std::size_t r = 0; r < scenario.routes.size(); ++r) {
    const auto& route = scenario.routes[r];
    std::vector<LinkId> path;
    for (const auto& name : route.links) path.push_back(link_ids.at(name));
    route_ids[route.name] = net.add_route(
        path, [&, r](const Packet& p, SimTime now) {
          ++report.total_exits;
          if (now >= warmup && p.cls < max_classes) {
            samples[r][p.cls].add(p.cum_queueing);
          }
        });
  }

  const auto make_gaps = [](const ScenarioSource& src) {
    return src.pareto_alpha > 0.0 ? pareto_gaps(src.pareto_alpha, src.gap)
                                  : exponential_gaps(src.gap);
  };

  std::vector<std::unique_ptr<RenewalSource>> renewals;
  std::vector<std::unique_ptr<ClassMixSource>> mixes;
  std::vector<std::unique_ptr<CbrFlowSource>> cbrs;
  for (const auto& src : scenario.sources) {
    const RouteId route = route_ids.at(src.route);
    const auto handler = [&net, route](Packet p) {
      net.inject(std::move(p), route);
    };
    switch (src.kind) {
      case ScenarioSourceKind::kRenewal:
        renewals.push_back(std::make_unique<RenewalSource>(
            sim, ids, src.cls, make_gaps(src), fixed_size(src.size_bytes),
            master.split(), handler));
        renewals.back()->start(src.start);
        break;
      case ScenarioSourceKind::kMix:
        mixes.push_back(std::make_unique<ClassMixSource>(
            sim, ids, src.fractions, make_gaps(src),
            fixed_size(src.size_bytes), master.split(), handler));
        mixes.back()->start(src.start);
        break;
      case ScenarioSourceKind::kCbr:
        cbrs.push_back(std::make_unique<CbrFlowSource>(
            sim, ids, src.cls, kNoFlow - 1, src.count, src.size_bytes,
            src.interval, handler));
        cbrs.back()->start(src.start);
        break;
    }
  }

  sim.run_until(scenario.run.until);
  for (auto& s : renewals) s->stop();
  for (auto& s : mixes) s->stop();

  for (std::size_t r = 0; r < scenario.routes.size(); ++r) {
    for (ClassId c = 0; c < max_classes; ++c) {
      const auto& set = samples[r][c];
      if (set.empty()) continue;
      report.route_stats.push_back(ScenarioReport::RouteClassStats{
          scenario.routes[r].name, c, set.count(), set.mean(),
          set.percentile(95.0)});
    }
  }
  for (const auto& link : scenario.links) {
    const LinkId id = link_ids.at(link.name);
    report.link_stats.push_back(ScenarioReport::LinkStats{
        link.name, net.utilization(id), net.link(id).packets_sent()});
  }
  return report;
}

}  // namespace pds
