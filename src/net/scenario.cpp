#include "net/scenario.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "ctrl/control_injector.hpp"
#include "ctrl/control_plan.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/flows.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "stats/percentile.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"

namespace pds {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                              ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    tokens.push_back(tok);
  }
  return tokens;
}

// key=value options after the positional tokens.
class Options {
 public:
  Options(const std::vector<std::string>& tokens, std::size_t first,
          std::size_t line_no)
      : line_no_(line_no) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto& tok = tokens[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos) {
        flags_.push_back(tok);
      } else {
        values_[tok.substr(0, eq)] = tok.substr(eq + 1);
      }
    }
  }

  bool flag(const std::string& name) {
    for (auto it = flags_.begin(); it != flags_.end(); ++it) {
      if (*it == name) {
        flags_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::optional<std::string> take(const std::string& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    std::string v = it->second;
    values_.erase(it);
    return v;
  }

  std::string require(const std::string& key) {
    auto v = take(key);
    if (!v) fail(line_no_, "missing required option " + key + "=...");
    return *v;
  }

  double number(const std::string& key) {
    return to_number(require(key));
  }

  double number_or(const std::string& key, double def) {
    const auto v = take(key);
    return v ? to_number(*v) : def;
  }

  std::vector<double> list(const std::string& key) {
    const std::string raw = require(key);
    std::vector<double> out;
    std::size_t start = 0;
    while (start <= raw.size()) {
      const auto comma = raw.find(',', start);
      const auto item = raw.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (item.empty()) fail(line_no_, "empty element in " + key);
      out.push_back(to_number(item));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return out;
  }

  void finish() const {
    if (!values_.empty()) {
      fail(line_no_, "unknown option " + values_.begin()->first);
    }
    if (!flags_.empty()) {
      fail(line_no_, "unknown flag " + flags_.front());
    }
  }

 private:
  double to_number(const std::string& raw) const {
    try {
      std::size_t pos = 0;
      const double v = std::stod(raw, &pos);
      if (pos != raw.size()) fail(line_no_, "malformed number: " + raw);
      return v;
    } catch (const std::invalid_argument&) {
      fail(line_no_, "malformed number: " + raw);
    }
  }

  std::size_t line_no_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> flags_;
};

// Parse-time view of the declared graph, for routed-route validation.
struct ParseGraph {
  std::map<std::string, NodeId> node_index;
  std::vector<GraphEdge> edges;  // link = index into scenario.links
  std::set<std::string> link_names;
  std::set<std::string> route_names;
};

// Positive-integer option with a clean per-line error.
std::uint32_t integer(Options& opts, const std::string& key,
                      std::size_t line_no) {
  const double v = opts.number(key);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    fail(line_no, key + " must be a non-negative integer");
  }
  return static_cast<std::uint32_t>(v);
}

// Optional burst=<k> option: packets drained per scheduler decision.
// Defaults to 1 (classic single-packet service, byte-identical traces).
std::uint32_t parse_burst(Options& opts, std::size_t line_no) {
  const double v = opts.number_or("burst", 1.0);
  if (v < 1.0 || v > static_cast<double>(kMaxBurst) ||
      v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    fail(line_no,
         "burst must be an integer in [1, " + std::to_string(kMaxBurst) + "]");
  }
  return static_cast<std::uint32_t>(v);
}

// Optional buffer=<pkts> option: finite drop-tail buffer. Defaults to 0
// (the paper's lossless link).
std::uint64_t parse_buffer(Options& opts, std::size_t line_no) {
  const double v = opts.number_or("buffer", 0.0);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    fail(line_no, "buffer must be a non-negative packet count");
  }
  return static_cast<std::uint64_t>(v);
}

void add_scenario_node(Scenario& scenario, ParseGraph& graph,
                       const std::string& name, std::size_t line_no) {
  if (graph.node_index.count(name)) {
    fail(line_no, "duplicate node name " + name);
  }
  graph.node_index[name] = static_cast<NodeId>(scenario.nodes.size());
  scenario.nodes.push_back(name);
}

void add_scenario_link(Scenario& scenario, ParseGraph& graph,
                       ScenarioLink link, std::size_t line_no) {
  if (!graph.link_names.insert(link.name).second) {
    fail(line_no, "duplicate link name " + link.name);
  }
  if (!link.from.empty()) {
    graph.edges.push_back(
        GraphEdge{static_cast<std::uint32_t>(scenario.links.size()),
                  graph.node_index.at(link.from),
                  graph.node_index.at(link.to)});
  }
  scenario.links.push_back(std::move(link));
}

NodeId require_node(const ParseGraph& graph, const std::string& name,
                    std::size_t line_no) {
  const auto it = graph.node_index.find(name);
  if (it == graph.node_index.end()) fail(line_no, "unknown node " + name);
  return it->second;
}

const ScenarioRoute* find_route(const Scenario& scenario,
                                const std::string& name) {
  for (const auto& r : scenario.routes) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void expand_topology(Scenario& scenario, ParseGraph& graph,
                     const std::vector<std::string>& tokens,
                     std::size_t line_no) {
  if (tokens.size() < 2) fail(line_no, "topology needs a kind");
  const std::string& kind = tokens[1];
  Options opts(tokens, 2, line_no);
  TopologySpec spec;
  if (kind == "line" || kind == "ring") {
    const std::uint32_t n = integer(opts, "n", line_no);
    if (kind == "line") {
      if (n < 2) fail(line_no, "line needs n >= 2");
      spec = make_line_topology(n);
    } else {
      if (n < 3) fail(line_no, "ring needs n >= 3");
      spec = make_ring_topology(n);
    }
  } else if (kind == "fat_tree") {
    const std::uint32_t k = integer(opts, "k", line_no);
    if (k < 2 || k % 2 != 0) fail(line_no, "fat_tree needs an even k >= 2");
    spec = make_fat_tree_topology(k);
  } else if (kind == "two_tier") {
    const std::uint32_t cores = integer(opts, "cores", line_no);
    const std::uint32_t pops = integer(opts, "pops", line_no);
    if (cores < 1 || pops < 1) {
      fail(line_no, "two_tier needs cores >= 1 and pops >= 1");
    }
    spec = make_two_tier_topology(cores, pops);
  } else {
    fail(line_no, "unknown topology kind " + kind);
  }

  const double capacity = opts.number("capacity");
  const SchedulerKind sched =
      scheduler_kind_from_string(opts.require("sched"));
  const std::vector<double> sdp = opts.list("sdp");
  const std::uint32_t burst = parse_burst(opts, line_no);
  const std::uint64_t buffer = parse_buffer(opts, line_no);
  const std::string prefix = opts.take("prefix").value_or("");
  opts.finish();

  for (const auto& name : spec.nodes) {
    add_scenario_node(scenario, graph, prefix + name, line_no);
  }
  for (const auto& [a, b] : spec.edges) {
    for (int dir = 0; dir < 2; ++dir) {
      ScenarioLink link;
      link.from = prefix + (dir == 0 ? a : b);
      link.to = prefix + (dir == 0 ? b : a);
      link.name = link.from + ">" + link.to;
      link.capacity = capacity;
      link.kind = sched;
      link.sdp = sdp;
      link.burst = burst;
      link.buffer = buffer;
      add_scenario_link(scenario, graph, std::move(link), line_no);
    }
  }
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  ParseGraph graph;
  bool saw_run = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const auto& kind = tokens[0];

    if (kind == "node") {
      if (tokens.size() < 2) fail(line_no, "node needs a name");
      Options opts(tokens, 2, line_no);
      opts.finish();
      add_scenario_node(scenario, graph, tokens[1], line_no);
    } else if (kind == "edge") {
      if (tokens.size() < 2) fail(line_no, "edge needs a name");
      ScenarioLink link;
      link.name = tokens[1];
      Options opts(tokens, 2, line_no);
      link.from = opts.require("from");
      link.to = opts.require("to");
      require_node(graph, link.from, line_no);
      require_node(graph, link.to, line_no);
      if (link.from == link.to) fail(line_no, "edge endpoints must differ");
      link.capacity = opts.number("capacity");
      link.kind = scheduler_kind_from_string(opts.require("sched"));
      link.sdp = opts.list("sdp");
      link.burst = parse_burst(opts, line_no);
      link.buffer = parse_buffer(opts, line_no);
      opts.finish();
      add_scenario_link(scenario, graph, std::move(link), line_no);
    } else if (kind == "topology") {
      expand_topology(scenario, graph, tokens, line_no);
    } else if (kind == "link") {
      if (tokens.size() < 2) fail(line_no, "link needs a name");
      ScenarioLink link;
      link.name = tokens[1];
      Options opts(tokens, 2, line_no);
      link.capacity = opts.number("capacity");
      link.kind = scheduler_kind_from_string(opts.require("sched"));
      link.sdp = opts.list("sdp");
      link.burst = parse_burst(opts, line_no);
      link.buffer = parse_buffer(opts, line_no);
      opts.finish();
      add_scenario_link(scenario, graph, std::move(link), line_no);
    } else if (kind == "route") {
      if (tokens.size() < 3) fail(line_no, "route needs a name and links");
      ScenarioRoute route;
      route.name = tokens[1];
      if (!graph.route_names.insert(route.name).second) {
        fail(line_no, "duplicate route name " + route.name);
      }
      const bool routed = tokens[2].find('=') != std::string::npos;
      if (routed) {
        Options opts(tokens, 2, line_no);
        route.from = opts.require("from");
        route.to = opts.require("to");
        opts.finish();
        const NodeId from = require_node(graph, route.from, line_no);
        const NodeId to = require_node(graph, route.to, line_no);
        if (from == to) fail(line_no, "route endpoints must differ");
        const auto path = shortest_path_links(
            static_cast<NodeId>(scenario.nodes.size()), graph.edges, from,
            to);
        if (path.empty()) {
          fail(line_no, "no path from " + route.from + " to " + route.to);
        }
      } else {
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          if (!graph.link_names.count(tokens[i])) {
            fail(line_no, "unknown link " + tokens[i]);
          }
          route.links.push_back(tokens[i]);
        }
      }
      scenario.routes.push_back(std::move(route));
    } else if (kind == "source") {
      if (tokens.size() < 3) fail(line_no, "source needs a kind and route");
      ScenarioSource src;
      const auto& sk = tokens[1];
      if (sk == "renewal") {
        src.kind = ScenarioSourceKind::kRenewal;
      } else if (sk == "mix") {
        src.kind = ScenarioSourceKind::kMix;
      } else if (sk == "cbr") {
        src.kind = ScenarioSourceKind::kCbr;
      } else {
        fail(line_no, "unknown source kind " + sk);
      }
      src.route = tokens[2];
      if (!find_route(scenario, src.route)) {
        fail(line_no, "unknown route " + src.route);
      }

      Options opts(tokens, 3, line_no);
      src.start = opts.number_or("start", 0.0);
      src.size_bytes =
          static_cast<std::uint32_t>(opts.number("size"));
      switch (src.kind) {
        case ScenarioSourceKind::kRenewal:
          src.cls = static_cast<ClassId>(opts.number("class"));
          src.gap = opts.number("gap");
          src.pareto_alpha =
              opts.flag("poisson") ? 0.0 : opts.number_or("pareto", 1.9);
          break;
        case ScenarioSourceKind::kMix:
          src.fractions = opts.list("fractions");
          src.gap = opts.number("gap");
          src.pareto_alpha =
              opts.flag("poisson") ? 0.0 : opts.number_or("pareto", 1.9);
          break;
        case ScenarioSourceKind::kCbr:
          src.cls = static_cast<ClassId>(opts.number("class"));
          src.count = static_cast<std::uint32_t>(opts.number("count"));
          src.interval = opts.number("interval");
          break;
      }
      opts.finish();
      scenario.sources.push_back(std::move(src));
    } else if (kind == "flows") {
      if (tokens.size() < 2) fail(line_no, "flows need a route");
      ScenarioFlows f;
      f.route = tokens[1];
      const ScenarioRoute* route = find_route(scenario, f.route);
      if (!route) fail(line_no, "unknown route " + f.route);

      Options opts(tokens, 2, line_no);
      f.cls = static_cast<ClassId>(integer(opts, "class", line_no));
      f.users = integer(opts, "users", line_no);
      f.size_bytes = integer(opts, "size", line_no);
      f.think_mean = opts.number("think");
      f.request_packets =
          static_cast<std::uint32_t>(opts.number_or("request", 1.0));
      f.response_packets = static_cast<std::uint32_t>(
          opts.number_or("response", f.request_packets));
      f.deadline = opts.number_or("deadline", 0.0);
      f.rto = opts.number_or("rto", 0.0);
      f.max_retries =
          static_cast<std::uint32_t>(opts.number_or("retries", 0.0));
      f.backoff = opts.number_or("backoff", 2.0);
      f.rto_cap = opts.number_or("rto_cap", 0.0);
      f.throttle_tokens = opts.number_or("throttle", 0.0);
      f.throttle_ratio = opts.number_or("throttle_ratio", 0.1);
      f.start = opts.number_or("start", 0.0);
      if (const auto rev = opts.take("reverse")) {
        f.reverse = *rev;
        if (!find_route(scenario, f.reverse)) {
          fail(line_no, "unknown route " + f.reverse);
        }
      }
      opts.finish();

      if (f.users < 1) fail(line_no, "flows need users >= 1");
      if (f.size_bytes < 1) fail(line_no, "flows need size >= 1");
      if (f.request_packets < 1 || f.response_packets < 1) {
        fail(line_no, "request/response need at least one packet");
      }
      if (f.think_mean < 0.0) fail(line_no, "think must be non-negative");
      if (f.max_retries > 0 && f.rto <= 0.0) {
        fail(line_no, "retries need a positive rto");
      }
      if (f.backoff < 1.0) fail(line_no, "backoff must be >= 1");
      if (f.reverse.empty()) {
        // Responses return over the auto-computed shortest path back, which
        // only exists for routed (from=/to=) forward routes.
        if (route->from.empty()) {
          fail(line_no,
               "flows over an explicit route need reverse=<route>");
        }
        const auto back = shortest_path_links(
            static_cast<NodeId>(scenario.nodes.size()), graph.edges,
            graph.node_index.at(route->to), graph.node_index.at(route->from));
        if (back.empty()) {
          fail(line_no, "no path from " + route->to + " to " + route->from +
                            " for the response direction");
        }
      }
      scenario.flows.push_back(std::move(f));
    } else if (kind == "run") {
      if (saw_run) fail(line_no, "duplicate run directive");
      saw_run = true;
      Options opts(tokens, 1, line_no);
      scenario.run.until = opts.number("until");
      scenario.run.warmup = opts.number_or("warmup", 0.0);
      scenario.run.seed =
          static_cast<std::uint64_t>(opts.number_or("seed", 1.0));
      opts.finish();
    } else {
      fail(line_no, "unknown directive " + kind);
    }
  }
  if (scenario.links.empty()) {
    throw std::invalid_argument("scenario defines no links");
  }
  if (!saw_run) throw std::invalid_argument("scenario has no run directive");
  if (scenario.sources.empty() && scenario.flows.empty()) {
    throw std::invalid_argument("scenario defines no sources");
  }
  PDS_CHECK(scenario.run.until > scenario.run.warmup,
            "run horizon must exceed the warmup");
  return scenario;
}

ScenarioReport run_scenario(const Scenario& scenario,
                            const ScenarioOptions& options) {
  PDS_CHECK(options.horizon_scale > 0.0,
            "horizon scale must be positive");
  const double until = scenario.run.until * options.horizon_scale;
  const double warmup = scenario.run.warmup * options.horizon_scale;

  Simulator sim;
  PacketIdAllocator ids;
  FlowIdAllocator flow_ids;
  Rng master(options.seed.value_or(scenario.run.seed));

  Network net(sim);
  std::map<std::string, NodeId> node_ids;
  for (const auto& name : scenario.nodes) node_ids[name] = net.add_node(name);

  std::map<std::string, LinkId> link_ids;
  std::uint32_t max_classes = 1;
  for (const auto& link : scenario.links) {
    SchedulerConfig sc;
    sc.sdp = link.sdp;
    sc.link_capacity = link.capacity;
    sc.burst = link.burst;
    const LinkId id =
        link.from.empty()
            ? net.add_link(link.kind, sc, link.capacity, link.name)
            : net.add_edge(node_ids.at(link.from), node_ids.at(link.to),
                           link.kind, sc, link.capacity, link.name);
    if (link.buffer > 0) net.make_lossy(id, link.buffer);
    link_ids[link.name] = id;
    max_classes = std::max(
        max_classes, static_cast<std::uint32_t>(link.sdp.size()));
  }

  ScenarioReport report;
  // (route index, class) -> samples of end-to-end queueing delay.
  std::vector<std::vector<SampleSet>> samples(
      scenario.routes.size(), std::vector<SampleSet>(max_classes));
  // RouteId -> workloads whose forward or reverse route it is; sized after
  // every route (including auto-created reverse routes) exists, which is
  // before the first event fires.
  std::vector<std::vector<RpcWorkload*>> flow_dispatch;

  std::map<std::string, RouteId> route_ids;
  for (std::size_t r = 0; r < scenario.routes.size(); ++r) {
    const auto& route = scenario.routes[r];
    const auto handler = [&, r](const Packet& p, SimTime now) {
      ++report.total_exits;
      if (now >= warmup && p.cls < max_classes) {
        samples[r][p.cls].add(p.cum_queueing);
      }
      for (RpcWorkload* wl : flow_dispatch[p.route]) {
        wl->on_route_exit(p, now);
      }
    };
    if (route.from.empty()) {
      std::vector<LinkId> path;
      for (const auto& name : route.links) path.push_back(link_ids.at(name));
      route_ids[route.name] = net.add_route(path, handler);
    } else {
      route_ids[route.name] = net.add_route_between(
          node_ids.at(route.from), node_ids.at(route.to), handler);
    }
  }

  // Reverse routes for flows without an explicit reverse= (one per forward
  // route, shared between workloads). Their exits count toward total_exits
  // but carry no per-route stats row.
  const auto reverse_handler = [&](const Packet& p, SimTime now) {
    ++report.total_exits;
    for (RpcWorkload* wl : flow_dispatch[p.route]) wl->on_route_exit(p, now);
  };
  std::map<std::string, RouteId> auto_reverse;
  std::vector<std::pair<RouteId, RouteId>> flow_routes;  // (forward, reverse)
  for (const auto& f : scenario.flows) {
    const RouteId forward = route_ids.at(f.route);
    RouteId reverse;
    if (!f.reverse.empty()) {
      reverse = route_ids.at(f.reverse);
    } else {
      const auto it = auto_reverse.find(f.route);
      if (it != auto_reverse.end()) {
        reverse = it->second;
      } else {
        const ScenarioRoute* route = find_route(scenario, f.route);
        PDS_REQUIRE(route != nullptr && !route->from.empty());
        reverse = net.add_route_between(node_ids.at(route->to),
                                        node_ids.at(route->from),
                                        reverse_handler);
        auto_reverse.emplace(f.route, reverse);
      }
    }
    flow_routes.emplace_back(forward, reverse);
  }

  const auto make_gaps = [](const ScenarioSource& src) {
    return src.pareto_alpha > 0.0 ? pareto_gaps(src.pareto_alpha, src.gap)
                                  : exponential_gaps(src.gap);
  };

  // Rng split order: every source in file order, then every workload in
  // file order — adding flows to a scenario never perturbs the packet
  // streams of its existing sources.
  std::vector<std::unique_ptr<RenewalSource>> renewals;
  std::vector<std::unique_ptr<ClassMixSource>> mixes;
  std::vector<std::unique_ptr<CbrFlowSource>> cbrs;
  for (const auto& src : scenario.sources) {
    const RouteId route = route_ids.at(src.route);
    const auto handler = [&net, route](Packet p) {
      net.inject(std::move(p), route);
    };
    switch (src.kind) {
      case ScenarioSourceKind::kRenewal:
        renewals.push_back(std::make_unique<RenewalSource>(
            sim, ids, src.cls, make_gaps(src), fixed_size(src.size_bytes),
            master.split(), handler));
        renewals.back()->start(src.start);
        break;
      case ScenarioSourceKind::kMix:
        mixes.push_back(std::make_unique<ClassMixSource>(
            sim, ids, src.fractions, make_gaps(src),
            fixed_size(src.size_bytes), master.split(), handler));
        mixes.back()->start(src.start);
        break;
      case ScenarioSourceKind::kCbr:
        cbrs.push_back(std::make_unique<CbrFlowSource>(
            sim, ids, src.cls, kNoFlow - 1, src.count, src.size_bytes,
            src.interval, handler));
        cbrs.back()->start(src.start);
        break;
    }
  }

  std::vector<std::unique_ptr<RpcWorkload>> workloads;
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    const auto& f = scenario.flows[i];
    RpcConfig rc;
    rc.cls = f.cls;
    rc.users = options.users.value_or(f.users);
    rc.request_packets = f.request_packets;
    rc.response_packets = f.response_packets;
    rc.size_bytes = f.size_bytes;
    rc.think_mean = f.think_mean;
    rc.deadline = f.deadline;
    rc.rto = f.rto;
    rc.max_retries = f.max_retries;
    rc.backoff = f.backoff;
    rc.rto_cap = f.rto_cap;
    rc.throttle_tokens = f.throttle_tokens;
    rc.throttle_ratio = f.throttle_ratio;
    workloads.push_back(std::make_unique<RpcWorkload>(
        sim, net, ids, flow_ids, flow_routes[i].first, flow_routes[i].second,
        rc, master.split()));
    workloads.back()->set_warmup(warmup);
  }
  flow_dispatch.assign(net.num_routes(), {});
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    flow_dispatch[flow_routes[i].first].push_back(workloads[i].get());
    if (flow_routes[i].second != flow_routes[i].first) {
      flow_dispatch[flow_routes[i].second].push_back(workloads[i].get());
    }
  }
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    workloads[i]->start(scenario.flows[i].start);
  }

  std::unique_ptr<FaultInjector> injector;
  if (!options.fault_plan.empty()) {
    injector = std::make_unique<FaultInjector>(
        sim, parse_fault_plan(options.fault_plan));
    attach_network(*injector, net);
    injector->arm();
    report.faulted = true;
  }

  std::unique_ptr<ControlInjector> control;
  if (!options.control_plan.empty()) {
    control = std::make_unique<ControlInjector>(
        sim, parse_control_plan(options.control_plan));
    attach_network(*control, net);
    control->arm();
    report.controlled = true;
  }

  MetricsRegistry registry;
  std::unique_ptr<MetricsSnapshotWriter> metrics;
  if (!options.metrics_out.empty()) {
    PDS_CHECK(options.metrics_window > 0.0,
              "metrics window must be positive");
    metrics = std::make_unique<MetricsSnapshotWriter>(
        sim, registry, options.metrics_out, options.metrics_window,
        [&](SimTime) {
          for (const auto& [name, id] : link_ids) {
            registry.gauge("link." + name + ".util")
                .set(net.utilization(id));
            registry.gauge("link." + name + ".sent")
                .set(static_cast<double>(net.link(id).packets_sent()));
          }
          for (std::size_t i = 0; i < workloads.size(); ++i) {
            const auto& st = workloads[i]->stats();
            const std::string p = "flows.f" + std::to_string(i) + ".";
            registry.gauge(p + "completed")
                .set(static_cast<double>(st.completed));
            registry.gauge(p + "failed").set(static_cast<double>(st.failed));
            registry.gauge(p + "retries")
                .set(static_cast<double>(st.retries));
            registry.gauge(p + "waiting")
                .set(static_cast<double>(workloads[i]->waiting_users()));
            registry.gauge(p + "slo").set(st.slo_attainment());
          }
        });
  }

  if (options.max_events > 0 || options.max_wall_seconds > 0.0) {
    sim.set_budget(options.max_events, options.max_wall_seconds);
  }

  sim.run_until(until);
  for (auto& s : renewals) s->stop();
  for (auto& s : mixes) s->stop();
  if (metrics) {
    metrics->flush();
    report.metrics_snapshots = metrics->snapshots_written();
  }

  for (std::size_t r = 0; r < scenario.routes.size(); ++r) {
    for (ClassId c = 0; c < max_classes; ++c) {
      const auto& set = samples[r][c];
      if (set.empty()) continue;
      report.route_stats.push_back(ScenarioReport::RouteClassStats{
          scenario.routes[r].name, c, set.count(), set.mean(),
          set.percentile(95.0)});
    }
  }
  for (const auto& link : scenario.links) {
    const LinkId id = link_ids.at(link.name);
    ScenarioReport::LinkStats ls;
    ls.link = link.name;
    ls.sched = to_string(link.kind);
    ls.utilization = net.utilization(id);
    ls.packets_sent = net.link(id).packets_sent();
    ls.fault_drops = net.link(id).fault_drops();
    if (const LossyLink* lossy = net.lossy(id)) {
      ls.burst_drops = lossy->burst_drops();
      for (ClassId c = 0; c < net.link(id).scheduler().num_classes(); ++c) {
        ls.buffer_drops += lossy->drops(c);
      }
    }
    ls.control_drops = net.link(id).drain_drops() + net.link(id).shed_drops();
    report.fault_drops += ls.fault_drops;
    report.shed_drops += net.link(id).shed_drops();
    report.drain_drops += net.link(id).drain_drops();
    report.link_stats.push_back(std::move(ls));
  }
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& st = workloads[i]->stats();
    ScenarioReport::FlowStats fs;
    fs.route = scenario.flows[i].route;
    fs.cls = scenario.flows[i].cls;
    fs.users = workloads[i]->config().users;
    fs.issued = st.issued;
    fs.completed = st.completed;
    fs.failed = st.failed;
    fs.retries = st.retries;
    fs.throttled = st.throttled;
    if (!st.fct.empty()) {
      fs.fct_mean = st.fct.mean();
      const auto q = st.fct.percentiles({50.0, 95.0, 99.0});
      fs.fct_p50 = q[0];
      fs.fct_p95 = q[1];
      fs.fct_p99 = q[2];
    }
    fs.slo_attainment = st.slo_attainment();
    fs.deadline = scenario.flows[i].deadline;
    report.flow_stats.push_back(std::move(fs));
  }
  if (injector) {
    report.fault_episodes_scheduled = injector->scheduled_episodes();
    report.fault_episodes = injector->episodes_completed();
  }
  if (control) {
    report.control_episodes_scheduled = control->scheduled_episodes();
    report.control_episodes = control->episodes_completed();
    report.control_retunes = control->retunes_applied();
    report.control_swaps = control->swaps_applied();
    report.control_class_changes = control->class_changes_applied();
    report.control_sheds = control->sheds_applied();
  }
  return report;
}

ScenarioReport run_scenario(const std::string& text,
                            const ScenarioOptions& options) {
  return run_scenario(parse_scenario(text), options);
}

ScenarioReport run_scenario(const std::string& text,
                            std::optional<std::uint64_t> seed_override) {
  ScenarioOptions options;
  options.seed = seed_override;
  return run_scenario(text, options);
}

RunReport scenario_run_report(const Scenario& scenario,
                              const ScenarioReport& report,
                              std::uint64_t seed_used) {
  RunReport doc("scenario");
  doc.set_section("scenario",
                  Json::object()
                      .set("nodes", scenario.nodes.size())
                      .set("links", scenario.links.size())
                      .set("routes", scenario.routes.size())
                      .set("sources", scenario.sources.size())
                      .set("flows", scenario.flows.size())
                      .set("until", scenario.run.until)
                      .set("warmup", scenario.run.warmup)
                      .set("seed", seed_used)
                      .set("total_exits", report.total_exits));
  Json routes = Json::array();
  for (const auto& rs : report.route_stats) {
    routes.push(Json::object()
                    .set("route", rs.route)
                    .set("class", paper_class_label(rs.cls))
                    .set("packets", rs.packets)
                    .set("mean_delay", rs.mean_delay)
                    .set("p95_delay", rs.p95_delay));
  }
  doc.set_section("routes", std::move(routes));
  Json links = Json::array();
  for (const auto& ls : report.link_stats) {
    links.push(Json::object()
                   .set("link", ls.link)
                   .set("sched", ls.sched)
                   .set("utilization", ls.utilization)
                   .set("packets_sent", ls.packets_sent)
                   .set("fault_drops", ls.fault_drops)
                   .set("burst_drops", ls.burst_drops)
                   .set("buffer_drops", ls.buffer_drops)
                   .set("control_drops", ls.control_drops));
  }
  doc.set_section("links", std::move(links));
  Json flows = Json::array();
  for (const auto& fs : report.flow_stats) {
    flows.push(Json::object()
                   .set("route", fs.route)
                   .set("class", paper_class_label(fs.cls))
                   .set("users", fs.users)
                   .set("issued", fs.issued)
                   .set("completed", fs.completed)
                   .set("failed", fs.failed)
                   .set("retries", fs.retries)
                   .set("throttled", fs.throttled)
                   .set("fct_mean", fs.fct_mean)
                   .set("fct_p50", fs.fct_p50)
                   .set("fct_p95", fs.fct_p95)
                   .set("fct_p99", fs.fct_p99)
                   .set("slo_attainment", fs.slo_attainment)
                   .set("deadline", fs.deadline));
  }
  doc.set_section("flows", std::move(flows));
  if (report.faulted) {
    doc.set_section("faults",
                    Json::object()
                        .set("scheduled", report.fault_episodes_scheduled)
                        .set("completed", report.fault_episodes)
                        .set("drops", report.fault_drops));
  }
  if (report.controlled) {
    doc.set_section("control",
                    Json::object()
                        .set("scheduled", report.control_episodes_scheduled)
                        .set("completed", report.control_episodes)
                        .set("retunes", report.control_retunes)
                        .set("swaps", report.control_swaps)
                        .set("class_changes", report.control_class_changes)
                        .set("sheds", report.control_sheds)
                        .set("shed_drops", report.shed_drops)
                        .set("drain_drops", report.drain_drops));
  }
  return doc;
}

}  // namespace pds
