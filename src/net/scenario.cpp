#include "net/scenario.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "ctrl/control_injector.hpp"
#include "ctrl/control_plan.hpp"
#include "dsim/shard.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/flows.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/pdes_trace.hpp"
#include "obs/report.hpp"
#include "sched/scan.hpp"
#include "sched/scheduler.hpp"
#include "stats/percentile.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"

namespace pds {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                              ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    tokens.push_back(tok);
  }
  return tokens;
}

// key=value options after the positional tokens.
class Options {
 public:
  Options(const std::vector<std::string>& tokens, std::size_t first,
          std::size_t line_no)
      : line_no_(line_no) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto& tok = tokens[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos) {
        flags_.push_back(tok);
      } else {
        values_[tok.substr(0, eq)] = tok.substr(eq + 1);
      }
    }
  }

  bool flag(const std::string& name) {
    for (auto it = flags_.begin(); it != flags_.end(); ++it) {
      if (*it == name) {
        flags_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::optional<std::string> take(const std::string& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    std::string v = it->second;
    values_.erase(it);
    return v;
  }

  std::string require(const std::string& key) {
    auto v = take(key);
    if (!v) fail(line_no_, "missing required option " + key + "=...");
    return *v;
  }

  double number(const std::string& key) {
    return to_number(require(key));
  }

  double number_or(const std::string& key, double def) {
    const auto v = take(key);
    return v ? to_number(*v) : def;
  }

  std::vector<double> list(const std::string& key) {
    const std::string raw = require(key);
    std::vector<double> out;
    std::size_t start = 0;
    while (start <= raw.size()) {
      const auto comma = raw.find(',', start);
      const auto item = raw.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (item.empty()) fail(line_no_, "empty element in " + key);
      out.push_back(to_number(item));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return out;
  }

  void finish() const {
    if (!values_.empty()) {
      fail(line_no_, "unknown option " + values_.begin()->first);
    }
    if (!flags_.empty()) {
      fail(line_no_, "unknown flag " + flags_.front());
    }
  }

 private:
  double to_number(const std::string& raw) const {
    try {
      std::size_t pos = 0;
      const double v = std::stod(raw, &pos);
      if (pos != raw.size()) fail(line_no_, "malformed number: " + raw);
      return v;
    } catch (const std::invalid_argument&) {
      fail(line_no_, "malformed number: " + raw);
    }
  }

  std::size_t line_no_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> flags_;
};

// Parse-time view of the declared graph, for routed-route validation.
struct ParseGraph {
  std::map<std::string, NodeId> node_index;
  std::vector<GraphEdge> edges;  // link = index into scenario.links
  std::set<std::string> link_names;
  std::set<std::string> route_names;
};

// Positive-integer option with a clean per-line error.
std::uint32_t integer(Options& opts, const std::string& key,
                      std::size_t line_no) {
  const double v = opts.number(key);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    fail(line_no, key + " must be a non-negative integer");
  }
  return static_cast<std::uint32_t>(v);
}

// Optional burst=<k> option: packets drained per scheduler decision.
// Defaults to 1 (classic single-packet service, byte-identical traces).
std::uint32_t parse_burst(Options& opts, std::size_t line_no) {
  const double v = opts.number_or("burst", 1.0);
  if (v < 1.0 || v > static_cast<double>(kMaxBurst) ||
      v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    fail(line_no,
         "burst must be an integer in [1, " + std::to_string(kMaxBurst) + "]");
  }
  return static_cast<std::uint32_t>(v);
}

// Optional buffer=<pkts> option: finite drop-tail buffer. Defaults to 0
// (the paper's lossless link).
std::uint64_t parse_buffer(Options& opts, std::size_t line_no) {
  const double v = opts.number_or("buffer", 0.0);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    fail(line_no, "buffer must be a non-negative packet count");
  }
  return static_cast<std::uint64_t>(v);
}

void add_scenario_node(Scenario& scenario, ParseGraph& graph,
                       const std::string& name, std::size_t line_no) {
  if (graph.node_index.count(name)) {
    fail(line_no, "duplicate node name " + name);
  }
  graph.node_index[name] = static_cast<NodeId>(scenario.nodes.size());
  scenario.nodes.push_back(name);
}

void add_scenario_link(Scenario& scenario, ParseGraph& graph,
                       ScenarioLink link, std::size_t line_no) {
  if (!graph.link_names.insert(link.name).second) {
    fail(line_no, "duplicate link name " + link.name);
  }
  if (!link.from.empty()) {
    graph.edges.push_back(
        GraphEdge{static_cast<std::uint32_t>(scenario.links.size()),
                  graph.node_index.at(link.from),
                  graph.node_index.at(link.to)});
  }
  scenario.links.push_back(std::move(link));
}

NodeId require_node(const ParseGraph& graph, const std::string& name,
                    std::size_t line_no) {
  const auto it = graph.node_index.find(name);
  if (it == graph.node_index.end()) fail(line_no, "unknown node " + name);
  return it->second;
}

const ScenarioRoute* find_route(const Scenario& scenario,
                                const std::string& name) {
  for (const auto& r : scenario.routes) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void expand_topology(Scenario& scenario, ParseGraph& graph,
                     const std::vector<std::string>& tokens,
                     std::size_t line_no) {
  if (tokens.size() < 2) fail(line_no, "topology needs a kind");
  const std::string& kind = tokens[1];
  Options opts(tokens, 2, line_no);
  TopologySpec spec;
  if (kind == "line" || kind == "ring") {
    const std::uint32_t n = integer(opts, "n", line_no);
    if (kind == "line") {
      if (n < 2) fail(line_no, "line needs n >= 2");
      spec = make_line_topology(n);
    } else {
      if (n < 3) fail(line_no, "ring needs n >= 3");
      spec = make_ring_topology(n);
    }
  } else if (kind == "fat_tree") {
    const std::uint32_t k = integer(opts, "k", line_no);
    if (k < 2 || k % 2 != 0) fail(line_no, "fat_tree needs an even k >= 2");
    spec = make_fat_tree_topology(k);
  } else if (kind == "two_tier") {
    const std::uint32_t cores = integer(opts, "cores", line_no);
    const std::uint32_t pops = integer(opts, "pops", line_no);
    if (cores < 1 || pops < 1) {
      fail(line_no, "two_tier needs cores >= 1 and pops >= 1");
    }
    spec = make_two_tier_topology(cores, pops);
  } else {
    fail(line_no, "unknown topology kind " + kind);
  }

  const double capacity = opts.number("capacity");
  const SchedulerKind sched =
      scheduler_kind_from_string(opts.require("sched"));
  const std::vector<double> sdp = opts.list("sdp");
  const std::uint32_t burst = parse_burst(opts, line_no);
  const std::uint64_t buffer = parse_buffer(opts, line_no);
  const std::string prefix = opts.take("prefix").value_or("");
  opts.finish();

  for (const auto& name : spec.nodes) {
    add_scenario_node(scenario, graph, prefix + name, line_no);
  }
  for (const auto& [a, b] : spec.edges) {
    for (int dir = 0; dir < 2; ++dir) {
      ScenarioLink link;
      link.from = prefix + (dir == 0 ? a : b);
      link.to = prefix + (dir == 0 ? b : a);
      link.name = link.from + ">" + link.to;
      link.capacity = capacity;
      link.kind = sched;
      link.sdp = sdp;
      link.burst = burst;
      link.buffer = buffer;
      add_scenario_link(scenario, graph, std::move(link), line_no);
    }
  }
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  ParseGraph graph;
  bool saw_run = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const auto& kind = tokens[0];

    if (kind == "node") {
      if (tokens.size() < 2) fail(line_no, "node needs a name");
      Options opts(tokens, 2, line_no);
      opts.finish();
      add_scenario_node(scenario, graph, tokens[1], line_no);
    } else if (kind == "edge") {
      if (tokens.size() < 2) fail(line_no, "edge needs a name");
      ScenarioLink link;
      link.name = tokens[1];
      Options opts(tokens, 2, line_no);
      link.from = opts.require("from");
      link.to = opts.require("to");
      require_node(graph, link.from, line_no);
      require_node(graph, link.to, line_no);
      if (link.from == link.to) fail(line_no, "edge endpoints must differ");
      link.capacity = opts.number("capacity");
      link.kind = scheduler_kind_from_string(opts.require("sched"));
      link.sdp = opts.list("sdp");
      link.burst = parse_burst(opts, line_no);
      link.buffer = parse_buffer(opts, line_no);
      opts.finish();
      add_scenario_link(scenario, graph, std::move(link), line_no);
    } else if (kind == "topology") {
      expand_topology(scenario, graph, tokens, line_no);
    } else if (kind == "link") {
      if (tokens.size() < 2) fail(line_no, "link needs a name");
      ScenarioLink link;
      link.name = tokens[1];
      Options opts(tokens, 2, line_no);
      link.capacity = opts.number("capacity");
      link.kind = scheduler_kind_from_string(opts.require("sched"));
      link.sdp = opts.list("sdp");
      link.burst = parse_burst(opts, line_no);
      link.buffer = parse_buffer(opts, line_no);
      opts.finish();
      add_scenario_link(scenario, graph, std::move(link), line_no);
    } else if (kind == "route") {
      if (tokens.size() < 3) fail(line_no, "route needs a name and links");
      ScenarioRoute route;
      route.name = tokens[1];
      if (!graph.route_names.insert(route.name).second) {
        fail(line_no, "duplicate route name " + route.name);
      }
      const bool routed = tokens[2].find('=') != std::string::npos;
      if (routed) {
        Options opts(tokens, 2, line_no);
        route.from = opts.require("from");
        route.to = opts.require("to");
        opts.finish();
        const NodeId from = require_node(graph, route.from, line_no);
        const NodeId to = require_node(graph, route.to, line_no);
        if (from == to) fail(line_no, "route endpoints must differ");
        const auto path = shortest_path_links(
            static_cast<NodeId>(scenario.nodes.size()), graph.edges, from,
            to);
        if (path.empty()) {
          fail(line_no, "no path from " + route.from + " to " + route.to);
        }
      } else {
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          if (!graph.link_names.count(tokens[i])) {
            fail(line_no, "unknown link " + tokens[i]);
          }
          route.links.push_back(tokens[i]);
        }
      }
      scenario.routes.push_back(std::move(route));
    } else if (kind == "source") {
      if (tokens.size() < 3) fail(line_no, "source needs a kind and route");
      ScenarioSource src;
      const auto& sk = tokens[1];
      if (sk == "renewal") {
        src.kind = ScenarioSourceKind::kRenewal;
      } else if (sk == "mix") {
        src.kind = ScenarioSourceKind::kMix;
      } else if (sk == "cbr") {
        src.kind = ScenarioSourceKind::kCbr;
      } else {
        fail(line_no, "unknown source kind " + sk);
      }
      src.route = tokens[2];
      if (!find_route(scenario, src.route)) {
        fail(line_no, "unknown route " + src.route);
      }

      Options opts(tokens, 3, line_no);
      src.start = opts.number_or("start", 0.0);
      src.size_bytes =
          static_cast<std::uint32_t>(opts.number("size"));
      switch (src.kind) {
        case ScenarioSourceKind::kRenewal:
          src.cls = static_cast<ClassId>(opts.number("class"));
          src.gap = opts.number("gap");
          src.pareto_alpha =
              opts.flag("poisson") ? 0.0 : opts.number_or("pareto", 1.9);
          break;
        case ScenarioSourceKind::kMix:
          src.fractions = opts.list("fractions");
          src.gap = opts.number("gap");
          src.pareto_alpha =
              opts.flag("poisson") ? 0.0 : opts.number_or("pareto", 1.9);
          break;
        case ScenarioSourceKind::kCbr:
          src.cls = static_cast<ClassId>(opts.number("class"));
          src.count = static_cast<std::uint32_t>(opts.number("count"));
          src.interval = opts.number("interval");
          break;
      }
      opts.finish();
      scenario.sources.push_back(std::move(src));
    } else if (kind == "flows") {
      if (tokens.size() < 2) fail(line_no, "flows need a route");
      ScenarioFlows f;
      f.route = tokens[1];
      const ScenarioRoute* route = find_route(scenario, f.route);
      if (!route) fail(line_no, "unknown route " + f.route);

      Options opts(tokens, 2, line_no);
      f.cls = static_cast<ClassId>(integer(opts, "class", line_no));
      f.users = integer(opts, "users", line_no);
      f.size_bytes = integer(opts, "size", line_no);
      f.think_mean = opts.number("think");
      f.request_packets =
          static_cast<std::uint32_t>(opts.number_or("request", 1.0));
      f.response_packets = static_cast<std::uint32_t>(
          opts.number_or("response", f.request_packets));
      f.deadline = opts.number_or("deadline", 0.0);
      f.rto = opts.number_or("rto", 0.0);
      f.max_retries =
          static_cast<std::uint32_t>(opts.number_or("retries", 0.0));
      f.backoff = opts.number_or("backoff", 2.0);
      f.rto_cap = opts.number_or("rto_cap", 0.0);
      f.throttle_tokens = opts.number_or("throttle", 0.0);
      f.throttle_ratio = opts.number_or("throttle_ratio", 0.1);
      f.start = opts.number_or("start", 0.0);
      if (const auto rev = opts.take("reverse")) {
        f.reverse = *rev;
        if (!find_route(scenario, f.reverse)) {
          fail(line_no, "unknown route " + f.reverse);
        }
      }
      opts.finish();

      if (f.users < 1) fail(line_no, "flows need users >= 1");
      if (f.size_bytes < 1) fail(line_no, "flows need size >= 1");
      if (f.request_packets < 1 || f.response_packets < 1) {
        fail(line_no, "request/response need at least one packet");
      }
      if (f.think_mean < 0.0) fail(line_no, "think must be non-negative");
      if (f.max_retries > 0 && f.rto <= 0.0) {
        fail(line_no, "retries need a positive rto");
      }
      if (f.backoff < 1.0) fail(line_no, "backoff must be >= 1");
      if (f.reverse.empty()) {
        // Responses return over the auto-computed shortest path back, which
        // only exists for routed (from=/to=) forward routes.
        if (route->from.empty()) {
          fail(line_no,
               "flows over an explicit route need reverse=<route>");
        }
        const auto back = shortest_path_links(
            static_cast<NodeId>(scenario.nodes.size()), graph.edges,
            graph.node_index.at(route->to), graph.node_index.at(route->from));
        if (back.empty()) {
          fail(line_no, "no path from " + route->to + " to " + route->from +
                            " for the response direction");
        }
      }
      scenario.flows.push_back(std::move(f));
    } else if (kind == "run") {
      if (saw_run) fail(line_no, "duplicate run directive");
      saw_run = true;
      Options opts(tokens, 1, line_no);
      scenario.run.until = opts.number("until");
      scenario.run.warmup = opts.number_or("warmup", 0.0);
      scenario.run.seed =
          static_cast<std::uint64_t>(opts.number_or("seed", 1.0));
      opts.finish();
    } else {
      fail(line_no, "unknown directive " + kind);
    }
  }
  if (scenario.links.empty()) {
    throw std::invalid_argument("scenario defines no links");
  }
  if (!saw_run) throw std::invalid_argument("scenario has no run directive");
  if (scenario.sources.empty() && scenario.flows.empty()) {
    throw std::invalid_argument("scenario defines no sources");
  }
  PDS_CHECK(scenario.run.until > scenario.run.warmup,
            "run horizon must exceed the warmup");
  return scenario;
}

namespace {

// ===========================================================================
// Execution machinery. The serial path and the sharded (--shards) path build
// the simulation through the same Replica/build_replica code so that every
// shard constructs state — and consumes its master Rng — in exactly the
// order the serial run does; that construction-order identity is what makes
// the sharded report byte-identical to the serial one.
// ===========================================================================

// Static sharding plan: the partition, per-route link paths (including the
// auto-created reverse routes, appended in the same order run-time
// construction creates them), exit-handler placement, and the lookahead
// matrix. A pure function of the scenario and the shard count.
struct ScenarioPlan {
  std::uint32_t shards = 1;
  Partition part;
  std::vector<std::vector<LinkId>> route_paths;
  std::vector<std::uint32_t> route_exit;  // shard running each exit handler
  std::vector<SimTime> lookahead;         // shards x shards, flattened
};

ScenarioPlan plan_scenario(const Scenario& scenario, std::uint32_t shards,
                           PartitionMethod method) {
  ScenarioPlan plan;
  plan.shards = shards;

  std::map<std::string, NodeId> node_index;
  for (std::size_t i = 0; i < scenario.nodes.size(); ++i) {
    node_index[scenario.nodes[i]] = static_cast<NodeId>(i);
  }
  std::vector<GraphEdge> edges;
  std::vector<double> capacities(scenario.links.size(), 0.0);
  std::map<std::string, LinkId> link_index;
  for (std::size_t i = 0; i < scenario.links.size(); ++i) {
    const auto& link = scenario.links[i];
    link_index[link.name] = static_cast<LinkId>(i);
    capacities[i] = link.capacity;
    if (!link.from.empty()) {
      edges.push_back(GraphEdge{static_cast<std::uint32_t>(i),
                                node_index.at(link.from),
                                node_index.at(link.to)});
    }
  }

  std::map<std::string, RouteId> route_ids;
  for (std::size_t r = 0; r < scenario.routes.size(); ++r) {
    const auto& route = scenario.routes[r];
    std::vector<LinkId> path;
    if (route.from.empty()) {
      for (const auto& name : route.links) path.push_back(link_index.at(name));
    } else {
      path = shortest_path_links(static_cast<NodeId>(scenario.nodes.size()),
                                 edges, node_index.at(route.from),
                                 node_index.at(route.to));
    }
    PDS_REQUIRE(!path.empty());
    route_ids[route.name] = static_cast<RouteId>(r);
    plan.route_paths.push_back(std::move(path));
  }

  // Auto-created reverse routes get the ids run_scenario's flows loop will
  // assign them (appended past the file routes, one per distinct forward
  // route, in flows order).
  std::map<std::string, RouteId> auto_reverse;
  std::vector<std::pair<RouteId, RouteId>> flow_routes;
  for (const auto& f : scenario.flows) {
    const RouteId forward = route_ids.at(f.route);
    RouteId reverse;
    if (!f.reverse.empty()) {
      reverse = route_ids.at(f.reverse);
    } else {
      const auto it = auto_reverse.find(f.route);
      if (it != auto_reverse.end()) {
        reverse = it->second;
      } else {
        const ScenarioRoute* route = find_route(scenario, f.route);
        PDS_REQUIRE(route != nullptr && !route->from.empty());
        auto back = shortest_path_links(
            static_cast<NodeId>(scenario.nodes.size()), edges,
            node_index.at(route->to), node_index.at(route->from));
        PDS_REQUIRE(!back.empty());
        reverse = static_cast<RouteId>(plan.route_paths.size());
        plan.route_paths.push_back(std::move(back));
        auto_reverse.emplace(f.route, reverse);
      }
    }
    flow_routes.emplace_back(forward, reverse);
  }

  plan.part = partition_topology(
      static_cast<std::uint32_t>(scenario.nodes.size()),
      static_cast<std::uint32_t>(scenario.links.size()), edges, capacities,
      shards, method);

  // Exit handlers run where the last hop is owned — except flow routes,
  // whose exits feed workload state living on shard 0.
  plan.route_exit.resize(plan.route_paths.size());
  for (std::size_t r = 0; r < plan.route_paths.size(); ++r) {
    plan.route_exit[r] = plan.part.link_owner[plan.route_paths[r].back()];
  }
  for (const auto& [fwd, rev] : flow_routes) {
    plan.route_exit[fwd] = 0;
    plan.route_exit[rev] = 0;
  }

  double min_bytes = kSimTimeInfinity;
  for (const auto& src : scenario.sources) {
    min_bytes = std::min(min_bytes, static_cast<double>(src.size_bytes));
  }
  for (const auto& f : scenario.flows) {
    min_bytes = std::min(min_bytes, static_cast<double>(f.size_bytes));
  }
  PDS_CHECK(min_bytes >= 1.0,
            "sharded runs need every source size to be at least one byte");

  plan.lookahead = make_lookahead(shards);
  add_route_lookahead(plan.lookahead, plan.part, plan.route_paths,
                      plan.route_exit, capacities, min_bytes);
  // Workload injections: shard 0 hands request/response packets to the
  // first hop's owner at the current time — zero lookahead, safe because
  // shard 0 never has zero-lookahead in-edges (see net/partition.hpp).
  for (const auto& [fwd, rev] : flow_routes) {
    for (const RouteId r : {fwd, rev}) {
      const std::uint32_t owner =
          plan.part.link_owner[plan.route_paths[r].front()];
      if (owner != 0) {
        add_lookahead_edge(plan.lookahead, shards, 0, owner, 0.0);
      }
    }
  }
  return plan;
}

// One shard's complete simulation state — or the whole simulation when run
// serially. Field order mirrors the old run_scenario local order so the
// destruction sequence is unchanged.
struct Replica {
  explicit Replica(std::uint64_t seed) : master(seed), net(sim) {}

  Simulator sim;
  PacketIdAllocator ids;
  FlowIdAllocator flow_ids;
  Rng master;
  Network net;

  std::map<std::string, NodeId> node_ids;
  std::map<std::string, LinkId> link_ids;
  std::uint32_t max_classes = 1;
  std::uint64_t total_exits = 0;
  // (route index, class) -> samples of end-to-end queueing delay.
  std::vector<std::vector<SampleSet>> samples;
  // RouteId -> workloads whose forward or reverse route it is.
  std::vector<std::vector<RpcWorkload*>> flow_dispatch;
  std::map<std::string, RouteId> route_ids;
  std::vector<std::pair<RouteId, RouteId>> flow_routes;
  std::vector<std::unique_ptr<RenewalSource>> renewals;
  std::vector<std::unique_ptr<ClassMixSource>> mixes;
  std::vector<std::unique_ptr<CbrFlowSource>> cbrs;
  std::vector<bool> renewal_started;
  std::vector<bool> mix_started;
  std::vector<std::unique_ptr<RpcWorkload>> workloads;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<ControlInjector> control;
};

using PublishFn = std::function<void(std::uint32_t, SimTime, Packet&&)>;

// Builds one replica of the scenario. Serial runs pass plan == nullptr and
// get the exact construction sequence run_scenario always had. Sharded runs
// build the identical structure on every shard — same ids, same Rng split
// order — but start a source only on the shard owning its route's first
// link, start workloads only on shard 0, and bind the shard identity so
// cross-cut transmissions publish instead of delivering locally.
void build_replica(Replica& rep, const Scenario& scenario,
                   const ScenarioOptions& options, double warmup,
                   const ScenarioPlan* plan, std::uint32_t self,
                   PublishFn publish) {
  for (const auto& name : scenario.nodes) {
    rep.node_ids[name] = rep.net.add_node(name);
  }

  for (const auto& link : scenario.links) {
    SchedulerConfig sc;
    sc.sdp = link.sdp;
    sc.link_capacity = link.capacity;
    sc.burst = link.burst;
    const LinkId id =
        link.from.empty()
            ? rep.net.add_link(link.kind, sc, link.capacity, link.name)
            : rep.net.add_edge(rep.node_ids.at(link.from),
                               rep.node_ids.at(link.to), link.kind, sc,
                               link.capacity, link.name);
    if (link.buffer > 0) rep.net.make_lossy(id, link.buffer);
    rep.link_ids[link.name] = id;
    rep.max_classes = std::max(
        rep.max_classes, static_cast<std::uint32_t>(link.sdp.size()));
  }

  rep.samples.assign(scenario.routes.size(),
                     std::vector<SampleSet>(rep.max_classes));

  for (std::size_t r = 0; r < scenario.routes.size(); ++r) {
    const auto& route = scenario.routes[r];
    const auto handler = [&rep, warmup, r](const Packet& p, SimTime now) {
      ++rep.total_exits;
      if (now >= warmup && p.cls < rep.max_classes) {
        rep.samples[r][p.cls].add(p.cum_queueing);
      }
      for (RpcWorkload* wl : rep.flow_dispatch[p.route]) {
        wl->on_route_exit(p, now);
      }
    };
    if (route.from.empty()) {
      std::vector<LinkId> path;
      for (const auto& name : route.links) {
        path.push_back(rep.link_ids.at(name));
      }
      rep.route_ids[route.name] = rep.net.add_route(path, handler);
    } else {
      rep.route_ids[route.name] = rep.net.add_route_between(
          rep.node_ids.at(route.from), rep.node_ids.at(route.to), handler);
    }
  }

  // Reverse routes for flows without an explicit reverse= (one per forward
  // route, shared between workloads). Their exits count toward total_exits
  // but carry no per-route stats row.
  const auto reverse_handler = [&rep](const Packet& p, SimTime now) {
    ++rep.total_exits;
    for (RpcWorkload* wl : rep.flow_dispatch[p.route]) {
      wl->on_route_exit(p, now);
    }
  };
  std::map<std::string, RouteId> auto_reverse;
  for (const auto& f : scenario.flows) {
    const RouteId forward = rep.route_ids.at(f.route);
    RouteId reverse;
    if (!f.reverse.empty()) {
      reverse = rep.route_ids.at(f.reverse);
    } else {
      const auto it = auto_reverse.find(f.route);
      if (it != auto_reverse.end()) {
        reverse = it->second;
      } else {
        const ScenarioRoute* route = find_route(scenario, f.route);
        PDS_REQUIRE(route != nullptr && !route->from.empty());
        reverse = rep.net.add_route_between(rep.node_ids.at(route->to),
                                            rep.node_ids.at(route->from),
                                            reverse_handler);
        auto_reverse.emplace(f.route, reverse);
      }
    }
    rep.flow_routes.emplace_back(forward, reverse);
  }

  const bool sharded = plan != nullptr && plan->shards > 1;
  if (sharded) {
    PDS_REQUIRE(plan->route_paths.size() == rep.net.num_routes());
    ShardBinding binding;
    binding.self = self;
    binding.link_owner = plan->part.link_owner;
    binding.route_exit_shard = plan->route_exit;
    binding.publish = std::move(publish);
    rep.net.bind_shard(std::move(binding));
  }
  const auto owns_route = [plan, self, sharded](RouteId route) {
    return !sharded ||
           plan->part.link_owner[plan->route_paths[route].front()] == self;
  };

  const auto make_gaps = [](const ScenarioSource& src) {
    return src.pareto_alpha > 0.0 ? pareto_gaps(src.pareto_alpha, src.gap)
                                  : exponential_gaps(src.gap);
  };

  // Rng split order: every source in file order, then every workload in
  // file order — adding flows to a scenario never perturbs the packet
  // streams of its existing sources. Sharded runs construct (and split for)
  // every source on every replica to keep this order, then start only the
  // owned ones.
  for (const auto& src : scenario.sources) {
    const RouteId route = rep.route_ids.at(src.route);
    Network& net = rep.net;
    const auto handler = [&net, route](Packet p) {
      net.inject(std::move(p), route);
    };
    const bool owned = owns_route(route);
    switch (src.kind) {
      case ScenarioSourceKind::kRenewal:
        rep.renewals.push_back(std::make_unique<RenewalSource>(
            rep.sim, rep.ids, src.cls, make_gaps(src),
            fixed_size(src.size_bytes), rep.master.split(), handler));
        rep.renewal_started.push_back(owned);
        if (owned) rep.renewals.back()->start(src.start);
        break;
      case ScenarioSourceKind::kMix:
        rep.mixes.push_back(std::make_unique<ClassMixSource>(
            rep.sim, rep.ids, src.fractions, make_gaps(src),
            fixed_size(src.size_bytes), rep.master.split(), handler));
        rep.mix_started.push_back(owned);
        if (owned) rep.mixes.back()->start(src.start);
        break;
      case ScenarioSourceKind::kCbr:
        rep.cbrs.push_back(std::make_unique<CbrFlowSource>(
            rep.sim, rep.ids, src.cls, kNoFlow - 1, src.count, src.size_bytes,
            src.interval, handler));
        if (owned) rep.cbrs.back()->start(src.start);
        break;
    }
  }

  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    const auto& f = scenario.flows[i];
    RpcConfig rc;
    rc.cls = f.cls;
    rc.users = options.users.value_or(f.users);
    rc.request_packets = f.request_packets;
    rc.response_packets = f.response_packets;
    rc.size_bytes = f.size_bytes;
    rc.think_mean = f.think_mean;
    rc.deadline = f.deadline;
    rc.rto = f.rto;
    rc.max_retries = f.max_retries;
    rc.backoff = f.backoff;
    rc.rto_cap = f.rto_cap;
    rc.throttle_tokens = f.throttle_tokens;
    rc.throttle_ratio = f.throttle_ratio;
    rep.workloads.push_back(std::make_unique<RpcWorkload>(
        rep.sim, rep.net, rep.ids, rep.flow_ids, rep.flow_routes[i].first,
        rep.flow_routes[i].second, rc, rep.master.split()));
    rep.workloads.back()->set_warmup(warmup);
  }
  rep.flow_dispatch.assign(rep.net.num_routes(), {});
  for (std::size_t i = 0; i < rep.workloads.size(); ++i) {
    rep.flow_dispatch[rep.flow_routes[i].first].push_back(
        rep.workloads[i].get());
    if (rep.flow_routes[i].second != rep.flow_routes[i].first) {
      rep.flow_dispatch[rep.flow_routes[i].second].push_back(
          rep.workloads[i].get());
    }
  }
  // Workloads (and their closed-loop state machines) live on shard 0.
  if (!sharded || self == 0) {
    for (std::size_t i = 0; i < rep.workloads.size(); ++i) {
      rep.workloads[i]->start(scenario.flows[i].start);
    }
  }

  // Fault and control plans are clock-driven, so arming them on every
  // replica makes the episodes fire identically everywhere; each episode
  // only has observable effect on the links the replica owns (the others
  // carry no traffic).
  if (!options.fault_plan.empty()) {
    rep.injector = std::make_unique<FaultInjector>(
        rep.sim, parse_fault_plan(options.fault_plan));
    attach_network(*rep.injector, rep.net);
    rep.injector->arm();
  }
  if (!options.control_plan.empty()) {
    rep.control = std::make_unique<ControlInjector>(
        rep.sim, parse_control_plan(options.control_plan));
    attach_network(*rep.control, rep.net);
    rep.control->arm();
  }
}

// Stops the open-loop sources that were started on this replica (the serial
// path's post-run stop, applied per shard).
void stop_sources(Replica& rep) {
  for (std::size_t i = 0; i < rep.renewals.size(); ++i) {
    if (rep.renewal_started[i]) rep.renewals[i]->stop();
  }
  for (std::size_t i = 0; i < rep.mixes.size(); ++i) {
    if (rep.mix_started[i]) rep.mixes[i]->stop();
  }
}

// Assembles the ScenarioReport from the replica set. Serial runs pass
// plan == nullptr and a single replica; sharded runs read each figure from
// the one shard where it accumulated (exit shard for route stats, owning
// shard for link stats, shard 0 for workloads and injector counters), so
// the assembled report is the serial one, field for field.
void fill_report(ScenarioReport& report, const Scenario& scenario,
                 const ScenarioPlan* plan, Replica* const* replicas) {
  Replica& home = *replicas[0];
  const std::uint32_t shards = plan != nullptr ? plan->shards : 1;
  for (std::uint32_t s = 0; s < shards; ++s) {
    report.total_exits += replicas[s]->total_exits;
  }

  for (std::size_t r = 0; r < scenario.routes.size(); ++r) {
    Replica& ex = plan != nullptr ? *replicas[plan->route_exit[r]] : home;
    for (ClassId c = 0; c < home.max_classes; ++c) {
      const auto& set = ex.samples[r][c];
      if (set.empty()) continue;
      report.route_stats.push_back(ScenarioReport::RouteClassStats{
          scenario.routes[r].name, c, set.count(), set.mean(),
          set.percentile(95.0)});
    }
  }
  for (const auto& link : scenario.links) {
    const LinkId id = home.link_ids.at(link.name);
    const Network& net =
        plan != nullptr ? replicas[plan->part.link_owner[id]]->net : home.net;
    ScenarioReport::LinkStats ls;
    ls.link = link.name;
    ls.sched = to_string(link.kind);
    ls.utilization = net.utilization(id);
    ls.packets_sent = net.link(id).packets_sent();
    ls.fault_drops = net.link(id).fault_drops();
    if (const LossyLink* lossy = net.lossy(id)) {
      ls.burst_drops = lossy->burst_drops();
      for (ClassId c = 0; c < net.link(id).scheduler().num_classes(); ++c) {
        ls.buffer_drops += lossy->drops(c);
      }
    }
    ls.control_drops = net.link(id).drain_drops() + net.link(id).shed_drops();
    report.fault_drops += ls.fault_drops;
    report.shed_drops += net.link(id).shed_drops();
    report.drain_drops += net.link(id).drain_drops();
    report.link_stats.push_back(std::move(ls));
  }
  for (std::size_t i = 0; i < home.workloads.size(); ++i) {
    const auto& st = home.workloads[i]->stats();
    ScenarioReport::FlowStats fs;
    fs.route = scenario.flows[i].route;
    fs.cls = scenario.flows[i].cls;
    fs.users = home.workloads[i]->config().users;
    fs.issued = st.issued;
    fs.completed = st.completed;
    fs.failed = st.failed;
    fs.retries = st.retries;
    fs.throttled = st.throttled;
    if (!st.fct.empty()) {
      fs.fct_mean = st.fct.mean();
      const auto q = st.fct.percentiles({50.0, 95.0, 99.0});
      fs.fct_p50 = q[0];
      fs.fct_p95 = q[1];
      fs.fct_p99 = q[2];
    }
    fs.slo_attainment = st.slo_attainment();
    fs.deadline = scenario.flows[i].deadline;
    report.flow_stats.push_back(std::move(fs));
  }
  if (home.injector) {
    report.faulted = true;
    report.fault_episodes_scheduled = home.injector->scheduled_episodes();
    report.fault_episodes = home.injector->episodes_completed();
  }
  if (home.control) {
    report.controlled = true;
    report.control_episodes_scheduled = home.control->scheduled_episodes();
    report.control_episodes = home.control->episodes_completed();
    report.control_retunes = home.control->retunes_applied();
    report.control_swaps = home.control->swaps_applied();
    report.control_class_changes = home.control->class_changes_applied();
    report.control_sheds = home.control->sheds_applied();
  }
}

// A packet staged for delivery on a shard, tagged with its deterministic
// merge key: (timestamp, source shard, per-channel sequence).
struct RemoteMsg {
  SimTime ts = 0.0;
  std::uint32_t src = 0;
  std::uint64_t seq = 0;
  Packet p;
};

bool remote_before(const RemoteMsg& a, const RemoteMsg& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}

// Per-shard runtime state the engine hooks close over: the replica plus the
// staged inbox. `pos` marks the applied prefix; the tail past it is sorted
// at the top of every window (new splices land unsorted at the back).
struct ShardRuntime {
  Replica* rep = nullptr;
  std::vector<RemoteMsg> inbox;
  std::size_t pos = 0;
};

void sort_inbox_tail(ShardRuntime& rt) {
  if (rt.pos == rt.inbox.size()) {
    rt.inbox.clear();
    rt.pos = 0;
  }
  std::sort(rt.inbox.begin() + static_cast<std::ptrdiff_t>(rt.pos),
            rt.inbox.end(), remote_before);
}

// One conservative window: interleave staged messages (in merge order) with
// local events, everything strictly below `bound`. A message at timestamp t
// applies after every local event below t — its serial counterpart is the
// departure event of a transmission that completed at exactly t.
std::uint64_t run_shard_window(ShardRuntime& rt, SimTime bound) {
  Replica& rep = *rt.rep;
  sort_inbox_tail(rt);
  const std::uint64_t before = rep.sim.executed_events();
  std::uint64_t applied = 0;
  while (rt.pos < rt.inbox.size() && rt.inbox[rt.pos].ts < bound) {
    RemoteMsg& m = rt.inbox[rt.pos];
    rep.sim.run_before(m.ts);
    rep.sim.advance_to(m.ts);
    rep.net.apply_remote(std::move(m.p));
    ++rt.pos;
    ++applied;
  }
  rep.sim.run_before(bound);
  return applied + (rep.sim.executed_events() - before);
}

// Final phase: apply messages up to and including the horizon (discarding
// later ones — their serial counterparts never executed) and drain local
// events through the horizon inclusively, leaving the clock there.
std::uint64_t finish_shard(ShardRuntime& rt, SimTime horizon) {
  Replica& rep = *rt.rep;
  sort_inbox_tail(rt);
  const std::uint64_t before = rep.sim.executed_events();
  std::uint64_t applied = 0;
  while (rt.pos < rt.inbox.size() && rt.inbox[rt.pos].ts <= horizon) {
    RemoteMsg& m = rt.inbox[rt.pos];
    rep.sim.run_before(m.ts);
    rep.sim.advance_to(m.ts);
    rep.net.apply_remote(std::move(m.p));
    ++rt.pos;
    ++applied;
  }
  rt.pos = rt.inbox.size();
  rep.sim.run_until(horizon);
  return applied + (rep.sim.executed_events() - before);
}

// Diagnostic dequeue sweep over one shard's owned links, batched through
// scan::scan_links: how many owned links are backlogged right now (and what
// each would dequeue). Coordinator-side, between barriers; feeds the
// per-round PdesTrace spans and never touches simulation state.
struct BacklogSweep {
  std::vector<LinkId> links;          // owned links, ascending id
  std::vector<scan::Heads> heads;     // scratch
  std::vector<const double*> sdp;     // scratch
  std::vector<std::int32_t> winners;  // scratch
};

std::uint32_t sweep_backlog(Replica& rep, BacklogSweep& sweep) {
  sweep.heads.clear();
  sweep.sdp.clear();
  for (const LinkId id : sweep.links) {
    const auto* cb = dynamic_cast<const ClassBasedScheduler*>(
        &rep.net.link(id).scheduler());
    if (cb == nullptr) continue;
    sweep.heads.push_back(cb->heads());
    sweep.sdp.push_back(cb->weight_lanes().data());
  }
  if (sweep.heads.empty()) return 0;
  sweep.winners.resize(sweep.heads.size());
  return scan::scan_links(sweep.heads.data(), sweep.sdp.data(), rep.sim.now(),
                          static_cast<std::uint32_t>(sweep.heads.size()),
                          scan::Backend::kAuto, sweep.winners.data());
}

ScenarioReport run_scenario_sharded(const Scenario& scenario,
                                    const ScenarioOptions& options,
                                    double until, double warmup) {
  PDS_CHECK(options.metrics_out.empty(),
            "metrics_out is not available with shards > 1");
  PDS_CHECK(options.max_events == 0 && options.max_wall_seconds == 0.0,
            "run budgets are not available with shards > 1");
  const std::uint32_t n = options.shards;
  const ScenarioPlan plan =
      plan_scenario(scenario, n, options.partition);

  // channels[src * n + dst]: single-producer (shard src, inside its
  // window), single-consumer (the coordinator, between barriers).
  std::vector<ShardChannel<Packet>> channels(
      static_cast<std::size_t>(n) * n);
  std::vector<ShardRuntime> runtimes(n);
  std::vector<std::unique_ptr<Replica>> replicas;
  const std::uint64_t seed = options.seed.value_or(scenario.run.seed);
  for (std::uint32_t s = 0; s < n; ++s) {
    replicas.push_back(std::make_unique<Replica>(seed));
    PublishFn publish = [&channels, n, s](std::uint32_t dst, SimTime ts,
                                          Packet&& p) {
      PDS_REQUIRE(dst < n && dst != s);
      channels[static_cast<std::size_t>(s) * n + dst].publish(ts,
                                                              std::move(p));
    };
    build_replica(*replicas.back(), scenario, options, warmup, &plan, s,
                  std::move(publish));
    runtimes[s].rep = replicas.back().get();
  }

  std::vector<ShardEngine::Shard> shards(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    ShardRuntime& rt = runtimes[s];
    shards[s].next_time = [&rt] {
      SimTime next = rt.rep->sim.next_time();
      for (std::size_t i = rt.pos; i < rt.inbox.size(); ++i) {
        next = std::min(next, rt.inbox[i].ts);
      }
      return next;
    };
    shards[s].run_window = [&rt](SimTime bound) {
      return run_shard_window(rt, bound);
    };
    shards[s].finish = [&rt](SimTime horizon) {
      return finish_shard(rt, horizon);
    };
  }

  ShardEngine engine(std::move(shards), plan.lookahead, until);
  std::vector<ShardMessage<Packet>> scratch;
  engine.set_splice([&channels, &runtimes, n, &scratch] {
    ShardEngine::SpliceResult result;
    for (std::uint32_t src = 0; src < n; ++src) {
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        auto& ch = channels[static_cast<std::size_t>(src) * n + dst];
        if (ch.pending() == 0) continue;
        scratch.clear();
        const std::size_t moved = ch.splice_into(scratch);
        result.moved += moved;
        result.max_batch =
            std::max<std::uint64_t>(result.max_batch, moved);
        auto& inbox = runtimes[dst].inbox;
        for (auto& m : scratch) {
          inbox.push_back(RemoteMsg{m.ts, src, m.seq, std::move(m.payload)});
        }
      }
    }
    return result;
  });
  if (options.shard_executor) engine.set_executor(options.shard_executor);

  std::vector<BacklogSweep> sweeps(n);
  std::vector<std::uint32_t> backlogged(n, 0);
  if (options.pdes_trace != nullptr) {
    PdesTrace* trace = options.pdes_trace;
    PDS_CHECK(trace->shards() == n, "PdesTrace shard count mismatch");
    for (LinkId id = 0; id < plan.part.link_owner.size(); ++id) {
      sweeps[plan.part.link_owner[id]].links.push_back(id);
    }
    engine.set_round_hook([trace, &runtimes, &sweeps, &backlogged, n](
                              std::uint64_t round,
                              const std::vector<SimTime>& bounds,
                              const std::vector<std::uint64_t>& processed) {
      for (std::uint32_t s = 0; s < n; ++s) {
        backlogged[s] = sweep_backlog(*runtimes[s].rep, sweeps[s]);
      }
      trace->record_round(round, bounds, processed, backlogged);
    });
  }

  const PdesStats stats = engine.run();
  for (auto& rep : replicas) stop_sources(*rep);
  if (options.pdes_stats != nullptr) *options.pdes_stats = stats;

  ScenarioReport report;
  std::vector<Replica*> ptrs;
  ptrs.reserve(replicas.size());
  for (auto& r : replicas) ptrs.push_back(r.get());
  fill_report(report, scenario, &plan, ptrs.data());
  return report;
}

}  // namespace

ScenarioReport run_scenario(const Scenario& scenario,
                            const ScenarioOptions& options) {
  PDS_CHECK(options.horizon_scale > 0.0,
            "horizon scale must be positive");
  PDS_CHECK(options.shards >= 1, "shards must be at least 1");
  const double until = scenario.run.until * options.horizon_scale;
  const double warmup = scenario.run.warmup * options.horizon_scale;

  if (options.shards > 1) {
    return run_scenario_sharded(scenario, options, until, warmup);
  }

  Replica rep(options.seed.value_or(scenario.run.seed));
  build_replica(rep, scenario, options, warmup, nullptr, 0, {});

  MetricsRegistry registry;
  std::unique_ptr<MetricsSnapshotWriter> metrics;
  if (!options.metrics_out.empty()) {
    PDS_CHECK(options.metrics_window > 0.0,
              "metrics window must be positive");
    metrics = std::make_unique<MetricsSnapshotWriter>(
        rep.sim, registry, options.metrics_out, options.metrics_window,
        [&](SimTime) {
          for (const auto& [name, id] : rep.link_ids) {
            registry.gauge("link." + name + ".util")
                .set(rep.net.utilization(id));
            registry.gauge("link." + name + ".sent")
                .set(static_cast<double>(rep.net.link(id).packets_sent()));
          }
          for (std::size_t i = 0; i < rep.workloads.size(); ++i) {
            const auto& st = rep.workloads[i]->stats();
            const std::string p = "flows.f" + std::to_string(i) + ".";
            registry.gauge(p + "completed")
                .set(static_cast<double>(st.completed));
            registry.gauge(p + "failed").set(static_cast<double>(st.failed));
            registry.gauge(p + "retries")
                .set(static_cast<double>(st.retries));
            registry.gauge(p + "waiting")
                .set(static_cast<double>(rep.workloads[i]->waiting_users()));
            registry.gauge(p + "slo").set(st.slo_attainment());
          }
        });
  }

  if (options.max_events > 0 || options.max_wall_seconds > 0.0) {
    rep.sim.set_budget(options.max_events, options.max_wall_seconds);
  }

  rep.sim.run_until(until);
  stop_sources(rep);

  ScenarioReport report;
  if (metrics) {
    metrics->flush();
    report.metrics_snapshots = metrics->snapshots_written();
  }
  Replica* replicas[] = {&rep};
  fill_report(report, scenario, nullptr, replicas);
  return report;
}

ScenarioReport run_scenario(const std::string& text,
                            const ScenarioOptions& options) {
  return run_scenario(parse_scenario(text), options);
}

ScenarioReport run_scenario(const std::string& text,
                            std::optional<std::uint64_t> seed_override) {
  ScenarioOptions options;
  options.seed = seed_override;
  return run_scenario(text, options);
}

RunReport scenario_run_report(const Scenario& scenario,
                              const ScenarioReport& report,
                              std::uint64_t seed_used) {
  RunReport doc("scenario");
  doc.set_section("scenario",
                  Json::object()
                      .set("nodes", scenario.nodes.size())
                      .set("links", scenario.links.size())
                      .set("routes", scenario.routes.size())
                      .set("sources", scenario.sources.size())
                      .set("flows", scenario.flows.size())
                      .set("until", scenario.run.until)
                      .set("warmup", scenario.run.warmup)
                      .set("seed", seed_used)
                      .set("total_exits", report.total_exits));
  Json routes = Json::array();
  for (const auto& rs : report.route_stats) {
    routes.push(Json::object()
                    .set("route", rs.route)
                    .set("class", paper_class_label(rs.cls))
                    .set("packets", rs.packets)
                    .set("mean_delay", rs.mean_delay)
                    .set("p95_delay", rs.p95_delay));
  }
  doc.set_section("routes", std::move(routes));
  Json links = Json::array();
  for (const auto& ls : report.link_stats) {
    links.push(Json::object()
                   .set("link", ls.link)
                   .set("sched", ls.sched)
                   .set("utilization", ls.utilization)
                   .set("packets_sent", ls.packets_sent)
                   .set("fault_drops", ls.fault_drops)
                   .set("burst_drops", ls.burst_drops)
                   .set("buffer_drops", ls.buffer_drops)
                   .set("control_drops", ls.control_drops));
  }
  doc.set_section("links", std::move(links));
  Json flows = Json::array();
  for (const auto& fs : report.flow_stats) {
    flows.push(Json::object()
                   .set("route", fs.route)
                   .set("class", paper_class_label(fs.cls))
                   .set("users", fs.users)
                   .set("issued", fs.issued)
                   .set("completed", fs.completed)
                   .set("failed", fs.failed)
                   .set("retries", fs.retries)
                   .set("throttled", fs.throttled)
                   .set("fct_mean", fs.fct_mean)
                   .set("fct_p50", fs.fct_p50)
                   .set("fct_p95", fs.fct_p95)
                   .set("fct_p99", fs.fct_p99)
                   .set("slo_attainment", fs.slo_attainment)
                   .set("deadline", fs.deadline));
  }
  doc.set_section("flows", std::move(flows));
  if (report.faulted) {
    doc.set_section("faults",
                    Json::object()
                        .set("scheduled", report.fault_episodes_scheduled)
                        .set("completed", report.fault_episodes)
                        .set("drops", report.fault_drops));
  }
  if (report.controlled) {
    doc.set_section("control",
                    Json::object()
                        .set("scheduled", report.control_episodes_scheduled)
                        .set("completed", report.control_episodes)
                        .set("retunes", report.control_retunes)
                        .set("swaps", report.control_swaps)
                        .set("class_changes", report.control_class_changes)
                        .set("sheds", report.control_sheds)
                        .set("shed_drops", report.shed_drops)
                        .set("drain_drops", report.drain_drops));
  }
  return doc;
}

}  // namespace pds
