// Scenario files: declarative experiment descriptions for the Network
// substrate (the role ns-2 OTcl scripts played for the paper's Study B).
//
// A scenario is a line-oriented text format; '#' starts a comment.
//
//   # --- topology (graph) layer ---
//   node  <name>
//   edge  <name> from=<node> to=<node> capacity=<bytes/tu>
//         sched=<wtp|bpr|...> sdp=<s1,s2,...> [burst=<k>] [buffer=<pkts>]
//   topology line     n=<k>            capacity=.. sched=.. sdp=.. [prefix=<p>]
//   topology ring     n=<k>            capacity=.. sched=.. sdp=.. [prefix=<p>]
//   topology fat_tree k=<even k>       capacity=.. sched=.. sdp=.. [prefix=<p>]
//   topology two_tier cores=<n> pops=<m> capacity=.. sched=.. sdp=.. [prefix=<p>]
//
//   # --- links and routes ---
//   link  <name> capacity=<bytes/tu> sched=<wtp|bpr|...> sdp=<s1,s2,...>
//         [burst=<k>] [buffer=<pkts>]
//   route <name> <link> [<link> ...]          # explicit link path
//   route <name> from=<node> to=<node>        # static shortest-path routing
//
//   # --- traffic: open-loop packet sources ---
//   source renewal <route> class=<c> gap=<mean tu> size=<bytes>
//          [pareto=<alpha> | poisson] [start=<t>]
//   source mix <route> fractions=<f1,f2,...> gap=<mean> size=<bytes>
//          [pareto=<alpha> | poisson] [start=<t>]
//   source cbr <route> class=<c> count=<n> size=<bytes> interval=<tu>
//          [start=<t>]
//
//   # --- traffic: closed-loop RPC users (net/flows.hpp) ---
//   flows <route> class=<c> users=<n> size=<bytes> think=<mean tu>
//         [request=<k>] [response=<k>] [deadline=<tu>]
//         [rto=<tu>] [retries=<n>] [backoff=<m>] [rto_cap=<tu>]
//         [throttle=<tokens>] [throttle_ratio=<r>]
//         [reverse=<route>] [start=<t>]
//
//   run   until=<t> [warmup=<t>] [seed=<n>]
//
// Directives reference only names declared on EARLIER lines (the grammar is
// single-pass): an edge needs its nodes, a route its links or nodes, a
// `flows` its route. `topology` expands to nodes plus one directed link per
// direction of every generated edge, named "<from>><to>"; generated names
// collide with manual ones like any duplicate. A routed `route` uses the
// minimum-hop path over the edges declared so far, ties broken by the
// lexicographically smallest link-id (= declaration-order) sequence — see
// the routing determinism rule in net/topology.hpp. `flows` needs a
// reverse direction for the responses: either an explicit `reverse=`
// route, or (for from=/to= routes) the auto-computed shortest path back.
//
// parse_scenario validates structure (names, references, parameter sets,
// reachability) and throws std::invalid_argument with the offending line
// number; run_scenario executes it and reports per-route per-class
// end-to-end queueing delays, per-link utilization, and — when the
// scenario declares flows — per-workload flow-completion-time percentiles
// and SLO attainment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dsim/shard.hpp"
#include "net/partition.hpp"
#include "sched/factory.hpp"

namespace pds {

class RunReport;

enum class ScenarioSourceKind { kRenewal, kMix, kCbr };

struct ScenarioLink {
  std::string name;
  double capacity = 0.0;
  SchedulerKind kind = SchedulerKind::kWtp;
  std::vector<double> sdp;
  // Packets drained per scheduler decision (burst= option; 1 = classic
  // single-packet service, which keeps traces byte-identical).
  std::uint32_t burst = 1;
  // Finite shared packet buffer (buffer= option). 0 — the default — keeps
  // the paper's lossless link; > 0 wraps the link in a drop-tail LossyLink
  // (Network::make_lossy), which also lets fault `loss` episodes target it.
  std::uint64_t buffer = 0;
  // Node binding for graph links (edge/topology directives); both empty for
  // unbound `link` directives.
  std::string from;
  std::string to;
};

struct ScenarioRoute {
  std::string name;
  std::vector<std::string> links;  // explicit form; empty when routed
  std::string from;                // routed form; empty when explicit
  std::string to;
};

struct ScenarioSource {
  ScenarioSourceKind kind = ScenarioSourceKind::kRenewal;
  std::string route;
  ClassId cls = 0;                 // renewal / cbr
  std::vector<double> fractions;   // mix
  double gap = 0.0;                // renewal / mix mean interarrival
  std::uint32_t size_bytes = 0;
  double pareto_alpha = 0.0;       // 0 => poisson
  std::uint32_t count = 0;         // cbr
  double interval = 0.0;           // cbr
  double start = 0.0;
};

// One `flows` directive: a closed-loop RPC workload (see net/flows.hpp for
// the model and field semantics).
struct ScenarioFlows {
  std::string route;
  std::string reverse;  // empty => auto shortest path to->from
  double start = 0.0;
  ClassId cls = 0;
  std::uint32_t users = 1;
  std::uint32_t request_packets = 1;
  std::uint32_t response_packets = 1;
  std::uint32_t size_bytes = 0;
  double think_mean = 0.0;
  double deadline = 0.0;
  double rto = 0.0;
  std::uint32_t max_retries = 0;
  double backoff = 2.0;
  double rto_cap = 0.0;
  double throttle_tokens = 0.0;
  double throttle_ratio = 0.1;
};

struct ScenarioRun {
  double until = 0.0;
  double warmup = 0.0;
  std::uint64_t seed = 1;
};

struct Scenario {
  std::vector<std::string> nodes;
  std::vector<ScenarioLink> links;
  std::vector<ScenarioRoute> routes;
  std::vector<ScenarioSource> sources;
  std::vector<ScenarioFlows> flows;
  ScenarioRun run;
};

Scenario parse_scenario(const std::string& text);

struct ScenarioReport {
  struct RouteClassStats {
    std::string route;
    ClassId cls;
    std::uint64_t packets = 0;
    double mean_delay = 0.0;   // end-to-end queueing, time units
    double p95_delay = 0.0;
  };
  struct LinkStats {
    std::string link;
    std::string sched;               // scheduler kind ("wtp", "bpr", ...)
    double utilization = 0.0;
    std::uint64_t packets_sent = 0;
    std::uint64_t fault_drops = 0;   // arrivals dropped during outages
    std::uint64_t burst_drops = 0;   // lossy-link burst loss episodes
    std::uint64_t buffer_drops = 0;  // drop-tail overflow (buffer= links)
    std::uint64_t control_drops = 0; // class drains + overload sheds
  };
  // One row per `flows` directive, in file order.
  struct FlowStats {
    std::string route;
    ClassId cls = 0;
    std::uint32_t users = 0;
    std::uint64_t issued = 0;      // all RPCs started (scored or not)
    std::uint64_t completed = 0;   // scored (post-warmup) completions
    std::uint64_t failed = 0;      // scored failures (retries gave up)
    std::uint64_t retries = 0;
    std::uint64_t throttled = 0;   // retries suppressed by the token budget
    double fct_mean = 0.0;         // 0 when no scored completion
    double fct_p50 = 0.0;
    double fct_p95 = 0.0;
    double fct_p99 = 0.0;
    double slo_attainment = 1.0;   // over scored RPCs
    double deadline = 0.0;
  };
  std::vector<RouteClassStats> route_stats;  // only (route,class) with data
  std::vector<LinkStats> link_stats;
  std::vector<FlowStats> flow_stats;
  std::uint64_t total_exits = 0;
  bool faulted = false;                      // a fault plan was armed
  std::uint64_t fault_episodes_scheduled = 0;
  std::uint64_t fault_episodes = 0;          // completed
  std::uint64_t fault_drops = 0;             // summed over links
  std::uint64_t metrics_snapshots = 0;
  bool controlled = false;                   // a control plan was armed
  std::uint64_t control_episodes_scheduled = 0;
  std::uint64_t control_episodes = 0;        // completed
  std::uint64_t control_retunes = 0;
  std::uint64_t control_swaps = 0;
  std::uint64_t control_class_changes = 0;
  std::uint64_t control_sheds = 0;
  std::uint64_t shed_drops = 0;              // summed over links
  std::uint64_t drain_drops = 0;             // summed over links
};

// Execution knobs beyond the file itself (all optional).
struct ScenarioOptions {
  std::optional<std::uint64_t> seed;   // replaces the file's seed
  std::string fault_plan;              // fault-plan grammar text; "" = none
  std::string control_plan;            // control-plan grammar; "" = none
  std::optional<std::uint32_t> users;  // override users= of every flows
  double horizon_scale = 1.0;          // scales until/warmup (smoke runs)
  std::uint64_t max_events = 0;        // Simulator event budget; 0 = off
  double max_wall_seconds = 0.0;       // wall budget; 0 = off
  std::string metrics_out;             // windowed metrics series (.csv/.jsonl)
  double metrics_window = 5000.0;      // tu per metrics window

  // Sharded kernel (dsim/shard.hpp, net/partition.hpp). shards > 1 runs the
  // scenario as a space-partitioned conservative-PDES simulation with one
  // Network replica per shard; the report is byte-identical to shards == 1.
  // Incompatible with metrics_out and run budgets (which observe one global
  // event loop). `shard_executor` runs the parallel windows — exec(count,
  // body) must call body(i) for every i and return after all complete;
  // null means a serial loop (still byte-identical, useful for tests and
  // single-core hosts). `pdes_stats`, when set, receives the protocol
  // counters; `pdes_trace`, when set, records per-shard round spans and
  // pdes.* metrics (obs/pdes_trace.hpp). Neither ever feeds the report.
  std::uint32_t shards = 1;
  PartitionMethod partition = PartitionMethod::kGreedy;
  std::function<void(std::size_t, const std::function<void(std::size_t)>&)>
      shard_executor;
  PdesStats* pdes_stats = nullptr;
  class PdesTrace* pdes_trace = nullptr;
};

// Parses and executes; `seed_override`, when set, replaces the file's seed.
ScenarioReport run_scenario(const std::string& text,
                            std::optional<std::uint64_t> seed_override = {});
// Full-options variants (the string form parses first).
ScenarioReport run_scenario(const std::string& text,
                            const ScenarioOptions& options);
ScenarioReport run_scenario(const Scenario& scenario,
                            const ScenarioOptions& options);

// Unified run-report document (pds.run_report/1, kind "scenario") with
// scenario/routes/links/flows sections plus faults/control when the
// corresponding plan was armed. Deterministic: derived from simulation
// state only.
RunReport scenario_run_report(const Scenario& scenario,
                              const ScenarioReport& report,
                              std::uint64_t seed_used);

}  // namespace pds
