// Scenario files: declarative experiment descriptions for the Network
// substrate (the role ns-2 OTcl scripts played for the paper's Study B).
//
// A scenario is a line-oriented text format; '#' starts a comment.
//
//   link  <name> capacity=<bytes/tu> sched=<wtp|bpr|...> sdp=<s1,s2,...>
//   route <name> <link> [<link> ...]
//   source renewal <route> class=<c> gap=<mean tu> size=<bytes>
//          [pareto=<alpha> | poisson] [start=<t>]
//   source mix <route> fractions=<f1,f2,...> gap=<mean> size=<bytes>
//          [pareto=<alpha> | poisson] [start=<t>]
//   source cbr <route> class=<c> count=<n> size=<bytes> interval=<tu>
//          [start=<t>]
//   run   until=<t> [warmup=<t>] [seed=<n>]
//
// Example (a Y merge):
//
//   link accessA capacity=39.375 sched=wtp sdp=1,2,4,8
//   link backbone capacity=39.375 sched=wtp sdp=1,2,4,8
//   route pathA accessA backbone
//   source renewal pathA class=0 gap=30 size=441 pareto=1.9
//   run until=2e5 warmup=2e4 seed=7
//
// parse_scenario validates structure (names, references, parameter sets)
// and throws std::invalid_argument with the offending line number;
// run_scenario executes it and reports per-route per-class end-to-end
// queueing delays and per-link utilization.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sched/factory.hpp"

namespace pds {

enum class ScenarioSourceKind { kRenewal, kMix, kCbr };

struct ScenarioLink {
  std::string name;
  double capacity = 0.0;
  SchedulerKind kind = SchedulerKind::kWtp;
  std::vector<double> sdp;
};

struct ScenarioRoute {
  std::string name;
  std::vector<std::string> links;
};

struct ScenarioSource {
  ScenarioSourceKind kind = ScenarioSourceKind::kRenewal;
  std::string route;
  ClassId cls = 0;                 // renewal / cbr
  std::vector<double> fractions;   // mix
  double gap = 0.0;                // renewal / mix mean interarrival
  std::uint32_t size_bytes = 0;
  double pareto_alpha = 0.0;       // 0 => poisson
  std::uint32_t count = 0;         // cbr
  double interval = 0.0;           // cbr
  double start = 0.0;
};

struct ScenarioRun {
  double until = 0.0;
  double warmup = 0.0;
  std::uint64_t seed = 1;
};

struct Scenario {
  std::vector<ScenarioLink> links;
  std::vector<ScenarioRoute> routes;
  std::vector<ScenarioSource> sources;
  ScenarioRun run;
};

Scenario parse_scenario(const std::string& text);

struct ScenarioReport {
  struct RouteClassStats {
    std::string route;
    ClassId cls;
    std::uint64_t packets = 0;
    double mean_delay = 0.0;   // end-to-end queueing, time units
    double p95_delay = 0.0;
  };
  struct LinkStats {
    std::string link;
    double utilization = 0.0;
    std::uint64_t packets_sent = 0;
  };
  std::vector<RouteClassStats> route_stats;  // only (route,class) with data
  std::vector<LinkStats> link_stats;
  std::uint64_t total_exits = 0;
};

// Parses and executes; `seed_override`, when set, replaces the file's seed.
ScenarioReport run_scenario(const std::string& text,
                            std::optional<std::uint64_t> seed_override = {});

}  // namespace pds
