#include "net/study_b.hpp"

#include <algorithm>
#include <memory>

#include "net/chain.hpp"
#include "stats/percentile.hpp"
#include "stats/running_stats.hpp"
#include "traffic/source.hpp"
#include "util/contracts.hpp"

namespace pds {

namespace {
// Higher-class delays this close to zero are excluded from ratio terms.
constexpr double kMinDenominatorSeconds = 1e-9;
}  // namespace

const std::vector<double>& study_b_percentiles() {
  static const std::vector<double> kPs{10, 20, 30, 40, 50,
                                       60, 70, 80, 90, 99};
  return kPs;
}

void StudyBConfig::validate() const {
  SchedulerConfig sc{sdp, 1.0, 0.875, 1500.0};
  sc.validate();
  PDS_CHECK(hops >= 1, "need at least one hop");
  PDS_CHECK(link_bandwidth_bps > 0.0, "bandwidth must be positive");
  PDS_CHECK(cross_sources_per_hop >= 1, "need cross traffic");
  PDS_CHECK(cross_mix.size() == sdp.size(), "cross mix / SDP size mismatch");
  PDS_CHECK(utilization > 0.0 && utilization < 1.0,
            "utilization must be in (0,1)");
  PDS_CHECK(pareto_alpha > 1.0, "Pareto shape must exceed 1");
  PDS_CHECK(flow_packets >= 1, "flows need at least one packet");
  PDS_CHECK(flow_rate_kbps > 0.0, "flow rate must be positive");
  PDS_CHECK(packet_bytes > 0, "packet size must be positive");
  PDS_CHECK(user_experiments >= 1, "need at least one experiment");
  PDS_CHECK(experiment_interval_s > 0.0, "interval must be positive");
  PDS_CHECK(warmup_s >= 0.0, "negative warmup");
}

StudyBResult run_study_b(const StudyBConfig& config) {
  config.validate();
  const std::uint32_t n = config.num_classes();
  const std::uint32_t flows_total = config.user_experiments * n;
  const double capacity = config.link_bandwidth_bps / 8.0;  // bytes/s

  // Load calibration: user flows load every link; cross traffic supplies
  // the rest of the target utilization, split evenly across the C sources.
  const double user_bytes_rate =
      static_cast<double>(n) * config.flow_packets * config.packet_bytes /
      config.experiment_interval_s;
  const double cross_bytes_rate =
      config.utilization * capacity - user_bytes_rate;
  PDS_CHECK(cross_bytes_rate > 0.0,
            "user flows alone exceed the target utilization");
  const double per_source_interarrival =
      static_cast<double>(config.packet_bytes) /
      (cross_bytes_rate / config.cross_sources_per_hop);

  // Inter-packet spacing inside a user flow (the paper's periodic flows).
  const double flow_gap = static_cast<double>(config.packet_bytes) * 8.0 /
                          (config.flow_rate_kbps * 1000.0);

  Simulator sim;
  PacketIdAllocator ids;
  Rng master(config.seed);

  SchedulerConfig sched_config;
  sched_config.sdp = config.sdp;
  sched_config.link_capacity = capacity;

  // Per-flow end-to-end delay samples (seconds).
  std::vector<SampleSet> flow_delays(flows_total);
  std::uint64_t user_exits = 0;

  ChainNetwork net(sim, config.hops, config.scheduler, sched_config, capacity,
                   [&](const Packet& p, SimTime) {
                     PDS_REQUIRE(p.flow < flows_total);
                     flow_delays[p.flow].add(p.cum_queueing);
                     ++user_exits;
                   });

  // Per-hop per-class means over all traffic after warmup.
  std::vector<std::vector<RunningStats>> hop_delays(
      config.hops, std::vector<RunningStats>(n));
  net.set_hop_observer([&](std::uint32_t hop, const Packet& p, SimTime wait,
                           SimTime now) {
    if (now >= config.warmup_s) hop_delays[hop][p.cls].add(wait);
  });

  // Cross traffic: C independent mix sources per hop.
  std::vector<std::unique_ptr<ClassMixSource>> cross;
  cross.reserve(config.hops * config.cross_sources_per_hop);
  for (std::uint32_t h = 0; h < config.hops; ++h) {
    for (std::uint32_t s = 0; s < config.cross_sources_per_hop; ++s) {
      cross.push_back(std::make_unique<ClassMixSource>(
          sim, ids, config.cross_mix,
          pareto_gaps(config.pareto_alpha, per_source_interarrival),
          fixed_size(config.packet_bytes), master.split(),
          [&net, h](Packet p) { net.inject_cross(h, std::move(p)); }));
      cross.back()->start(kTimeZero);
    }
  }

  // User experiments: at warmup + k*interval, N identical flows start, one
  // per class (the per-class twins emit packets at the same instants).
  std::vector<std::unique_ptr<CbrFlowSource>> flows;
  flows.reserve(flows_total);
  for (std::uint32_t k = 0; k < config.user_experiments; ++k) {
    for (ClassId c = 0; c < n; ++c) {
      const FlowId flow_id = k * n + c;
      flows.push_back(std::make_unique<CbrFlowSource>(
          sim, ids, c, flow_id, config.flow_packets, config.packet_bytes,
          flow_gap, [&net](Packet p) { net.inject_user(std::move(p)); }));
      flows.back()->start(config.warmup_s +
                          static_cast<double>(k) *
                              config.experiment_interval_s);
    }
  }

  // Run past the last emission, then cut the cross sources and drain so
  // every user packet exits.
  const double flow_duration =
      static_cast<double>(config.flow_packets - 1) * flow_gap;
  const double t_stop = config.warmup_s +
                        config.user_experiments *
                            config.experiment_interval_s +
                        flow_duration + 1.0;
  sim.run_until(t_stop);
  for (auto& s : cross) s->stop();
  sim.run();
  PDS_REQUIRE(user_exits ==
              static_cast<std::uint64_t>(flows_total) * config.flow_packets);

  StudyBResult result;
  result.experiments = config.user_experiments;

  // Per-flow percentiles, then the consistency scan and R_D.
  const auto& ps = study_b_percentiles();
  std::vector<std::vector<double>> pct(flows_total);
  for (FlowId f = 0; f < flows_total; ++f) {
    pct[f] = flow_delays[f].percentiles(ps);
  }

  double rd_sum = 0.0;
  std::uint64_t rd_terms = 0;
  for (std::uint32_t k = 0; k < config.user_experiments; ++k) {
    bool inconsistent = false;
    for (ClassId lo = 0; lo + 1 < n; ++lo) {
      for (ClassId hi = static_cast<ClassId>(lo + 1); hi < n; ++hi) {
        const auto& plo = pct[k * n + lo];
        const auto& phi = pct[k * n + hi];
        bool pair_bad = false;
        for (std::size_t q = 0; q < ps.size(); ++q) {
          if (phi[q] > plo[q] * (1.0 + 1e-12)) {
            pair_bad = true;
            result.worst_violation_s =
                std::max(result.worst_violation_s, phi[q] - plo[q]);
          }
        }
        if (pair_bad) {
          ++result.inconsistent_pairs;
          inconsistent = true;
        }
      }
      // R_D terms use successive pairs only.
      const auto& plo = pct[k * n + lo];
      const auto& phi = pct[k * n + lo + 1];
      for (std::size_t q = 0; q < ps.size(); ++q) {
        if (phi[q] < kMinDenominatorSeconds) {
          ++result.skipped_ratio_terms;
          continue;
        }
        rd_sum += plo[q] / phi[q];
        ++rd_terms;
      }
    }
    if (inconsistent) ++result.inconsistent_experiments;
  }
  result.rd = rd_terms > 0 ? rd_sum / static_cast<double>(rd_terms) : 0.0;

  result.mean_e2e_delay_per_class.assign(n, 0.0);
  for (ClassId c = 0; c < n; ++c) {
    RunningStats agg;
    for (std::uint32_t k = 0; k < config.user_experiments; ++k) {
      for (const double d : flow_delays[k * n + c].samples()) agg.add(d);
    }
    result.mean_e2e_delay_per_class[c] = agg.mean();
  }

  result.mean_utilization_per_hop.reserve(config.hops);
  for (std::uint32_t h = 0; h < config.hops; ++h) {
    result.mean_utilization_per_hop.push_back(net.link(h).busy_time() /
                                              sim.now());
  }

  result.per_hop_class_delay.assign(config.hops,
                                    std::vector<double>(n, 0.0));
  result.per_hop_rd.assign(config.hops, 0.0);
  for (std::uint32_t h = 0; h < config.hops; ++h) {
    double rd_sum_hop = 0.0;
    std::uint32_t rd_terms_hop = 0;
    for (ClassId c = 0; c < n; ++c) {
      if (hop_delays[h][c].count() > 0) {
        result.per_hop_class_delay[h][c] = hop_delays[h][c].mean();
      }
    }
    for (ClassId c = 0; c + 1 < n; ++c) {
      const double hi = result.per_hop_class_delay[h][c + 1];
      if (hi > 0.0) {
        rd_sum_hop += result.per_hop_class_delay[h][c] / hi;
        ++rd_terms_hop;
      }
    }
    if (rd_terms_hop > 0) {
      result.per_hop_rd[h] = rd_sum_hop / rd_terms_hop;
    }
  }
  return result;
}

}  // namespace pds
