// Study B harness (Section 6): the user's perspective on end-to-end
// differentiation.
//
// A K-hop chain (Figure 6) carries, at every hop, C cross-traffic sources
// (500 B packets, Pareto(1.9) interarrivals, classes drawn 40/30/20/10)
// whose rate is calibrated so each link runs at utilization rho. Every
// `experiment_interval` seconds one "user experiment" launches N identical
// periodic flows — one per class, F packets of 500 B at average rate R_u —
// through the whole path. For each flow the ten end-to-end queueing-delay
// percentiles (10%..90%, 99%) are computed; an experiment is *inconsistent*
// if any percentile of a higher-class flow exceeds the same percentile of a
// lower-class flow. The scalar R_D averages the percentile ratios of
// successive classes over all experiments — Table 1's figure of merit
// (ideal value: the common SDP ratio, 2.0 for s = 1,2,4,8).
#pragma once

#include <cstdint>
#include <vector>

#include "sched/factory.hpp"

namespace pds {

struct StudyBConfig {
  std::uint32_t hops = 4;                    // K
  double link_bandwidth_bps = 25e6;          // Figure 6 links
  std::uint32_t cross_sources_per_hop = 8;   // C
  std::vector<double> cross_mix{0.4, 0.3, 0.2, 0.1};
  double utilization = 0.85;                 // rho per link
  double pareto_alpha = 1.9;

  std::uint32_t flow_packets = 10;           // F
  double flow_rate_kbps = 50.0;              // R_u
  std::uint32_t packet_bytes = 500;

  std::uint32_t user_experiments = 30;       // M (paper: 100)
  double experiment_interval_s = 1.0;
  double warmup_s = 20.0;                    // paper: 100

  SchedulerKind scheduler = SchedulerKind::kWtp;
  std::vector<double> sdp{1.0, 2.0, 4.0, 8.0};
  std::uint64_t seed = 1;

  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(sdp.size());
  }
  void validate() const;
};

struct StudyBResult {
  double rd = 0.0;                        // Table 1 metric
  std::uint64_t experiments = 0;
  std::uint64_t inconsistent_experiments = 0;
  std::uint64_t inconsistent_pairs = 0;   // (experiment, class pair) events
  double worst_violation_s = 0.0;         // largest higher-beats-lower gap
  std::uint64_t skipped_ratio_terms = 0;  // near-zero denominators
  std::vector<double> mean_e2e_delay_per_class;  // seconds
  std::vector<double> mean_utilization_per_hop;

  // Per-hop, per-class mean queueing delay (seconds; user + cross traffic,
  // post-warmup) and the per-hop R_D of successive-class means — showing
  // how the per-hop deviations "cancel out" into the end-to-end figure.
  std::vector<std::vector<double>> per_hop_class_delay;  // [hop][class]
  std::vector<double> per_hop_rd;                        // [hop]
};

StudyBResult run_study_b(const StudyBConfig& config);

// The ten end-to-end delay percentiles the paper compares: 10%..90%, 99%.
const std::vector<double>& study_b_percentiles();

}  // namespace pds
