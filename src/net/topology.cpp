#include "net/topology.hpp"

#include "util/contracts.hpp"

namespace pds {

Network::Network(Simulator& sim) : sim_(sim) {}

LinkId Network::add_link(SchedulerKind kind,
                         const SchedulerConfig& sched_config, double capacity,
                         std::string name) {
  PDS_CHECK(!injected_, "cannot add links after the first injection");
  const auto id = static_cast<LinkId>(links_.size());
  schedulers_.push_back(make_scheduler(kind, sched_config));
  links_.push_back(std::make_unique<Link>(
      sim_, *schedulers_.back(), capacity,
      [this](Packet&& p, SimTime, SimTime) { forward(std::move(p)); }));
  names_.push_back(name.empty() ? "link" + std::to_string(id)
                                : std::move(name));
  return id;
}

RouteId Network::add_route(std::vector<LinkId> path, ExitHandler on_exit) {
  PDS_CHECK(!path.empty(), "route needs at least one link");
  PDS_CHECK(static_cast<bool>(on_exit), "null exit handler");
  for (const LinkId id : path) {
    PDS_CHECK(id < links_.size(), "route references unknown link");
  }
  routes_.push_back(RouteState{std::move(path), std::move(on_exit)});
  return static_cast<RouteId>(routes_.size() - 1);
}

void Network::inject(Packet p, RouteId route) {
  PDS_CHECK(route < routes_.size(), "unknown route");
  PDS_CHECK(p.hops_done == 0, "packet already travelled; reset hops_done");
  injected_ = true;
  p.route = route;
  links_[routes_[route].path.front()]->arrive(std::move(p));
}

void Network::forward(Packet&& p) {
  PDS_REQUIRE(p.route < routes_.size());
  const RouteState& route = routes_[p.route];
  PDS_REQUIRE(p.hops_done <= route.path.size());
  if (p.hops_done < route.path.size()) {
    links_[route.path[p.hops_done]]->arrive(std::move(p));
  } else {
    route.on_exit(p, sim_.now());
  }
}

const Link& Network::link(LinkId id) const {
  PDS_CHECK(id < links_.size(), "unknown link");
  return *links_[id];
}

Link& Network::link_mut(LinkId id) {
  PDS_CHECK(id < links_.size(), "unknown link");
  return *links_[id];
}

const std::string& Network::link_name(LinkId id) const {
  PDS_CHECK(id < links_.size(), "unknown link");
  return names_[id];
}

double Network::utilization(LinkId id) const {
  PDS_CHECK(id < links_.size(), "unknown link");
  if (sim_.now() <= 0.0) return 0.0;
  return links_[id]->busy_time() / sim_.now();
}

}  // namespace pds
