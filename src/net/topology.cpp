#include "net/topology.hpp"

#include <algorithm>
#include <deque>

#include "ctrl/control_injector.hpp"
#include "util/contracts.hpp"

namespace pds {

std::vector<std::uint32_t> shortest_path_links(
    NodeId num_nodes, const std::vector<GraphEdge>& edges, NodeId from,
    NodeId to) {
  PDS_CHECK(from < num_nodes && to < num_nodes,
            "shortest_path endpoints must be existing nodes");
  if (from == to) return {};
  // Adjacency in ascending link id per node: edges are appended with
  // monotonically increasing link ids, so a stable bucket fill preserves
  // the order needed by the routing determinism rule.
  std::vector<std::vector<const GraphEdge*>> adj(num_nodes);
  for (const GraphEdge& e : edges) {
    PDS_REQUIRE(e.from < num_nodes && e.to < num_nodes);
    adj[e.from].push_back(&e);
  }
  for (auto& out : adj) {
    std::sort(out.begin(), out.end(),
              [](const GraphEdge* a, const GraphEdge* b) {
                return a->link < b->link;
              });
  }
  // BFS; each node's parent edge is fixed by the first discovery. Nodes
  // are enqueued in lexicographic order of their chosen paths (out-edges
  // scanned in ascending link id, FIFO frontier), so the parent chain of
  // `to` is the lexicographically smallest minimum-hop path.
  std::vector<const GraphEdge*> parent(num_nodes, nullptr);
  std::vector<bool> seen(num_nodes, false);
  std::deque<NodeId> frontier;
  seen[from] = true;
  frontier.push_back(from);
  while (!frontier.empty() && !seen[to]) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    for (const GraphEdge* e : adj[node]) {
      if (seen[e->to]) continue;
      seen[e->to] = true;
      parent[e->to] = e;
      frontier.push_back(e->to);
    }
  }
  if (!seen[to]) return {};
  std::vector<std::uint32_t> path;
  for (const GraphEdge* e = parent[to]; e != nullptr; e = parent[e->from]) {
    path.push_back(e->link);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Network::Network(Simulator& sim) : sim_(sim) {}

NodeId Network::add_node(std::string name) {
  PDS_CHECK(!injected_, "cannot add nodes after the first injection");
  PDS_CHECK(!name.empty(), "node needs a non-empty name");
  for (const auto& existing : node_names_) {
    PDS_CHECK(existing != name, "duplicate node name " + name);
  }
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(node_names_.size() - 1);
}

LinkId Network::add_edge(NodeId from, NodeId to, SchedulerKind kind,
                         const SchedulerConfig& sched_config, double capacity,
                         std::string name) {
  PDS_CHECK(from < node_names_.size() && to < node_names_.size(),
            "edge endpoints must be existing nodes");
  PDS_CHECK(from != to, "self-loop edges are not allowed");
  if (name.empty()) name = node_names_[from] + ">" + node_names_[to];
  const LinkId id = add_link(kind, sched_config, capacity, std::move(name));
  edges_.push_back(GraphEdge{id, from, to});
  return id;
}

std::vector<LinkId> Network::shortest_path(NodeId from, NodeId to) const {
  return shortest_path_links(num_nodes(), edges_, from, to);
}

RouteId Network::add_route_between(NodeId from, NodeId to,
                                   ExitHandler on_exit) {
  auto path = shortest_path(from, to);
  PDS_CHECK(!path.empty(), "no path from node " + node_name(from) +
                               " to node " + node_name(to));
  return add_route(std::move(path), std::move(on_exit));
}

const std::string& Network::node_name(NodeId id) const {
  PDS_CHECK(id < node_names_.size(), "unknown node");
  return node_names_[id];
}

std::optional<NodeId> Network::find_node(const std::string& name) const {
  for (NodeId id = 0; id < node_names_.size(); ++id) {
    if (node_names_[id] == name) return id;
  }
  return std::nullopt;
}

LinkId Network::add_link(SchedulerKind kind,
                         const SchedulerConfig& sched_config, double capacity,
                         std::string name) {
  PDS_CHECK(!injected_, "cannot add links after the first injection");
  const auto id = static_cast<LinkId>(links_.size());
  SchedulerConfig config = sched_config;
  if (config.arena == nullptr) config.arena = &arena_;
  schedulers_.push_back(make_scheduler(kind, config));
  links_.push_back(std::make_unique<Link>(
      sim_, *schedulers_.back(), capacity,
      [this](Packet&& p, SimTime, SimTime) { forward(std::move(p)); }));
  links_.back()->set_burst(config.burst);
  lossies_.emplace_back();
  kinds_.push_back(kind);
  configs_.push_back(std::move(config));
  capacities_.push_back(capacity);
  names_.push_back(name.empty() ? "link" + std::to_string(id)
                                : std::move(name));
  return id;
}

void Network::make_lossy(LinkId id, std::uint64_t buffer_packets) {
  PDS_CHECK(!injected_, "cannot convert links after the first injection");
  PDS_CHECK(id < links_.size(), "unknown link");
  PDS_CHECK(links_[id] != nullptr, "link is already lossy");
  lossies_[id] = std::make_unique<LossyLink>(
      sim_, *schedulers_[id], capacities_[id], buffer_packets,
      DropPolicy::kDropIncoming, nullptr,
      [this](Packet&& p, SimTime, SimTime) { forward(std::move(p)); },
      [](const Packet&, SimTime) {});
  lossies_[id]->link_mut().set_burst(configs_[id].burst);
  links_[id].reset();
}

LossyLink* Network::lossy(LinkId id) {
  PDS_CHECK(id < links_.size(), "unknown link");
  return lossies_[id].get();
}

const LossyLink* Network::lossy(LinkId id) const {
  PDS_CHECK(id < links_.size(), "unknown link");
  return lossies_[id].get();
}

SchedulerKind Network::link_kind(LinkId id) const {
  PDS_CHECK(id < kinds_.size(), "unknown link");
  return kinds_[id];
}

const SchedulerConfig& Network::link_config(LinkId id) const {
  PDS_CHECK(id < configs_.size(), "unknown link");
  return configs_[id];
}

double Network::link_capacity(LinkId id) const {
  PDS_CHECK(id < capacities_.size(), "unknown link");
  return capacities_[id];
}

RouteId Network::add_route(std::vector<LinkId> path, ExitHandler on_exit) {
  PDS_CHECK(!path.empty(), "route needs at least one link");
  PDS_CHECK(static_cast<bool>(on_exit), "null exit handler");
  for (const LinkId id : path) {
    PDS_CHECK(id < links_.size(), "route references unknown link");
  }
  routes_.push_back(RouteState{std::move(path), std::move(on_exit)});
  return static_cast<RouteId>(routes_.size() - 1);
}

void Network::inject(Packet p, RouteId route) {
  PDS_CHECK(route < routes_.size(), "unknown route");
  PDS_CHECK(p.hops_done == 0, "packet already travelled; reset hops_done");
  injected_ = true;
  p.route = route;
  const LinkId first = routes_[route].path.front();
  if (bound_ && binding_.link_owner[first] != binding_.self) {
    // Injection onto a foreign first hop: hand the packet over at the
    // current time (the zero-lookahead edge — see net/partition.hpp).
    binding_.publish(binding_.link_owner[first], sim_.now(), std::move(p));
    return;
  }
  deliver(std::move(p), first);
}

void Network::bind_shard(ShardBinding binding) {
  PDS_CHECK(!injected_, "cannot bind a shard after the first injection");
  PDS_CHECK(!bound_, "shard binding already installed");
  PDS_CHECK(binding.link_owner.size() == links_.size(),
            "one owner entry per link required");
  PDS_CHECK(binding.route_exit_shard.size() == routes_.size(),
            "one exit shard per route required");
  PDS_CHECK(static_cast<bool>(binding.publish), "null publish hook");
  binding_ = std::move(binding);
  bound_ = true;
  for (LinkId id = 0; id < links_.size(); ++id) {
    if (binding_.link_owner[id] != binding_.self) continue;
    link_mut(id).set_forward_gate([this](const Packet& p, SimTime depart) {
      PDS_REQUIRE(p.route < routes_.size());
      const RouteState& route = routes_[p.route];
      // hops_done was already bumped for this hop, so it indexes the next
      // one; past the end, the packet exits where the route's handler runs.
      const std::uint32_t dst =
          p.hops_done < route.path.size()
              ? binding_.link_owner[route.path[p.hops_done]]
              : binding_.route_exit_shard[p.route];
      if (dst == binding_.self) return false;
      binding_.publish(dst, depart, Packet(p));
      return true;
    });
  }
}

void Network::apply_remote(Packet&& p) {
  PDS_CHECK(bound_, "apply_remote needs a shard binding");
  PDS_REQUIRE(p.route < routes_.size());
  injected_ = true;
  const RouteState& route = routes_[p.route];
  PDS_REQUIRE(p.hops_done <= route.path.size());
  if (p.hops_done < route.path.size()) {
    deliver(std::move(p), route.path[p.hops_done]);
  } else {
    route.on_exit(p, sim_.now());
  }
}

void Network::deliver(Packet&& p, LinkId id) {
  if (links_[id] != nullptr) {
    links_[id]->arrive(std::move(p));
  } else {
    lossies_[id]->arrive(std::move(p));
  }
}

void Network::forward(Packet&& p) {
  PDS_REQUIRE(p.route < routes_.size());
  const RouteState& route = routes_[p.route];
  PDS_REQUIRE(p.hops_done <= route.path.size());
  if (p.hops_done < route.path.size()) {
    deliver(std::move(p), route.path[p.hops_done]);
  } else {
    route.on_exit(p, sim_.now());
  }
}

const Link& Network::link(LinkId id) const {
  PDS_CHECK(id < links_.size(), "unknown link");
  return links_[id] != nullptr ? *links_[id] : lossies_[id]->link();
}

Link& Network::link_mut(LinkId id) {
  PDS_CHECK(id < links_.size(), "unknown link");
  return links_[id] != nullptr ? *links_[id] : lossies_[id]->link_mut();
}

const std::string& Network::link_name(LinkId id) const {
  PDS_CHECK(id < links_.size(), "unknown link");
  return names_[id];
}

const std::vector<LinkId>& Network::route_path(RouteId id) const {
  PDS_CHECK(id < routes_.size(), "unknown route");
  return routes_[id].path;
}

double Network::utilization(LinkId id) const {
  PDS_CHECK(id < links_.size(), "unknown link");
  if (sim_.now() <= 0.0) return 0.0;
  return link(id).busy_time() / sim_.now();
}

// --------------------------------------------------------------- generators

TopologySpec make_line_topology(std::uint32_t n, const std::string& prefix) {
  PDS_CHECK(n >= 2, "line topology needs at least 2 nodes");
  TopologySpec spec;
  for (std::uint32_t i = 0; i < n; ++i) {
    spec.nodes.push_back(prefix + std::to_string(i));
  }
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    spec.edges.emplace_back(spec.nodes[i], spec.nodes[i + 1]);
  }
  return spec;
}

TopologySpec make_ring_topology(std::uint32_t n, const std::string& prefix) {
  PDS_CHECK(n >= 3, "ring topology needs at least 3 nodes");
  TopologySpec spec = make_line_topology(n, prefix);
  spec.edges.emplace_back(spec.nodes[n - 1], spec.nodes[0]);
  return spec;
}

TopologySpec make_fat_tree_topology(std::uint32_t k) {
  PDS_CHECK(k >= 2 && k % 2 == 0, "fat_tree needs an even k >= 2");
  const std::uint32_t half = k / 2;
  TopologySpec spec;
  // Cores first so their small link ids make core routing deterministic
  // reading top-down; then per-pod agg and edge switches.
  for (std::uint32_t c = 0; c < half * half; ++c) {
    spec.nodes.push_back("core" + std::to_string(c));
  }
  for (std::uint32_t p = 0; p < k; ++p) {
    const std::string pod = "p" + std::to_string(p);
    for (std::uint32_t j = 0; j < half; ++j) {
      spec.nodes.push_back(pod + "agg" + std::to_string(j));
    }
    for (std::uint32_t i = 0; i < half; ++i) {
      spec.nodes.push_back(pod + "edge" + std::to_string(i));
    }
    for (std::uint32_t j = 0; j < half; ++j) {
      const std::string agg = pod + "agg" + std::to_string(j);
      for (std::uint32_t i = 0; i < half; ++i) {
        spec.edges.emplace_back(pod + "edge" + std::to_string(i), agg);
      }
      for (std::uint32_t c = j * half; c < (j + 1) * half; ++c) {
        spec.edges.emplace_back(agg, "core" + std::to_string(c));
      }
    }
  }
  return spec;
}

TopologySpec make_two_tier_topology(std::uint32_t cores, std::uint32_t pops) {
  PDS_CHECK(cores >= 1, "two_tier needs at least 1 core");
  PDS_CHECK(pops >= 1, "two_tier needs at least 1 pop");
  TopologySpec spec;
  for (std::uint32_t c = 0; c < cores; ++c) {
    spec.nodes.push_back("core" + std::to_string(c));
  }
  for (std::uint32_t p = 0; p < pops; ++p) {
    spec.nodes.push_back("pop" + std::to_string(p));
  }
  for (std::uint32_t a = 0; a < cores; ++a) {
    for (std::uint32_t b = a + 1; b < cores; ++b) {
      spec.edges.emplace_back(spec.nodes[a], spec.nodes[b]);
    }
  }
  for (std::uint32_t p = 0; p < pops; ++p) {
    const std::string& pop = spec.nodes[cores + p];
    spec.edges.emplace_back(pop, spec.nodes[p % cores]);
    if (cores > 1 && (p + 1) % cores != p % cores) {
      spec.edges.emplace_back(pop, spec.nodes[(p + 1) % cores]);
    }
  }
  return spec;
}

void build_topology(Network& net, const TopologySpec& spec,
                    SchedulerKind kind, const SchedulerConfig& sched_config,
                    double capacity, const std::string& prefix) {
  std::vector<NodeId> ids;
  ids.reserve(spec.nodes.size());
  for (const auto& name : spec.nodes) ids.push_back(net.add_node(prefix + name));
  const auto find = [&](const std::string& name) {
    const auto id = net.find_node(prefix + name);
    PDS_CHECK(id.has_value(), "topology edge names unknown node " + name);
    return *id;
  };
  for (const auto& [a, b] : spec.edges) {
    const NodeId na = find(a), nb = find(b);
    net.add_edge(na, nb, kind, sched_config, capacity);
    net.add_edge(nb, na, kind, sched_config, capacity);
  }
}

void attach_network(ControlInjector& injector, Network& net) {
  for (LinkId id = 0; id < net.num_links(); ++id) {
    injector.attach(net.link_name(id), net.link_mut(id), net.link_kind(id),
                    net.link_config(id));
  }
}

}  // namespace pds
