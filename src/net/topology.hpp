// Routed graph fabric of differentiated-services links.
//
// Network is a graph of named Nodes connected by directed edges, each edge
// an output Link with its own scheduler instance and capacity. Routes are
// either caller-supplied explicit link sequences (the original API, kept as
// a thin adapter — ChainNetwork and Study B use it unchanged) or computed
// by static shortest-path routing between two nodes (add_route_between).
//
// Routing determinism rule: a computed route is the minimum-hop path; among
// equal-hop paths the lexicographically smallest link-id sequence wins.
// Implementation: BFS with each node's out-edges scanned in ascending link
// id and the frontier drained FIFO, so every node's parent edge is fixed by
// the first (smallest-path) discovery. The rule depends only on the graph,
// never on memory layout or iteration order of hash containers, so routed
// runs keep the repo-wide byte-identical determinism contract.
//
// A packet injected on a route traverses its links in order, accumulating
// queueing delay in cum_queueing, and the route's exit handler fires when
// it leaves the last link. Per-hop class-based differentiation composes
// over any topology the same way it does over the chain — the end-to-end
// consistency questions of Section 6 can therefore be asked of merging,
// diverging and shared-link paths (see the topology tests and the
// merging-paths bench).
//
// TopologySpec + the generators (line/ring/fat_tree/two_tier) describe
// standard graph shapes by node-name pairs; build_topology instantiates a
// spec onto a Network with one directed link per direction of every edge.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dropper/lossy_link.hpp"
#include "dsim/simulator.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"

namespace pds {

class ControlInjector;

using LinkId = std::uint32_t;
using NodeId = std::uint32_t;

// Directed edge labelled with the link that realizes it, for path
// computation (shared by Network and the scenario parser's validation).
struct GraphEdge {
  std::uint32_t link = 0;
  NodeId from = 0;
  NodeId to = 0;
};

// Minimum-hop path of link ids from `from` to `to` over directed `edges`,
// ties broken by lexicographically smallest link-id sequence (see the
// routing determinism rule above). Returns an empty vector when `to` is
// unreachable or equals `from`.
std::vector<std::uint32_t> shortest_path_links(NodeId num_nodes,
                                               const std::vector<GraphEdge>& edges,
                                               NodeId from, NodeId to);

// Cross-shard identity of one Network replica under the sharded kernel
// (dsim/shard.hpp, net/partition.hpp). Every shard holds a structurally
// identical Network; the binding tells a replica which links it owns, where
// each route's exit handler runs, and how to hand a packet to another
// shard. A packet crossing a cut is claimed at the *start* of its
// transmission on the owning link (Link::ForwardGate) and published with
// the transmission's completion time — the timestamp the receiving shard
// delivers it at, exactly when the serial run's departure handler would
// have fired.
struct ShardBinding {
  std::uint32_t self = 0;
  std::vector<std::uint32_t> link_owner;        // per LinkId
  std::vector<std::uint32_t> route_exit_shard;  // per RouteId
  // Hands `p` to shard `dst` for delivery at timestamp `ts`.
  std::function<void(std::uint32_t dst, SimTime ts, Packet&& p)> publish;
};

class Network {
 public:
  // Fired when a packet completes its route. `p.cum_queueing` holds the
  // total queueing delay over every traversed hop.
  using ExitHandler = std::function<void(const Packet& p, SimTime now)>;

  explicit Network(Simulator& sim);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- Topology (graph) layer -------------------------------------------

  // Adds a named node. Names must be unique and non-empty. Nodes may be
  // added only before the first injection.
  NodeId add_node(std::string name);

  // Adds a directed edge from `from` to `to`, realized by a fresh output
  // link with its own scheduler instance. The returned LinkId doubles as
  // the edge id for routing.
  LinkId add_edge(NodeId from, NodeId to, SchedulerKind kind,
                  const SchedulerConfig& sched_config, double capacity,
                  std::string name = "");

  // Shortest path (routing determinism rule above); empty if unreachable.
  std::vector<LinkId> shortest_path(NodeId from, NodeId to) const;

  // Registers the shortest path from `from` to `to` as a route. Throws
  // std::invalid_argument when `to` is unreachable from `from`.
  RouteId add_route_between(NodeId from, NodeId to, ExitHandler on_exit);

  std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(node_names_.size());
  }
  const std::string& node_name(NodeId id) const;
  std::optional<NodeId> find_node(const std::string& name) const;

  // Every directed edge in ascending link id, for partitioning and path
  // computation outside the class.
  const std::vector<GraphEdge>& edges() const noexcept { return edges_; }

  // --- Link / explicit-route layer (the original API) -------------------

  // Adds an output link with its own scheduler instance, not bound to any
  // node pair. Links may be added only before the first injection.
  LinkId add_link(SchedulerKind kind, const SchedulerConfig& sched_config,
                  double capacity, std::string name = "");

  // Registers a source route (a non-empty sequence of existing link ids;
  // repeated links are allowed — e.g. hairpins in test topologies).
  RouteId add_route(std::vector<LinkId> path, ExitHandler on_exit);

  // Injects a packet at the first hop of `route`.
  void inject(Packet p, RouteId route);

  std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  std::uint32_t num_routes() const noexcept {
    return static_cast<std::uint32_t>(routes_.size());
  }
  const Link& link(LinkId id) const;
  const std::string& link_name(LinkId id) const;
  const std::vector<LinkId>& route_path(RouteId id) const;

  // Mutable access for fault injection (attach_network in src/fault/
  // registers every link with a FaultInjector under its name).
  Link& link_mut(LinkId id);

  // Construction metadata, kept per link so the control plane can attach
  // every link with the kind/config swap replacements are built from.
  SchedulerKind link_kind(LinkId id) const;
  const SchedulerConfig& link_config(LinkId id) const;
  double link_capacity(LinkId id) const;

  // Wraps link `id` in a finite drop-tail buffer (LossyLink, kDropIncoming):
  // arrivals that would exceed `buffer_packets` queued packets are dropped
  // and counted by the LossyLink (drops()/burst_drops()). Call before the
  // first injection; converting a link twice is an error. The inner Link is
  // rebuilt, so convert before attaching probes or injectors.
  void make_lossy(LinkId id, std::uint64_t buffer_packets);

  // The loss stage of a converted link; nullptr for lossless links.
  LossyLink* lossy(LinkId id);
  const LossyLink* lossy(LinkId id) const;

  // Utilization of a link measured from time 0 to `now`.
  double utilization(LinkId id) const;

  // --- Sharded kernel ----------------------------------------------------

  // Turns this replica into one shard of a partitioned run: installs a
  // forward gate on every owned link that claims packets whose next hop (or
  // exit handler) lives on another shard and publishes them through the
  // binding, and reroutes injections on routes whose first hop is foreign.
  // Call after every link and route exists, before the first event runs.
  void bind_shard(ShardBinding binding);

  // Entry point for a packet received from another shard, called by the
  // shard runner with the clock already advanced to the message timestamp:
  // delivers it to its next hop, or fires the route exit handler when the
  // path is complete.
  void apply_remote(Packet&& p);

 private:
  struct RouteState {
    std::vector<LinkId> path;
    ExitHandler on_exit;
  };

  void forward(Packet&& p);
  // Arrival entry point for link `id`: the loss stage when the link has
  // one, the plain Link otherwise.
  void deliver(Packet&& p, LinkId id);

  Simulator& sim_;
  // Backs every edge's class rings; declared before the schedulers so their
  // queues release into a still-live arena at destruction.
  PacketArena arena_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  // Exactly one of links_[id] / lossies_[id] is non-null per link: make_lossy
  // moves a link's service plane inside a LossyLink (which owns its Link).
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<LossyLink>> lossies_;
  std::vector<SchedulerKind> kinds_;
  std::vector<SchedulerConfig> configs_;  // arena pointer already defaulted
  std::vector<double> capacities_;
  std::vector<std::string> names_;
  std::vector<RouteState> routes_;
  std::vector<std::string> node_names_;
  std::vector<GraphEdge> edges_;  // ascending link id (append-only)
  bool injected_ = false;
  bool bound_ = false;  // bind_shard was called; binding_ is live
  ShardBinding binding_;
};

// A graph shape by node names: every listed edge is instantiated in BOTH
// directions (two independent links) by build_topology; link names follow
// "<from>><to>".
struct TopologySpec {
  std::vector<std::string> nodes;
  std::vector<std::pair<std::string, std::string>> edges;  // undirected
};

// n nodes "<prefix>0".."<prefix>{n-1}" in a path (n >= 2).
TopologySpec make_line_topology(std::uint32_t n,
                                const std::string& prefix = "n");
// Same, plus the wrap-around edge (n >= 3).
TopologySpec make_ring_topology(std::uint32_t n,
                                const std::string& prefix = "n");
// k-ary fat tree (k even, >= 2): (k/2)^2 cores "core<i>", per pod p
// (k pods) k/2 aggregation "p<p>agg<j>" and k/2 edge switches "p<p>edge<i>";
// full bipartite edge<->agg inside a pod, agg j uplinks to cores
// [j*k/2, (j+1)*k/2).
TopologySpec make_fat_tree_topology(std::uint32_t k);
// Small ISP-like two-tier graph: `cores` fully-meshed "core<i>", and `pops`
// dual-homed PoPs "pop<i>" attached to core i%cores and core (i+1)%cores.
TopologySpec make_two_tier_topology(std::uint32_t cores, std::uint32_t pops);

// Instantiates `spec` onto `net`: one node per name, one directed link per
// direction of every edge, all with the same scheduler kind/config and
// capacity. `prefix` is prepended to every node (and derived link) name.
void build_topology(Network& net, const TopologySpec& spec,
                    SchedulerKind kind, const SchedulerConfig& sched_config,
                    double capacity, const std::string& prefix = "");

// Registers every link of `net` with a ControlInjector under its
// link_name(), carrying the stored kind/config so retune/swap episodes can
// validate and build replacements (the control-plane sibling of the fault
// attach_network in fault/fault_injector.hpp).
void attach_network(ControlInjector& injector, Network& net);

}  // namespace pds
