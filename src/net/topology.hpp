// General routed network of differentiated-services links.
//
// ChainNetwork covers the paper's Figure 6 exactly; this class is the
// substrate a downstream user needs for anything else: an arbitrary set of
// output links (each with its own scheduler instance and capacity) and
// source-routed paths across them. A packet injected on a route traverses
// its links in order, accumulating queueing delay in cum_queueing, and the
// route's exit handler fires when it leaves the last link.
//
// Per-hop class-based differentiation composes over any topology the same
// way it does over the chain — the end-to-end consistency questions of
// Section 6 can therefore be asked of merging, diverging and shared-link
// paths (see the topology tests and the merging-paths bench).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsim/simulator.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"

namespace pds {

using LinkId = std::uint32_t;

class Network {
 public:
  // Fired when a packet completes its route. `p.cum_queueing` holds the
  // total queueing delay over every traversed hop.
  using ExitHandler = std::function<void(const Packet& p, SimTime now)>;

  explicit Network(Simulator& sim);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Adds an output link with its own scheduler instance. Links may be
  // added only before the first injection.
  LinkId add_link(SchedulerKind kind, const SchedulerConfig& sched_config,
                  double capacity, std::string name = "");

  // Registers a source route (a non-empty sequence of existing link ids;
  // repeated links are allowed — e.g. hairpins in test topologies).
  RouteId add_route(std::vector<LinkId> path, ExitHandler on_exit);

  // Injects a packet at the first hop of `route`.
  void inject(Packet p, RouteId route);

  std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  std::uint32_t num_routes() const noexcept {
    return static_cast<std::uint32_t>(routes_.size());
  }
  const Link& link(LinkId id) const;
  const std::string& link_name(LinkId id) const;

  // Mutable access for fault injection (attach_network in src/fault/
  // registers every link with a FaultInjector under its name).
  Link& link_mut(LinkId id);

  // Utilization of a link measured from time 0 to `now`.
  double utilization(LinkId id) const;

 private:
  struct RouteState {
    std::vector<LinkId> path;
    ExitHandler on_exit;
  };

  void forward(Packet&& p);

  Simulator& sim_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::string> names_;
  std::vector<RouteState> routes_;
  bool injected_ = false;
};

}  // namespace pds
