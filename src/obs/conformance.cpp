#include "obs/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"

namespace pds {

namespace {

// Default-precision rendering, matching metrics CSV output.
std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string default_class_name(ClassId c) {
  return "c" + std::to_string(c);
}

}  // namespace

ConformanceMonitor::ConformanceMonitor(const std::vector<double>& sdp,
                                       const ConformanceOptions& options)
    : options_(options), namer_(default_class_name) {
  if (!options_.enabled()) return;
  if (sdp.size() < 2) {
    throw std::invalid_argument(
        "conformance monitoring needs at least two classes");
  }
  target_.reserve(sdp.size() - 1);
  for (std::size_t c = 0; c + 1 < sdp.size(); ++c) {
    if (sdp[c] <= 0.0 || sdp[c + 1] <= 0.0) {
      throw std::invalid_argument("SDPs must be positive");
    }
    // Higher class = larger SDP = smaller delay: d_c/d_{c+1} = s_{c+1}/s_c.
    target_.push_back(sdp[c + 1] / sdp[c]);
  }
  sum_.assign(sdp.size(), 0.0);
  count_.assign(sdp.size(), 0);
  per_pair_violations_.assign(sdp.size() - 1, 0);
  last_signed_.assign(sdp.size() - 1,
                      std::numeric_limits<double>::quiet_NaN());
  bucket_start_ = options_.start;
}

void ConformanceMonitor::set_class_namer(
    std::function<std::string(ClassId)> namer) {
  if (namer) namer_ = std::move(namer);
}

void ConformanceMonitor::bind_metrics(MetricsRegistry& registry) {
  metrics_ = &registry;
  if (!enabled()) return;
  for (ClassId c = 0; c + 1 < count_.size(); ++c) {
    registry.gauge("conformance.err." + namer_(c) + "_" + namer_(c + 1));
  }
  registry.counter("conformance.violations");
}

void ConformanceMonitor::set_fault_context(
    std::function<std::string()> context) {
  fault_context_ = std::move(context);
}

void ConformanceMonitor::set_violation_sink(
    std::function<void(const ConformanceViolation&)> sink) {
  sink_ = std::move(sink);
}

void ConformanceMonitor::record(ClassId cls, double delay, SimTime now) {
  if (!enabled() || finished_) return;
  if (now < options_.start) return;
  if (cls >= count_.size()) return;
  advance_to(now);
  sum_[cls] += delay;
  ++count_[cls];
}

void ConformanceMonitor::advance_to(SimTime now) {
  while (now >= bucket_start_ + options_.tau) {
    close_window();
    bucket_start_ += options_.tau;
    if (bucket_empty() && now >= bucket_start_ + options_.tau) {
      // Fast-forward a long empty stretch (e.g. a source outage) without
      // per-window work, keeping the accounting identical to closing each
      // empty window: all pairs undefined.
      const auto skip = static_cast<std::uint64_t>(
          std::floor((now - bucket_start_) / options_.tau));
      if (skip > 0) {
        windows_ += skip;
        undefined_ += skip * target_.size();
        bucket_start_ += static_cast<double>(skip) * options_.tau;
        for (double& e : last_signed_) {
          e = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }
}

bool ConformanceMonitor::bucket_empty() const noexcept {
  for (const std::uint64_t n : count_) {
    if (n > 0) return false;
  }
  return true;
}

void ConformanceMonitor::close_window() {
  const std::uint64_t window = windows_++;
  const SimTime t0 = bucket_start_;
  const SimTime t1 = bucket_start_ + options_.tau;
  std::string fault;
  bool fault_queried = false;
  for (ClassId c = 0; c + 1 < count_.size(); ++c) {
    const bool defined = count_[c] >= options_.min_samples &&
                         count_[c + 1] >= options_.min_samples &&
                         sum_[c + 1] > 0.0;
    if (!defined) {
      ++undefined_;
      last_signed_[c] = std::numeric_limits<double>::quiet_NaN();
      continue;
    }
    ++checked_;
    const double mean_lo = sum_[c] / static_cast<double>(count_[c]);
    const double mean_hi = sum_[c + 1] / static_cast<double>(count_[c + 1]);
    const double observed = mean_lo / mean_hi;
    const double target = target_[c];
    const double error = std::fabs(observed / target - 1.0);
    last_signed_[c] = observed / target - 1.0;
    err_sum_ += error;
    if (error > err_max_) err_max_ = error;
    if (metrics_ != nullptr) {
      metrics_->gauge("conformance.err." + namer_(c) + "_" + namer_(c + 1))
          .set(error);
    }
    if (error > options_.tolerance) {
      if (!fault_queried) {
        if (fault_context_) fault = fault_context_();
        fault_queried = true;
      }
      ConformanceViolation v;
      v.window = window;
      v.t0 = t0;
      v.t1 = t1;
      v.lo = c;
      v.observed = observed;
      v.target = target;
      v.error = error;
      v.fault = fault;
      ++per_pair_violations_[c];
      if (!fault.empty()) ++during_faults_;
      if (metrics_ != nullptr) metrics_->counter("conformance.violations").inc();
      if (sink_) sink_(v);
      violations_.push_back(std::move(v));
    }
  }
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(count_.begin(), count_.end(), 0);
}

void ConformanceMonitor::finish() {
  if (!enabled() || finished_) return;
  finished_ = true;
  if (!bucket_empty()) close_window();
}

ConformanceSummary ConformanceMonitor::summary() const {
  ConformanceSummary s;
  s.windows = windows_;
  s.pairs_checked = checked_;
  s.pairs_undefined = undefined_;
  s.violations = violations_.size();
  s.violations_during_faults = during_faults_;
  s.max_error = err_max_;
  s.mean_error = checked_ > 0 ? err_sum_ / static_cast<double>(checked_) : 0.0;
  s.per_pair_violations = per_pair_violations_;
  return s;
}

ViolationLog::ViolationLog(const std::string& path,
                           std::function<std::string(ClassId)> namer)
    : out_(std::make_unique<AtomicOutFile>(path)),
      namer_(namer ? std::move(namer) : default_class_name) {}

ViolationLog::~ViolationLog() = default;

void ViolationLog::write(const ConformanceViolation& v) {
  std::ostream& os = out_->stream();
  os << "{\"window\":" << v.window << ",\"t0\":" << fmt(v.t0)
     << ",\"t1\":" << fmt(v.t1) << ",\"lo\":\"" << namer_(v.lo)
     << "\",\"hi\":\"" << namer_(v.lo + 1)
     << "\",\"observed\":" << fmt(v.observed)
     << ",\"target\":" << fmt(v.target) << ",\"error\":" << fmt(v.error)
     << ",\"fault\":\"" << v.fault << "\"}\n";
  ++written_;
}

void ViolationLog::close() { out_->close(); }

}  // namespace pds
