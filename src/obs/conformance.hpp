// Live DDP conformance monitoring (paper Eq. 2, interval form).
//
// The proportional delay differentiation model asks that, over every
// monitoring interval of length tau, adjacent-class average delays satisfy
// d_c / d_{c+1} = s_{c+1} / s_c (higher class index = larger SDP = smaller
// delay, per packet.hpp). ConformanceMonitor checks this online: departures
// feed record(cls, delay, now); each time the clock crosses a tau boundary
// the finished window is scored per adjacent pair, the relative ratio error
// |observed/target - 1| is compared against a tolerance, and windows that
// miss become structured ConformanceViolation events (with the active fault
// episode attributed, when a fault context is bound).
//
// A pair's ratio is only *defined* in a window where both classes have at
// least `min_samples` departures (Eq. 2's feasibility caveat: short
// timescales with idle classes make the ratio meaningless); undefined pairs
// are counted but never violations.
//
// Everything here is driven by simulation time and departures only — output
// is deterministic and byte-identical for any --jobs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsim/time.hpp"
#include "packet/packet.hpp"

namespace pds {

class MetricsRegistry;
class AtomicOutFile;

struct ConformanceOptions {
  SimTime tau = 0.0;          // window length; <= 0 disables the monitor
  SimTime start = 0.0;        // ignore departures before this (warmup)
  double tolerance = 0.25;    // violation when |obs/target - 1| exceeds this
  std::uint64_t min_samples = 10;  // per class per window for a defined pair

  bool enabled() const noexcept { return tau > 0.0; }
};

// One adjacent-pair miss in one window.
struct ConformanceViolation {
  std::uint64_t window = 0;  // window ordinal since `start`
  SimTime t0 = 0.0;          // window bounds
  SimTime t1 = 0.0;
  ClassId lo = 0;            // pair (lo, lo+1)
  double observed = 0.0;     // window mean_delay[lo] / mean_delay[lo+1]
  double target = 0.0;       // sdp[lo+1] / sdp[lo]
  double error = 0.0;        // |observed/target - 1|
  std::string fault;         // active fault episodes at window close, if any
};

struct ConformanceSummary {
  std::uint64_t windows = 0;          // closed windows (incl. empty ones)
  std::uint64_t pairs_checked = 0;    // defined pair-windows scored
  std::uint64_t pairs_undefined = 0;  // pair-windows below min_samples
  std::uint64_t violations = 0;
  std::uint64_t violations_during_faults = 0;
  double max_error = 0.0;   // over checked pair-windows
  double mean_error = 0.0;  // over checked pair-windows
  std::vector<std::uint64_t> per_pair_violations;  // size classes-1
};

class ConformanceMonitor {
 public:
  // `sdp` is the scheduler's differentiation vector (defines class count and
  // the per-pair targets). Throws std::invalid_argument on fewer than two
  // classes or non-positive SDPs when options.enabled().
  ConformanceMonitor(const std::vector<double>& sdp,
                     const ConformanceOptions& options);

  bool enabled() const noexcept { return options_.enabled(); }

  // Optional integrations, all bound before the run starts:
  //  * metrics: per-pair gauges `conformance.err.<lo>_<hi>` (latest window's
  //    defined error) and counter `conformance.violations`.
  //  * fault context: called at window close to stamp violations with the
  //    currently active fault episodes (e.g. FaultInjector::active_summary).
  //  * sink: invoked once per violation as it is detected (JSONL streaming).
  //  * class names: display names for metric keys and reports (defaults to
  //    "c<index>", callers may pass the paper's 1-based labels).
  void set_class_namer(std::function<std::string(ClassId)> namer);
  void bind_metrics(MetricsRegistry& registry);
  void set_fault_context(std::function<std::string()> context);
  void set_violation_sink(std::function<void(const ConformanceViolation&)> sink);

  // One departed packet of class `cls` with queueing delay `delay` at
  // simulation time `now`. `now` must be non-decreasing across calls.
  void record(ClassId cls, double delay, SimTime now);

  // Closes the trailing partial window (if it has any samples). Idempotent;
  // record() after finish() is ignored.
  void finish();

  const std::vector<ConformanceViolation>& violations() const noexcept {
    return violations_;
  }
  ConformanceSummary summary() const;

  std::uint64_t windows_closed() const noexcept { return windows_; }

  // Signed per-pair ratio errors (observed/target - 1) of the most recently
  // closed window, NaN where the pair was undefined; size classes-1 (empty
  // while disabled). This is the feedback signal the ctrl/ Controller
  // samples: the sign says which way the observed ratio missed (positive ==
  // the lower class waited proportionally too long).
  const std::vector<double>& last_window_errors() const noexcept {
    return last_signed_;
  }

 private:
  void advance_to(SimTime now);
  void close_window();
  bool bucket_empty() const noexcept;

  ConformanceOptions options_;
  std::vector<double> target_;  // per pair: sdp[c+1] / sdp[c]
  std::function<std::string(ClassId)> namer_;
  std::function<std::string()> fault_context_;
  std::function<void(const ConformanceViolation&)> sink_;
  MetricsRegistry* metrics_ = nullptr;

  SimTime bucket_start_ = 0.0;
  std::vector<double> sum_;
  std::vector<std::uint64_t> count_;
  bool finished_ = false;

  std::uint64_t windows_ = 0;
  std::uint64_t checked_ = 0;
  std::uint64_t undefined_ = 0;
  std::uint64_t during_faults_ = 0;
  double err_sum_ = 0.0;
  double err_max_ = 0.0;
  std::vector<std::uint64_t> per_pair_violations_;
  std::vector<double> last_signed_;  // see last_window_errors()
  std::vector<ConformanceViolation> violations_;
};

// Streams violations as JSON Lines through an atomic file (tmp + rename on
// close; an unwound run leaves no partial file). One object per line:
//   {"window":3,"t0":1500,"t1":2000,"lo":"c1","hi":"c2",
//    "observed":2.31,"target":2,"error":0.155,"fault":"link_down link"}
class ViolationLog {
 public:
  // `namer` maps class indices to display names (same convention as
  // ConformanceMonitor::set_class_namer).
  ViolationLog(const std::string& path,
               std::function<std::string(ClassId)> namer = {});
  ~ViolationLog();

  void write(const ConformanceViolation& v);
  void close();  // commits; throws on I/O failure

  std::uint64_t written() const noexcept { return written_; }

 private:
  std::unique_ptr<AtomicOutFile> out_;
  std::function<std::string(ClassId)> namer_;
  std::uint64_t written_ = 0;
};

}  // namespace pds
