#include "obs/metrics.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/contracts.hpp"

namespace pds {

void MetricsRegistry::check_unique(const std::string& name,
                                   const char* kind) const {
  const bool c = counters_.count(name) > 0;
  const bool g = gauges_.count(name) > 0;
  const bool s = summaries_.count(name) > 0;
  if (kind[0] != 'c') PDS_CHECK(!c, "name already used by a counter: " + name);
  if (kind[0] != 'g') PDS_CHECK(!g, "name already used by a gauge: " + name);
  if (kind[0] != 's') PDS_CHECK(!s, "name already used by a summary: " + name);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  PDS_CHECK(!name.empty(), "metric name must be non-empty");
  check_unique(name, "counter");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  PDS_CHECK(!name.empty(), "metric name must be non-empty");
  check_unique(name, "gauge");
  return gauges_[name];
}

Summary& MetricsRegistry::summary(const std::string& name) {
  PDS_CHECK(!name.empty(), "metric name must be non-empty");
  check_unique(name, "summary");
  return summaries_[name];
}

void MetricsRegistry::reset_windows() {
  for (auto& [name, c] : counters_) c.reset_window();
  for (auto& [name, s] : summaries_) s.reset_window();
}

// ------------------------------------------------------------------ writer

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

MetricsFormat MetricsSnapshotWriter::format_for_path(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot != std::string::npos && path.substr(dot) == ".jsonl") {
    return MetricsFormat::kJsonl;
  }
  return MetricsFormat::kCsv;
}

MetricsSnapshotWriter::MetricsSnapshotWriter(
    Simulator& sim, MetricsRegistry& registry, const std::string& path,
    SimTime window, std::function<void(SimTime)> pre_snapshot)
    : sim_(sim),
      registry_(registry),
      out_(path),
      format_(format_for_path(path)),
      window_(window),
      pre_snapshot_(std::move(pre_snapshot)) {
  PDS_CHECK(window > 0.0, "monitoring window must be positive");
  if (format_ == MetricsFormat::kCsv) {
    out_.stream() << "time,name,type,value,count,mean,stddev,min,max\n";
  }
  ticker_ = std::make_unique<PeriodicProcess>(
      sim_, sim_.now() + window_, window_,
      [this](SimTime now) { write_snapshot(now); });
}

MetricsSnapshotWriter::~MetricsSnapshotWriter() = default;

void MetricsSnapshotWriter::flush() {
  if (ticker_) ticker_->cancel();
  if (sim_.now() > last_time_) write_snapshot(sim_.now());
  out_.close();  // commit: tmp renames onto the final path
}

void MetricsSnapshotWriter::write_snapshot(SimTime now) {
  if (pre_snapshot_) pre_snapshot_(now);
  std::ostream& out_stream = out_.stream();
  const std::string t = fmt(now);
  if (format_ == MetricsFormat::kCsv) {
    for (const auto& [name, c] : registry_.counters()) {
      out_stream << t << ',' << name << ",counter," << c.total() << ','
           << c.window_delta() << ",,,,\n";
    }
    for (const auto& [name, g] : registry_.gauges()) {
      out_stream << t << ',' << name << ",gauge," << fmt(g.value()) << ",,,,,\n";
    }
    for (const auto& [name, s] : registry_.summaries()) {
      const RunningStats& w = s.window();
      out_stream << t << ',' << name << ",summary,," << w.count();
      if (w.count() > 0) {
        out_stream << ',' << fmt(w.mean()) << ',' << fmt(w.stddev()) << ','
             << fmt(w.min()) << ',' << fmt(w.max());
      } else {
        out_stream << ",,,,";
      }
      out_stream << '\n';
    }
  } else {
    for (const auto& [name, c] : registry_.counters()) {
      out_stream << "{\"time\":" << t << ",\"name\":\"" << name
           << "\",\"type\":\"counter\",\"value\":" << c.total()
           << ",\"count\":" << c.window_delta() << "}\n";
    }
    for (const auto& [name, g] : registry_.gauges()) {
      out_stream << "{\"time\":" << t << ",\"name\":\"" << name
           << "\",\"type\":\"gauge\",\"value\":" << fmt(g.value()) << "}\n";
    }
    for (const auto& [name, s] : registry_.summaries()) {
      const RunningStats& w = s.window();
      out_stream << "{\"time\":" << t << ",\"name\":\"" << name
           << "\",\"type\":\"summary\",\"count\":" << w.count();
      if (w.count() > 0) {
        out_stream << ",\"mean\":" << fmt(w.mean())
             << ",\"stddev\":" << fmt(w.stddev())
             << ",\"min\":" << fmt(w.min()) << ",\"max\":" << fmt(w.max());
      }
      out_stream << "}\n";
    }
  }
  out_stream.flush();
  registry_.reset_windows();
  last_time_ = now;
  ++snapshots_;
}

// ------------------------------------------------------------------ loader

std::vector<MetricsRow> load_metrics_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open metrics file: " + path);
  std::vector<MetricsRow> rows;
  std::string line;
  bool first = true;
  const double nan = std::nan("");
  while (std::getline(in, line)) {
    if (first) {  // header
      first = false;
      PDS_CHECK(line.rfind("time,name,type", 0) == 0,
                "not a metrics CSV (bad header): " + path);
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::string field;
    std::istringstream ls(line);
    while (std::getline(ls, field, ',')) fields.push_back(field);
    fields.resize(9);  // trailing empty fields may be dropped by getline
    MetricsRow row;
    row.time = std::stod(fields[0]);
    row.name = fields[1];
    row.type = fields[2];
    const auto num = [&](const std::string& s) {
      return s.empty() ? nan : std::stod(s);
    };
    row.value = num(fields[3]);
    row.count = num(fields[4]);
    row.mean = num(fields[5]);
    row.stddev = num(fields[6]);
    row.min = num(fields[7]);
    row.max = num(fields[8]);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace pds
