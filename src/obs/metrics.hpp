// Named runtime metrics and the windowed snapshot writer.
//
// A MetricsRegistry holds three metric kinds under unique dotted names
// (naming scheme: `<subsystem>.<object>.<field>`, e.g. `backlog.c1.pkts`):
//
//  * Counter — monotone event count (cumulative total + per-window delta).
//  * Gauge   — last-write-wins instantaneous value (backlog, ratios).
//  * Summary — streaming distribution (RunningStats) kept twice: over the
//              current monitoring window and over the whole run.
//
// The MetricsSnapshotWriter is the runtime analogue of the paper's Eq. 2
// short-timescale view: a PeriodicProcess samples every metric each
// monitoring window tau, appends one row per metric to a CSV or JSONL time
// series (format chosen by file extension), and resets the window state.
// A `pre_snapshot` callback lets the owner refresh pull-style gauges (e.g.
// per-class backlog read off the scheduler) just before each sample.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dsim/simulator.hpp"
#include "dsim/time.hpp"
#include "stats/running_stats.hpp"
#include "util/atomic_file.hpp"

namespace pds {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    total_ += n;
    window_ += n;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t window_delta() const noexcept { return window_; }

  void reset_window() noexcept { window_ = 0; }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t window_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Summary {
 public:
  void observe(double x) noexcept {
    window_.add(x);
    total_.add(x);
  }

  const RunningStats& window() const noexcept { return window_; }
  const RunningStats& total() const noexcept { return total_; }

  void reset_window() noexcept { window_ = RunningStats{}; }

 private:
  RunningStats window_;
  RunningStats total_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name; references stay valid for the registry's
  // lifetime. A name identifies exactly one metric kind — reusing it with a
  // different kind throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Summary& summary(const std::string& name);

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + summaries_.size();
  }

  // Clears every counter delta and window summary (gauges keep their value).
  // Called by the snapshot writer after each sample.
  void reset_windows();

  // Deterministic (name-ordered) iteration for writers and tests.
  const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Summary>& summaries() const noexcept {
    return summaries_;
  }

 private:
  void check_unique(const std::string& name, const char* kind) const;

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Summary> summaries_;
};

enum class MetricsFormat { kCsv, kJsonl };

// One parsed row of a metrics CSV file (NaN marks absent fields). Shared by
// trace_inspect and the tests.
struct MetricsRow {
  double time = 0.0;
  std::string name;
  std::string type;
  double value = 0.0;
  double count = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

std::vector<MetricsRow> load_metrics_csv(const std::string& path);

class MetricsSnapshotWriter {
 public:
  // Samples `registry` every `window` time units starting at t = window (the
  // first row closes the window [0, window]) and appends rows to `path`
  // (.jsonl => JSON lines, anything else => CSV with a header row). Throws
  // std::runtime_error when the file cannot be opened. `pre_snapshot`, when
  // set, runs before every sample so the caller can refresh gauges.
  //
  // Output is atomic (util/atomic_file.hpp): rows accumulate in
  // `path + ".tmp"` and the file appears under its final name only when
  // flush() (or a non-unwinding destructor) commits it. A run that dies with
  // an exception leaves no partial metrics file.
  MetricsSnapshotWriter(Simulator& sim, MetricsRegistry& registry,
                        const std::string& path, SimTime window,
                        std::function<void(SimTime)> pre_snapshot = {});
  ~MetricsSnapshotWriter();

  MetricsSnapshotWriter(const MetricsSnapshotWriter&) = delete;
  MetricsSnapshotWriter& operator=(const MetricsSnapshotWriter&) = delete;

  // Writes a final partial-window snapshot at the current simulation time
  // (no-op if a row for this instant was already written) and commits the
  // file. Call once after the run; the destructor does NOT snapshot because
  // the simulator may already be out of scope by then (it still commits the
  // rows written so far, unless unwinding).
  void flush();

  std::uint64_t snapshots_written() const noexcept { return snapshots_; }
  SimTime window() const noexcept { return window_; }

  static MetricsFormat format_for_path(const std::string& path);

 private:
  void write_snapshot(SimTime now);

  Simulator& sim_;
  MetricsRegistry& registry_;
  AtomicOutFile out_;
  MetricsFormat format_;
  SimTime window_;
  std::function<void(SimTime)> pre_snapshot_;
  SimTime last_time_ = -1.0;
  std::uint64_t snapshots_ = 0;
  std::unique_ptr<PeriodicProcess> ticker_;
};

}  // namespace pds
