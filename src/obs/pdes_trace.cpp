#include "obs/pdes_trace.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace pds {

PdesTrace::PdesTrace(std::uint32_t shards, double us_per_time_unit)
    : scale_(us_per_time_unit), buffers_(shards), prev_(shards, 0.0) {
  PDS_CHECK(shards >= 1, "PdesTrace needs at least one shard");
  PDS_CHECK(us_per_time_unit > 0.0, "time scale must be positive");
}

void PdesTrace::record_round(std::uint64_t round,
                             const std::vector<SimTime>& bounds,
                             const std::vector<std::uint64_t>& processed,
                             const std::vector<std::uint32_t>& backlogged) {
  PDS_REQUIRE(bounds.size() == buffers_.size() &&
              processed.size() == buffers_.size() &&
              backlogged.size() == buffers_.size());
  ++rounds_;
  for (std::size_t s = 0; s < buffers_.size(); ++s) {
    const SimTime from = prev_[s];
    const SimTime to = std::max(bounds[s], from);
    prev_[s] = to;
    if (processed[s] == 0) continue;
    std::ostringstream args;
    args << "\"round\":" << round << ",\"work\":" << processed[s]
         << ",\"backlogged\":" << backlogged[s];
    buffers_[s].emit(Span{from * scale_, (to - from) * scale_, kSpanPdesPid,
                          static_cast<std::uint32_t>(s), "pdes.window",
                          "pdes", args.str()});
  }
}

void PdesTrace::record_stats(const PdesStats& stats,
                             MetricsRegistry& registry) const {
  registry.counter("pdes.rounds").inc(stats.rounds);
  registry.counter("pdes.null_rounds").inc(stats.null_rounds);
  registry.counter("pdes.messages").inc(stats.messages);
  registry.counter("pdes.final_sweeps").inc(stats.final_sweeps);
  registry.gauge("pdes.max_channel_depth")
      .set(static_cast<double>(stats.max_channel_depth));
  registry.gauge("pdes.blocked_seconds").set(stats.barrier_seconds);
}

const SpanBuffer& PdesTrace::shard_buffer(std::uint32_t shard) const {
  PDS_CHECK(shard < buffers_.size(), "shard index out of range");
  return buffers_[shard];
}

std::vector<Span> PdesTrace::merged() const {
  std::vector<Span> spans;
  for (const auto& buffer : buffers_) {
    for (const Span& s : buffer.spans()) spans.push_back(s);
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return std::tie(a.pid, a.tid, a.ts, a.dur, a.name, a.cat, a.args) <
           std::tie(b.pid, b.tid, b.ts, b.dur, b.name, b.cat, b.args);
  });
  return spans;
}

}  // namespace pds
