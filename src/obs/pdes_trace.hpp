// Observability for the sharded conservative-PDES kernel (dsim/shard.hpp).
//
// PdesTrace turns the ShardEngine's per-round observations into the same
// artifacts the rest of the experiment plane uses:
//
//  * One SpanBuffer per shard on a dedicated process row (kSpanPdesPid),
//    tid = shard id. Every round in which a shard processed work becomes a
//    "pdes.window" span covering [previous bound, bound) on the simulation
//    clock, with the work count and the backlogged-link count from the
//    coordinator's dequeue sweep in args. The timeline shows exactly how
//    the conservative windows advanced per shard — stalls from short
//    lookahead are visible as missing stretches on a track.
//  * pdes.* metrics: record_stats folds the final PdesStats into a
//    MetricsRegistry (rounds/null_rounds/messages/final_sweeps as counters,
//    max_channel_depth and blocked barrier seconds as gauges).
//
// Determinism: rounds, bounds, processed counts and the dequeue sweep are
// pure functions of the simulation, so every span here is byte-identical
// across shard executors and worker counts. The only volatile figure is
// PdesStats::barrier_seconds, which ends up in a gauge (never in
// byte-compared simulation output) — the same wall-clock carve-out the span
// tracer's kWall mode has.
#pragma once

#include <cstdint>
#include <vector>

#include "dsim/shard.hpp"
#include "obs/span.hpp"

namespace pds {

class MetricsRegistry;

// Process row for the sharded-kernel timeline (kSpanSimPid holds the serial
// kernel/fault/control tracks).
inline constexpr std::uint32_t kSpanPdesPid = 1;

class PdesTrace {
 public:
  explicit PdesTrace(std::uint32_t shards, double us_per_time_unit = 1.0);

  std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(buffers_.size());
  }

  // Coordinator-side round hook payload: per-shard window bounds, processed
  // work counts, and backlogged-link counts from the dequeue sweep. Emits
  // one span per shard that did work this round.
  void record_round(std::uint64_t round, const std::vector<SimTime>& bounds,
                    const std::vector<std::uint64_t>& processed,
                    const std::vector<std::uint32_t>& backlogged);

  // Folds the final protocol counters into pdes.* metrics.
  void record_stats(const PdesStats& stats, MetricsRegistry& registry) const;

  const SpanBuffer& shard_buffer(std::uint32_t shard) const;

  std::uint64_t rounds_recorded() const noexcept { return rounds_; }

  // Every shard buffer merged under the span tracer's content order (sort
  // by pid, tid, ts, dur, name, cat, args) — deterministic regardless of
  // which shard emitted what.
  std::vector<Span> merged() const;

 private:
  double scale_;
  std::vector<SpanBuffer> buffers_;
  std::vector<SimTime> prev_;  // previous round's bound per shard
  std::uint64_t rounds_ = 0;
};

}  // namespace pds
