// Packet-lifecycle probe interface — the single attach point the data path
// (schedulers, links, droppers, chains) exposes to the observability layer.
//
// Design rules, in decreasing order of importance:
//  * The disabled path must cost near zero. Probes are raw pointers checked
//    inline; the default everywhere is nullptr (null-object), and building
//    with PDS_OBS_ENABLED=0 (-DPDS_OBS=OFF) compiles the notification sites
//    out entirely.
//  * One event per lifecycle transition, emitted by the component that owns
//    the transition: Scheduler -> enqueue, Link -> arrive/dequeue/depart,
//    LossyLink (dropper) -> drop. A packet that crosses H hops therefore
//    produces exactly H depart events and at most one drop event.
//  * Probe methods are plain virtuals with empty default bodies, so a
//    concrete probe only overrides the transitions it cares about.
#pragma once

#include <cstdint>

#include "dsim/time.hpp"
#include "packet/packet.hpp"

// Compile-out switch: -DPDS_OBS=OFF defines PDS_OBS_ENABLED=0 and every
// PDS_OBS_NOTIFY site becomes an empty statement.
#ifndef PDS_OBS_ENABLED
#define PDS_OBS_ENABLED 1
#endif

#if PDS_OBS_ENABLED
#define PDS_OBS_NOTIFY(probe, call)       \
  do {                                    \
    if ((probe) != nullptr) (probe)->call; \
  } while (0)
#else
#define PDS_OBS_NOTIFY(probe, call) \
  do {                              \
  } while (0)
#endif

namespace pds {

// Where in the topology an event happened and what the local state was.
// `backlog_*` refer to the packet's own class at the emitting component,
// sampled immediately after the transition took effect.
struct ProbeContext {
  std::uint32_t hop = 0;
  std::uint64_t backlog_packets = 0;
  std::uint64_t backlog_bytes = 0;
};

class PacketProbe {
 public:
  virtual ~PacketProbe() = default;

  // Packet reached the component (before it is handed to the scheduler).
  virtual void on_arrive(const Packet& p, const ProbeContext& ctx,
                         SimTime now) {
    (void)p, (void)ctx, (void)now;
  }

  // Scheduler accepted the packet into its class queue.
  virtual void on_enqueue(const Packet& p, const ProbeContext& ctx,
                          SimTime now) {
    (void)p, (void)ctx, (void)now;
  }

  // Scheduler released the packet to the transmitter; `wait` is the queueing
  // delay at this hop (the paper's per-hop metric).
  virtual void on_dequeue(const Packet& p, const ProbeContext& ctx,
                          SimTime now, SimTime wait) {
    (void)p, (void)ctx, (void)now, (void)wait;
  }

  // Last byte left the link (packet reaches the next hop / the sink).
  virtual void on_depart(const Packet& p, const ProbeContext& ctx,
                         SimTime now, SimTime wait) {
    (void)p, (void)ctx, (void)now, (void)wait;
  }

  // Packet was discarded (buffer overflow push-out or incoming drop).
  virtual void on_drop(const Packet& p, const ProbeContext& ctx, SimTime now) {
    (void)p, (void)ctx, (void)now;
  }
};

}  // namespace pds
