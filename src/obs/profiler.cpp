#include "obs/profiler.hpp"

#include <algorithm>
#include <ostream>

#include "util/table.hpp"

namespace pds {

void SimProfiler::on_event_begin(SimTime, const char* /*label*/,
                                 std::size_t pending) noexcept {
  depth_.add(static_cast<double>(pending));
  started_ = Clock::now();
}

void SimProfiler::on_event_end(SimTime, const char* label) noexcept {
  const double secs =
      std::chrono::duration<double>(Clock::now() - started_).count();
  // noexcept contract: an allocation failure here would terminate, which is
  // acceptable for a diagnostics tool.
  Agg& agg = by_label_[label != nullptr ? label : "(unlabeled)"];
  ++agg.events;
  agg.wall_seconds += secs;
  ++total_events_;
  total_wall_ += secs;
}

std::vector<SimProfiler::Category> SimProfiler::categories() const {
  std::vector<Category> out;
  out.reserve(by_label_.size());
  for (const auto& [label, agg] : by_label_) {
    out.push_back(Category{label, agg.events, agg.wall_seconds});
  }
  std::sort(out.begin(), out.end(), [](const Category& a, const Category& b) {
    if (a.wall_seconds != b.wall_seconds) {
      return a.wall_seconds > b.wall_seconds;
    }
    return a.label < b.label;
  });
  return out;
}

void SimProfiler::reset() {
  by_label_.clear();
  depth_ = RunningStats{};
  total_events_ = 0;
  total_wall_ = 0.0;
}

void SimProfiler::print(std::ostream& os) const {
  TablePrinter table({"category", "events", "wall (ms)", "share %",
                      "us/event"});
  for (const auto& cat : categories()) {
    const double share =
        total_wall_ > 0.0 ? 100.0 * cat.wall_seconds / total_wall_ : 0.0;
    const double per_event =
        cat.events > 0 ? 1e6 * cat.wall_seconds /
                             static_cast<double>(cat.events)
                       : 0.0;
    table.add_row({cat.label, std::to_string(cat.events),
                   TablePrinter::num(cat.wall_seconds * 1e3, 3),
                   TablePrinter::num(share, 1),
                   TablePrinter::num(per_event, 3)});
  }
  table.print(os);
  if (depth_.count() > 0) {
    os << "event-queue depth: mean " << TablePrinter::num(depth_.mean(), 1)
       << ", max " << TablePrinter::num(depth_.max(), 0) << " over "
       << depth_.count() << " events\n";
  }
}

}  // namespace pds
