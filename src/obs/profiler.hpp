// Simulator profiler: the SimMonitor implementation behind future perf PRs.
//
// Attach with `sim.set_monitor(&profiler)` and every executed event is
// attributed — by the static label given at schedule time — to a category
// accumulating wall-clock time and event counts. The profiler also samples
// the pending-event-queue depth at every event, giving the event-set
// occupancy distribution that decides between the binary heap and the
// calendar queue (see dsim/event_queue.hpp).
//
// Overhead when attached is two steady_clock reads plus a hash-map upsert
// per event; when not attached the kernel pays a single null check.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsim/simulator.hpp"
#include "stats/running_stats.hpp"

namespace pds {

class SimProfiler final : public SimMonitor {
 public:
  struct Category {
    std::string label;
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
  };

  void on_event_begin(SimTime now, const char* label,
                      std::size_t pending) noexcept override;
  void on_event_end(SimTime now, const char* label) noexcept override;

  // Categories sorted by descending wall time.
  std::vector<Category> categories() const;

  std::uint64_t total_events() const noexcept { return total_events_; }
  double total_wall_seconds() const noexcept { return total_wall_; }

  // Pending-event-set depth sampled at every event execution.
  const RunningStats& queue_depth() const noexcept { return depth_; }

  void reset();

  // Renders the category table plus queue-depth summary via util/table.
  void print(std::ostream& os) const;

 private:
  struct Agg {
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
  };

  using Clock = std::chrono::steady_clock;

  std::unordered_map<std::string, Agg> by_label_;
  RunningStats depth_;
  Clock::time_point started_{};
  std::uint64_t total_events_ = 0;
  double total_wall_ = 0.0;
};

}  // namespace pds
