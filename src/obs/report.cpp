#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "exp/supervisor.hpp"
#include "obs/conformance.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/atomic_file.hpp"

namespace pds {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Json::Json(bool b) : kind_(Kind::kBool), bool_(b) {}
Json::Json(int v) : kind_(Kind::kInt), int_(v) {}
Json::Json(unsigned v) : kind_(Kind::kUint), uint_(v) {}
Json::Json(long v) : kind_(Kind::kInt), int_(v) {}
Json::Json(long long v) : kind_(Kind::kInt), int_(v) {}
Json::Json(unsigned long v) : kind_(Kind::kUint), uint_(v) {}
Json::Json(unsigned long long v) : kind_(Kind::kUint), uint_(v) {}
Json::Json(double v) : kind_(Kind::kDouble), double_(v) {}
Json::Json(const char* s) : kind_(Kind::kString), string_(s) {}
Json::Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::set on a non-object");
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push on a non-array");
  }
  items_.push_back(std::move(value));
  return *this;
}

void Json::render(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      std::ostringstream os;
      os << int_;
      out += os.str();
      break;
    }
    case Kind::kUint: {
      std::ostringstream os;
      os << uint_;
      out += os.str();
      break;
    }
    case Kind::kDouble:
      if (std::isfinite(double_)) {
        out += fmt(double_);
      } else {
        out += "null";
      }
      break;
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out += ',';
        first = false;
        item.render(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        value.render(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  render(out);
  return out;
}

RunReport::RunReport(std::string kind) : kind_(std::move(kind)) {}

void RunReport::set_section(const std::string& name, Json value) {
  for (auto& [key, existing] : sections_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  sections_.emplace_back(name, std::move(value));
}

std::string RunReport::dump() const {
  Json root = Json::object();
  root.set("schema", kSchema);
  root.set("kind", kind_);
  for (const auto& [name, value] : sections_) {
    Json copy = value;
    root.set(name, std::move(copy));
  }
  return root.dump() + "\n";
}

void RunReport::write(const std::string& path) const {
  write_file_atomic(path, dump());
}

Json metrics_json(const MetricsRegistry& registry) {
  Json counters = Json::object();
  for (const auto& [name, counter] : registry.counters()) {
    counters.set(name, counter.total());
  }
  Json gauges = Json::object();
  for (const auto& [name, gauge] : registry.gauges()) {
    gauges.set(name, gauge.value());
  }
  Json summaries = Json::object();
  for (const auto& [name, summary] : registry.summaries()) {
    const RunningStats& total = summary.total();
    Json s = Json::object();
    s.set("count", total.count());
    if (total.count() > 0) {
      s.set("mean", total.mean())
          .set("stddev", total.stddev())
          .set("min", total.min())
          .set("max", total.max());
    }
    summaries.set(name, std::move(s));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("summaries", std::move(summaries));
}

Json profile_json(const SimProfiler& profiler, bool include_wall) {
  // categories() orders by wall time — schedule-dependent. Reorder by label
  // so the default report is deterministic.
  std::vector<SimProfiler::Category> cats = profiler.categories();
  std::sort(cats.begin(), cats.end(),
            [](const SimProfiler::Category& a, const SimProfiler::Category& b) {
              return a.label < b.label;
            });
  Json by_label = Json::object();
  for (const auto& cat : cats) {
    Json entry = Json::object();
    entry.set("events", cat.events);
    if (include_wall) entry.set("wall_s", cat.wall_seconds);
    by_label.set(cat.label, std::move(entry));
  }
  Json out = Json::object();
  out.set("total_events", profiler.total_events());
  if (include_wall) out.set("total_wall_s", profiler.total_wall_seconds());
  out.set("queue_depth_mean", profiler.queue_depth().count() > 0
                                  ? Json(profiler.queue_depth().mean())
                                  : Json());
  out.set("by_label", std::move(by_label));
  return out;
}

Json conformance_json(const ConformanceSummary& summary,
                      const std::vector<ConformanceViolation>& violations) {
  Json per_pair = Json::array();
  for (const std::uint64_t n : summary.per_pair_violations) per_pair.push(n);
  Json list = Json::array();
  for (const ConformanceViolation& v : violations) {
    list.push(Json::object()
                  .set("window", v.window)
                  .set("t0", v.t0)
                  .set("t1", v.t1)
                  .set("lo", v.lo)
                  .set("hi", v.lo + 1)
                  .set("observed", v.observed)
                  .set("target", v.target)
                  .set("error", v.error)
                  .set("fault", v.fault));
  }
  return Json::object()
      .set("windows", summary.windows)
      .set("pairs_checked", summary.pairs_checked)
      .set("pairs_undefined", summary.pairs_undefined)
      .set("violations", summary.violations)
      .set("violations_during_faults", summary.violations_during_faults)
      .set("max_error", summary.max_error)
      .set("mean_error", summary.mean_error)
      .set("per_pair_violations", std::move(per_pair))
      .set("events", std::move(list));
}

Json sweep_cells_json(const SweepTelemetry& telemetry) {
  Json cells = Json::array();
  for (const CellRecord& cell : telemetry.cells) {
    cells.push(Json::object()
                   .set("index", cell.index)
                   .set("work", cell.work)
                   .set("attempts", cell.attempts)
                   .set("failed", cell.failed));
  }
  return cells;
}

Json sweep_volatile_json(const SweepTelemetry& telemetry) {
  Json busy = Json::array();
  for (const double s : telemetry.worker_busy_s) busy.push(s);
  Json cells = Json::array();
  for (const CellRecord& cell : telemetry.cells) {
    cells.push(Json::object()
                   .set("index", cell.index)
                   .set("worker", cell.worker)
                   .set("start_s", cell.start_s)
                   .set("run_s", cell.run_s));
  }
  return Json::object()
      .set("workers", telemetry.workers)
      .set("steals", telemetry.steals)
      .set("worker_busy_s", std::move(busy))
      .set("elapsed_s", telemetry.elapsed_s)
      .set("cells", std::move(cells));
}

Json failures_json(const std::vector<CellFailure>& failures) {
  Json list = Json::array();
  for (const CellFailure& f : failures) {
    list.push(Json::object()
                  .set("index", f.index)
                  .set("attempts", f.attempts)
                  .set("error", f.error));
  }
  return list;
}

}  // namespace pds
