// Unified run report: one schema-versioned JSON document per run.
//
// Every run artefact so far lives in its own file with its own shape —
// metrics time series (CSV/JSONL), packet traces, profiler tables printed
// to stderr, fault plans, supervisor failures. RunReport aggregates the
// run-end state of all of them into a single machine-readable document:
//
//   {
//     "schema": "pds.run_report/1",
//     "kind": "study_a" | "supervised_sweep",
//     "metrics": {...},        // registry totals at run end
//     "profile": {...},        // per-label event counts
//     "conformance": {...},    // DDP summary + violations
//     "faults": {...},         // episode log
//     "supervisor": {...},     // cells, attempts, failures
//     "volatile": {...}        // OPT-IN: wall times, pool stats
//   }
//
// Determinism contract: every default section is derived from simulation
// state only and is byte-identical for any --jobs. Wall-clock and
// schedule-dependent quantities (pool steals, worker busy time, cell wall
// durations, profiler wall seconds) are quarantined in the "volatile"
// section, which is emitted only on request — so a report diff is a real
// regression signal, and the --jobs differential test can pin default
// reports byte-for-byte.
//
// Json is a deliberately small insertion-ordered DOM — enough to build the
// report without dragging in a JSON library (stdlib-only repo constraint).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pds {

class MetricsRegistry;
class SimProfiler;
struct ConformanceSummary;
struct ConformanceViolation;
struct SweepTelemetry;
struct CellFailure;

// Minimal JSON value: null, bool, integer, double, string, array, object.
// Objects preserve insertion order (reports read top-down); doubles render
// with ostream default precision (the repo-wide convention, see
// obs/metrics.cpp), non-finite doubles render as null.
class Json {
 public:
  Json() = default;  // null
  Json(bool b);
  Json(int v);
  Json(unsigned v);
  Json(long v);
  Json(long long v);
  Json(unsigned long v);
  Json(unsigned long long v);
  Json(double v);
  Json(const char* s);
  Json(std::string s);

  static Json object();
  static Json array();

  // Object append (throws std::logic_error on non-objects). Returns *this
  // for chaining. Duplicate keys are the caller's bug and render as-is.
  Json& set(const std::string& key, Json value);
  // Array append (throws std::logic_error on non-arrays).
  Json& push(Json value);

  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  // Compact single-line rendering (deterministic).
  std::string dump() const;

 private:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  void render(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  long long int_ = 0;
  unsigned long long uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Builder for the report document. Sections are emitted in insertion order
// after the fixed "schema" and "kind" headers.
class RunReport {
 public:
  static constexpr const char* kSchema = "pds.run_report/1";

  explicit RunReport(std::string kind);

  // Adds (or replaces, by key) a top-level section.
  void set_section(const std::string& name, Json value);

  std::string dump() const;
  // Atomic write (tmp + rename); throws on I/O failure.
  void write(const std::string& path) const;

 private:
  std::string kind_;
  std::vector<std::pair<std::string, Json>> sections_;
};

// Section builders for the existing run artefacts. All deterministic unless
// noted.
Json metrics_json(const MetricsRegistry& registry);
// Per-label event counts sorted by label; wall seconds only when
// `include_wall` (volatile).
Json profile_json(const SimProfiler& profiler, bool include_wall = false);
Json conformance_json(const ConformanceSummary& summary,
                      const std::vector<ConformanceViolation>& violations);
// Deterministic part of a sweep's telemetry: per-cell work/attempts/failed.
Json sweep_cells_json(const SweepTelemetry& telemetry);
// Volatile part: workers, steals, per-worker busy time, elapsed, per-cell
// wall placement.
Json sweep_volatile_json(const SweepTelemetry& telemetry);
Json failures_json(const std::vector<CellFailure>& failures);

}  // namespace pds
