#include "obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <tuple>

#include "util/atomic_file.hpp"

namespace pds {

namespace {

constexpr std::uint32_t kSpanCellTid = 2;

// Trace timestamps carry wall micros or scaled sim time; render integral
// values exactly and everything else with fixed sub-microsecond precision so
// equal inputs always produce equal bytes.
std::string fmt_us(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    os << static_cast<long long>(v);
  } else {
    os.setf(std::ios::fixed);
    os.precision(3);
    os << v;
  }
  return os.str();
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Mirrors the pool's contiguous split of [0, count) into
// min(workers, count) shards: which shard does cell `i` start in?
std::uint32_t home_shard(std::size_t i, std::size_t count,
                         std::uint32_t workers) {
  const std::size_t shards =
      std::min<std::size_t>(workers > 0 ? workers : 1, count);
  const std::size_t base = count / shards;
  const std::size_t rem = count % shards;
  const std::size_t big = rem * (base + 1);  // cells in the rem larger shards
  if (i < big) return static_cast<std::uint32_t>(i / (base + 1));
  return static_cast<std::uint32_t>(rem + (i - big) / base);
}

std::string cell_args(const CellRecord& cell) {
  std::ostringstream os;
  os << "\"index\":" << cell.index << ",\"work\":" << cell.work
     << ",\"attempts\":" << cell.attempts << ",\"failed\":"
     << (cell.failed ? "true" : "false");
  return os.str();
}

void render_event(std::ostringstream& os, const Span& s) {
  os << "{\"name\":\"" << escape_json(s.name) << "\",\"cat\":\""
     << escape_json(s.cat) << "\",\"ph\":\"X\",\"ts\":" << fmt_us(s.ts)
     << ",\"dur\":" << fmt_us(s.dur) << ",\"pid\":" << s.pid
     << ",\"tid\":" << s.tid;
  if (!s.args.empty()) os << ",\"args\":{" << s.args << "}";
  os << "}";
}

void render_meta(std::ostringstream& os, const char* name, std::uint32_t pid,
                 const std::uint32_t* tid, const std::string& value) {
  os << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid != nullptr) os << ",\"tid\":" << *tid;
  os << ",\"args\":{\"name\":\"" << escape_json(value) << "\"}}";
}

std::string track_process_name(std::uint32_t pid) {
  if (pid == kSpanSimPid) return "sim";
  std::ostringstream os;
  os << "worker " << (pid - 1);
  return os.str();
}

std::string track_thread_name(std::uint32_t pid, std::uint32_t tid) {
  if (pid == kSpanSimPid) {
    if (tid == kSpanKernelTid) return "kernel";
    if (tid == kSpanFaultTid) return "fault";
    if (tid == kSpanCellTid) return "cells";
    std::ostringstream os;
    os << "track " << tid;
    return os.str();
  }
  std::ostringstream os;
  os << "shard " << tid;
  return os.str();
}

}  // namespace

SpanTracer::SpanTracer(SpanMode mode) : mode_(mode) {}

void SpanTracer::add_sweep(const SweepTelemetry& telemetry) {
  const std::size_t count = telemetry.cells.size();
  if (count == 0) return;
  if (mode_ == SpanMode::kDeterministic) {
    // Virtual timeline: cells back to back in grid order, 1 us per unit of
    // the deterministic work measure (minimum 1 us so empty cells render).
    double at = 0.0;
    for (const CellRecord& cell : telemetry.cells) {
      const double dur =
          cell.work > 0 ? static_cast<double>(cell.work) : 1.0;
      std::ostringstream name;
      name << "cell " << cell.index;
      buffer_.emit(Span{at, dur, kSpanSimPid, kSpanCellTid, name.str(),
                        "sweep.cell", cell_args(cell)});
      at += dur;
    }
    return;
  }

  // Wall mode: real placement. Run spans on (pid = worker + 1, tid = home
  // shard); idle gaps between consecutive cells on the same worker become
  // "wait" spans; the tail from the last cell end to sweep end is the
  // assembly (result collection + stats fold) span.
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const CellRecord& ca = telemetry.cells[a];
    const CellRecord& cb = telemetry.cells[b];
    return std::tie(ca.worker, ca.start_s, ca.index) <
           std::tie(cb.worker, cb.start_s, cb.index);
  });
  double max_end = 0.0;
  std::uint32_t prev_worker = 0;
  double prev_end = 0.0;
  bool have_prev = false;
  for (const std::size_t i : order) {
    const CellRecord& cell = telemetry.cells[i];
    const std::uint32_t pid = cell.worker + 1;
    const std::uint32_t tid = home_shard(cell.index, count, telemetry.workers);
    const double start_us = cell.start_s * 1e6;
    const double run_us = cell.run_s * 1e6;
    if (!have_prev || prev_worker != cell.worker) {
      prev_end = 0.0;
    }
    const double gap_us = start_us - prev_end;
    if (gap_us > 1.0) {
      buffer_.emit(Span{prev_end, gap_us, pid, tid, "wait", "pool.wait", ""});
    }
    std::ostringstream name;
    name << "cell " << cell.index;
    buffer_.emit(Span{start_us, run_us, pid, tid, name.str(), "sweep.cell",
                      cell_args(cell)});
    prev_worker = cell.worker;
    prev_end = start_us + run_us;
    have_prev = true;
    max_end = std::max(max_end, prev_end);
  }
  const double sweep_end_us = telemetry.elapsed_s * 1e6;
  if (sweep_end_us > max_end) {
    std::ostringstream args;
    args << "\"steals\":" << telemetry.steals
         << ",\"workers\":" << telemetry.workers;
    buffer_.emit(Span{max_end, sweep_end_us - max_end, kSpanSimPid,
                      kSpanCellTid, "assemble", "pool.assemble", args.str()});
  }
}

std::string SpanTracer::render() const {
  std::vector<Span> spans = buffer_.spans();
  // Content sort: a deterministic total order that does not depend on which
  // buffer (worker) emitted a span or in what order spans were appended.
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return std::tie(a.pid, a.tid, a.ts, a.dur, a.name, a.cat, a.args) <
           std::tie(b.pid, b.tid, b.ts, b.dur, b.name, b.cat, b.args);
  });

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Track-name metadata: one process_name per distinct pid, one thread_name
  // per distinct (pid, tid). Derived from the sorted span set, so the
  // metadata block is as deterministic as the spans.
  std::uint32_t last_pid = 0;
  std::uint32_t last_tid = 0;
  bool have_pid = false;
  bool have_tid = false;
  for (const Span& s : spans) {
    if (!have_pid || s.pid != last_pid) {
      if (!first) os << ",\n";
      first = false;
      render_meta(os, "process_name", s.pid, nullptr,
                  track_process_name(s.pid));
      last_pid = s.pid;
      have_pid = true;
      have_tid = false;
    }
    if (!have_tid || s.tid != last_tid) {
      if (!first) os << ",\n";
      first = false;
      render_meta(os, "thread_name", s.pid, &s.tid,
                  track_thread_name(s.pid, s.tid));
      last_tid = s.tid;
      have_tid = true;
    }
  }
  for (const Span& s : spans) {
    if (!first) os << ",\n";
    first = false;
    render_event(os, s);
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void SpanTracer::write(const std::string& path) const {
  write_file_atomic(path, render());
}

KernelSpanMonitor::KernelSpanMonitor(SpanBuffer& buffer,
                                     double us_per_time_unit,
                                     std::uint64_t max_batch)
    : buffer_(buffer),
      scale_(us_per_time_unit),
      max_batch_(max_batch > 0 ? max_batch : 1) {}

void KernelSpanMonitor::on_event_begin(SimTime now, const char* label,
                                       std::size_t /*pending*/) noexcept {
  ++events_;
  const bool same =
      open_ && (label == label_ ||
                (label != nullptr && label_ != nullptr &&
                 std::strcmp(label, label_) == 0));
  if (same && count_ < max_batch_) {
    ++count_;
    last_ = now;
    return;
  }
  flush();
  open_ = true;
  label_ = label;
  first_ = now;
  last_ = now;
  count_ = 1;
}

void KernelSpanMonitor::on_event_end(SimTime now, const char* /*label*/) noexcept {
  if (open_) last_ = now;
}

void KernelSpanMonitor::finish() { flush(); }

void KernelSpanMonitor::flush() {
  if (!open_) return;
  std::ostringstream args;
  args << "\"count\":" << count_;
  buffer_.emit(Span{first_ * scale_, (last_ - first_) * scale_, kSpanSimPid,
                    kSpanKernelTid,
                    label_ != nullptr ? std::string(label_) : "(event)",
                    "kernel", args.str()});
  open_ = false;
  label_ = nullptr;
  count_ = 0;
}

void SimMonitorMux::add(SimMonitor* monitor) {
  if (monitor != nullptr) monitors_.push_back(monitor);
}

void SimMonitorMux::on_event_begin(SimTime now, const char* label,
                                   std::size_t pending) noexcept {
  for (SimMonitor* m : monitors_) m->on_event_begin(now, label, pending);
}

void SimMonitorMux::on_event_end(SimTime now, const char* label) noexcept {
  for (SimMonitor* m : monitors_) m->on_event_end(now, label);
}

}  // namespace pds
