// Span tracing: Chrome trace-event / Perfetto-compatible timelines of how a
// run executed.
//
// A Span is one `"ph":"X"` complete event — a named interval on a (pid,
// tid) track. Three emitters produce them:
//
//  * KernelSpanMonitor — a SimMonitor that coalesces consecutive events
//    with the same schedule-time label into one batch span on the
//    simulation-time axis ("drain batches"): the kernel timeline shows what
//    event class the simulator was executing when.
//  * FaultInjector (src/fault/) — one span per fault episode begin→end, so
//    fault windows line up under the kernel timeline.
//  * SpanTracer::add_sweep — per sweep-cell spans built from the
//    SweepTelemetry a supervised sweep records (exp/supervisor.hpp).
//
// Clock domains and the determinism contract: kernel and fault spans live
// on the simulation clock (1 time unit = 1 us by default) and are exactly
// as deterministic as the simulation itself. Sweep-cell spans come in two
// modes:
//
//  * SpanMode::kDeterministic (default) — cells are laid back-to-back in
//    grid order on one track, each with duration equal to its deterministic
//    work measure (report_cell_work, e.g. simulator events). The timeline
//    is a bar chart of per-cell weight: cell skew is visible, and the
//    rendered bytes are identical for any --jobs (the contract
//    tests/telemetry_test.cpp pins).
//  * SpanMode::kWall — cells are placed at their real wall-clock times on
//    pid = executing worker, tid = home shard, with idle-gap "wait" spans
//    and a post-barrier "assemble" span. A stolen cell renders on the
//    thief's pid with the victim's tid — work-stealing imbalance is
//    directly visible. Wall output is schedule-dependent by nature and
//    exempt from byte-identity.
//
// write() merges every buffer, sorts spans by content (a deterministic
// total order independent of which worker emitted what), and commits the
// JSON atomically (tmp + rename).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsim/simulator.hpp"
#include "exp/supervisor.hpp"

namespace pds {

// Track constants for the simulation-clock process row.
inline constexpr std::uint32_t kSpanSimPid = 0;
inline constexpr std::uint32_t kSpanKernelTid = 0;
inline constexpr std::uint32_t kSpanFaultTid = 1;
inline constexpr std::uint32_t kSpanCtrlTid = 2;  // control episodes (ctrl/)

struct Span {
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;
  std::string cat;
  // Pre-rendered JSON object body (`"k":v,...`), empty for no args.
  std::string args;
};

// Append-only span sink. Single-writer: each emitting context (the one
// simulation thread, one pool worker) owns its buffer; merging happens
// post-barrier in SpanTracer.
class SpanBuffer {
 public:
  void emit(Span span) { spans_.push_back(std::move(span)); }
  const std::vector<Span>& spans() const noexcept { return spans_; }
  std::size_t size() const noexcept { return spans_.size(); }

 private:
  std::vector<Span> spans_;
};

enum class SpanMode {
  kDeterministic,  // byte-identical across --jobs; virtual cell timeline
  kWall,           // real wall-clock cell placement; schedule-dependent
};

class SpanTracer {
 public:
  explicit SpanTracer(SpanMode mode = SpanMode::kDeterministic);

  SpanMode mode() const noexcept { return mode_; }

  SpanBuffer& buffer() noexcept { return buffer_; }

  // Ingests a supervised sweep's telemetry as per-cell spans (see the mode
  // semantics above). Call after the sweep barrier.
  void add_sweep(const SweepTelemetry& telemetry);

  std::size_t span_count() const noexcept { return buffer_.size(); }

  // Deterministic merge + render: spans sorted by full content, rendered as
  // a Chrome trace-event JSON document ({"traceEvents":[...]}).
  std::string render() const;

  // Renders and writes atomically (tmp + rename). Throws on I/O failure.
  void write(const std::string& path) const;

 private:
  SpanMode mode_;
  SpanBuffer buffer_;
};

// SimMonitor that batches executed events into spans by label: consecutive
// events with the same label become one span from the first event's time to
// the last's, with the event count in args. A batch also closes after
// `max_batch` events so a long homogeneous stretch still shows progress.
// Timestamps are simulation time scaled by `us_per_time_unit` — fully
// deterministic. Call finish() after the run to flush the open batch.
class KernelSpanMonitor final : public SimMonitor {
 public:
  explicit KernelSpanMonitor(SpanBuffer& buffer,
                             double us_per_time_unit = 1.0,
                             std::uint64_t max_batch = 65536);

  void on_event_begin(SimTime now, const char* label,
                      std::size_t pending) noexcept override;
  void on_event_end(SimTime now, const char* label) noexcept override;

  void finish();

  std::uint64_t events_seen() const noexcept { return events_; }

 private:
  void flush();

  SpanBuffer& buffer_;
  double scale_;
  std::uint64_t max_batch_;
  const char* label_ = nullptr;  // nullptr = no open batch
  bool open_ = false;
  SimTime first_ = 0.0;
  SimTime last_ = 0.0;
  std::uint64_t count_ = 0;
  std::uint64_t events_ = 0;
};

// Fans one kernel monitor slot out to several SimMonitors (the kernel holds
// exactly one): profiler + span monitor can observe the same run.
class SimMonitorMux final : public SimMonitor {
 public:
  void add(SimMonitor* monitor);

  void on_event_begin(SimTime now, const char* label,
                      std::size_t pending) noexcept override;
  void on_event_end(SimTime now, const char* label) noexcept override;

 private:
  std::vector<SimMonitor*> monitors_;
};

}  // namespace pds
