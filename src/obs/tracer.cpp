#include "obs/tracer.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/contracts.hpp"

namespace pds {

namespace {

// SplitMix64 finalizer: a high-quality 64-bit mix, used as a stateless hash
// so the sampling decision is a pure function of (id, seed).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kArrive:
      return "arrive";
    case TraceEventKind::kEnqueue:
      return "enqueue";
    case TraceEventKind::kDequeue:
      return "dequeue";
    case TraceEventKind::kDepart:
      return "depart";
    case TraceEventKind::kDrop:
      return "drop";
  }
  return "?";
}

TraceEventKind trace_event_kind_from_string(const std::string& s) {
  if (s == "arrive") return TraceEventKind::kArrive;
  if (s == "enqueue") return TraceEventKind::kEnqueue;
  if (s == "dequeue") return TraceEventKind::kDequeue;
  if (s == "depart") return TraceEventKind::kDepart;
  if (s == "drop") return TraceEventKind::kDrop;
  throw std::invalid_argument("unknown trace event kind: " + s);
}

PacketTracer::PacketTracer(double sample_rate, std::uint64_t seed)
    : sample_rate_(sample_rate), seed_(seed) {
  PDS_CHECK(sample_rate >= 0.0 && sample_rate <= 1.0,
            "sample rate must be in [0,1]");
  if (sample_rate >= 1.0) {
    threshold_ = ~0ULL;
  } else {
    threshold_ = static_cast<std::uint64_t>(
        sample_rate * static_cast<double>(~0ULL));
  }
}

bool PacketTracer::sampled(std::uint64_t packet_id) const noexcept {
  if (sample_rate_ >= 1.0) return true;
  if (sample_rate_ <= 0.0) return false;
  return mix64(packet_id ^ mix64(seed_)) < threshold_;
}

void PacketTracer::record(const Packet& p, const ProbeContext& ctx,
                          SimTime now, TraceEventKind kind, double wait) {
  if (!sampled(p.id)) return;
  records_.push_back(TraceRecord{now, p.id, kind, p.cls, ctx.hop,
                                 p.size_bytes, wait, ctx.backlog_packets,
                                 ctx.backlog_bytes});
}

void PacketTracer::on_arrive(const Packet& p, const ProbeContext& ctx,
                             SimTime now) {
  record(p, ctx, now, TraceEventKind::kArrive, 0.0);
}

void PacketTracer::on_enqueue(const Packet& p, const ProbeContext& ctx,
                              SimTime now) {
  record(p, ctx, now, TraceEventKind::kEnqueue, 0.0);
}

void PacketTracer::on_dequeue(const Packet& p, const ProbeContext& ctx,
                              SimTime now, SimTime wait) {
  record(p, ctx, now, TraceEventKind::kDequeue, wait);
}

void PacketTracer::on_depart(const Packet& p, const ProbeContext& ctx,
                             SimTime now, SimTime wait) {
  record(p, ctx, now, TraceEventKind::kDepart, wait);
}

void PacketTracer::on_drop(const Packet& p, const ProbeContext& ctx,
                           SimTime now) {
  record(p, ctx, now, TraceEventKind::kDrop, 0.0);
}

void PacketTracer::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out << "time,packet_id,event,class,hop,size_bytes,wait,"
         "backlog_packets,backlog_bytes\n";
  for (const auto& r : records_) {
    out << r.time << ',' << r.packet_id << ',' << to_string(r.kind) << ','
        << r.cls << ',' << r.hop << ',' << r.size_bytes << ',' << r.wait
        << ',' << r.backlog_packets << ',' << r.backlog_bytes << '\n';
  }
  PDS_CHECK(static_cast<bool>(out), "write failure: " + path);
}

std::vector<TraceRecord> PacketTracer::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::vector<TraceRecord> records;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      PDS_CHECK(line.rfind("time,packet_id,event", 0) == 0,
                "not a packet trace CSV (bad header): " + path);
      continue;
    }
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ls, field, ',')) fields.push_back(field);
    PDS_CHECK(fields.size() == 9, "malformed trace row: " + line);
    TraceRecord r;
    r.time = std::stod(fields[0]);
    r.packet_id = std::stoull(fields[1]);
    r.kind = trace_event_kind_from_string(fields[2]);
    r.cls = static_cast<ClassId>(std::stoul(fields[3]));
    r.hop = static_cast<std::uint32_t>(std::stoul(fields[4]));
    r.size_bytes = static_cast<std::uint32_t>(std::stoul(fields[5]));
    r.wait = std::stod(fields[6]);
    r.backlog_packets = std::stoull(fields[7]);
    r.backlog_bytes = std::stoull(fields[8]);
    records.push_back(r);
  }
  return records;
}

}  // namespace pds
