// Sampled packet-lifecycle tracer.
//
// A PacketTracer is a PacketProbe that records one TraceRecord per lifecycle
// transition (arrive / enqueue / dequeue / depart / drop) of every *sampled*
// packet. Sampling is per packet, not per event: the decision is a pure hash
// of (packet id, seed) against the sampling rate, so either a packet's whole
// lifecycle is in the trace or none of it is, the sampled set is identical
// across runs with the same seed (determinism the tests rely on), and no RNG
// stream state is perturbed by turning tracing on.
//
// Records accumulate in memory (32 B each) and are dumped to CSV with
// save(); load() reads the same format back for trace_inspect and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace pds {

enum class TraceEventKind : std::uint8_t {
  kArrive,
  kEnqueue,
  kDequeue,  // start of transmission
  kDepart,   // end of transmission
  kDrop,
};

const char* to_string(TraceEventKind kind) noexcept;
TraceEventKind trace_event_kind_from_string(const std::string& s);

struct TraceRecord {
  SimTime time = 0.0;
  std::uint64_t packet_id = 0;
  TraceEventKind kind = TraceEventKind::kArrive;
  ClassId cls = 0;
  std::uint32_t hop = 0;
  std::uint32_t size_bytes = 0;
  // Queueing delay at this hop; meaningful for kDequeue/kDepart, 0 otherwise.
  double wait = 0.0;
  // Packet's class backlog at the emitting component, post-transition.
  std::uint64_t backlog_packets = 0;
  std::uint64_t backlog_bytes = 0;
};

class PacketTracer final : public PacketProbe {
 public:
  // `sample_rate` in [0, 1]: expected fraction of packets traced (1 traces
  // everything, 0 nothing). `seed` picks the sampled subset.
  PacketTracer(double sample_rate, std::uint64_t seed);

  // Deterministic per-packet sampling decision (public for tests and for
  // callers that want to co-sample auxiliary state).
  bool sampled(std::uint64_t packet_id) const noexcept;

  void on_arrive(const Packet& p, const ProbeContext& ctx,
                 SimTime now) override;
  void on_enqueue(const Packet& p, const ProbeContext& ctx,
                  SimTime now) override;
  void on_dequeue(const Packet& p, const ProbeContext& ctx, SimTime now,
                  SimTime wait) override;
  void on_depart(const Packet& p, const ProbeContext& ctx, SimTime now,
                 SimTime wait) override;
  void on_drop(const Packet& p, const ProbeContext& ctx, SimTime now) override;

  const std::vector<TraceRecord>& records() const noexcept { return records_; }
  double sample_rate() const noexcept { return sample_rate_; }

  // CSV round trip. save() throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  static std::vector<TraceRecord> load(const std::string& path);

 private:
  void record(const Packet& p, const ProbeContext& ctx, SimTime now,
              TraceEventKind kind, double wait);

  double sample_rate_;
  std::uint64_t seed_;
  std::uint64_t threshold_;  // sample iff hash(id) < threshold_
  std::vector<TraceRecord> records_;
};

}  // namespace pds
