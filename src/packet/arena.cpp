#include "packet/arena.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace pds {

PacketArena::PacketArena(std::size_t chunk_bytes)
    : chunk_bytes_(block_size(chunk_bytes)) {
  PDS_CHECK(chunk_bytes >= kMinBlockBytes,
            "arena chunk must hold at least one block");
}

std::size_t PacketArena::block_size(std::size_t bytes) noexcept {
  if (bytes <= kMinBlockBytes) return kMinBlockBytes;
  return std::bit_ceil(bytes);
}

std::size_t PacketArena::class_index(std::size_t block) noexcept {
  // block is a power of two >= kMinBlockBytes.
  return static_cast<std::size_t>(std::countr_zero(block)) -
         static_cast<std::size_t>(std::countr_zero(kMinBlockBytes));
}

void PacketArena::new_chunk(std::size_t at_least) {
  const std::size_t size = at_least > chunk_bytes_ ? at_least : chunk_bytes_;
  // The tail of the previous chunk is abandoned, not carved up: growth
  // doubles, so the tail is at most one block of the size that no longer
  // fits, and simplicity beats reclaiming it.
  chunks_.push_back(std::make_unique<std::byte[]>(size));
  bump_ = chunks_.back().get();
  bump_left_ = size;
  chunk_bytes_total_ += size;
}

void* PacketArena::acquire(std::size_t bytes) {
  const std::size_t block = block_size(bytes);
  const std::size_t idx = class_index(block);
  PDS_REQUIRE(idx < kNumClasses);
  ++acquired_;
  if (FreeNode* node = free_[idx]) {
    free_[idx] = node->next;
    ++freelist_hits_;
    return node;
  }
  if (bump_left_ < block) new_chunk(block);
  void* out = bump_;
  bump_ += block;
  bump_left_ -= block;
  return out;
}

void PacketArena::release(void* block, std::size_t bytes) noexcept {
  const std::size_t idx = class_index(block_size(bytes));
  auto* node = static_cast<FreeNode*>(block);
  node->next = free_[idx];
  free_[idx] = node;
  ++released_;
}

void PacketArena::reserve(std::size_t bytes) {
  const std::size_t need = block_size(bytes);
  if (bump_left_ < need) new_chunk(need);
}

}  // namespace pds
