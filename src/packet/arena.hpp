// PacketArena: slab-backed block allocator for the packet plane.
//
// The per-class ring buffers (queueing/ClassQueue) are the only place the
// hot path ever asks the global allocator for memory: a deep backlog doubles
// a ring, a scheduler teardown frees it. Backing the rings with an arena
// removes that traffic entirely — blocks are carved from large lazily
// allocated chunks, recycled through per-size freelists when a ring grows or
// a queue is destroyed, and only returned to the operating system when the
// arena itself dies. A prewarmed arena (reserve()) makes ring growth
// allocation-free even the first time, which is what the pipeline micro
// bench's 0.0 allocs/packet guard relies on.
//
// Blocks are power-of-two sized (minimum kMinBlockBytes) so a ring that
// doubles releases a block exactly one size class below the one it acquires,
// and a later ring of the same depth reuses it without fragmentation. The
// freelist is intrusive — the next pointer lives in the freed block itself —
// so the arena's bookkeeping never allocates either.
//
// Lifetime rule: the arena must outlive every queue it backs. Network and
// ChainNetwork own one arena each, declared before their schedulers so
// destruction releases rings into a still-live arena. The arena is
// single-threaded, like the simulator kernel it serves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pds {

class PacketArena {
 public:
  // Granularity floor of the size classes; every block is a power of two
  // >= this. 64 bytes keeps distinct blocks on distinct cache lines.
  static constexpr std::size_t kMinBlockBytes = 64;

  // Default backing-chunk size. A chunk serves many rings; requests larger
  // than the chunk get a dedicated chunk of their own size.
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{256} * 1024;

  explicit PacketArena(std::size_t chunk_bytes = kDefaultChunkBytes);
  ~PacketArena() = default;

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  // Returns a block of at least `bytes` bytes (rounded up to the block size
  // block_size(bytes) the caller must remember for release). Never fails
  // short of std::bad_alloc from the underlying chunk allocation.
  void* acquire(std::size_t bytes);

  // Returns a block obtained from acquire(bytes) to its freelist. The
  // arena keeps the memory for reuse; nothing is freed until destruction.
  void release(void* block, std::size_t bytes) noexcept;

  // Ensures at least `bytes` of contiguous never-used capacity, so the next
  // acquisitions up to that total hit no global allocation. Call before a
  // measured region to make subsequent ring growth allocation-free.
  void reserve(std::size_t bytes);

  // Rounded block size a request for `bytes` actually occupies.
  static std::size_t block_size(std::size_t bytes) noexcept;

  // --- statistics (tests, benches) ---------------------------------------
  std::uint64_t chunks_allocated() const noexcept { return chunks_.size(); }
  std::uint64_t blocks_acquired() const noexcept { return acquired_; }
  std::uint64_t blocks_released() const noexcept { return released_; }
  // Acquisitions served from the freelist rather than fresh chunk space.
  std::uint64_t freelist_hits() const noexcept { return freelist_hits_; }
  std::uint64_t bytes_in_chunks() const noexcept { return chunk_bytes_total_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  // Size-class index of a (already rounded) block size.
  static std::size_t class_index(std::size_t block) noexcept;

  // Large enough for any sane block (kMinBlockBytes << 40 overflows memory
  // long before the index does).
  static constexpr std::size_t kNumClasses = 40;

  void new_chunk(std::size_t at_least);

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* bump_ = nullptr;       // next unused byte of the current chunk
  std::size_t bump_left_ = 0;       // unused bytes left in the current chunk
  FreeNode* free_[kNumClasses] = {};
  std::uint64_t acquired_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t freelist_hits_ = 0;
  std::uint64_t chunk_bytes_total_ = 0;
};

}  // namespace pds
