// Packet record and service-class conventions.
//
// Class indices are 0-based internally. Following the paper's ordering,
// *higher* index means *higher* (better) class: class N-1 has the largest
// scheduler differentiation parameter s and the smallest target delay.
// Human-readable output converts to the paper's 1-based names where class 1
// is the lowest class.
#pragma once

#include <cstdint>

#include "dsim/time.hpp"

namespace pds {

using ClassId = std::uint32_t;
using FlowId = std::uint32_t;
using RouteId = std::uint32_t;

inline constexpr FlowId kNoFlow = ~FlowId{0};
inline constexpr RouteId kNoRoute = ~RouteId{0};

struct Packet {
  std::uint64_t id = 0;           // unique per run, assigned by the source
  ClassId cls = 0;                // 0-based service class (higher = better)
  std::uint32_t size_bytes = 0;   // wire size
  FlowId flow = kNoFlow;          // owning flow, if any (Study B user flows)
  RouteId route = kNoRoute;       // path through a net::Network, if routed
  SimTime created = kTimeZero;    // emission time at the original source
  SimTime arrival = kTimeZero;    // arrival at the *current* hop's queue
  SimTime cum_queueing = 0.0;     // accumulated queueing delay over past hops
  std::uint32_t hops_done = 0;    // number of hops already traversed
};

// Paper's 1-based class label for reports: internal index i corresponds to
// paper "class i+1" (class 1 is the lowest class in both conventions).
inline int paper_class_label(ClassId internal) {
  return static_cast<int>(internal) + 1;
}

}  // namespace pds
