#include "packet/size_law.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pds {

DiscreteDist paper_size_law() {
  return DiscreteDist({{40.0, 0.4}, {550.0, 0.5}, {1500.0, 0.1}});
}

std::uint32_t sample_size_bytes(const DiscreteDist& law, Rng& rng) {
  const double v = law.sample(rng);
  PDS_REQUIRE(v >= 1.0);
  return static_cast<std::uint32_t>(std::lround(v));
}

}  // namespace pds
