// Packet-size laws.
//
// Study A uses the paper's three-point empirical distribution (40% of
// packets are 40 bytes, 50% are 550 bytes, 10% are 1500 bytes; mean 441 B).
// Study B uses fixed 500-byte packets. The paper's "p-unit" — the mean
// packet transmission time used as the unit for monitoring timescales — is
// 11.2 time units, which fixes the Study A link capacity at
// 441 B / 11.2 tu = 39.375 bytes per time unit.
#pragma once

#include <cstdint>

#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace pds {

// Mean transmission time of an average packet in Study A time units.
inline constexpr double kPUnit = 11.2;

// Paper Study A empirical size law (Section 5).
DiscreteDist paper_size_law();

// Mean of paper_size_law() in bytes: 0.4*40 + 0.5*550 + 0.1*1500.
inline constexpr double kPaperMeanPacketBytes = 441.0;

// Study A link capacity, in bytes per time unit, that makes the mean packet
// transmission time equal to one p-unit.
inline constexpr double kStudyACapacity = kPaperMeanPacketBytes / kPUnit;

// Samples a packet size in whole bytes from a size distribution.
std::uint32_t sample_size_bytes(const DiscreteDist& law, Rng& rng);

}  // namespace pds
