#include "queueing/backlog.hpp"

#include "util/contracts.hpp"

namespace pds {

namespace {

constexpr std::uint32_t padded(std::uint32_t n) noexcept {
  return (n + (MultiClassBacklog::kLanePad - 1)) &
         ~(MultiClassBacklog::kLanePad - 1);
}

}  // namespace

MultiClassBacklog::MultiClassBacklog(std::uint32_t num_classes,
                                     PacketArena* arena)
    : arena_(arena),
      queues_(num_classes),
      heads_(num_classes),
      soa_arrival_(padded(num_classes), 0.0),
      soa_head_bytes_(padded(num_classes), 0.0),
      soa_mask_(padded(num_classes), 0) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
  if (arena != nullptr) {
    for (auto& q : queues_) q.set_arena(arena);
  }
}

void MultiClassBacklog::refresh_soa_head(ClassId cls) {
  const ClassHead& h = heads_[cls];
  if (h.packets == 0) {
    soa_arrival_[cls] = 0.0;
    soa_head_bytes_[cls] = 0.0;
    soa_mask_[cls] = 0;
  } else {
    soa_arrival_[cls] = h.arrival;
    soa_head_bytes_[cls] = static_cast<double>(h.head_bytes);
    soa_mask_[cls] = ~std::uint64_t{0};
  }
}

void MultiClassBacklog::push(Packet p) {
  PDS_CHECK(p.cls < queues_.size(), "class index out of range");
  ++total_packets_;
  total_bytes_ += p.size_bytes;
  ClassHead& h = heads_[p.cls];
  h.bytes += p.size_bytes;
  if (h.packets++ == 0) {
    // The arrival becomes the head of an idle class.
    h.arrival = p.arrival;
    h.head_bytes = p.size_bytes;
    refresh_soa_head(p.cls);
  }
  queues_[p.cls].push(std::move(p));
}

Packet MultiClassBacklog::pop(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  Packet p = queues_[cls].pop();
  --total_packets_;
  total_bytes_ -= p.size_bytes;
  ClassHead& h = heads_[cls];
  h.bytes -= p.size_bytes;
  if (--h.packets != 0) {
    const Packet& next = queues_[cls].head();
    h.arrival = next.arrival;
    h.head_bytes = next.size_bytes;
  }
  refresh_soa_head(cls);
  return p;
}

std::uint32_t MultiClassBacklog::pop_burst(ClassId cls, std::uint32_t max_k,
                                           Packet* out) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  PDS_CHECK(out != nullptr, "null burst buffer");
  const std::uint32_t k =
      max_k < heads_[cls].packets ? max_k : heads_[cls].packets;
  for (std::uint32_t i = 0; i < k; ++i) out[i] = pop(cls);
  return k;
}

Packet MultiClassBacklog::pop_tail(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  Packet p = queues_[cls].pop_tail();
  --total_packets_;
  total_bytes_ -= p.size_bytes;
  ClassHead& h = heads_[cls];
  h.bytes -= p.size_bytes;
  // A tail removal only changes the head fields when it empties the class,
  // and `packets == 0` already marks those fields stale.
  if (--h.packets == 0) refresh_soa_head(cls);
  return p;
}

const ClassQueue& MultiClassBacklog::queue(ClassId cls) const {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  return queues_[cls];
}

ClassQueue& MultiClassBacklog::queue(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  return queues_[cls];
}

std::vector<ClassId> MultiClassBacklog::backlogged() const {
  std::vector<ClassId> out;
  out.reserve(queues_.size());
  for (ClassId c = 0; c < queues_.size(); ++c) {
    if (!queues_[c].empty()) out.push_back(c);
  }
  return out;
}

}  // namespace pds
