#include "queueing/backlog.hpp"

#include "util/contracts.hpp"

namespace pds {

MultiClassBacklog::MultiClassBacklog(std::uint32_t num_classes)
    : queues_(num_classes) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
}

void MultiClassBacklog::push(Packet p) {
  PDS_CHECK(p.cls < queues_.size(), "class index out of range");
  ++total_packets_;
  total_bytes_ += p.size_bytes;
  queues_[p.cls].push(std::move(p));
}

Packet MultiClassBacklog::pop(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  Packet p = queues_[cls].pop();
  --total_packets_;
  total_bytes_ -= p.size_bytes;
  return p;
}

Packet MultiClassBacklog::pop_tail(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  Packet p = queues_[cls].pop_tail();
  --total_packets_;
  total_bytes_ -= p.size_bytes;
  return p;
}

const ClassQueue& MultiClassBacklog::queue(ClassId cls) const {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  return queues_[cls];
}

ClassQueue& MultiClassBacklog::queue(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  return queues_[cls];
}

std::vector<ClassId> MultiClassBacklog::backlogged() const {
  std::vector<ClassId> out;
  out.reserve(queues_.size());
  for (ClassId c = 0; c < queues_.size(); ++c) {
    if (!queues_[c].empty()) out.push_back(c);
  }
  return out;
}

}  // namespace pds
