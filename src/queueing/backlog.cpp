#include "queueing/backlog.hpp"

#include "util/contracts.hpp"

namespace pds {

MultiClassBacklog::MultiClassBacklog(std::uint32_t num_classes)
    : queues_(num_classes), heads_(num_classes) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
}

void MultiClassBacklog::push(Packet p) {
  PDS_CHECK(p.cls < queues_.size(), "class index out of range");
  ++total_packets_;
  total_bytes_ += p.size_bytes;
  ClassHead& h = heads_[p.cls];
  h.bytes += p.size_bytes;
  if (h.packets++ == 0) {
    // The arrival becomes the head of an idle class.
    h.arrival = p.arrival;
    h.head_bytes = p.size_bytes;
  }
  queues_[p.cls].push(std::move(p));
}

Packet MultiClassBacklog::pop(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  Packet p = queues_[cls].pop();
  --total_packets_;
  total_bytes_ -= p.size_bytes;
  ClassHead& h = heads_[cls];
  h.bytes -= p.size_bytes;
  if (--h.packets != 0) {
    const Packet& next = queues_[cls].head();
    h.arrival = next.arrival;
    h.head_bytes = next.size_bytes;
  }
  return p;
}

Packet MultiClassBacklog::pop_tail(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  Packet p = queues_[cls].pop_tail();
  --total_packets_;
  total_bytes_ -= p.size_bytes;
  ClassHead& h = heads_[cls];
  h.bytes -= p.size_bytes;
  // A tail removal only changes the head fields when it empties the class,
  // and `packets == 0` already marks those fields stale.
  --h.packets;
  return p;
}

const ClassQueue& MultiClassBacklog::queue(ClassId cls) const {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  return queues_[cls];
}

ClassQueue& MultiClassBacklog::queue(ClassId cls) {
  PDS_CHECK(cls < queues_.size(), "class index out of range");
  return queues_[cls];
}

std::vector<ClassId> MultiClassBacklog::backlogged() const {
  std::vector<ClassId> out;
  out.reserve(queues_.size());
  for (ClassId c = 0; c < queues_.size(); ++c) {
    if (!queues_[c].empty()) out.push_back(c);
  }
  return out;
}

}  // namespace pds
