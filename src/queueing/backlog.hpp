// A fixed-size set of per-class FIFO queues with aggregate accounting —
// the shared state of every multi-class scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/arena.hpp"
#include "packet/packet.hpp"
#include "queueing/class_queue.hpp"

namespace pds {

// Contiguous head-of-line snapshot, one entry per class: everything a
// scheduler's dequeue scan reads (head arrival time, head size, byte and
// packet backlog) in one flat 24-byte record, maintained incrementally by
// push/pop/pop_tail. `bytes` and `packets` are always exact; `arrival` and
// `head_bytes` describe the head packet and are stale while `packets == 0`
// (the idle sentinel). Schedulers scan this array instead
// of chasing per-class queue objects, so one decision over N classes
// touches one or two cache lines instead of N.
struct ClassHead {
  SimTime arrival = kTimeZero;   // arrival time of the head packet
  std::uint64_t bytes = 0;       // byte backlog of the class
  std::uint32_t head_bytes = 0;  // wire size of the head packet
  std::uint32_t packets = 0;     // packet backlog; 0 == idle
};

class MultiClassBacklog {
 public:
  // Lane-padding granularity of the SoA mirror below; must equal
  // scan::kLanes (static_asserted in sched/scheduler.cpp).
  static constexpr std::uint32_t kLanePad = 4;

  // `arena`, when non-null, backs every class ring (see ClassQueue) and
  // must outlive the backlog.
  explicit MultiClassBacklog(std::uint32_t num_classes,
                             PacketArena* arena = nullptr);

  // Movable so a live scheduler swap (ctrl/) can hand the whole backlog —
  // class rings and SoA mirror intact — to a replacement scheduler. The
  // moved-from backlog must be reassigned before further use.
  MultiClassBacklog(MultiClassBacklog&&) = default;
  MultiClassBacklog& operator=(MultiClassBacklog&&) = default;
  MultiClassBacklog(const MultiClassBacklog&) = delete;
  MultiClassBacklog& operator=(const MultiClassBacklog&) = delete;

  void push(Packet p);
  Packet pop(ClassId cls);
  // Removes the most recent arrival of a class (push-out for droppers).
  Packet pop_tail(ClassId cls);

  // Drains up to `max_k` consecutive head packets of one class into `out`
  // (capacity >= max_k) and returns how many were popped — the backlog half
  // of a burst dequeue. Identical accounting to that many pop() calls.
  std::uint32_t pop_burst(ClassId cls, std::uint32_t max_k, Packet* out);

  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }

  const ClassQueue& queue(ClassId cls) const;
  ClassQueue& queue(ClassId cls);

  // Head-of-line snapshot indexed by class; exactly num_classes() entries.
  const ClassHead* heads() const noexcept { return heads_.data(); }
  const ClassHead& head_of(ClassId cls) const noexcept { return heads_[cls]; }

  // --- SoA mirror of the head snapshot, for the vectorized priority scan
  // (sched/scan.hpp). All three arrays hold lane_count() entries: the first
  // num_classes() lanes mirror the backlogged heads (idle and padding lanes
  // read 0.0 / mask 0), maintained incrementally by push/pop/pop_tail.
  const double* soa_head_arrival() const noexcept {
    return soa_arrival_.data();
  }
  const double* soa_head_bytes() const noexcept {
    return soa_head_bytes_.data();
  }
  const std::uint64_t* soa_mask() const noexcept { return soa_mask_.data(); }
  std::uint32_t lane_count() const noexcept {
    return static_cast<std::uint32_t>(soa_mask_.size());
  }

  // Backing arena shared by every class ring (nullptr == global allocator).
  PacketArena* arena() const noexcept { return arena_; }

  bool empty() const noexcept { return total_packets_ == 0; }
  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  // Indices of currently backlogged classes, ascending.
  std::vector<ClassId> backlogged() const;

 private:
  void refresh_soa_head(ClassId cls);

  PacketArena* arena_ = nullptr;
  std::vector<ClassQueue> queues_;
  std::vector<ClassHead> heads_;
  std::vector<double> soa_arrival_;
  std::vector<double> soa_head_bytes_;
  std::vector<std::uint64_t> soa_mask_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace pds
