// A fixed-size set of per-class FIFO queues with aggregate accounting —
// the shared state of every multi-class scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"
#include "queueing/class_queue.hpp"

namespace pds {

class MultiClassBacklog {
 public:
  explicit MultiClassBacklog(std::uint32_t num_classes);

  void push(Packet p);
  Packet pop(ClassId cls);
  // Removes the most recent arrival of a class (push-out for droppers).
  Packet pop_tail(ClassId cls);

  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }

  const ClassQueue& queue(ClassId cls) const;
  ClassQueue& queue(ClassId cls);

  bool empty() const noexcept { return total_packets_ == 0; }
  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  // Indices of currently backlogged classes, ascending.
  std::vector<ClassId> backlogged() const;

 private:
  std::vector<ClassQueue> queues_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace pds
