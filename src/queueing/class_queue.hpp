// Per-class FIFO queue with O(1) backlog accounting.
//
// Packets within one service class always depart in arrival order — every
// scheduler in this library differentiates *between* classes, never inside a
// class. The queue tracks both packet and byte backlog; byte backlog drives
// the BPR rate allocation (Eq. 8), packet counts drive statistics.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "packet/packet.hpp"
#include "util/contracts.hpp"

namespace pds {

class ClassQueue {
 public:
  ClassQueue() = default;

  void push(Packet p) {
    bytes_ += p.size_bytes;
    ++total_arrived_;
    q_.push_back(std::move(p));
  }

  // Removes and returns the head. Requires a non-empty queue.
  Packet pop() {
    PDS_REQUIRE(!q_.empty());
    Packet p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p.size_bytes;
    return p;
  }

  // Removes and returns the most recently arrived packet (used by droppers
  // that push out from the tail of a class).
  Packet pop_tail() {
    PDS_REQUIRE(!q_.empty());
    Packet p = std::move(q_.back());
    q_.pop_back();
    bytes_ -= p.size_bytes;
    return p;
  }

  const Packet& head() const {
    PDS_REQUIRE(!q_.empty());
    return q_.front();
  }

  bool empty() const noexcept { return q_.empty(); }
  std::size_t packets() const noexcept { return q_.size(); }
  std::uint64_t bytes() const noexcept { return bytes_; }
  std::uint64_t total_arrived() const noexcept { return total_arrived_; }

 private:
  std::deque<Packet> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t total_arrived_ = 0;
};

}  // namespace pds
