// Per-class FIFO queue with O(1) backlog accounting.
//
// Packets within one service class always depart in arrival order — every
// scheduler in this library differentiates *between* classes, never inside a
// class. The queue tracks both packet and byte backlog; byte backlog drives
// the BPR rate allocation (Eq. 8), packet counts drive statistics.
//
// Storage is a power-of-two ring buffer over a flat Packet array rather than
// a std::deque: deque's 512-byte block map costs an extra pointer chase per
// access and scatters consecutive packets across allocations, while the ring
// keeps a class's backlog contiguous (modulo one wrap seam) and makes
// push/pop/pop_tail/head branch-free index arithmetic. Head and tail are
// free-running counters masked on access, so emptiness is `head_ == tail_`
// and size is plain subtraction — no wasted slot, no wrap bookkeeping.
// Capacity doubles on overflow and is never given back: a class that once
// built a large backlog is expected to do so again.
//
// Ring storage comes from an optional PacketArena (set_arena before the
// first push): growth then recycles the old ring into the arena's freelist
// instead of hitting the global allocator, which is what keeps the packet
// plane allocation-free in steady state. Without an arena the queue falls
// back to plain operator new/delete. The arena must outlive the queue.
#pragma once

#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "packet/arena.hpp"
#include "packet/packet.hpp"
#include "util/contracts.hpp"

namespace pds {

class ClassQueue {
 public:
  ClassQueue() = default;

  ~ClassQueue() { free_slots(buf_, cap_); }

  ClassQueue(const ClassQueue&) = delete;
  ClassQueue& operator=(const ClassQueue&) = delete;

  ClassQueue(ClassQueue&& other) noexcept
      : arena_(other.arena_),
        buf_(std::exchange(other.buf_, nullptr)),
        cap_(std::exchange(other.cap_, 0)),
        mask_(std::exchange(other.mask_, 0)),
        head_(std::exchange(other.head_, 0)),
        tail_(std::exchange(other.tail_, 0)),
        bytes_(std::exchange(other.bytes_, 0)),
        total_arrived_(std::exchange(other.total_arrived_, 0)) {}

  ClassQueue& operator=(ClassQueue&& other) noexcept {
    if (this != &other) {
      free_slots(buf_, cap_);
      arena_ = other.arena_;
      buf_ = std::exchange(other.buf_, nullptr);
      cap_ = std::exchange(other.cap_, 0);
      mask_ = std::exchange(other.mask_, 0);
      head_ = std::exchange(other.head_, 0);
      tail_ = std::exchange(other.tail_, 0);
      bytes_ = std::exchange(other.bytes_, 0);
      total_arrived_ = std::exchange(other.total_arrived_, 0);
    }
    return *this;
  }

  // Backs the ring with `arena` (nullptr reverts to the global allocator).
  // Must be called before the first push; the arena must outlive the queue.
  void set_arena(PacketArena* arena) {
    PDS_CHECK(cap_ == 0, "set_arena before the first push");
    arena_ = arena;
  }

  void push(Packet p) {
    if (tail_ - head_ == cap_) grow();
    bytes_ += p.size_bytes;
    ++total_arrived_;
    buf_[tail_ & mask_] = p;
    ++tail_;
  }

  // Removes and returns the head. Requires a non-empty queue.
  Packet pop() {
    PDS_REQUIRE(head_ != tail_);
    Packet p = buf_[head_ & mask_];
    ++head_;
    bytes_ -= p.size_bytes;
    return p;
  }

  // Removes and returns the most recently arrived packet (used by droppers
  // that push out from the tail of a class).
  Packet pop_tail() {
    PDS_REQUIRE(head_ != tail_);
    --tail_;
    Packet p = buf_[tail_ & mask_];
    bytes_ -= p.size_bytes;
    return p;
  }

  const Packet& head() const {
    PDS_REQUIRE(head_ != tail_);
    return buf_[head_ & mask_];
  }

  bool empty() const noexcept { return head_ == tail_; }
  std::size_t packets() const noexcept { return tail_ - head_; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  std::uint64_t total_arrived() const noexcept { return total_arrived_; }

  // Allocated slot count (power of two, or zero before the first push).
  std::size_t capacity() const noexcept { return cap_; }

  // True when the ring is arena-backed.
  bool arena_backed() const noexcept { return arena_ != nullptr; }

 private:
  static_assert(std::is_trivially_copyable_v<Packet> &&
                    std::is_trivially_destructible_v<Packet>,
                "the ring relies on raw-memory Packet slots");

  Packet* alloc_slots(std::size_t n) {
    void* mem = arena_ != nullptr
                    ? arena_->acquire(n * sizeof(Packet))
                    : ::operator new(n * sizeof(Packet));
    auto* slots = static_cast<Packet*>(mem);
    for (std::size_t i = 0; i < n; ++i) new (slots + i) Packet();
    return slots;
  }

  void free_slots(Packet* slots, std::size_t n) noexcept {
    if (slots == nullptr) return;
    if (arena_ != nullptr) {
      arena_->release(slots, n * sizeof(Packet));
    } else {
      ::operator delete(slots);
    }
  }

  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    Packet* fresh = alloc_slots(new_cap);
    const std::size_t n = tail_ - head_;
    for (std::size_t i = 0; i < n; ++i) {
      fresh[i] = buf_[(head_ + i) & mask_];
    }
    free_slots(buf_, cap_);
    buf_ = fresh;
    cap_ = new_cap;
    mask_ = new_cap - 1;
    head_ = 0;
    tail_ = n;
  }

  PacketArena* arena_ = nullptr;  // not owned; must outlive the queue
  Packet* buf_ = nullptr;
  std::size_t cap_ = 0;   // power of two (0 until first push)
  std::size_t mask_ = 0;  // cap_ - 1
  std::size_t head_ = 0;  // free-running; buf_[head_ & mask_] is the head
  std::size_t tail_ = 0;  // free-running; one past the most recent arrival
  std::uint64_t bytes_ = 0;
  std::uint64_t total_arrived_ = 0;
};

}  // namespace pds
