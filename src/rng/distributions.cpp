#include "rng/distributions.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pds {

ParetoDist::ParetoDist(double alpha, double xm) : alpha_(alpha), xm_(xm) {
  PDS_CHECK(alpha > 0.0, "Pareto shape must be positive");
  PDS_CHECK(xm > 0.0, "Pareto scale must be positive");
}

ParetoDist ParetoDist::with_mean(double alpha, double mean) {
  PDS_CHECK(alpha > 1.0, "mean exists only for alpha > 1");
  PDS_CHECK(mean > 0.0, "mean must be positive");
  return ParetoDist(alpha, mean * (alpha - 1.0) / alpha);
}

double ParetoDist::sample(Rng& rng) const {
  // Inversion: X = xm * U^(-1/alpha). uniform01() is in [0,1); use 1-U so
  // the argument is in (0,1] and the sample is finite.
  const double u = 1.0 - rng.uniform01();
  return xm_ * std::pow(u, -1.0 / alpha_);
}

double ParetoDist::mean() const {
  PDS_CHECK(alpha_ > 1.0, "mean is infinite for alpha <= 1");
  return alpha_ * xm_ / (alpha_ - 1.0);
}

BoundedParetoDist::BoundedParetoDist(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  PDS_CHECK(alpha > 0.0, "Pareto shape must be positive");
  PDS_CHECK(lo > 0.0 && lo < hi, "need 0 < lo < hi");
}

double BoundedParetoDist::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  // Inverse CDF of the truncated Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

double BoundedParetoDist::mean() const {
  if (alpha_ == 1.0) {
    return (std::log(hi_) - std::log(lo_)) * lo_ * hi_ / (hi_ - lo_);
  }
  const double la = std::pow(lo_, alpha_);
  const double num = la / (1.0 - std::pow(lo_ / hi_, alpha_)) * alpha_ /
                     (alpha_ - 1.0) *
                     (1.0 / std::pow(lo_, alpha_ - 1.0) -
                      1.0 / std::pow(hi_, alpha_ - 1.0));
  return num;
}

ExponentialDist::ExponentialDist(double mean) : mean_(mean) {
  PDS_CHECK(mean > 0.0, "mean must be positive");
}

double ExponentialDist::sample(Rng& rng) const {
  const double u = 1.0 - rng.uniform01();  // in (0,1]
  return -mean_ * std::log(u);
}

DeterministicDist::DeterministicDist(double value) : value_(value) {
  PDS_CHECK(value >= 0.0, "negative deterministic value");
}

DiscreteDist::DiscreteDist(std::vector<Outcome> outcomes)
    : outcomes_(std::move(outcomes)) {
  PDS_CHECK(!outcomes_.empty(), "discrete distribution needs outcomes");
  double total = 0.0;
  for (const auto& o : outcomes_) {
    PDS_CHECK(o.weight > 0.0, "weights must be positive");
    total += o.weight;
  }
  double cum = 0.0;
  cumulative_.reserve(outcomes_.size());
  for (auto& o : outcomes_) {
    o.weight /= total;
    cum += o.weight;
    cumulative_.push_back(cum);
    mean_ += o.value * o.weight;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

double DiscreteDist::sample(Rng& rng) const {
  const double u = rng.uniform01();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return outcomes_[i].value;
  }
  return outcomes_.back().value;
}

}  // namespace pds
