// Random-variate distributions used by the traffic models.
//
// The paper's workloads use Pareto-distributed interarrival times with shape
// alpha = 1.9 (finite mean, infinite variance — the source of burstiness over
// many timescales) and a three-point empirical packet-size law. All
// distributions are small value types that sample from a caller-supplied Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace pds {

// Pareto distribution with shape `alpha` and scale (minimum) `xm`:
//   P[X > x] = (xm / x)^alpha  for x >= xm.
// Mean is alpha*xm/(alpha-1) for alpha > 1; variance is infinite for
// alpha <= 2, which matches the paper's choice alpha = 1.9.
class ParetoDist {
 public:
  ParetoDist(double alpha, double xm);

  // Constructs a Pareto with the given shape whose mean equals `mean`.
  // Requires alpha > 1 so the mean exists.
  static ParetoDist with_mean(double alpha, double mean);

  double sample(Rng& rng) const;

  double alpha() const noexcept { return alpha_; }
  double xm() const noexcept { return xm_; }
  double mean() const;  // throws if alpha <= 1

 private:
  double alpha_;
  double xm_;
};

// Pareto truncated to [lo, hi], sampled by inversion of the truncated CDF
// (no rejection, no clamping mass at the edge). Useful in tests where an
// infinite-variance tail would need astronomically long runs to stabilize.
class BoundedParetoDist {
 public:
  BoundedParetoDist(double alpha, double lo, double hi);

  double sample(Rng& rng) const;

  double mean() const;

 private:
  double alpha_;
  double lo_;
  double hi_;
};

// Exponential distribution with the given mean (Poisson interarrivals).
class ExponentialDist {
 public:
  explicit ExponentialDist(double mean);

  double sample(Rng& rng) const;
  double mean() const noexcept { return mean_; }

 private:
  double mean_;
};

// Degenerate distribution: always returns `value`. Used for CBR sources.
class DeterministicDist {
 public:
  explicit DeterministicDist(double value);

  double sample(Rng&) const noexcept { return value_; }
  double mean() const noexcept { return value_; }

 private:
  double value_;
};

// Finite discrete distribution over arbitrary double outcomes, specified as
// (value, weight) pairs; weights are normalized internally. Sampling is
// O(number of outcomes) which is fine for the paper's 3-point size law.
class DiscreteDist {
 public:
  struct Outcome {
    double value;
    double weight;
  };

  explicit DiscreteDist(std::vector<Outcome> outcomes);

  double sample(Rng& rng) const;
  double mean() const noexcept { return mean_; }
  const std::vector<Outcome>& outcomes() const noexcept { return outcomes_; }

 private:
  std::vector<Outcome> outcomes_;  // weights normalized, cumulative_ aligned
  std::vector<double> cumulative_;
  double mean_ = 0.0;
};

}  // namespace pds
