#include "rng/rng.hpp"

#include "util/contracts.hpp"

namespace pds {

namespace {

// SplitMix64: used only to expand the user seed into generator state, and to
// derive child streams. Reference: Steele, Lea, Flood (OOPSLA'14).
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  // xoshiro256++ by Blackman & Vigna.
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PDS_CHECK(lo < hi, "empty interval");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PDS_CHECK(n > 0, "uniform_index over empty range");
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % n;
}

Rng Rng::split() noexcept {
  return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace pds
