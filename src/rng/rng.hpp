// Deterministic pseudo-random number generation.
//
// Rng wraps a SplitMix64-seeded xoshiro256++ generator. All stochastic
// components of the library draw from an Rng passed in by the caller, so a
// run is fully reproducible from its seed, and independent streams can be
// derived for independent traffic sources via `split()`.
#pragma once

#include <array>
#include <cstdint>

namespace pds {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept;

  // Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  // modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  // Derives an independent generator: consumes one draw from this stream
  // and reseeds a new generator through SplitMix64.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace pds
