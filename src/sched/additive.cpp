#include "sched/additive.hpp"

#include "util/contracts.hpp"

namespace pds {

std::optional<Packet> AdditiveWtpScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  // Single pass over the head-of-line snapshot (same shape as WTP).
  const ClassHead* heads = backlog_.heads();
  const double* s = sdp().data();
  const ClassId n = backlog_.num_classes();
  bool found = false;
  ClassId best = 0;
  double best_priority = 0.0;
  for (ClassId c = 0; c < n; ++c) {
    if (heads[c].packets == 0) continue;
    const SimTime wait = now - heads[c].arrival;
    PDS_REQUIRE(wait >= 0.0);
    const double p = wait + s[c];
    if (!found || p >= best_priority) {  // >=: tie goes to the higher class
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return backlog_.pop(best);
}

}  // namespace pds
