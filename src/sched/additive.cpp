#include "sched/additive.hpp"

#include "util/contracts.hpp"

namespace pds {

std::optional<Packet> AdditiveWtpScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  bool found = false;
  ClassId best = 0;
  double best_priority = 0.0;
  for (ClassId c = 0; c < backlog_.num_classes(); ++c) {
    const ClassQueue& q = backlog_.queue(c);
    if (q.empty()) continue;
    const SimTime wait = now - q.head().arrival;
    PDS_REQUIRE(wait >= 0.0);
    const double p = wait + sdp()[c];
    if (!found || p >= best_priority) {  // >=: tie goes to the higher class
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return backlog_.pop(best);
}

}  // namespace pds
