#include "sched/additive.hpp"

#include "sched/scan.hpp"
#include "util/contracts.hpp"

namespace pds {

std::optional<Packet> AdditiveWtpScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  // Head-start argmax (wait + s, ties to the higher class) over the SoA
  // head mirror; kernels in sched/scan.cpp.
  const ClassId best = scan::additive_select(heads_view(), sdp_lanes().data(),
                                             now, scan_backend());
  return backlog_.pop(best);
}

std::uint32_t AdditiveWtpScheduler::dequeue_burst(SimTime now, Packet* out,
                                                  std::uint32_t max_k) {
  PDS_CHECK(out != nullptr && max_k >= 1, "bad burst buffer");
  if (backlog_.empty()) return 0;
  const ClassId best = scan::additive_select(heads_view(), sdp_lanes().data(),
                                             now, scan_backend());
  return backlog_.pop_burst(best, max_k, out);
}

}  // namespace pds
