// Additive head-start priority scheduler — Section 2.1, "Additive
// Differentiation".
//
// Priority of the head of queue i at time t: p_i(t) = w_i(t) + s_i, i.e.
// each class gets a constant head start s_i on top of its waiting time. In
// heavy load this tends to *additive* delay differentiation,
//
//     d_i - d_j = s_j - s_i   (class j higher, served s_j - s_i "earlier"),
//
// the paper's Eq. 3 with D_ij = s_i - s_j for i < j. Included as the
// contrast model for the ablation bench (additive vs proportional spacing).
#pragma once

#include "sched/scheduler.hpp"

namespace pds {

class AdditiveWtpScheduler final : public ClassBasedScheduler {
 public:
  explicit AdditiveWtpScheduler(const SchedulerConfig& config)
      : ClassBasedScheduler(config) {}

  std::optional<Packet> dequeue(SimTime now) override;
  std::uint32_t dequeue_burst(SimTime now, Packet* out,
                              std::uint32_t max_k) override;

  std::string_view name() const noexcept override { return "ADD"; }
};

}  // namespace pds
