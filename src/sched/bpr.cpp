#include "sched/bpr.hpp"

#include "sched/scan.hpp"
#include "util/contracts.hpp"

namespace pds {

BprScheduler::BprScheduler(const SchedulerConfig& config)
    : ClassBasedScheduler(config, /*needs_capacity=*/true),
      rates_(backlog_.lane_count(), 0.0),
      virtual_service_(backlog_.lane_count(), 0.0) {}

void BprScheduler::set_weights(const std::vector<double>& sdp) {
  ClassBasedScheduler::set_weights(sdp);
  recompute_rates();
}

void BprScheduler::on_backlog_adopted(SimTime) {
  for (double& v : virtual_service_) v = 0.0;
  any_departure_yet_ = false;
  last_departure_ = kTimeZero;
  recompute_rates();
}

double BprScheduler::rate(ClassId cls) const {
  PDS_CHECK(cls < num_classes(), "class index out of range");
  return rates_[cls];
}

void BprScheduler::recompute_rates() {
  // Eq. 8/9: r_i = R * s_i q_i / sum_k s_k q_k over backlogged classes,
  // with byte backlogs (the fluid server serves bytes). The snapshot's
  // `bytes` field is exact for idle classes too (zero), so one pass over
  // the flat array suffices.
  const ClassHead* heads = backlog_.heads();
  const double* s = sdp().data();
  const ClassId n = backlog_.num_classes();
  double denom = 0.0;
  for (ClassId c = 0; c < n; ++c) {
    denom += s[c] * static_cast<double>(heads[c].bytes);
  }
  for (ClassId c = 0; c < n; ++c) {
    const double weighted = s[c] * static_cast<double>(heads[c].bytes);
    rates_[c] = denom > 0.0 ? link_capacity() * weighted / denom : 0.0;
  }
}

ClassId BprScheduler::select(SimTime now) {
  const SimTime elapsed = any_departure_yet_ ? now - last_departure_ : 0.0;
  PDS_REQUIRE(elapsed >= 0.0);
  // Updates virtual service for all backlogged queues and picks the head
  // with the least *remaining* virtual work, L_i - v_i (Eq. 21). Ties
  // favour the higher class. Kernels in sched/scan.cpp.
  return scan::bpr_select(heads_view(), rates_.data(), virtual_service_.data(),
                          elapsed, last_departure_, any_departure_yet_,
                          scan_backend());
}

void BprScheduler::finish_departure(ClassId served, SimTime now) {
  virtual_service_[served] = 0.0;  // the new head starts with no credit
  recompute_rates();
  last_departure_ = now;
  any_departure_yet_ = true;
}

std::optional<Packet> BprScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  const ClassId best = select(now);
  Packet p = backlog_.pop(best);
  finish_departure(best, now);
  return p;
}

std::uint32_t BprScheduler::dequeue_burst(SimTime now, Packet* out,
                                          std::uint32_t max_k) {
  PDS_CHECK(out != nullptr && max_k >= 1, "bad burst buffer");
  if (backlog_.empty()) return 0;
  const ClassId best = select(now);
  // One Eq. 21 decision serves up to max_k consecutive heads of the winner;
  // the virtual-time bookkeeping treats the burst as a single departure at
  // `now` (part of why k > 1 changes traces).
  const std::uint32_t k = backlog_.pop_burst(best, max_k, out);
  finish_departure(best, now);
  return k;
}

}  // namespace pds
