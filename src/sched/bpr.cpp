#include "sched/bpr.hpp"

#include "util/contracts.hpp"

namespace pds {

BprScheduler::BprScheduler(const SchedulerConfig& config)
    : ClassBasedScheduler(config, /*needs_capacity=*/true),
      rates_(config.num_classes(), 0.0),
      virtual_service_(config.num_classes(), 0.0) {}

double BprScheduler::rate(ClassId cls) const {
  PDS_CHECK(cls < rates_.size(), "class index out of range");
  return rates_[cls];
}

void BprScheduler::recompute_rates() {
  // Eq. 8/9: r_i = R * s_i q_i / sum_k s_k q_k over backlogged classes,
  // with byte backlogs (the fluid server serves bytes). The snapshot's
  // `bytes` field is exact for idle classes too (zero), so one pass over
  // the flat array suffices.
  const ClassHead* heads = backlog_.heads();
  const double* s = sdp().data();
  const ClassId n = backlog_.num_classes();
  double denom = 0.0;
  for (ClassId c = 0; c < n; ++c) {
    denom += s[c] * static_cast<double>(heads[c].bytes);
  }
  for (ClassId c = 0; c < n; ++c) {
    const double weighted = s[c] * static_cast<double>(heads[c].bytes);
    rates_[c] = denom > 0.0 ? link_capacity() * weighted / denom : 0.0;
  }
}

std::optional<Packet> BprScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;

  const SimTime elapsed = any_departure_yet_ ? now - last_departure_ : 0.0;
  PDS_REQUIRE(elapsed >= 0.0);

  // Update virtual service for all backlogged queues and pick the head with
  // the least *remaining* virtual work, L_i - v_i. Ties favour the higher
  // class (scan ascending with <= on the criterion).
  const ClassHead* heads = backlog_.heads();
  const ClassId n = backlog_.num_classes();
  bool found = false;
  ClassId best = 0;
  double best_remaining = 0.0;
  for (ClassId c = 0; c < n; ++c) {
    if (heads[c].packets == 0) {
      virtual_service_[c] = 0.0;
      continue;
    }
    if (!any_departure_yet_ || heads[c].arrival > last_departure_) {
      virtual_service_[c] = 0.0;  // head reached the front after t^{k-1}
    } else {
      virtual_service_[c] += rates_[c] * elapsed;
    }
    const double remaining =
        static_cast<double>(heads[c].head_bytes) - virtual_service_[c];
    if (!found || remaining <= best_remaining) {
      found = true;
      best = c;
      best_remaining = remaining;
    }
  }
  PDS_REQUIRE(found);

  Packet p = backlog_.pop(best);
  virtual_service_[best] = 0.0;  // the new head starts with no credit
  recompute_rates();
  last_departure_ = now;
  any_departure_yet_ = true;
  return p;
}

}  // namespace pds
