// Backlog-Proportional Rate (BPR) scheduler — Section 4.1 + Appendix 3.
//
// Fluid model: a GPS-like server whose instantaneous class service rates are
// ratioed by SDP-weighted backlogs,
//
//     r_i(t) / r_j(t) = (s_i q_i(t)) / (s_j q_j(t))           (Eq. 8)
//     sum_i r_i(t) = R (work conservation)                    (Eq. 9)
//
// so a class that has recently been under-served (large backlog) dynamically
// receives a larger rate share. Proposition 1: all queues backlogged in a
// busy period empty simultaneously (see BprFluidServer for the exact fluid
// reference).
//
// This class is the *packetized* approximation of Appendix 3. It maintains a
// virtual service function v_i approximating the service the head of queue i
// would have received from the fluid server since it reached the head:
//
//   at each departure instant t^k, for each backlogged queue i:
//       v_i = 0                          if the head arrived after t^{k-1}
//       v_i += r_i(t^{k-1}) (t^k - t^{k-1})   otherwise
//   transmit from queue  j = argmin_{i in B} [ L_i - v_i ]    (Eq. 21)
//   (ties broken in favour of the higher class), then recompute all rates
//   from Eq. 8/9 using the post-departure byte backlogs.
//
// Deviation from the paper's recurrence, documented in DESIGN.md: Appendix 3
// does not state that v_j resets when queue j itself is served; we reset
// v_j to 0 after serving j, since the accumulated virtual service belonged
// to the departed head and the new head has received none yet.
#pragma once

#include "sched/scheduler.hpp"

namespace pds {

class BprScheduler final : public ClassBasedScheduler {
 public:
  // Requires config.link_capacity > 0 (bytes per time unit).
  explicit BprScheduler(const SchedulerConfig& config);

  std::optional<Packet> dequeue(SimTime now) override;
  std::uint32_t dequeue_burst(SimTime now, Packet* out,
                              std::uint32_t max_k) override;

  std::string_view name() const noexcept override { return "BPR"; }

  // Live retune: Eq. 8 rates are refreshed immediately from the new SDPs
  // over the current (untouched) byte backlogs.
  void set_weights(const std::vector<double>& sdp) override;

  // Current rate assigned to a class (bytes per time unit) as of the last
  // departure; exposed for tests.
  double rate(ClassId cls) const;

 protected:
  // Live swap-in: the adopted heads carry no fluid-service history, so the
  // virtual service restarts from zero and rates are recomputed from the
  // adopted backlogs (deterministic, documented in docs/control_plane.md).
  void on_backlog_adopted(SimTime now) override;

 private:
  // Eq. 21 argmin via the scan kernels; updates virtual_service_ in place.
  // Requires a non-empty backlog.
  ClassId select(SimTime now);
  // Post-departure bookkeeping shared by single and burst dequeue.
  void finish_departure(ClassId served, SimTime now);

  void recompute_rates();

  // Both vectors are lane-padded to backlog_.lane_count() (pad lanes stay
  // 0.0) because the scan kernels read and write them a full lane at a time.
  std::vector<double> rates_;            // r_i(t^{k-1})
  std::vector<double> virtual_service_;  // v_i, in bytes
  SimTime last_departure_ = kTimeZero;
  bool any_departure_yet_ = false;
};

}  // namespace pds
