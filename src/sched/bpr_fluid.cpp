#include "sched/bpr_fluid.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace pds {

namespace {
// Bytes below this are treated as served; packet sizes are >= 1 byte so this
// cannot misclassify a real backlog.
constexpr double kEpsBytes = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

BprFluidServer::BprFluidServer(const SchedulerConfig& config,
                               DepartureHandler on_departure)
    : sdp_(config.sdp),
      capacity_(config.link_capacity),
      on_departure_(std::move(on_departure)),
      classes_(config.num_classes()) {
  config.validate(/*needs_capacity=*/true);
  PDS_CHECK(static_cast<bool>(on_departure_), "null departure handler");
}

bool BprFluidServer::empty() const noexcept {
  for (const auto& c : classes_) {
    if (!c.pkts.empty()) return false;
  }
  return true;
}

double BprFluidServer::backlog_bytes(ClassId cls) const {
  PDS_CHECK(cls < classes_.size(), "class index out of range");
  return classes_[cls].backlog();
}

double BprFluidServer::elapsed_at(double u) const {
  double t = 0.0;
  for (ClassId c = 0; c < classes_.size(); ++c) {
    const double q = classes_[c].backlog();
    if (q <= 0.0) continue;
    t += q * (1.0 - std::exp(-capacity_ * sdp_[c] * u));
  }
  return t / capacity_;
}

void BprFluidServer::decay(double u) {
  now_ += elapsed_at(u);
  for (ClassId c = 0; c < classes_.size(); ++c) {
    ClassState& st = classes_[c];
    if (st.pkts.empty()) continue;
    const double served =
        st.backlog() * (1.0 - std::exp(-capacity_ * sdp_[c] * u));
    // FIFO within the class: fluid consumes the head packet's bytes first.
    // Event stepping guarantees served <= head_remaining (+ rounding).
    st.head_remaining -= served;
    PDS_REQUIRE(st.head_remaining >= -kEpsBytes);
    if (st.head_remaining < 0.0) st.head_remaining = 0.0;
  }
}

void BprFluidServer::emit_completed() {
  for (std::size_t c = classes_.size(); c-- > 0;) {  // higher classes first
    ClassState& st = classes_[c];
    while (!st.pkts.empty() && st.head_remaining <= kEpsBytes) {
      Packet done = std::move(st.pkts.front());
      st.pkts.pop_front();
      if (!st.pkts.empty()) {
        const double next_size =
            static_cast<double>(st.pkts.front().size_bytes);
        st.head_remaining = next_size;
        st.tail_bytes -= next_size;
        PDS_REQUIRE(st.tail_bytes >= -kEpsBytes);
        if (st.tail_bytes < 0.0) st.tail_bytes = 0.0;
      } else {
        st.head_remaining = 0.0;
        st.tail_bytes = 0.0;
      }
      on_departure_(done, now_);
    }
  }
}

bool BprFluidServer::step(SimTime horizon) {
  if (empty()) return false;  // advance_to finalizes the clock

  // Earliest head completion in u-space: served_i(u) = q_i (1 - e^{-R s_i u})
  // reaches head_remaining at u_i*. A head that is its queue's only packet
  // has rem == q and completes only at the busy-period end (u = inf).
  double u_min = kInf;
  double total_backlog = 0.0;
  for (ClassId c = 0; c < classes_.size(); ++c) {
    const ClassState& st = classes_[c];
    if (st.pkts.empty()) continue;
    const double q = st.backlog();
    total_backlog += q;
    const double frac = st.head_remaining / q;
    if (frac < 1.0) {
      const double u = -std::log(1.0 - frac) / (capacity_ * sdp_[c]);
      u_min = std::min(u_min, u);
    }
  }

  if (u_min == kInf) {
    // Every backlogged queue holds exactly one (partially served) packet:
    // all of them complete simultaneously at the busy-period end,
    // Proposition 1's simultaneous clearing.
    const SimTime clear_time = now_ + total_backlog / capacity_;
    if (clear_time > horizon) {
      // Advance partially: solve t(u) = horizon - now_ by bisection.
      const double target = horizon - now_;
      if (target <= 0.0) return false;
      double lo = 0.0;
      double hi = 1.0;
      while (elapsed_at(hi) < target) hi *= 2.0;
      for (int it = 0; it < 200 && hi - lo > 1e-15 * (1.0 + hi); ++it) {
        const double mid = 0.5 * (lo + hi);
        (elapsed_at(mid) < target ? lo : hi) = mid;
      }
      decay(0.5 * (lo + hi));
      now_ = horizon;  // absorb bisection rounding
      return false;
    }
    now_ = clear_time;
    for (auto& st : classes_) st.head_remaining = 0.0;
    emit_completed();
    PDS_REQUIRE(empty());
    return true;
  }

  const double event_dt = elapsed_at(u_min);
  if (now_ + event_dt > horizon) {
    const double target = horizon - now_;
    if (target <= 0.0) return false;
    double lo = 0.0;
    double hi = u_min;
    for (int it = 0; it < 200 && hi - lo > 1e-15 * (1.0 + hi); ++it) {
      const double mid = 0.5 * (lo + hi);
      (elapsed_at(mid) < target ? lo : hi) = mid;
    }
    decay(0.5 * (lo + hi));
    now_ = horizon;
    return false;
  }

  decay(u_min);
  emit_completed();
  return true;
}

void BprFluidServer::advance_to(SimTime t) {
  PDS_CHECK(t >= now_, "cannot advance into the past");
  while (step(t)) {
  }
  now_ = std::max(now_, t);
}

SimTime BprFluidServer::drain() {
  while (step(kInf)) {
  }
  return now_;
}

void BprFluidServer::arrive(Packet p, SimTime t) {
  PDS_CHECK(p.cls < classes_.size(), "class index out of range");
  PDS_CHECK(p.size_bytes > 0, "zero-size packet");
  advance_to(t);
  ClassState& st = classes_[p.cls];
  const double size = static_cast<double>(p.size_bytes);
  if (st.pkts.empty()) {
    st.head_remaining = size;
    st.tail_bytes = 0.0;
  } else {
    st.tail_bytes += size;
  }
  p.arrival = t;
  st.pkts.push_back(std::move(p));
}

}  // namespace pds
