// Exact fluid Backlog-Proportional Rate server — the reference model that
// Appendix 3 packetizes, used by the Proposition 1 tests and by the
// packetization ablation bench.
//
// Between arrivals the class backlogs obey
//
//     dq_i/dt = -R s_i q_i / S(t),   S(t) = sum_j s_j q_j(t),
//
// which is solved *analytically* by the substitution du = dt / S(t):
//
//     q_i(u) = q_i(0) exp(-R s_i u),
//     t(u)   = (1/R) sum_i q_i(0) (1 - exp(-R s_i u)).
//
// As u -> infinity every q_i -> 0 while t(u) -> t(0) + Q/R (Q = total
// backlog): all backlogged queues empty at the same instant, which is
// Proposition 1 made visible in the closed form. The server steps between
// arrivals and head-of-line completion events using these expressions; the
// only numerical work is a monotone bisection for partial advances.
//
// Service within a class is FIFO: fluid drained from queue i consumes the
// head packet's remaining bytes first.
#pragma once

#include <deque>
#include <functional>

#include "sched/scheduler.hpp"

namespace pds {

class BprFluidServer {
 public:
  // Called at the instant a packet's last byte is served.
  using DepartureHandler = std::function<void(const Packet&, SimTime)>;

  // Requires config.link_capacity > 0.
  BprFluidServer(const SchedulerConfig& config, DepartureHandler on_departure);

  // Feeds an arrival at time `t >= now()`; implicitly advances the fluid
  // state to `t` first (emitting any departures in between).
  void arrive(Packet p, SimTime t);

  // Serves fluid up to time `t`, emitting departures in order.
  void advance_to(SimTime t);

  // Serves until all queues are empty; returns the busy-period end time
  // (now() if already empty).
  SimTime drain();

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept;
  double backlog_bytes(ClassId cls) const;
  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(classes_.size());
  }

 private:
  struct ClassState {
    std::deque<Packet> pkts;
    double head_remaining = 0.0;  // unserved bytes of pkts.front()
    double tail_bytes = 0.0;      // total bytes of pkts beyond the head
    double backlog() const noexcept { return head_remaining + tail_bytes; }
  };

  // Elapsed real time when the substitution variable advances by `u`.
  double elapsed_at(double u) const;
  // Advances all backlogs by `u`, moving now_ forward accordingly.
  void decay(double u);
  // Pops and emits every head whose remaining bytes reached zero.
  void emit_completed();
  // One event step bounded by horizon; returns false if the horizon was
  // reached before the next internal event.
  bool step(SimTime horizon);

  std::vector<double> sdp_;
  double capacity_;
  DepartureHandler on_departure_;
  std::vector<ClassState> classes_;
  SimTime now_ = kTimeZero;
};

}  // namespace pds
