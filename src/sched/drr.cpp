#include "sched/drr.hpp"

#include "util/contracts.hpp"

namespace pds {

DrrScheduler::DrrScheduler(const SchedulerConfig& config)
    : ClassBasedScheduler(config),
      quantum_bytes_(config.drr_quantum_bytes),
      in_ring_(config.num_classes(), false),
      deficit_(config.num_classes(), 0.0),
      quantum_(config.num_classes(), 0.0) {
  for (ClassId c = 0; c < num_classes(); ++c) {
    quantum_[c] = config.drr_quantum_bytes * sdp()[c];
  }
}

void DrrScheduler::set_weights(const std::vector<double>& sdp) {
  ClassBasedScheduler::set_weights(sdp);
  for (ClassId c = 0; c < num_classes(); ++c) {
    quantum_[c] = quantum_bytes_ * this->sdp()[c];
  }
}

void DrrScheduler::on_backlog_adopted(SimTime) {
  active_.clear();
  visit_started_ = false;
  for (ClassId c = 0; c < num_classes(); ++c) {
    deficit_[c] = 0.0;
    in_ring_[c] = backlog_.head_of(c).packets != 0;
    if (in_ring_[c]) active_.push_back(c);
  }
}

double DrrScheduler::deficit(ClassId cls) const {
  PDS_CHECK(cls < deficit_.size(), "class index out of range");
  return deficit_[cls];
}

void DrrScheduler::enqueue(Packet p, SimTime now) {
  const ClassId cls = p.cls;
  ClassBasedScheduler::enqueue(std::move(p), now);
  if (!in_ring_[cls]) {
    in_ring_[cls] = true;
    deficit_[cls] = 0.0;
    active_.push_back(cls);
  }
}

std::optional<Packet> DrrScheduler::drop_tail(ClassId cls) {
  auto dropped = ClassBasedScheduler::drop_tail(cls);
  if (dropped && backlog_.head_of(cls).packets == 0) {
    // Keep the active ring consistent: an emptied class leaves the ring.
    if (!active_.empty() && active_.front() == cls) visit_started_ = false;
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (*it == cls) {
        active_.erase(it);
        break;
      }
    }
    in_ring_[cls] = false;
    deficit_[cls] = 0.0;
  }
  return dropped;
}

std::optional<Packet> DrrScheduler::dequeue(SimTime) {
  if (backlog_.empty()) return std::nullopt;
  // The head of `active_` holds the current service opportunity ("visit").
  // One quantum is granted when a visit starts; the class then sends one
  // packet per dequeue call until its deficit or queue runs out, at which
  // point the visit ends and the class rotates to the back. This preserves
  // DRR's per-visit burst semantics even though the Link pulls packets one
  // at a time.
  for (;;) {
    PDS_REQUIRE(!active_.empty());
    const ClassId c = active_.front();
    const ClassHead& h = backlog_.head_of(c);
    PDS_REQUIRE(h.packets != 0);
    if (!visit_started_) {
      deficit_[c] += quantum_[c];
      visit_started_ = true;
    }
    if (deficit_[c] >= static_cast<double>(h.head_bytes)) {
      deficit_[c] -= static_cast<double>(h.head_bytes);
      Packet p = backlog_.pop(c);
      if (backlog_.head_of(c).packets == 0) {
        active_.pop_front();
        in_ring_[c] = false;
        deficit_[c] = 0.0;
        visit_started_ = false;
      }
      return p;
    }
    // Deficit exhausted: the visit ends, credit carries over.
    active_.pop_front();
    active_.push_back(c);
    visit_started_ = false;
  }
}

}  // namespace pds
