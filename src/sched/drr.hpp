// Deficit Round Robin — a capacity-differentiation baseline (Section 2.1).
//
// Each class receives a byte quantum proportional to its SDP on every visit
// of the round-robin pointer (Shreedhar & Varghese, SIGCOMM'95). Bandwidth
// shares are controllable, but the resulting *delay* ratios depend on class
// loads and burstiness — exactly the shortcoming the proportional model
// addresses — which the ablation benches demonstrate.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pds {

class DrrScheduler final : public ClassBasedScheduler {
 public:
  explicit DrrScheduler(const SchedulerConfig& config);

  void enqueue(Packet p, SimTime now) override;
  std::optional<Packet> dequeue(SimTime now) override;
  std::optional<Packet> drop_tail(ClassId cls) override;

  std::string_view name() const noexcept override { return "DRR"; }

  // Live retune: per-class quanta are recomputed from the new SDPs; deficits
  // and the active ring are untouched.
  void set_weights(const std::vector<double>& sdp) override;

  double deficit(ClassId cls) const;

 protected:
  // Live swap-in: rebuilds the active ring from the adopted backlog in class
  // order with zero deficits (every backlogged class starts a fresh visit).
  void on_backlog_adopted(SimTime now) override;

 private:
  double quantum_bytes_;
  // Classes currently in the active ring, in visit order. A class enters at
  // the back when it becomes backlogged and leaves when its queue empties.
  std::deque<ClassId> active_;
  std::vector<bool> in_ring_;
  std::vector<double> deficit_;
  std::vector<double> quantum_;
  // True while the front class's current visit has already received its
  // quantum; cleared when the ring head changes.
  bool visit_started_ = false;
};

}  // namespace pds
