#include "sched/factory.hpp"

#include "sched/additive.hpp"
#include "sched/bpr.hpp"
#include "sched/drr.hpp"
#include "sched/fcfs.hpp"
#include "sched/pad.hpp"
#include "sched/scfq.hpp"
#include "sched/strict_priority.hpp"
#include "sched/virtual_clock.hpp"
#include "sched/wtp.hpp"
#include "util/contracts.hpp"

namespace pds {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return "fcfs";
    case SchedulerKind::kStrictPriority:
      return "sp";
    case SchedulerKind::kWtp:
      return "wtp";
    case SchedulerKind::kBpr:
      return "bpr";
    case SchedulerKind::kAdditiveWtp:
      return "additive";
    case SchedulerKind::kPad:
      return "pad";
    case SchedulerKind::kHpd:
      return "hpd";
    case SchedulerKind::kDrr:
      return "drr";
    case SchedulerKind::kScfq:
      return "scfq";
    case SchedulerKind::kVirtualClock:
      return "vc";
  }
  PDS_REQUIRE(false);
}

SchedulerKind scheduler_kind_from_string(const std::string& name) {
  for (const auto kind :
       {SchedulerKind::kFcfs, SchedulerKind::kStrictPriority,
        SchedulerKind::kWtp, SchedulerKind::kBpr, SchedulerKind::kAdditiveWtp,
        SchedulerKind::kPad, SchedulerKind::kHpd, SchedulerKind::kDrr,
        SchedulerKind::kScfq, SchedulerKind::kVirtualClock}) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SchedulerConfig& config) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>(config.num_classes());
    case SchedulerKind::kStrictPriority:
      return std::make_unique<StrictPriorityScheduler>(config);
    case SchedulerKind::kWtp:
      return std::make_unique<WtpScheduler>(config);
    case SchedulerKind::kBpr:
      return std::make_unique<BprScheduler>(config);
    case SchedulerKind::kAdditiveWtp:
      return std::make_unique<AdditiveWtpScheduler>(config);
    case SchedulerKind::kPad:
      return std::make_unique<PadScheduler>(config);
    case SchedulerKind::kHpd:
      return std::make_unique<HpdScheduler>(config);
    case SchedulerKind::kDrr:
      return std::make_unique<DrrScheduler>(config);
    case SchedulerKind::kScfq:
      return std::make_unique<ScfqScheduler>(config);
    case SchedulerKind::kVirtualClock:
      return std::make_unique<VirtualClockScheduler>(config);
  }
  PDS_REQUIRE(false);
}

}  // namespace pds
