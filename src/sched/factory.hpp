// Scheduler factory: builds any scheduler in the library by kind, used by
// the Study A/B harnesses and the benches to sweep scheduler choices.
#pragma once

#include <memory>
#include <string>

#include "sched/scheduler.hpp"

namespace pds {

enum class SchedulerKind {
  kFcfs,            // classless baseline / conservation-law reference
  kStrictPriority,  // Sec. 2.1 strict prioritization
  kWtp,             // Sec. 4.2 Waiting-Time Priority
  kBpr,             // Sec. 4.1 Backlog-Proportional Rate (packetized)
  kAdditiveWtp,     // Sec. 2.1 additive differentiation
  kPad,             // extension: Proportional Average Delay
  kHpd,             // extension: Hybrid Proportional Delay
  kDrr,             // capacity-differentiation baseline (Deficit RR)
  kScfq,            // capacity-differentiation baseline (WFQ family)
  kVirtualClock,    // capacity-differentiation baseline (rate reservation)
};

// Short lowercase name ("wtp", "bpr", ...) used on bench command lines.
std::string to_string(SchedulerKind kind);

// Parses the names accepted by to_string; throws std::invalid_argument on
// unknown names.
SchedulerKind scheduler_kind_from_string(const std::string& name);

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SchedulerConfig& config);

}  // namespace pds
