#include "sched/fcfs.hpp"

#include "util/contracts.hpp"

namespace pds {

FcfsScheduler::FcfsScheduler(std::uint32_t num_classes)
    : num_classes_(num_classes),
      packets_per_class_(num_classes, 0),
      bytes_per_class_(num_classes, 0) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
}

void FcfsScheduler::enqueue(Packet p, SimTime now) {
  PDS_CHECK(p.cls < num_classes_, "class index out of range");
  PDS_CHECK(p.arrival <= now, "packet arrival stamped in the future");
  ++packets_per_class_[p.cls];
  bytes_per_class_[p.cls] += p.size_bytes;
  q_.push_back(p);
  notify_enqueued(p, now);
}

std::optional<Packet> FcfsScheduler::dequeue(SimTime) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  --packets_per_class_[p.cls];
  bytes_per_class_[p.cls] -= p.size_bytes;
  return p;
}

std::uint64_t FcfsScheduler::backlog_packets(ClassId cls) const {
  PDS_CHECK(cls < num_classes_, "class index out of range");
  return packets_per_class_[cls];
}

std::uint64_t FcfsScheduler::backlog_bytes(ClassId cls) const {
  PDS_CHECK(cls < num_classes_, "class index out of range");
  return bytes_per_class_[cls];
}

}  // namespace pds
