// First-Come-First-Served scheduler: the classless baseline.
//
// FCFS ignores classes for ordering but still reports per-class backlog so it
// can stand in for the "work-conserving FCFS server" of the conservation law
// (Eq. 5) and the feasibility conditions (Eq. 7): the delay d(lambda) used
// there is exactly the delay this scheduler yields on the aggregate stream.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pds {

class FcfsScheduler final : public Scheduler {
 public:
  // `num_classes` is only used for backlog reporting; pass 1 when classes do
  // not matter (subset FCFS runs in the feasibility checker).
  explicit FcfsScheduler(std::uint32_t num_classes);

  void enqueue(Packet p, SimTime now) override;
  std::optional<Packet> dequeue(SimTime now) override;

  std::string_view name() const noexcept override { return "FCFS"; }
  bool empty() const noexcept override { return q_.empty(); }
  std::uint32_t num_classes() const noexcept override { return num_classes_; }
  std::uint64_t backlog_packets(ClassId cls) const override;
  std::uint64_t backlog_bytes(ClassId cls) const override;

 private:
  std::uint32_t num_classes_;
  std::deque<Packet> q_;
  std::vector<std::uint64_t> packets_per_class_;
  std::vector<std::uint64_t> bytes_per_class_;
};

}  // namespace pds
