#include "sched/link.hpp"

#include "util/contracts.hpp"

namespace pds {

Link::Link(Simulator& sim, Scheduler& sched, double capacity,
           DepartureHandler on_departure)
    : sim_(sim),
      sched_(sched),
      capacity_(capacity),
      on_departure_(std::move(on_departure)) {
  PDS_CHECK(capacity > 0.0, "link capacity must be positive");
  PDS_CHECK(static_cast<bool>(on_departure_), "null departure handler");
}

ProbeContext Link::probe_context(ClassId cls) const {
  return ProbeContext{hop_, sched_.backlog_packets(cls),
                      sched_.backlog_bytes(cls)};
}

void Link::arrive(Packet p) {
  p.arrival = sim_.now();
  PDS_OBS_NOTIFY(probe_, on_arrive(p, probe_context(p.cls), sim_.now()));
  if (down_ && outage_mode_ == OutageMode::kDropArrivals) {
    ++fault_drops_;
    PDS_OBS_NOTIFY(probe_, on_drop(p, probe_context(p.cls), sim_.now()));
    if (on_fault_drop_) on_fault_drop_(p, sim_.now());
    return;
  }
  sched_.enqueue(std::move(p), sim_.now());
  try_start_service();
}

void Link::set_capacity_factor(double factor) {
  PDS_CHECK(factor > 0.0 && factor <= 1.0,
            "capacity factor must be in (0, 1]");
  capacity_factor_ = factor;
}

void Link::take_down(OutageMode mode) {
  PDS_CHECK(!down_, "link is already down");
  down_ = true;
  outage_mode_ = mode;
}

void Link::bring_up() {
  PDS_CHECK(down_, "link is not down");
  down_ = false;
  try_start_service();  // hold-and-release: drain whatever queued
}

void Link::stall() {
  PDS_CHECK(!stalled_, "link is already stalled");
  stalled_ = true;
}

void Link::resume() {
  PDS_CHECK(stalled_, "link is not stalled");
  stalled_ = false;
  try_start_service();
}

void Link::try_start_service() {
  if (busy_ || !service_enabled() || sched_.empty()) return;
  auto next = sched_.dequeue(sim_.now());
  PDS_REQUIRE(next.has_value());  // work conservation: backlog => packet
  Packet& p = in_flight_;
  p = std::move(*next);

  const SimTime wait = sim_.now() - p.arrival;
  PDS_REQUIRE(wait >= 0.0);
  p.cum_queueing += wait;
  ++p.hops_done;
  in_flight_wait_ = wait;

  const SimTime tx =
      static_cast<double>(p.size_bytes) / (capacity_ * capacity_factor_);
  busy_ = true;
  busy_time_ += tx;
  bytes_sent_ += p.size_bytes;
  ++packets_sent_;
  PDS_OBS_NOTIFY(probe_,
                 on_dequeue(p, probe_context(p.cls), sim_.now(), wait));

  // A link transmits one packet at a time, so the in-flight slot is the
  // completion handler's persistent state; the event captures only `this`.
  sim_.schedule_in(tx,
                   SimEvent([this] { complete_transmission(); }, "link.tx"));
}

void Link::complete_transmission() {
  busy_ = false;
  const SimTime wait = in_flight_wait_;
  // Moved to the stack first: the departure handler may synchronously
  // re-arrive into this link, which restarts service and refills the slot.
  Packet done = std::move(in_flight_);
  PDS_OBS_NOTIFY(probe_, on_depart(done, probe_context(done.cls),
                                   sim_.now(), wait));
  on_departure_(std::move(done), wait, sim_.now());
  try_start_service();
}

}  // namespace pds
