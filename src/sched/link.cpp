#include "sched/link.hpp"

#include "util/contracts.hpp"

namespace pds {

Link::Link(Simulator& sim, Scheduler& sched, double capacity,
           DepartureHandler on_departure)
    : sim_(sim),
      sched_(&sched),
      capacity_(capacity),
      on_departure_(std::move(on_departure)) {
  PDS_CHECK(capacity > 0.0, "link capacity must be positive");
  PDS_CHECK(static_cast<bool>(on_departure_), "null departure handler");
}

ProbeContext Link::probe_context(ClassId cls) const {
  return ProbeContext{hop_, sched_->backlog_packets(cls),
                      sched_->backlog_bytes(cls)};
}

void Link::arrive(Packet p) {
  p.arrival = sim_.now();
  PDS_OBS_NOTIFY(probe_, on_arrive(p, probe_context(p.cls), sim_.now()));
  if (down_ && outage_mode_ == OutageMode::kDropArrivals) {
    ++fault_drops_;
    PDS_OBS_NOTIFY(probe_, on_drop(p, probe_context(p.cls), sim_.now()));
    if (on_fault_drop_) on_fault_drop_(p, sim_.now());
    return;
  }
  if (ctrl_gate_ && !admit(p)) return;
  sched_->enqueue(std::move(p), sim_.now());
  try_start_service();
}

bool Link::admit(const Packet& p) {
  if (!class_admit_.empty() && p.cls < class_admit_.size() &&
      class_admit_[p.cls] == 0) {
    ++drain_drops_;
    PDS_OBS_NOTIFY(probe_, on_drop(p, probe_context(p.cls), sim_.now()));
    if (on_control_drop_) {
      on_control_drop_(p, ControlDropKind::kDrain, sim_.now());
    }
    return false;
  }
  if (shed_.watermark_packets != 0 && p.cls < shed_.classes) {
    bool over = sched_->total_backlog_packets() >= shed_.watermark_packets;
    if (!over && shed_.sojourn > 0.0) {
      over = sched_->max_head_wait(sim_.now()) >= shed_.sojourn;
    }
    if (over) {
      ++shed_drops_;
      PDS_OBS_NOTIFY(probe_, on_drop(p, probe_context(p.cls), sim_.now()));
      if (on_control_drop_) {
        on_control_drop_(p, ControlDropKind::kShed, sim_.now());
      }
      return false;
    }
  }
  return true;
}

void Link::set_scheduler(Scheduler& sched) {
  PDS_CHECK(sched.num_classes() == sched_->num_classes(),
            "scheduler swap across different class counts");
  sched_ = &sched;
  sched_->set_probe(probe_, hop_);
}

void Link::set_class_admission(ClassId cls, bool admit) {
  PDS_CHECK(cls < sched_->num_classes(), "class index out of range");
  if (class_admit_.empty()) {
    class_admit_.assign(sched_->num_classes(), 1);
  }
  class_admit_[cls] = admit ? 1 : 0;
  bool any_drained = false;
  for (std::uint8_t a : class_admit_) any_drained |= (a == 0);
  ctrl_gate_ = any_drained || shedding();
}

bool Link::class_admitted(ClassId cls) const {
  PDS_CHECK(cls < sched_->num_classes(), "class index out of range");
  return class_admit_.empty() || class_admit_[cls] != 0;
}

void Link::set_shed(const ShedPolicy& policy) {
  PDS_CHECK(policy.watermark_packets >= 1, "shed watermark must be >= 1");
  PDS_CHECK(policy.sojourn >= 0.0, "shed sojourn must be non-negative");
  PDS_CHECK(policy.classes >= 1 && policy.classes <= sched_->num_classes(),
            "shed class count out of range");
  shed_ = policy;
  ctrl_gate_ = true;
}

void Link::clear_shed() {
  shed_ = ShedPolicy{};
  bool any_drained = false;
  for (std::uint8_t a : class_admit_) any_drained |= (a == 0);
  ctrl_gate_ = any_drained;
}

void Link::set_capacity_factor(double factor) {
  PDS_CHECK(factor > 0.0 && factor <= 1.0,
            "capacity factor must be in (0, 1]");
  capacity_factor_ = factor;
}

void Link::take_down(OutageMode mode) {
  PDS_CHECK(!down_, "link is already down");
  down_ = true;
  outage_mode_ = mode;
}

void Link::bring_up() {
  PDS_CHECK(down_, "link is not down");
  down_ = false;
  try_start_service();  // hold-and-release: drain whatever queued
}

void Link::stall() {
  PDS_CHECK(!stalled_, "link is already stalled");
  stalled_ = true;
}

void Link::resume() {
  PDS_CHECK(stalled_, "link is not stalled");
  stalled_ = false;
  try_start_service();
}

void Link::set_burst(std::uint32_t k) {
  PDS_CHECK(k >= 1 && k <= kMaxBurst, "burst must be in [1, kMaxBurst]");
  PDS_CHECK(!busy_, "cannot change burst while transmitting");
  burst_ = k;
  if (k > 1) {
    burst_buf_.resize(k);
    burst_waits_.resize(k);
  }
}

void Link::try_start_service() {
  if (busy_ || !service_enabled() || sched_->empty()) return;
  if (burst_ > 1) {
    start_burst();
    return;
  }
  auto next = sched_->dequeue(sim_.now());
  PDS_REQUIRE(next.has_value());  // work conservation: backlog => packet
  Packet& p = in_flight_;
  p = std::move(*next);

  const SimTime wait = sim_.now() - p.arrival;
  PDS_REQUIRE(wait >= 0.0);
  p.cum_queueing += wait;
  ++p.hops_done;
  in_flight_wait_ = wait;

  const SimTime tx =
      static_cast<double>(p.size_bytes) / (capacity_ * capacity_factor_);
  busy_ = true;
  busy_time_ += tx;
  bytes_sent_ += p.size_bytes;
  ++packets_sent_;
  PDS_OBS_NOTIFY(probe_,
                 on_dequeue(p, probe_context(p.cls), sim_.now(), wait));
  in_flight_claimed_ = forward_gate_ && forward_gate_(p, sim_.now() + tx);

  // A link transmits one packet at a time, so the in-flight slot is the
  // completion handler's persistent state; the event captures only `this`.
  sim_.schedule_in(tx,
                   SimEvent([this] { complete_transmission(); }, "link.tx"));
}

void Link::complete_transmission() {
  busy_ = false;
  const SimTime wait = in_flight_wait_;
  const bool claimed = in_flight_claimed_;
  in_flight_claimed_ = false;
  // Moved to the stack first: the departure handler may synchronously
  // re-arrive into this link, which restarts service and refills the slot.
  Packet done = std::move(in_flight_);
  PDS_OBS_NOTIFY(probe_, on_depart(done, probe_context(done.cls),
                                   sim_.now(), wait));
  if (!claimed) on_departure_(std::move(done), wait, sim_.now());
  try_start_service();
}

void Link::start_burst() {
  const std::uint32_t k =
      sched_->dequeue_burst(sim_.now(), burst_buf_.data(), burst_);
  PDS_REQUIRE(k >= 1);  // work conservation: backlog => at least one packet
  burst_count_ = k;
  const double rate = capacity_ * capacity_factor_;
  SimTime total_tx = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    Packet& p = burst_buf_[i];
    // Each packet's transmission starts when its predecessors in the burst
    // have finished; the queueing delay is measured against that staggered
    // start, exactly as if the packets had been dequeued one by one.
    const SimTime wait = (sim_.now() + total_tx) - p.arrival;
    PDS_REQUIRE(wait >= 0.0);
    p.cum_queueing += wait;
    ++p.hops_done;
    burst_waits_[i] = wait;
    const SimTime tx = static_cast<double>(p.size_bytes) / rate;
    busy_time_ += tx;
    bytes_sent_ += p.size_bytes;
    ++packets_sent_;
    PDS_OBS_NOTIFY(probe_,
                   on_dequeue(p, probe_context(p.cls), sim_.now(), wait));
    total_tx += tx;
  }
  burst_claimed_ = 0;
  if (forward_gate_) {
    // Every burst packet is delivered at burst end; the gate sees the same
    // departure time complete_burst would use, in slot (delivery) order.
    const SimTime depart = sim_.now() + total_tx;
    for (std::uint32_t i = 0; i < k; ++i) {
      if (forward_gate_(burst_buf_[i], depart)) {
        burst_claimed_ |= std::uint64_t{1} << i;
      }
    }
  }
  busy_ = true;
  // One completion event for the whole burst; the packets ride in
  // burst_buf_, so a burst costs one event no matter its length.
  sim_.schedule_in(total_tx,
                   SimEvent([this] { complete_burst(); }, "link.tx"));
}

void Link::complete_burst() {
  // Delivery happens with busy_ still true: a departure handler may
  // synchronously re-arrive into this link (routing loops), and a nested
  // try_start_service must not start a new burst that overwrites the
  // buffer being drained.
  const std::uint32_t k = burst_count_;
  const std::uint64_t claimed = burst_claimed_;
  burst_count_ = 0;
  burst_claimed_ = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    Packet done = std::move(burst_buf_[i]);
    PDS_OBS_NOTIFY(probe_, on_depart(done, probe_context(done.cls),
                                     sim_.now(), burst_waits_[i]));
    if ((claimed & (std::uint64_t{1} << i)) == 0) {
      on_departure_(std::move(done), burst_waits_[i], sim_.now());
    }
  }
  busy_ = false;
  try_start_service();
}

}  // namespace pds
