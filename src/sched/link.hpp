// Output link: the transmission server wrapped around a scheduler.
//
// The Link models one output port of a router: packets arrive, are handed to
// the scheduler, and whenever the transmitter is idle the scheduler's choice
// is transmitted at the link capacity. The per-hop *queueing delay* of a
// packet — the metric every experiment in the paper reports — is the time
// from arrival to the start of its transmission; the departure handler fires
// when the last byte leaves (which is when the packet reaches the next hop).
//
// The link is lossless (unbounded buffers), matching the paper's Section 3
// operating assumption of ECN-regulated sources in the stable region. The
// exceptions are scripted: fault injection (src/fault/ — an outage in
// drop-on-down mode discards arrivals, counted in fault_drops()) and the
// control plane (src/ctrl/ — class drains and the overload shed guard
// discard arrivals, counted in drain_drops()/shed_drops()).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dsim/simulator.hpp"
#include "sched/scheduler.hpp"

namespace pds {

// What happens to packets that arrive while the link is down (see
// Link::take_down). Packets already queued when the outage begins are held
// and released on recovery under either mode; the mode only governs new
// arrivals during the outage.
enum class OutageMode {
  kDropArrivals,  // arrivals during the outage are dropped and counted
  kHoldArrivals,  // arrivals queue up normally and drain on recovery
};

// Why a control-plane drop happened (see Link::set_control_drop_handler).
enum class ControlDropKind {
  kDrain,  // the packet's class is drained (stopped admitting)
  kShed,   // the overload guard shed a low-class arrival
};

// Overload guard configuration (Link::set_shed). While set, arrivals of the
// `classes` lowest classes are dropped whenever the aggregate packet backlog
// is at or above `watermark_packets`, or — when `sojourn > 0` — the longest
// head-of-line wait is at or above `sojourn`. Higher classes are never shed:
// the guard degrades the cheapest service levels first, which is the
// proportional model's own notion of graceful degradation.
struct ShedPolicy {
  std::uint64_t watermark_packets = 0;  // aggregate-backlog watermark; >= 1
  SimTime sojourn = 0.0;                // optional sojourn watermark (0 = off)
  std::uint32_t classes = 1;            // how many lowest classes to shed
};

class Link {
 public:
  // `wait` is the queueing delay at this hop (excludes transmission). The
  // packet's cum_queueing/hops_done fields have already been updated.
  using DepartureHandler =
      std::function<void(Packet&& pkt, SimTime wait, SimTime now)>;

  // Called for every arrival dropped because the link was down in
  // kDropArrivals mode (fault injection; see src/fault/).
  using FaultDropHandler = std::function<void(const Packet&, SimTime now)>;

  // `capacity` is in bytes per time unit. The scheduler is owned elsewhere
  // and must outlive the link.
  Link(Simulator& sim, Scheduler& sched, double capacity,
       DepartureHandler on_departure);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Hands a packet to the scheduler at the current simulation time and
  // starts transmitting if the line is idle.
  void arrive(Packet p);

  double capacity() const noexcept { return capacity_; }
  bool busy() const noexcept { return busy_; }

  // Burst transmit: each scheduler decision drains up to `k` consecutive
  // packets (of the winning class, for the proportional schedulers) and
  // transmits them back to back as one busy period. k == 1 — the default —
  // uses the single-packet path verbatim, so all existing traces stay
  // byte-identical; k > 1 changes traces (per-packet waits are measured
  // against staggered transmission starts, and departures fire together at
  // burst end — see docs/architecture.md, "Batched packet plane"). May only
  // be changed while the transmitter is idle; k <= kMaxBurst.
  void set_burst(std::uint32_t k);
  std::uint32_t burst() const noexcept { return burst_; }

  // --- Fault injection (driven by fault/FaultInjector) -------------------
  //
  // All three fault states gate *future* transmissions only: a packet that
  // is already on the wire when a fault begins finishes at the rate it
  // started with (its completion event is immutable once scheduled), which
  // keeps fault onset deterministic and the busy-time accounting exact.

  // Scales the effective service rate to `factor * capacity` for packets
  // whose transmission starts from now on. Requires factor in (0, 1].
  void set_capacity_factor(double factor);
  double capacity_factor() const noexcept { return capacity_factor_; }

  // Outage. While down, no new transmission starts; arrivals are dropped
  // (kDropArrivals — counted in fault_drops(), reported through the probe's
  // on_drop and the FaultDropHandler) or queued for recovery
  // (kHoldArrivals). take_down on a down link and bring_up on an up link
  // are contract violations (the injector rejects overlapping outages).
  void take_down(OutageMode mode);
  void bring_up();
  bool down() const noexcept { return down_; }

  // Router stall: service pauses, arrivals keep queueing, resume restarts
  // the transmitter. Stalling a stalled link is a contract violation.
  void stall();
  void resume();
  bool stalled() const noexcept { return stalled_; }

  std::uint64_t fault_drops() const noexcept { return fault_drops_; }
  void set_fault_drop_handler(FaultDropHandler handler) {
    on_fault_drop_ = std::move(handler);
  }

  // --- Control plane (driven by ctrl/ControlInjector) --------------------

  // Called for every arrival dropped by a class drain or the shed guard.
  using ControlDropHandler =
      std::function<void(const Packet&, ControlDropKind, SimTime now)>;

  // Live scheduler swap: replaces the scheduler serving this link. The
  // caller must have handed the old scheduler's backlog to `sched` first
  // (ClassBasedScheduler::release_backlog/adopt_backlog); the class counts
  // must match. Safe mid-burst — the staged burst rides in the Link, not
  // the scheduler. The probe is re-attached so enqueue events keep the hop.
  void set_scheduler(Scheduler& sched);
  Scheduler& scheduler_mut() noexcept { return *sched_; }

  // Class drain: a non-admitted class drops its arrivals (counted in
  // drain_drops()) while its queued packets serve out normally. Classes
  // default to admitted; `class add` re-admits a drained class.
  void set_class_admission(ClassId cls, bool admit);
  bool class_admitted(ClassId cls) const;

  // Overload guard (see ShedPolicy). Requires watermark_packets >= 1 and
  // 1 <= classes <= num_classes; clear_shed() disarms it.
  void set_shed(const ShedPolicy& policy);
  void clear_shed();
  bool shedding() const noexcept { return shed_.watermark_packets != 0; }

  std::uint64_t drain_drops() const noexcept { return drain_drops_; }
  std::uint64_t shed_drops() const noexcept { return shed_drops_; }
  void set_control_drop_handler(ControlDropHandler handler) {
    on_control_drop_ = std::move(handler);
  }

  // --- Sharded kernel (dsim/shard.hpp, net/partition.hpp) ----------------

  // Early cross-shard handoff hook. When set, the gate is consulted at the
  // *start* of every transmission — after the packet's cum_queueing and
  // hops_done fields are finalized — with `depart` the already-scheduled
  // completion time (burst mode: the end of the whole burst, which is when
  // every burst packet is delivered). Returning true claims the packet: the
  // link still runs the transmission to completion for busy-time/stat
  // purposes but does not invoke the departure handler, because the gate
  // owner has forwarded a timestamped copy to the destination shard. The
  // handoff is safe this early because faults and control actions only gate
  // *future* transmissions (see above): a packet on the wire is irrevocable
  // the moment its completion event is scheduled.
  using ForwardGate = std::function<bool(const Packet& p, SimTime depart)>;
  void set_forward_gate(ForwardGate gate) { forward_gate_ = std::move(gate); }

  // Lifetime counters for work-conservation checks.
  double busy_time() const noexcept { return busy_time_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  const Scheduler& scheduler() const noexcept { return *sched_; }

  // Observability: attaches a lifecycle probe (nullptr detaches) stamped
  // with `hop` for multi-hop attribution. The link emits, per transmitted
  // packet, exactly one on_arrive (before handing it to the scheduler), one
  // on_dequeue (start of transmission, with the queueing delay), and one
  // on_depart (end of transmission). Attaching here also attaches to the
  // scheduler so its on_enqueue events carry the same hop.
  void set_probe(PacketProbe* probe, std::uint32_t hop = 0) noexcept {
    probe_ = probe;
    hop_ = hop;
    sched_->set_probe(probe, hop);
  }

 private:
  void try_start_service();
  // Completion of the packet in in_flight_: delivers it and pulls the next
  // one. The scheduled event captures only `this`; the transmitting packet
  // lives in the in-flight slot, so starting a transmission performs no
  // heap allocation and no packet copy.
  void complete_transmission();
  // Burst counterparts (burst_ > 1 only): one scheduler decision fills
  // burst_buf_, one event completes the whole burst.
  void start_burst();
  void complete_burst();

  ProbeContext probe_context(ClassId cls) const;

  // Control-plane admission check for one arrival; counts and reports the
  // drop when it fails. Only called while ctrl_gate_ is set, keeping the
  // plain (no control plan) arrival path one predictable branch.
  bool admit(const Packet& p);

  // True when the transmitter may start a new packet.
  bool service_enabled() const noexcept { return !down_ && !stalled_; }

  Simulator& sim_;
  Scheduler* sched_;
  double capacity_;
  DepartureHandler on_departure_;
  FaultDropHandler on_fault_drop_;
  ControlDropHandler on_control_drop_;
  double capacity_factor_ = 1.0;
  bool down_ = false;
  bool stalled_ = false;
  OutageMode outage_mode_ = OutageMode::kDropArrivals;
  std::uint64_t fault_drops_ = 0;
  // Control-plane state: ctrl_gate_ is true iff any class is drained or a
  // shed policy is set (one-branch fast path for the common case).
  bool ctrl_gate_ = false;
  std::vector<std::uint8_t> class_admit_;  // empty == all classes admitted
  ShedPolicy shed_;
  std::uint64_t drain_drops_ = 0;
  std::uint64_t shed_drops_ = 0;
  bool busy_ = false;
  double busy_time_ = 0.0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  Packet in_flight_;             // valid iff busy_
  SimTime in_flight_wait_ = 0.0;  // queueing delay of in_flight_ at this hop
  ForwardGate forward_gate_;
  bool in_flight_claimed_ = false;  // gate took in_flight_ at tx start
  std::uint32_t burst_ = 1;
  // Staging for burst transmit (sized by set_burst, empty while burst_ == 1).
  std::vector<Packet> burst_buf_;
  std::vector<SimTime> burst_waits_;
  std::uint32_t burst_count_ = 0;  // packets in the burst in flight
  std::uint64_t burst_claimed_ = 0;  // per-slot gate claims (kMaxBurst <= 64)
  PacketProbe* probe_ = nullptr;
  std::uint32_t hop_ = 0;
};

}  // namespace pds
