#include "sched/pad.hpp"

#include "util/contracts.hpp"

namespace pds {

PadScheduler::PadScheduler(const SchedulerConfig& config)
    : ClassBasedScheduler(config),
      cum_delay_(config.num_classes(), 0.0),
      served_(config.num_classes(), 0) {}

double PadScheduler::normalized_average_delay(ClassId cls, SimTime now) const {
  PDS_CHECK(cls < num_classes(), "class index out of range");
  const ClassHead& h = backlog_.head_of(cls);
  double sum = cum_delay_[cls];
  std::uint64_t n = served_[cls];
  if (h.packets != 0) {
    sum += now - h.arrival;
    n += 1;
  }
  if (n == 0) return 0.0;
  return (sum / static_cast<double>(n)) * sdp()[cls];
}

double PadScheduler::priority(ClassId cls, SimTime now) const {
  return normalized_average_delay(cls, now);
}

void PadScheduler::note_served(const Packet& p, SimTime now) {
  cum_delay_[p.cls] += now - p.arrival;
  ++served_[p.cls];
}

std::optional<Packet> PadScheduler::pop_best(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  const ClassHead* heads = backlog_.heads();
  const ClassId n = backlog_.num_classes();
  bool found = false;
  ClassId best = 0;
  double best_priority = 0.0;
  for (ClassId c = 0; c < n; ++c) {
    if (heads[c].packets == 0) continue;
    const double p = priority(c, now);
    if (!found || p >= best_priority) {  // >=: tie goes to the higher class
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  Packet p = backlog_.pop(best);
  note_served(p, now);
  return p;
}

std::optional<Packet> PadScheduler::dequeue(SimTime now) {
  return pop_best(now);
}

HpdScheduler::HpdScheduler(const SchedulerConfig& config)
    : PadScheduler(config), g_(config.hpd_g) {}

double HpdScheduler::priority(ClassId cls, SimTime now) const {
  const ClassHead& h = backlog_.head_of(cls);
  PDS_REQUIRE(h.packets != 0);
  const double head_wait = now - h.arrival;
  const double wtp_part = head_wait * sdp()[cls];
  const double pad_part = normalized_average_delay(cls, now);
  return g_ * wtp_part + (1.0 - g_) * pad_part;
}

std::optional<Packet> HpdScheduler::dequeue(SimTime now) {
  return pop_best(now);
}

}  // namespace pds
