#include "sched/pad.hpp"

#include "sched/scan.hpp"
#include "util/contracts.hpp"

namespace pds {

PadScheduler::PadScheduler(const SchedulerConfig& config)
    : ClassBasedScheduler(config),
      cum_delay_(backlog_.lane_count(), 0.0),
      served_(config.num_classes(), 0),
      served_f64_(backlog_.lane_count(), 0.0) {}

double PadScheduler::normalized_average_delay(ClassId cls, SimTime now) const {
  PDS_CHECK(cls < num_classes(), "class index out of range");
  const ClassHead& h = backlog_.head_of(cls);
  double sum = cum_delay_[cls];
  std::uint64_t n = served_[cls];
  if (h.packets != 0) {
    sum += now - h.arrival;
    n += 1;
  }
  if (n == 0) return 0.0;
  return (sum / static_cast<double>(n)) * sdp()[cls];
}

void PadScheduler::note_served(const Packet& p, SimTime now) {
  cum_delay_[p.cls] += now - p.arrival;
  ++served_[p.cls];
  served_f64_[p.cls] = static_cast<double>(served_[p.cls]);
}

ClassId PadScheduler::select(SimTime now) const {
  return scan::pad_select(heads_view(), sdp_lanes().data(), cum_lanes(),
                          served_lanes(), now, scan_backend());
}

std::optional<Packet> PadScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  Packet p = backlog_.pop(select(now));
  note_served(p, now);
  return p;
}

std::uint32_t PadScheduler::dequeue_burst(SimTime now, Packet* out,
                                          std::uint32_t max_k) {
  PDS_CHECK(out != nullptr && max_k >= 1, "bad burst buffer");
  if (backlog_.empty()) return 0;
  const std::uint32_t k = backlog_.pop_burst(select(now), max_k, out);
  // Every burst packet is accounted at decision time: the scheduler does
  // not know the link rate, so the per-packet transmission stagger is the
  // Link's business (and part of why k > 1 changes traces).
  for (std::uint32_t i = 0; i < k; ++i) note_served(out[i], now);
  return k;
}

HpdScheduler::HpdScheduler(const SchedulerConfig& config)
    : PadScheduler(config), g_(config.hpd_g) {}

ClassId HpdScheduler::select(SimTime now) const {
  return scan::hpd_select(heads_view(), sdp_lanes().data(), cum_lanes(),
                          served_lanes(), now, g_, scan_backend());
}

}  // namespace pds
