// Proportional Average Delay (PAD) and Hybrid Proportional Delay (HPD)
// schedulers — extensions beyond the SIGCOMM'99 paper.
//
// The paper leaves open whether a work-conserving scheduler exists that
// meets the proportional constraints whenever they are feasible (Sec. 5,
// Sec. 7). The authors' follow-on work (Dovrolis, Stiliadis, Ramanathan,
// "Proportional Differentiated Services, Part II" / IEEE ToN 10(1), 2002)
// proposes:
//
//  * PAD: serve the backlogged class with the maximum *normalized average
//    delay*. PAD matches the long-term proportional constraints even in
//    moderate load but has poor short-timescale behaviour.
//  * HPD: priority = g * (normalized head waiting time) +
//                    (1-g) * (normalized average delay),
//    blending WTP's short-timescale accuracy with PAD's long-term accuracy.
//
// Normalization uses 1/delta_i = s_i (our SDP convention): normalized delay
// of class i is (delay * s_i).
//
// Implementation note: the running average of class i includes all packets
// of class i served so far *plus* the current head's prospective delay if it
// were served now — this keeps the metric defined before the first
// departure and responsive to a waiting head.
//
// The per-dequeue argmax runs through the vectorized scan kernels
// (sched/scan.hpp); the class keeps lane-padded double mirrors of the
// cumulative-delay and served-count vectors as the kernels' inputs (served
// counts are exact as doubles below 2^53).
#pragma once

#include "sched/scheduler.hpp"

namespace pds {

class PadScheduler : public ClassBasedScheduler {
 public:
  explicit PadScheduler(const SchedulerConfig& config);

  std::optional<Packet> dequeue(SimTime now) override;
  std::uint32_t dequeue_burst(SimTime now, Packet* out,
                              std::uint32_t max_k) override;

  std::string_view name() const noexcept override { return "PAD"; }

  // Normalized average delay of class `cls` assuming its head were served
  // at `now`; 0 when the class has neither history nor backlog.
  double normalized_average_delay(ClassId cls, SimTime now) const;

 protected:
  // Winning class of one priority decision; requires a non-empty backlog.
  // PAD argmaxes the normalized average delay; HPD overrides with the
  // hybrid blend.
  virtual ClassId select(SimTime now) const;

  void note_served(const Packet& p, SimTime now);

  // Lane-padded kernel inputs, shared with the HPD override.
  const double* cum_lanes() const noexcept { return cum_delay_.data(); }
  const double* served_lanes() const noexcept { return served_f64_.data(); }

 private:
  std::vector<double> cum_delay_;      // sum of delays of served packets
  std::vector<std::uint64_t> served_;  // number of served packets (exact)
  std::vector<double> served_f64_;     // double mirror of served_
};

class HpdScheduler final : public PadScheduler {
 public:
  explicit HpdScheduler(const SchedulerConfig& config);

  std::string_view name() const noexcept override { return "HPD"; }

  // Live retune of the WTP/PAD blend (ctrl/): takes effect on the next
  // priority decision, backlogs and delay history untouched.
  void set_g(double g) {
    PDS_CHECK(g > 0.0 && g <= 1.0, "hpd g must be in (0,1]");
    g_ = g;
  }
  double g() const noexcept { return g_; }

 protected:
  ClassId select(SimTime now) const override;

 private:
  double g_;
};

}  // namespace pds
