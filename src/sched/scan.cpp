// Priority-scan kernels: scalar reference plus SSE2/AVX2 SIMD variants.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/sched/CMakeLists.txt): the scalar kernels are the bit-exactness
// reference for every SIMD lane, so the compiler must not contract their
// mul+add sequences into FMAs the vector paths do not use.
//
// The AVX2 kernels carry GCC/Clang `target("avx2")` attributes so the file
// builds with the baseline x86-64 flag set; a one-shot CPUID probe routes
// kAuto to the widest supported backend. Everything funnels through the same
// shape: (1) compute the per-lane criterion with IEEE-exact lane ops, forcing
// idle lanes to -inf (argmax) or +inf (argmin) with a bitwise blend, while
// accumulating a vertical best; (2) reduce to the scalar best; (3) walk the
// stashed lane criteria from the highest block down and pick the highest lane
// that attains the best — the paper's tie-break (ties go to the higher
// class).
#include "sched/scan.hpp"

#include <limits>

#include "util/contracts.hpp"

#ifndef PDS_SIMD_ENABLED
#define PDS_SIMD_ENABLED 0
#endif

#if PDS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
#define PDS_SCAN_X86 1
#include <immintrin.h>
#else
#define PDS_SCAN_X86 0
#endif

namespace pds::scan {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

// Criterion values are stashed per lane so the tie-break pass can re-find
// the winner; bounded so the stash lives on the stack. Class counts beyond
// this fall back to the scalar kernels (they have no such bound).
constexpr std::uint32_t kMaxSimdLanes = 256;

// kAuto takes the scalar kernel at or below this many (padded) lanes. A
// two-to-eight-class scan is a handful of perfectly predicted scalar
// iterations; the vector path's fixed overhead — lane loads, mask blends,
// the criterion stash, the movemask tie-break walk — costs more than it
// saves there (measured 25-45% slower at n <= 8 on the bench host, parity
// at n = 16). Explicit Backend::kSimd still forces the vector kernels at
// any size: the differential tests drive both implementations directly.
constexpr std::uint32_t kAutoScalarMaxLanes = 8;

// ---------------------------------------------------------------------------
// Scalar reference kernels — the exact arithmetic the schedulers inlined
// before this refactor, preserved expression for expression: the golden
// Study A trace hash pins their decisions.
// ---------------------------------------------------------------------------

ClassId wtp_scalar(const Heads& h, const double* sdp, double now) {
  bool found = false;
  ClassId best = 0;
  double best_priority = 0.0;
  for (ClassId c = 0; c < h.n; ++c) {
    if (h.mask[c] == 0) continue;
    const double wait = now - h.arrival[c];
    PDS_REQUIRE(wait >= 0.0);
    const double p = wait * sdp[c];
    if (!found || p >= best_priority) {  // >=: tie goes to the higher class
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return best;
}

ClassId additive_scalar(const Heads& h, const double* sdp, double now) {
  bool found = false;
  ClassId best = 0;
  double best_priority = 0.0;
  for (ClassId c = 0; c < h.n; ++c) {
    if (h.mask[c] == 0) continue;
    const double wait = now - h.arrival[c];
    PDS_REQUIRE(wait >= 0.0);
    const double p = wait + sdp[c];
    if (!found || p >= best_priority) {
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return best;
}

ClassId pad_scalar(const Heads& h, const double* sdp, const double* cum,
                   const double* served, double now) {
  bool found = false;
  ClassId best = 0;
  double best_priority = 0.0;
  for (ClassId c = 0; c < h.n; ++c) {
    if (h.mask[c] == 0) continue;
    const double sum = cum[c] + (now - h.arrival[c]);
    const double n = served[c] + 1.0;
    const double p = (sum / n) * sdp[c];
    if (!found || p >= best_priority) {
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return best;
}

ClassId hpd_scalar(const Heads& h, const double* sdp, const double* cum,
                   const double* served, double now, double g) {
  bool found = false;
  ClassId best = 0;
  double best_priority = 0.0;
  for (ClassId c = 0; c < h.n; ++c) {
    if (h.mask[c] == 0) continue;
    const double head_wait = now - h.arrival[c];
    const double wtp_part = head_wait * sdp[c];
    const double sum = cum[c] + head_wait;
    const double n = served[c] + 1.0;
    const double pad_part = (sum / n) * sdp[c];
    const double p = g * wtp_part + (1.0 - g) * pad_part;
    if (!found || p >= best_priority) {
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return best;
}

ClassId bpr_scalar(const Heads& h, const double* rates, double* vs,
                   double elapsed, double last_departure, bool any_departure) {
  bool found = false;
  ClassId best = 0;
  double best_remaining = 0.0;
  for (ClassId c = 0; c < h.n; ++c) {
    if (h.mask[c] == 0) {
      vs[c] = 0.0;
      continue;
    }
    if (!any_departure || h.arrival[c] > last_departure) {
      vs[c] = 0.0;  // head reached the front after t^{k-1}
    } else {
      vs[c] += rates[c] * elapsed;
    }
    const double remaining = h.head_bytes[c] - vs[c];
    if (!found || remaining <= best_remaining) {  // <=: tie to higher class
      found = true;
      best = c;
      best_remaining = remaining;
    }
  }
  PDS_REQUIRE(found);
  return best;
}

#if PDS_SCAN_X86

// ---------------------------------------------------------------------------
// Backend probe
// ---------------------------------------------------------------------------

enum Level : int { kLevelScalar = 0, kLevelSse2 = 1, kLevelAvx2 = 2 };

int detect_level() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return kLevelAvx2;
#endif
  return kLevelSse2;  // SSE2 is the x86-64 baseline
}

int best_level() noexcept {
  static const int level = detect_level();
  return level;
}

// ---------------------------------------------------------------------------
// SSE2 kernels (2 lanes)
// ---------------------------------------------------------------------------

// Bitwise select: lane = mask ? value : fill. SSE2 has no blendv, so use
// and/andnot; the mask arrays hold all-ones/all-zero lane masks.
inline __m128d select2(__m128d mask, __m128d value, __m128d fill) {
  return _mm_or_pd(_mm_and_pd(mask, value), _mm_andnot_pd(mask, fill));
}

// Highest lane index attaining `best` over the stashed criteria, scanning
// blocks from the top. `best` is bit-exactly one of the stashed values, so
// EQ always fires at least once.
ClassId pick_highest_eq2(const double* crit, std::uint32_t lanes,
                         double best) {
  const __m128d vbest = _mm_set1_pd(best);
  for (std::uint32_t i = lanes; i != 0; i -= 2) {
    const __m128d v = _mm_loadu_pd(crit + i - 2);
    const int m = _mm_movemask_pd(_mm_cmpeq_pd(v, vbest));
    if (m != 0) {
      return static_cast<ClassId>(i - 2 +
                                  static_cast<std::uint32_t>(31 - __builtin_clz(
                                      static_cast<unsigned>(m))));
    }
  }
  PDS_REQUIRE(false);
}

double hmax2(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_max_sd(v, hi));
}

double hmin2(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_min_sd(v, hi));
}

ClassId wtp_sse2(const Heads& h, const double* sdp, double now) {
  alignas(16) double crit[kMaxSimdLanes];
  const __m128d vnow = _mm_set1_pd(now);
  const __m128d vneg = _mm_set1_pd(kNegInf);
  const __m128d vzero = _mm_setzero_pd();
  __m128d vbest = vneg;
  int bad = 0;
  for (std::uint32_t i = 0; i < h.lanes; i += 2) {
    const __m128d mask =
        _mm_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m128d wait = _mm_sub_pd(vnow, _mm_loadu_pd(h.arrival + i));
    bad |= _mm_movemask_pd(
        _mm_and_pd(mask, _mm_cmplt_pd(wait, vzero)));
    const __m128d p = _mm_mul_pd(wait, _mm_loadu_pd(sdp + i));
    const __m128d masked = select2(mask, p, vneg);
    _mm_storeu_pd(crit + i, masked);
    vbest = _mm_max_pd(vbest, masked);
  }
  PDS_REQUIRE(bad == 0);  // matches the scalar PDS_REQUIRE(wait >= 0.0)
  return pick_highest_eq2(crit, h.lanes, hmax2(vbest));
}

ClassId additive_sse2(const Heads& h, const double* sdp, double now) {
  alignas(16) double crit[kMaxSimdLanes];
  const __m128d vnow = _mm_set1_pd(now);
  const __m128d vneg = _mm_set1_pd(kNegInf);
  const __m128d vzero = _mm_setzero_pd();
  __m128d vbest = vneg;
  int bad = 0;
  for (std::uint32_t i = 0; i < h.lanes; i += 2) {
    const __m128d mask =
        _mm_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m128d wait = _mm_sub_pd(vnow, _mm_loadu_pd(h.arrival + i));
    bad |= _mm_movemask_pd(_mm_and_pd(mask, _mm_cmplt_pd(wait, vzero)));
    const __m128d p = _mm_add_pd(wait, _mm_loadu_pd(sdp + i));
    const __m128d masked = select2(mask, p, vneg);
    _mm_storeu_pd(crit + i, masked);
    vbest = _mm_max_pd(vbest, masked);
  }
  PDS_REQUIRE(bad == 0);
  return pick_highest_eq2(crit, h.lanes, hmax2(vbest));
}

ClassId pad_sse2(const Heads& h, const double* sdp, const double* cum,
                 const double* served, double now) {
  alignas(16) double crit[kMaxSimdLanes];
  const __m128d vnow = _mm_set1_pd(now);
  const __m128d vneg = _mm_set1_pd(kNegInf);
  const __m128d vone = _mm_set1_pd(1.0);
  __m128d vbest = vneg;
  for (std::uint32_t i = 0; i < h.lanes; i += 2) {
    const __m128d mask =
        _mm_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m128d wait = _mm_sub_pd(vnow, _mm_loadu_pd(h.arrival + i));
    const __m128d sum = _mm_add_pd(_mm_loadu_pd(cum + i), wait);
    const __m128d n = _mm_add_pd(_mm_loadu_pd(served + i), vone);
    const __m128d p = _mm_mul_pd(_mm_div_pd(sum, n), _mm_loadu_pd(sdp + i));
    const __m128d masked = select2(mask, p, vneg);
    _mm_storeu_pd(crit + i, masked);
    vbest = _mm_max_pd(vbest, masked);
  }
  return pick_highest_eq2(crit, h.lanes, hmax2(vbest));
}

ClassId hpd_sse2(const Heads& h, const double* sdp, const double* cum,
                 const double* served, double now, double g) {
  alignas(16) double crit[kMaxSimdLanes];
  const __m128d vnow = _mm_set1_pd(now);
  const __m128d vneg = _mm_set1_pd(kNegInf);
  const __m128d vone = _mm_set1_pd(1.0);
  const __m128d vg = _mm_set1_pd(g);
  const __m128d vgc = _mm_set1_pd(1.0 - g);
  __m128d vbest = vneg;
  for (std::uint32_t i = 0; i < h.lanes; i += 2) {
    const __m128d mask =
        _mm_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m128d s = _mm_loadu_pd(sdp + i);
    const __m128d wait = _mm_sub_pd(vnow, _mm_loadu_pd(h.arrival + i));
    const __m128d wtp_part = _mm_mul_pd(wait, s);
    const __m128d sum = _mm_add_pd(_mm_loadu_pd(cum + i), wait);
    const __m128d n = _mm_add_pd(_mm_loadu_pd(served + i), vone);
    const __m128d pad_part = _mm_mul_pd(_mm_div_pd(sum, n), s);
    const __m128d p = _mm_add_pd(_mm_mul_pd(vg, wtp_part),
                                 _mm_mul_pd(vgc, pad_part));
    const __m128d masked = select2(mask, p, vneg);
    _mm_storeu_pd(crit + i, masked);
    vbest = _mm_max_pd(vbest, masked);
  }
  return pick_highest_eq2(crit, h.lanes, hmax2(vbest));
}

ClassId bpr_sse2(const Heads& h, const double* rates, double* vs,
                 double elapsed, double last_departure, bool any_departure) {
  alignas(16) double crit[kMaxSimdLanes];
  const __m128d vpos = _mm_set1_pd(kPosInf);
  const __m128d vel = _mm_set1_pd(elapsed);
  const __m128d vlast = _mm_set1_pd(last_departure);
  // all-ones when the head predates the last departure (vs accrues);
  // any_departure == false forces the "fresh head" branch on every lane.
  const __m128d vany =
      _mm_castsi128_pd(_mm_set1_epi64x(any_departure ? -1 : 0));
  __m128d vbest = vpos;
  for (std::uint32_t i = 0; i < h.lanes; i += 2) {
    const __m128d mask =
        _mm_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m128d arrival = _mm_loadu_pd(h.arrival + i);
    const __m128d accrued = _mm_add_pd(
        _mm_loadu_pd(vs + i), _mm_mul_pd(_mm_loadu_pd(rates + i), vel));
    const __m128d stale =
        _mm_and_pd(vany, _mm_cmple_pd(arrival, vlast));  // !(arrival > last)
    const __m128d vs_new =
        _mm_and_pd(mask, _mm_and_pd(stale, accrued));  // else branches are 0
    _mm_storeu_pd(vs + i, vs_new);
    const __m128d rem = _mm_sub_pd(_mm_loadu_pd(h.head_bytes + i), vs_new);
    const __m128d masked = select2(mask, rem, vpos);
    _mm_storeu_pd(crit + i, masked);
    vbest = _mm_min_pd(vbest, masked);
  }
  const double best = hmin2(vbest);
  const __m128d vbest1 = _mm_set1_pd(best);
  for (std::uint32_t i = h.lanes; i != 0; i -= 2) {
    const __m128d v = _mm_loadu_pd(crit + i - 2);
    const int m = _mm_movemask_pd(_mm_cmpeq_pd(v, vbest1));
    if (m != 0) {
      return static_cast<ClassId>(i - 2 +
                                  static_cast<std::uint32_t>(31 - __builtin_clz(
                                      static_cast<unsigned>(m))));
    }
  }
  PDS_REQUIRE(false);
}

// ---------------------------------------------------------------------------
// AVX2 kernels (4 lanes) — same structure, wider registers. The target
// attribute lets this TU compile without -mavx2.
// ---------------------------------------------------------------------------

#define PDS_AVX2 __attribute__((target("avx2")))

PDS_AVX2 inline __m256d select4(__m256d mask, __m256d value, __m256d fill) {
  return _mm256_blendv_pd(fill, value, mask);
}

PDS_AVX2 double hmax4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)));
}

PDS_AVX2 double hmin4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_min_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
}

PDS_AVX2 ClassId pick_highest_eq4(const double* crit, std::uint32_t lanes,
                                  double best) {
  const __m256d vbest = _mm256_set1_pd(best);
  for (std::uint32_t i = lanes; i != 0; i -= 4) {
    const __m256d v = _mm256_loadu_pd(crit + i - 4);
    const int m =
        _mm256_movemask_pd(_mm256_cmp_pd(v, vbest, _CMP_EQ_OQ));
    if (m != 0) {
      return static_cast<ClassId>(i - 4 +
                                  static_cast<std::uint32_t>(31 - __builtin_clz(
                                      static_cast<unsigned>(m))));
    }
  }
  PDS_REQUIRE(false);
}

PDS_AVX2 ClassId wtp_avx2(const Heads& h, const double* sdp, double now) {
  alignas(32) double crit[kMaxSimdLanes];
  const __m256d vnow = _mm256_set1_pd(now);
  const __m256d vneg = _mm256_set1_pd(kNegInf);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d vbest = vneg;
  int bad = 0;
  for (std::uint32_t i = 0; i < h.lanes; i += 4) {
    const __m256d mask =
        _mm256_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m256d wait = _mm256_sub_pd(vnow, _mm256_loadu_pd(h.arrival + i));
    bad |= _mm256_movemask_pd(
        _mm256_and_pd(mask, _mm256_cmp_pd(wait, vzero, _CMP_LT_OQ)));
    const __m256d p = _mm256_mul_pd(wait, _mm256_loadu_pd(sdp + i));
    const __m256d masked = select4(mask, p, vneg);
    _mm256_storeu_pd(crit + i, masked);
    vbest = _mm256_max_pd(vbest, masked);
  }
  PDS_REQUIRE(bad == 0);
  return pick_highest_eq4(crit, h.lanes, hmax4(vbest));
}

PDS_AVX2 ClassId additive_avx2(const Heads& h, const double* sdp,
                               double now) {
  alignas(32) double crit[kMaxSimdLanes];
  const __m256d vnow = _mm256_set1_pd(now);
  const __m256d vneg = _mm256_set1_pd(kNegInf);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d vbest = vneg;
  int bad = 0;
  for (std::uint32_t i = 0; i < h.lanes; i += 4) {
    const __m256d mask =
        _mm256_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m256d wait = _mm256_sub_pd(vnow, _mm256_loadu_pd(h.arrival + i));
    bad |= _mm256_movemask_pd(
        _mm256_and_pd(mask, _mm256_cmp_pd(wait, vzero, _CMP_LT_OQ)));
    const __m256d p = _mm256_add_pd(wait, _mm256_loadu_pd(sdp + i));
    const __m256d masked = select4(mask, p, vneg);
    _mm256_storeu_pd(crit + i, masked);
    vbest = _mm256_max_pd(vbest, masked);
  }
  PDS_REQUIRE(bad == 0);
  return pick_highest_eq4(crit, h.lanes, hmax4(vbest));
}

PDS_AVX2 ClassId pad_avx2(const Heads& h, const double* sdp,
                          const double* cum, const double* served,
                          double now) {
  alignas(32) double crit[kMaxSimdLanes];
  const __m256d vnow = _mm256_set1_pd(now);
  const __m256d vneg = _mm256_set1_pd(kNegInf);
  const __m256d vone = _mm256_set1_pd(1.0);
  __m256d vbest = vneg;
  for (std::uint32_t i = 0; i < h.lanes; i += 4) {
    const __m256d mask =
        _mm256_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m256d wait = _mm256_sub_pd(vnow, _mm256_loadu_pd(h.arrival + i));
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(cum + i), wait);
    const __m256d n = _mm256_add_pd(_mm256_loadu_pd(served + i), vone);
    const __m256d p =
        _mm256_mul_pd(_mm256_div_pd(sum, n), _mm256_loadu_pd(sdp + i));
    const __m256d masked = select4(mask, p, vneg);
    _mm256_storeu_pd(crit + i, masked);
    vbest = _mm256_max_pd(vbest, masked);
  }
  return pick_highest_eq4(crit, h.lanes, hmax4(vbest));
}

PDS_AVX2 ClassId hpd_avx2(const Heads& h, const double* sdp,
                          const double* cum, const double* served, double now,
                          double g) {
  alignas(32) double crit[kMaxSimdLanes];
  const __m256d vnow = _mm256_set1_pd(now);
  const __m256d vneg = _mm256_set1_pd(kNegInf);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vg = _mm256_set1_pd(g);
  const __m256d vgc = _mm256_set1_pd(1.0 - g);
  __m256d vbest = vneg;
  for (std::uint32_t i = 0; i < h.lanes; i += 4) {
    const __m256d mask =
        _mm256_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m256d s = _mm256_loadu_pd(sdp + i);
    const __m256d wait = _mm256_sub_pd(vnow, _mm256_loadu_pd(h.arrival + i));
    const __m256d wtp_part = _mm256_mul_pd(wait, s);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(cum + i), wait);
    const __m256d n = _mm256_add_pd(_mm256_loadu_pd(served + i), vone);
    const __m256d pad_part = _mm256_mul_pd(_mm256_div_pd(sum, n), s);
    const __m256d p = _mm256_add_pd(_mm256_mul_pd(vg, wtp_part),
                                    _mm256_mul_pd(vgc, pad_part));
    const __m256d masked = select4(mask, p, vneg);
    _mm256_storeu_pd(crit + i, masked);
    vbest = _mm256_max_pd(vbest, masked);
  }
  return pick_highest_eq4(crit, h.lanes, hmax4(vbest));
}

PDS_AVX2 ClassId bpr_avx2(const Heads& h, const double* rates, double* vs,
                          double elapsed, double last_departure,
                          bool any_departure) {
  alignas(32) double crit[kMaxSimdLanes];
  const __m256d vpos = _mm256_set1_pd(kPosInf);
  const __m256d vel = _mm256_set1_pd(elapsed);
  const __m256d vlast = _mm256_set1_pd(last_departure);
  const __m256d vany = _mm256_castsi256_pd(
      _mm256_set1_epi64x(any_departure ? -1 : 0));
  __m256d vbest = vpos;
  for (std::uint32_t i = 0; i < h.lanes; i += 4) {
    const __m256d mask =
        _mm256_loadu_pd(reinterpret_cast<const double*>(h.mask + i));
    const __m256d arrival = _mm256_loadu_pd(h.arrival + i);
    const __m256d accrued =
        _mm256_add_pd(_mm256_loadu_pd(vs + i),
                      _mm256_mul_pd(_mm256_loadu_pd(rates + i), vel));
    const __m256d stale = _mm256_and_pd(
        vany, _mm256_cmp_pd(arrival, vlast, _CMP_LE_OQ));
    const __m256d vs_new = _mm256_and_pd(mask, _mm256_and_pd(stale, accrued));
    _mm256_storeu_pd(vs + i, vs_new);
    const __m256d rem =
        _mm256_sub_pd(_mm256_loadu_pd(h.head_bytes + i), vs_new);
    const __m256d masked = select4(mask, rem, vpos);
    _mm256_storeu_pd(crit + i, masked);
    vbest = _mm256_min_pd(vbest, masked);
  }
  const double best = hmin4(vbest);
  const __m256d vbest1 = _mm256_set1_pd(best);
  for (std::uint32_t i = h.lanes; i != 0; i -= 4) {
    const __m256d v = _mm256_loadu_pd(crit + i - 4);
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(v, vbest1, _CMP_EQ_OQ));
    if (m != 0) {
      return static_cast<ClassId>(i - 4 +
                                  static_cast<std::uint32_t>(31 - __builtin_clz(
                                      static_cast<unsigned>(m))));
    }
  }
  PDS_REQUIRE(false);
}

#undef PDS_AVX2

#endif  // PDS_SCAN_X86

// Resolves a backend request to a concrete dispatch level for `lanes` lanes.
// 0 = scalar; on x86, 1 = SSE2 and 2 = AVX2.
int resolve(Backend backend, std::uint32_t lanes) {
#if PDS_SCAN_X86
  if (backend == Backend::kScalar || lanes > kMaxSimdLanes) return 0;
  if (backend == Backend::kAuto && lanes <= kAutoScalarMaxLanes) return 0;
  return best_level();
#else
  (void)backend;
  (void)lanes;
  return 0;
#endif
}

}  // namespace

bool simd_available() noexcept {
#if PDS_SCAN_X86
  return true;
#else
  return false;
#endif
}

const char* backend_name(Backend backend) noexcept {
#if PDS_SCAN_X86
  if (backend == Backend::kScalar) return "scalar";
  return best_level() == kLevelAvx2 ? "avx2" : "sse2";
#else
  (void)backend;
  return "scalar";
#endif
}

ClassId wtp_select(const Heads& heads, const double* sdp, double now,
                   Backend backend) {
#if PDS_SCAN_X86
  switch (resolve(backend, heads.lanes)) {
    case kLevelAvx2:
      return wtp_avx2(heads, sdp, now);
    case kLevelSse2:
      return wtp_sse2(heads, sdp, now);
    default:
      break;
  }
#endif
  (void)resolve(backend, heads.lanes);
  return wtp_scalar(heads, sdp, now);
}

ClassId additive_select(const Heads& heads, const double* sdp, double now,
                        Backend backend) {
#if PDS_SCAN_X86
  switch (resolve(backend, heads.lanes)) {
    case kLevelAvx2:
      return additive_avx2(heads, sdp, now);
    case kLevelSse2:
      return additive_sse2(heads, sdp, now);
    default:
      break;
  }
#endif
  return additive_scalar(heads, sdp, now);
}

ClassId pad_select(const Heads& heads, const double* sdp, const double* cum,
                   const double* served, double now, Backend backend) {
#if PDS_SCAN_X86
  switch (resolve(backend, heads.lanes)) {
    case kLevelAvx2:
      return pad_avx2(heads, sdp, cum, served, now);
    case kLevelSse2:
      return pad_sse2(heads, sdp, cum, served, now);
    default:
      break;
  }
#endif
  return pad_scalar(heads, sdp, cum, served, now);
}

ClassId hpd_select(const Heads& heads, const double* sdp, const double* cum,
                   const double* served, double now, double g,
                   Backend backend) {
#if PDS_SCAN_X86
  switch (resolve(backend, heads.lanes)) {
    case kLevelAvx2:
      return hpd_avx2(heads, sdp, cum, served, now, g);
    case kLevelSse2:
      return hpd_sse2(heads, sdp, cum, served, now, g);
    default:
      break;
  }
#endif
  return hpd_scalar(heads, sdp, cum, served, now, g);
}

ClassId bpr_select(const Heads& heads, const double* rates, double* vs,
                   double elapsed, double last_departure, bool any_departure,
                   Backend backend) {
#if PDS_SCAN_X86
  switch (resolve(backend, heads.lanes)) {
    case kLevelAvx2:
      return bpr_avx2(heads, rates, vs, elapsed, last_departure,
                      any_departure);
    case kLevelSse2:
      return bpr_sse2(heads, rates, vs, elapsed, last_departure,
                      any_departure);
    default:
      break;
  }
#endif
  return bpr_scalar(heads, rates, vs, elapsed, last_departure, any_departure);
}

std::uint32_t scan_links(const Heads* heads, const double* const* sdp,
                         double now, std::uint32_t count, Backend backend,
                         std::int32_t* winners) {
  std::uint32_t backlogged = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const Heads& h = heads[i];
    bool any = false;
    for (std::uint32_t c = 0; c < h.n; ++c) {
      if (h.mask[c] != 0) {
        any = true;
        break;
      }
    }
    if (!any) {
      winners[i] = -1;
      continue;
    }
    ++backlogged;
    winners[i] = static_cast<std::int32_t>(wtp_select(h, sdp[i], now,
                                                      backend));
  }
  return backlogged;
}

}  // namespace pds::scan
