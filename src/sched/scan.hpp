// Vectorized priority-scan kernels for the per-dequeue argmax/argmin that
// every proportional scheduler runs over the flat ClassHead snapshot.
//
// PR 5 flattened MultiClassBacklog into a contiguous per-class array; these
// kernels exploit that layout. MultiClassBacklog maintains, next to the
// ClassHead records, a structure-of-arrays mirror (head arrival, head wire
// size as a double, and a backlogged lane mask) padded to a multiple of
// kLanes, so a dequeue decision is one branch-light pass of 2–4-wide double
// arithmetic instead of a scalar loop with a branch per class.
//
// Determinism contract: every backend (scalar, SSE2, AVX2) produces the SAME
// winner for the SAME inputs, bit for bit. The SIMD paths use only IEEE-exact
// lane operations (mul/add/sub/div — never FMA; scan.cpp is compiled with
// -ffp-contract=off so the scalar path cannot be contracted either), and the
// tie-break is the paper's: among classes attaining the best priority, the
// HIGHEST class index wins (the scalar loops scan ascending and update on
// `>=` / `<=`). tests/scan_test.cpp fuzzes scalar-vs-SIMD equivalence and
// check.sh re-runs the dispatch-equivalence suite with -DPDS_SIMD=OFF.
//
// Backend selection: compile-time gate (PDS_SIMD CMake option; off means
// every call resolves to the scalar kernel) plus a one-shot runtime CPUID
// probe that picks AVX2 over SSE2 when the host supports it. Schedulers can
// force a backend for differential testing via
// ClassBasedScheduler::set_scan_backend.
#pragma once

#include <cstdint>

#include "packet/packet.hpp"

namespace pds::scan {

// Lane padding granularity of every array the kernels read. All SoA arrays
// (arrival/head_bytes/mask from MultiClassBacklog, plus the per-scheduler
// sdp/cum/served/rates/virtual-service vectors) hold `padded(n)` entries;
// lanes at index >= n carry mask 0 and value 0.0.
inline constexpr std::uint32_t kLanes = 4;

inline constexpr std::uint32_t padded_lanes(std::uint32_t n) noexcept {
  return (n + (kLanes - 1)) & ~(kLanes - 1);
}

// Read-only view of the backlog's head-of-line SoA mirror.
struct Heads {
  const double* arrival;          // head arrival time; 0.0 when idle
  const double* head_bytes;       // head wire size as double; 0.0 when idle
  const std::uint64_t* mask;      // all-ones when backlogged, 0 when idle
  std::uint32_t n;                // real class count
  std::uint32_t lanes;            // padded_lanes(n)
};

enum class Backend : std::uint8_t {
  kAuto,    // best compiled-in + CPU-supported backend for the scan width:
            // scalar for small head arrays (<= 8 padded lanes, where the
            // predictable scalar loop wins) or when PDS_SIMD=OFF, vector
            // kernels beyond that
  kScalar,  // force the scalar reference kernels
  kSimd,    // force the SIMD kernels (falls back to scalar when unavailable)
};

// True when a SIMD backend is compiled in and the CPU supports it.
bool simd_available() noexcept;

// Name of the backend a given request resolves to: "scalar", "sse2", "avx2".
const char* backend_name(Backend backend) noexcept;

// All selectors require at least one backlogged class (callers gate on
// MultiClassBacklog::empty()) and return the winning class index under the
// tie-break above.

// WTP (Eq. 11): argmax over backlogged c of (now - arrival[c]) * sdp[c].
ClassId wtp_select(const Heads& heads, const double* sdp, double now,
                   Backend backend);

// Additive differentiation: argmax of (now - arrival[c]) + sdp[c].
ClassId additive_select(const Heads& heads, const double* sdp, double now,
                        Backend backend);

// PAD: argmax of ((cum[c] + (now - arrival[c])) / (served[c] + 1)) * sdp[c].
// `served` is the served-packet count mirrored as doubles (exact below 2^53).
ClassId pad_select(const Heads& heads, const double* sdp, const double* cum,
                   const double* served, double now, Backend backend);

// HPD: argmax of g * wtp_term + (1 - g) * pad_term (terms as above).
ClassId hpd_select(const Heads& heads, const double* sdp, const double* cum,
                   const double* served, double now, double g,
                   Backend backend);

// BPR: updates the per-class virtual service in place — 0 for idle classes
// and for heads that reached the front after the last departure, otherwise
// vs[c] += rates[c] * elapsed — then returns the argmin over backlogged c of
// head_bytes[c] - vs[c] (least remaining virtual work, ties to the highest
// class). `vs` must hold heads.lanes entries; pad lanes are zeroed.
ClassId bpr_select(const Heads& heads, const double* rates, double* vs,
                   double elapsed, double last_departure, bool any_departure,
                   Backend backend);

// Batched multi-link WTP sweep: one call scanning `count` links' head
// snapshots at once (the sharded runner's per-round dequeue sweep over a
// shard's owned links). For link i, `heads[i]` is its SoA view and `sdp[i]`
// its padded weight lanes (ClassBasedScheduler::weight_lanes). Writes
// `winners[i]` = the WTP winner under the standard tie-break, or -1 when
// the link has no backlogged class (the only selector here that tolerates
// an all-idle snapshot), and returns the number of backlogged links. The
// determinism contract above applies per link: every backend produces the
// same winners array, bit for bit.
std::uint32_t scan_links(const Heads* heads, const double* const* sdp,
                         double now, std::uint32_t count, Backend backend,
                         std::int32_t* winners);

}  // namespace pds::scan
