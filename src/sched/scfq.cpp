#include "sched/scfq.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pds {

ScfqScheduler::ScfqScheduler(const SchedulerConfig& config)
    : backlog_(config.num_classes()),
      weight_(config.sdp),
      tags_(config.num_classes()),
      last_finish_(config.num_classes(), 0.0) {
  config.validate();
}

void ScfqScheduler::set_weights(const std::vector<double>& sdp) {
  check_weights(sdp, num_classes());
  std::copy(sdp.begin(), sdp.end(), weight_.begin());
}

void ScfqScheduler::enqueue(Packet p, SimTime now) {
  PDS_CHECK(p.arrival <= now, "packet arrival stamped in the future");
  const ClassId c = p.cls;
  PDS_CHECK(c < backlog_.num_classes(), "class index out of range");
  const double start = std::max(vtime_, last_finish_[c]);
  const double finish =
      start + static_cast<double>(p.size_bytes) / weight_[c];
  last_finish_[c] = finish;
  tags_[c].push_back(finish);
  backlog_.push(p);
  notify_enqueued(p, now);
}

std::optional<Packet> ScfqScheduler::dequeue(SimTime) {
  if (backlog_.empty()) return std::nullopt;
  const ClassHead* heads = backlog_.heads();
  const ClassId n = backlog_.num_classes();
  bool found = false;
  ClassId best = 0;
  double best_tag = 0.0;
  for (ClassId c = 0; c < n; ++c) {
    if (heads[c].packets == 0) continue;
    const double tag = tags_[c].front();
    // `<=` keeps the higher class on ties, consistent with the other
    // schedulers in this library.
    if (!found || tag <= best_tag) {
      found = true;
      best = c;
      best_tag = tag;
    }
  }
  PDS_REQUIRE(found);
  tags_[best].pop_front();
  vtime_ = best_tag;
  Packet p = backlog_.pop(best);
  if (backlog_.empty()) {
    // End of busy period: reset virtual time so an idle system does not
    // carry stale credit into the next busy period.
    vtime_ = 0.0;
    std::fill(last_finish_.begin(), last_finish_.end(), 0.0);
  }
  return p;
}

}  // namespace pds
