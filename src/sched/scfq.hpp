// Self-Clocked Fair Queueing — the WFQ-family capacity-differentiation
// baseline (Section 2.1's "Capacity Differentiation" model).
//
// SCFQ (Golestani, INFOCOM'94) approximates GPS with a virtual time equal to
// the finish tag of the packet most recently selected for service. A packet
// of class i arriving at virtual time v gets finish tag
//
//     F = max(v, F_prev_i) + L / w_i
//
// and the backlogged head with the smallest tag is served. Weights are the
// SDPs, so the *bandwidth* ratios are controllable — but the *delay* ratios
// drift with class load, which is the model's documented weakness.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pds {

class ScfqScheduler final : public Scheduler {
 public:
  explicit ScfqScheduler(const SchedulerConfig& config);

  void enqueue(Packet p, SimTime now) override;
  std::optional<Packet> dequeue(SimTime now) override;

  std::string_view name() const noexcept override { return "SCFQ"; }
  bool empty() const noexcept override { return backlog_.empty(); }
  std::uint32_t num_classes() const noexcept override {
    return backlog_.num_classes();
  }
  std::uint64_t backlog_packets(ClassId cls) const override {
    PDS_CHECK(cls < backlog_.num_classes(), "class index out of range");
    return backlog_.head_of(cls).packets;
  }
  std::uint64_t backlog_bytes(ClassId cls) const override {
    PDS_CHECK(cls < backlog_.num_classes(), "class index out of range");
    return backlog_.head_of(cls).bytes;
  }

  // Live retune: new weights shape the finish tags of *future* arrivals;
  // tags already queued keep the rates they were admitted under.
  void set_weights(const std::vector<double>& sdp) override;

  double virtual_time() const noexcept { return vtime_; }

 private:
  MultiClassBacklog backlog_;
  std::vector<double> weight_;
  // Finish tags of queued packets, FIFO-parallel to each class queue.
  std::vector<std::deque<double>> tags_;
  std::vector<double> last_finish_;  // F_prev per class
  double vtime_ = 0.0;
};

}  // namespace pds
