#include "sched/scheduler.hpp"

#include <string>

#include "util/contracts.hpp"

namespace pds {

void SchedulerConfig::validate(bool needs_capacity) const {
  PDS_CHECK(!sdp.empty(), "at least one class required");
  for (std::size_t i = 0; i < sdp.size(); ++i) {
    PDS_CHECK(sdp[i] > 0.0, "SDPs must be positive");
    if (i > 0) {
      PDS_CHECK(sdp[i] >= sdp[i - 1],
                "SDPs must be non-decreasing (higher class = larger s)");
    }
  }
  if (needs_capacity) {
    PDS_CHECK(link_capacity > 0.0, "link capacity required");
  }
  // g = 0 would degenerate HPD to pure PAD while still paying the hybrid
  // bookkeeping; callers who want PAD should instantiate PAD directly.
  PDS_CHECK(hpd_g > 0.0 && hpd_g <= 1.0, "hpd_g must be in (0,1]");
  PDS_CHECK(drr_quantum_bytes > 0.0, "DRR quantum must be positive");
  PDS_CHECK(burst >= 1 && burst <= kMaxBurst,
            "burst must be in [1, " + std::to_string(kMaxBurst) + "]");
}

static_assert(MultiClassBacklog::kLanePad == scan::kLanes,
              "backlog SoA padding must match the scan kernels' lane width");

std::uint32_t Scheduler::dequeue_burst(SimTime now, Packet* out,
                                       std::uint32_t max_k) {
  PDS_CHECK(out != nullptr && max_k >= 1, "bad burst buffer");
  std::uint32_t k = 0;
  while (k < max_k) {
    auto p = dequeue(now);
    if (!p.has_value()) break;
    out[k++] = std::move(*p);
  }
  return k;
}

ClassBasedScheduler::ClassBasedScheduler(const SchedulerConfig& config,
                                         bool needs_capacity)
    : backlog_(config.num_classes(), config.arena),
      sdp_(config.sdp),
      sdp_lanes_(config.sdp),
      link_capacity_(config.link_capacity),
      burst_(config.burst) {
  config.validate(needs_capacity);
  sdp_lanes_.resize(backlog_.lane_count(), 0.0);
}

void ClassBasedScheduler::enqueue(Packet p, SimTime now) {
  PDS_CHECK(p.arrival <= now, "packet arrival stamped in the future");
  backlog_.push(p);
  notify_enqueued(p, now);
}

std::optional<Packet> Scheduler::drop_tail(ClassId) { return std::nullopt; }

std::optional<Packet> ClassBasedScheduler::drop_tail(ClassId cls) {
  PDS_CHECK(cls < num_classes(), "class index out of range");
  if (backlog_.head_of(cls).packets == 0) return std::nullopt;
  return backlog_.pop_tail(cls);
}

}  // namespace pds
