#include "sched/scheduler.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/contracts.hpp"

namespace pds {

void SchedulerConfig::validate(bool needs_capacity) const {
  PDS_CHECK(!sdp.empty(), "at least one class required");
  for (std::size_t i = 0; i < sdp.size(); ++i) {
    PDS_CHECK(sdp[i] > 0.0, "SDPs must be positive");
    if (i > 0) {
      PDS_CHECK(sdp[i] >= sdp[i - 1],
                "SDPs must be non-decreasing (higher class = larger s)");
    }
  }
  if (needs_capacity) {
    PDS_CHECK(link_capacity > 0.0, "link capacity required");
  }
  // g = 0 would degenerate HPD to pure PAD while still paying the hybrid
  // bookkeeping; callers who want PAD should instantiate PAD directly.
  PDS_CHECK(hpd_g > 0.0 && hpd_g <= 1.0, "hpd_g must be in (0,1]");
  PDS_CHECK(drr_quantum_bytes > 0.0, "DRR quantum must be positive");
  PDS_CHECK(burst >= 1 && burst <= kMaxBurst,
            "burst must be in [1, " + std::to_string(kMaxBurst) + "]");
}

static_assert(MultiClassBacklog::kLanePad == scan::kLanes,
              "backlog SoA padding must match the scan kernels' lane width");

std::uint32_t Scheduler::dequeue_burst(SimTime now, Packet* out,
                                       std::uint32_t max_k) {
  PDS_CHECK(out != nullptr && max_k >= 1, "bad burst buffer");
  std::uint32_t k = 0;
  while (k < max_k) {
    auto p = dequeue(now);
    if (!p.has_value()) break;
    out[k++] = std::move(*p);
  }
  return k;
}

ClassBasedScheduler::ClassBasedScheduler(const SchedulerConfig& config,
                                         bool needs_capacity)
    : backlog_(config.num_classes(), config.arena),
      sdp_(config.sdp),
      sdp_lanes_(config.sdp),
      link_capacity_(config.link_capacity),
      burst_(config.burst) {
  config.validate(needs_capacity);
  sdp_lanes_.resize(backlog_.lane_count(), 0.0);
}

void ClassBasedScheduler::enqueue(Packet p, SimTime now) {
  PDS_CHECK(p.arrival <= now, "packet arrival stamped in the future");
  backlog_.push(p);
  notify_enqueued(p, now);
}

std::optional<Packet> Scheduler::drop_tail(ClassId) { return std::nullopt; }

void Scheduler::check_weights(const std::vector<double>& sdp,
                              std::uint32_t num_classes) {
  PDS_CHECK(sdp.size() == num_classes,
            "weight count must match the class count");
  for (std::size_t i = 0; i < sdp.size(); ++i) {
    PDS_CHECK(sdp[i] > 0.0, "weights must be positive");
    if (i > 0) {
      PDS_CHECK(sdp[i] >= sdp[i - 1],
                "weights must be non-decreasing (higher class = larger s)");
    }
  }
}

void Scheduler::set_weights(const std::vector<double>&) {
  PDS_CHECK(false,
            std::string(name()) + " does not support live weight retune");
}

std::uint64_t Scheduler::total_backlog_packets() const {
  std::uint64_t total = 0;
  for (ClassId c = 0; c < num_classes(); ++c) total += backlog_packets(c);
  return total;
}

SimTime Scheduler::max_head_wait(SimTime) const { return kTimeZero; }

void ClassBasedScheduler::set_weights(const std::vector<double>& sdp) {
  check_weights(sdp, num_classes());
  // In-place rewrite: same length, no reallocation, backlogs untouched.
  std::copy(sdp.begin(), sdp.end(), sdp_.begin());
  std::copy(sdp.begin(), sdp.end(), sdp_lanes_.begin());
}

SimTime ClassBasedScheduler::max_head_wait(SimTime now) const {
  SimTime worst = kTimeZero;
  const ClassHead* heads = backlog_.heads();
  for (ClassId c = 0; c < num_classes(); ++c) {
    if (heads[c].packets != 0 && now - heads[c].arrival > worst) {
      worst = now - heads[c].arrival;
    }
  }
  return worst;
}

MultiClassBacklog ClassBasedScheduler::release_backlog() {
  MultiClassBacklog released = std::move(backlog_);
  // Leave the retired scheduler with a valid empty backlog: it may still be
  // destroyed, inspected, or swapped back in later.
  backlog_ = MultiClassBacklog(released.num_classes(), released.arena());
  return released;
}

void ClassBasedScheduler::adopt_backlog(MultiClassBacklog&& backlog,
                                        SimTime now) {
  PDS_CHECK(backlog.num_classes() == num_classes(),
            "backlog handoff across different class counts");
  PDS_CHECK(backlog_.empty(), "adopting scheduler must start empty");
  backlog_ = std::move(backlog);
  on_backlog_adopted(now);
}

void ClassBasedScheduler::on_backlog_adopted(SimTime) {}

std::optional<Packet> ClassBasedScheduler::drop_tail(ClassId cls) {
  PDS_CHECK(cls < num_classes(), "class index out of range");
  if (backlog_.head_of(cls).packets == 0) return std::nullopt;
  return backlog_.pop_tail(cls);
}

}  // namespace pds
