// Scheduler interface shared by all multi-class packet schedulers.
//
// A scheduler owns the per-class queues of one output link. The surrounding
// Link pulls the next packet with dequeue() whenever the transmitter goes
// idle; work conservation is guaranteed by construction because dequeue()
// must return a packet whenever any class is backlogged.
//
// Scheduler Differentiation Parameters (SDPs) follow the paper's convention:
// s_0 <= s_1 <= ... <= s_{N-1}, with the highest class (largest s) receiving
// the best (lowest-delay) treatment. Under both WTP and BPR the achieved
// Delay Differentiation Parameters in heavy load are the inverses of the
// SDPs: d_i / d_j -> s_j / s_i (Eq. 10).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dsim/time.hpp"
#include "obs/probe.hpp"
#include "packet/arena.hpp"
#include "packet/packet.hpp"
#include "queueing/backlog.hpp"
#include "sched/scan.hpp"

namespace pds {

// Upper bound on the burst knob (packets drained per scheduler decision);
// bounds the Link's burst staging buffer.
inline constexpr std::uint32_t kMaxBurst = 64;

struct SchedulerConfig {
  // Scheduler differentiation parameters, one per class, non-decreasing and
  // strictly positive. The vector length defines the number of classes.
  std::vector<double> sdp;

  // Output link capacity in bytes per time unit. Required by rate-based
  // schedulers (BPR); ignored by priority-based ones.
  double link_capacity = 0.0;

  // HPD only: weight of the WTP component (g in the literature).
  // Must lie in (0, 1]: g -> 0 approaches pure PAD, g = 1 is pure WTP.
  double hpd_g = 0.875;

  // DRR only: quantum granted to a class with s = 1, in bytes.
  double drr_quantum_bytes = 1500.0;

  // Packets drained per scheduler decision (Link burst transmit). 1 — the
  // default — keeps every existing trace byte-identical; k > 1 serves up to
  // k consecutive head packets of the winning class per decision (see
  // docs/architecture.md, "Batched packet plane"). Bounded by kMaxBurst.
  std::uint32_t burst = 1;

  // Optional backing store for the per-class rings (see PacketArena). Not
  // owned; must outlive the scheduler. nullptr == global allocator.
  PacketArena* arena = nullptr;

  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(sdp.size());
  }

  // Throws std::invalid_argument on malformed parameters. `needs_capacity`
  // adds the positivity requirement on link_capacity.
  void validate(bool needs_capacity = false) const;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Adds a packet (whose `arrival` field must already be stamped with the
  // enqueue time at this hop) to its class queue.
  virtual void enqueue(Packet p, SimTime now) = 0;

  // Selects, removes and returns the next packet to transmit, or nullopt if
  // no class is backlogged. `now` is the instant transmission would start.
  virtual std::optional<Packet> dequeue(SimTime now) = 0;

  // Burst variant: removes up to `max_k` packets into `out` (capacity >=
  // max_k) and returns how many were taken (0 iff nothing is backlogged).
  // The base implementation loops dequeue() — max_k independent decisions.
  // The proportional schedulers (WTP/BPR/additive/PAD/HPD) override it to
  // make ONE priority decision and drain up to max_k consecutive head
  // packets of the winning class, which is the paper-faithful reading of a
  // burst: the decision cost is amortized, the winner is not re-elected
  // mid-burst. With max_k == 1 both forms are identical to dequeue().
  virtual std::uint32_t dequeue_burst(SimTime now, Packet* out,
                                      std::uint32_t max_k);

  virtual std::string_view name() const noexcept = 0;

  // Push-out support for droppers: removes and returns the most recently
  // arrived packet of `cls`, or nullopt if the scheduler does not support
  // tail drops (FCFS, SCFQ) or the class is empty. Schedulers that maintain
  // per-packet auxiliary state must keep it consistent.
  virtual std::optional<Packet> drop_tail(ClassId cls);

  virtual bool empty() const noexcept = 0;
  virtual std::uint32_t num_classes() const noexcept = 0;
  virtual std::uint64_t backlog_packets(ClassId cls) const = 0;
  virtual std::uint64_t backlog_bytes(ClassId cls) const = 0;

  // --- Live reconfiguration hooks (driven by ctrl/) ----------------------

  // Replaces the per-class weights (SDPs) in place without touching any
  // backlog: one entry per class, strictly positive, non-decreasing. The
  // default rejects; schedulers whose weights are retunable override (all
  // class-based schedulers plus SCFQ/VC — FCFS has no weights).
  virtual void set_weights(const std::vector<double>& sdp);

  // Aggregate packet backlog across all classes (overload-guard input).
  virtual std::uint64_t total_backlog_packets() const;

  // Longest head-of-line wait across backlogged classes at `now`; zero when
  // idle. Schedulers without head timestamps report zero.
  virtual SimTime max_head_wait(SimTime now) const;

  // Observability: attaches a lifecycle probe (nullptr detaches). The
  // scheduler emits exactly one on_enqueue per accepted packet, stamped with
  // `hop` and the packet's post-insert class backlog. The probe must outlive
  // the scheduler or be detached first.
  void set_probe(PacketProbe* probe, std::uint32_t hop = 0) noexcept {
    probe_ = probe;
    probe_hop_ = hop;
  }
  PacketProbe* probe() const noexcept { return probe_; }

 protected:
  Scheduler() = default;

  // Shared validation for set_weights overrides.
  static void check_weights(const std::vector<double>& sdp,
                            std::uint32_t num_classes);

  // Fires the probe for a completed enqueue. Every enqueue() implementation
  // must call this exactly once, after the packet is in its queue. (Packet
  // is trivially copyable, so implementations keep a usable copy even after
  // moving the argument into the backlog.)
  void notify_enqueued([[maybe_unused]] const Packet& p,
                       [[maybe_unused]] SimTime now) const {
    PDS_OBS_NOTIFY(probe_,
                   on_enqueue(p,
                              ProbeContext{probe_hop_, backlog_packets(p.cls),
                                           backlog_bytes(p.cls)},
                              now));
  }

 private:
  PacketProbe* probe_ = nullptr;
  std::uint32_t probe_hop_ = 0;
};

// Common base for schedulers that keep one FIFO queue per class.
class ClassBasedScheduler : public Scheduler {
 public:
  bool empty() const noexcept override { return backlog_.empty(); }
  std::uint32_t num_classes() const noexcept override {
    return backlog_.num_classes();
  }
  std::uint64_t backlog_packets(ClassId cls) const override {
    PDS_CHECK(cls < backlog_.num_classes(), "class index out of range");
    return backlog_.head_of(cls).packets;
  }
  std::uint64_t backlog_bytes(ClassId cls) const override {
    PDS_CHECK(cls < backlog_.num_classes(), "class index out of range");
    return backlog_.head_of(cls).bytes;
  }

  void enqueue(Packet p, SimTime now) override;
  std::optional<Packet> drop_tail(ClassId cls) override;

  void set_weights(const std::vector<double>& sdp) override;
  std::uint64_t total_backlog_packets() const override {
    return backlog_.total_packets();
  }
  SimTime max_head_wait(SimTime now) const override;

  // --- Live scheduler swap (ctrl/) ---------------------------------------
  // Hands this scheduler's backlog — class rings, head snapshot and SoA
  // mirror intact — to a replacement during a live swap, leaving this
  // scheduler with a fresh empty backlog so it stays safe to destroy or
  // reuse. The counterpart adopt_backlog() installs the released backlog
  // and lets subclasses rebuild derived state (DRR active ring, BPR rates)
  // via on_backlog_adopted().
  MultiClassBacklog release_backlog();
  void adopt_backlog(MultiClassBacklog&& backlog, SimTime now);

  // Burst size this scheduler was configured with (the Link reads it when
  // wiring its transmit loop).
  std::uint32_t configured_burst() const noexcept { return burst_; }

  // Test hook: forces the priority-scan backend (kAuto picks the widest
  // compiled-in backend the CPU supports). The differential tests drive the
  // same scheduler with kScalar and kSimd and require identical decisions.
  void set_scan_backend(scan::Backend backend) noexcept { backend_ = backend; }
  scan::Backend scan_backend() const noexcept { return backend_; }

  // Read-only snapshots for external batched scans (scan::scan_links — the
  // sharded runner's dequeue sweep): the head-of-line SoA view and the
  // weights padded to its lane count.
  scan::Heads heads() const noexcept { return heads_view(); }
  const std::vector<double>& weight_lanes() const noexcept {
    return sdp_lanes();
  }

 protected:
  explicit ClassBasedScheduler(const SchedulerConfig& config,
                               bool needs_capacity = false);

  // Called by adopt_backlog() after backlog_ is installed; subclasses that
  // derive state from backlog occupancy (DRR) or per-packet history (BPR)
  // override to rebuild it deterministically.
  virtual void on_backlog_adopted(SimTime now);

  const std::vector<double>& sdp() const noexcept { return sdp_; }
  double link_capacity() const noexcept { return link_capacity_; }

  // SDPs padded to backlog_.lane_count() entries (pad lanes 0.0), the form
  // the scan kernels consume.
  const std::vector<double>& sdp_lanes() const noexcept { return sdp_lanes_; }

  // SoA view of the backlog heads for the scan kernels.
  scan::Heads heads_view() const noexcept {
    return scan::Heads{backlog_.soa_head_arrival(), backlog_.soa_head_bytes(),
                       backlog_.soa_mask(), backlog_.num_classes(),
                       backlog_.lane_count()};
  }

  MultiClassBacklog backlog_;

 private:
  std::vector<double> sdp_;
  std::vector<double> sdp_lanes_;
  double link_capacity_;
  std::uint32_t burst_;
  scan::Backend backend_ = scan::Backend::kAuto;
};

}  // namespace pds
