#include "sched/strict_priority.hpp"

namespace pds {

std::optional<Packet> StrictPriorityScheduler::dequeue(SimTime) {
  if (backlog_.empty()) return std::nullopt;
  for (ClassId c = backlog_.num_classes(); c-- > 0;) {
    if (!backlog_.queue(c).empty()) return backlog_.pop(c);
  }
  return std::nullopt;  // unreachable: empty() was false
}

}  // namespace pds
