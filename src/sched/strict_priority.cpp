#include "sched/strict_priority.hpp"

namespace pds {

std::optional<Packet> StrictPriorityScheduler::dequeue(SimTime) {
  if (backlog_.empty()) return std::nullopt;
  const ClassHead* heads = backlog_.heads();
  for (ClassId c = backlog_.num_classes(); c-- > 0;) {
    if (heads[c].packets != 0) return backlog_.pop(c);
  }
  return std::nullopt;  // unreachable: empty() was false
}

}  // namespace pds
