// Strict (static) priority scheduler — Section 2.1's first "other relative
// differentiation model". The highest backlogged class is always served
// first. Differentiation is consistent but not controllable: there is no
// knob for the quality spacing, and lower classes can starve.
#pragma once

#include "sched/scheduler.hpp"

namespace pds {

class StrictPriorityScheduler final : public ClassBasedScheduler {
 public:
  explicit StrictPriorityScheduler(const SchedulerConfig& config)
      : ClassBasedScheduler(config) {}

  std::optional<Packet> dequeue(SimTime now) override;

  std::string_view name() const noexcept override { return "SP"; }
};

}  // namespace pds
