#include "sched/virtual_clock.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pds {

VirtualClockScheduler::VirtualClockScheduler(const SchedulerConfig& config)
    : backlog_(config.num_classes()),
      weight_(config.sdp),
      vclock_(config.num_classes(), 0.0),
      tags_(config.num_classes()) {
  config.validate();
}

void VirtualClockScheduler::set_weights(const std::vector<double>& sdp) {
  check_weights(sdp, num_classes());
  std::copy(sdp.begin(), sdp.end(), weight_.begin());
}

double VirtualClockScheduler::clock(ClassId cls) const {
  PDS_CHECK(cls < vclock_.size(), "class index out of range");
  return vclock_[cls];
}

void VirtualClockScheduler::enqueue(Packet p, SimTime now) {
  PDS_CHECK(p.arrival <= now, "packet arrival stamped in the future");
  const ClassId c = p.cls;
  PDS_CHECK(c < backlog_.num_classes(), "class index out of range");
  vclock_[c] = std::max(now, vclock_[c]) +
               static_cast<double>(p.size_bytes) / weight_[c];
  tags_[c].push_back(vclock_[c]);
  backlog_.push(p);
  notify_enqueued(p, now);
}

std::optional<Packet> VirtualClockScheduler::dequeue(SimTime) {
  if (backlog_.empty()) return std::nullopt;
  const ClassHead* heads = backlog_.heads();
  const ClassId n = backlog_.num_classes();
  bool found = false;
  ClassId best = 0;
  double best_tag = 0.0;
  for (ClassId c = 0; c < n; ++c) {
    if (heads[c].packets == 0) continue;
    const double tag = tags_[c].front();
    if (!found || tag <= best_tag) {  // ties go to the higher class
      found = true;
      best = c;
      best_tag = tag;
    }
  }
  PDS_REQUIRE(found);
  tags_[best].pop_front();
  return backlog_.pop(best);
}

}  // namespace pds
