// Virtual Clock scheduler (Zhang, SIGCOMM'90) — a rate-reservation
// baseline.
//
// Each class owns a virtual clock that advances by L / w_i per queued
// packet, never falling behind real time:
//
//     VC_i = max(now, VC_i) + L / w_i,   tag(packet) = VC_i,
//
// and the backlogged head with the smallest tag is served. Unlike SCFQ's
// shared virtual time, a class that idles does not bank credit (its clock
// is pulled up to `now`), but a class that *over-uses* while others idle is
// later punished — the classic fairness critique. Included as the second
// capacity-differentiation baseline: bandwidth shares are controllable, but
// like the other members of the family it cannot pin delay *ratios*.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pds {

class VirtualClockScheduler final : public Scheduler {
 public:
  explicit VirtualClockScheduler(const SchedulerConfig& config);

  void enqueue(Packet p, SimTime now) override;
  std::optional<Packet> dequeue(SimTime now) override;

  std::string_view name() const noexcept override { return "VC"; }
  bool empty() const noexcept override { return backlog_.empty(); }
  std::uint32_t num_classes() const noexcept override {
    return backlog_.num_classes();
  }
  std::uint64_t backlog_packets(ClassId cls) const override {
    PDS_CHECK(cls < backlog_.num_classes(), "class index out of range");
    return backlog_.head_of(cls).packets;
  }
  std::uint64_t backlog_bytes(ClassId cls) const override {
    PDS_CHECK(cls < backlog_.num_classes(), "class index out of range");
    return backlog_.head_of(cls).bytes;
  }

  // Live retune: new weights advance the virtual clocks of *future*
  // arrivals; tags already queued keep the rates they were admitted under.
  void set_weights(const std::vector<double>& sdp) override;

  double clock(ClassId cls) const;

 private:
  MultiClassBacklog backlog_;
  std::vector<double> weight_;
  std::vector<double> vclock_;
  std::vector<std::deque<double>> tags_;  // FIFO-parallel to each queue
};

}  // namespace pds
