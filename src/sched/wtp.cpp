#include "sched/wtp.hpp"

#include "util/contracts.hpp"

namespace pds {

double WtpScheduler::head_priority(ClassId cls, SimTime now) const {
  const ClassQueue& q = backlog_.queue(cls);
  if (q.empty()) return 0.0;
  const SimTime wait = now - q.head().arrival;
  PDS_REQUIRE(wait >= 0.0);
  return wait * sdp()[cls];
}

std::optional<Packet> WtpScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  bool found = false;
  ClassId best = 0;
  double best_priority = -1.0;
  for (ClassId c = 0; c < backlog_.num_classes(); ++c) {
    if (backlog_.queue(c).empty()) continue;
    const double p = head_priority(c, now);
    // `>=` implements the tie-break in favour of the higher class: classes
    // are scanned in ascending order, so an equal priority at a higher
    // index wins.
    if (!found || p >= best_priority) {
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return backlog_.pop(best);
}

}  // namespace pds
