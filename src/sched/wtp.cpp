#include "sched/wtp.hpp"

#include "sched/scan.hpp"
#include "util/contracts.hpp"

namespace pds {

double WtpScheduler::head_priority(ClassId cls, SimTime now) const {
  PDS_CHECK(cls < num_classes(), "class index out of range");
  const ClassHead& h = backlog_.head_of(cls);
  if (h.packets == 0) return 0.0;
  const SimTime wait = now - h.arrival;
  PDS_REQUIRE(wait >= 0.0);
  return wait * sdp()[cls];
}

std::optional<Packet> WtpScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  // One branch-light pass over the head-of-line SoA mirror (Eq. 11 argmax,
  // ties to the higher class); kernels in sched/scan.cpp.
  const ClassId best =
      scan::wtp_select(heads_view(), sdp_lanes().data(), now, scan_backend());
  return backlog_.pop(best);
}

std::uint32_t WtpScheduler::dequeue_burst(SimTime now, Packet* out,
                                          std::uint32_t max_k) {
  PDS_CHECK(out != nullptr && max_k >= 1, "bad burst buffer");
  if (backlog_.empty()) return 0;
  const ClassId best =
      scan::wtp_select(heads_view(), sdp_lanes().data(), now, scan_backend());
  return backlog_.pop_burst(best, max_k, out);
}

}  // namespace pds
