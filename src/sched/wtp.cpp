#include "sched/wtp.hpp"

#include "util/contracts.hpp"

namespace pds {

double WtpScheduler::head_priority(ClassId cls, SimTime now) const {
  PDS_CHECK(cls < num_classes(), "class index out of range");
  const ClassHead& h = backlog_.head_of(cls);
  if (h.packets == 0) return 0.0;
  const SimTime wait = now - h.arrival;
  PDS_REQUIRE(wait >= 0.0);
  return wait * sdp()[cls];
}

std::optional<Packet> WtpScheduler::dequeue(SimTime now) {
  if (backlog_.empty()) return std::nullopt;
  // One pass over the head-of-line snapshot: emptiness, head arrival and
  // the SDP product are all evaluated in place — no per-class queue fetch
  // and no second emptiness test inside a helper.
  const ClassHead* heads = backlog_.heads();
  const double* s = sdp().data();
  const ClassId n = backlog_.num_classes();
  bool found = false;
  ClassId best = 0;
  double best_priority = -1.0;
  for (ClassId c = 0; c < n; ++c) {
    if (heads[c].packets == 0) continue;
    const SimTime wait = now - heads[c].arrival;
    PDS_REQUIRE(wait >= 0.0);
    const double p = wait * s[c];
    // `>=` implements the tie-break in favour of the higher class: classes
    // are scanned in ascending order, so an equal priority at a higher
    // index wins.
    if (!found || p >= best_priority) {
      found = true;
      best = c;
      best_priority = p;
    }
  }
  PDS_REQUIRE(found);
  return backlog_.pop(best);
}

}  // namespace pds
