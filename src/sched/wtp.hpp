// Waiting-Time Priority (WTP) scheduler — Section 4.2.
//
// Kleinrock's Time-Dependent Priorities (1964): the priority of the packet
// at the head of queue i at time t is
//
//     p_i(t) = w_i(t) * s_i                                   (Eq. 11)
//
// where w_i(t) is the packet's waiting time so far and s_i is the class's
// Scheduler Differentiation Parameter. The backlogged class with the highest
// head-of-line priority is served; ties are broken in favour of the higher
// class. In heavy load the achieved average-delay ratios tend to the inverse
// SDP ratios, d_i/d_j -> s_j/s_i (Eq. 10/13), which is the proportional
// delay differentiation model.
//
// Proposition 2 (short-term starvation): if the peak input rate R1 exceeds
// the link rate R and s_i/s_j < 1 - R/R1 (s_i < s_j), an arbitrarily long
// burst of class-j packets arriving back-to-back from time t0 is fully
// served before any class-i packet that arrived at or after t0.
//
// Complexity: O(N) per dequeue (one priority evaluation per class).
#pragma once

#include "sched/scheduler.hpp"

namespace pds {

class WtpScheduler final : public ClassBasedScheduler {
 public:
  explicit WtpScheduler(const SchedulerConfig& config)
      : ClassBasedScheduler(config) {}

  std::optional<Packet> dequeue(SimTime now) override;
  std::uint32_t dequeue_burst(SimTime now, Packet* out,
                              std::uint32_t max_k) override;

  std::string_view name() const noexcept override { return "WTP"; }

  // Head-of-line priority of class `cls` at `now`; 0 if not backlogged.
  // Exposed for tests and for the voip example's introspection.
  double head_priority(ClassId cls, SimTime now) const;
};

}  // namespace pds
