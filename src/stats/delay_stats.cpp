#include "stats/delay_stats.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pds {

ClassDelayStats::ClassDelayStats(std::uint32_t num_classes, SimTime warmup_end)
    : per_class_(num_classes), warmup_end_(warmup_end) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
}

void ClassDelayStats::record(ClassId cls, double delay, SimTime now) {
  PDS_CHECK(cls < per_class_.size(), "class index out of range");
  PDS_CHECK(delay >= 0.0, "negative delay");
  if (now < warmup_end_) return;
  per_class_[cls].add(delay);
}

const RunningStats& ClassDelayStats::of(ClassId cls) const {
  PDS_CHECK(cls < per_class_.size(), "class index out of range");
  return per_class_[cls];
}

std::vector<double> ClassDelayStats::means() const {
  std::vector<double> out;
  out.reserve(per_class_.size());
  for (const auto& s : per_class_) out.push_back(s.mean());
  return out;
}

std::vector<double> ClassDelayStats::successive_ratios() const {
  const auto m = means();
  std::vector<double> out;
  out.reserve(m.size() - 1);
  for (std::size_t i = 0; i + 1 < m.size(); ++i) {
    PDS_CHECK(m[i + 1] > 0.0, "zero mean delay in ratio");
    out.push_back(m[i] / m[i + 1]);
  }
  return out;
}

bool interval_rd(const std::vector<double>& class_mean_delays,
                 const std::vector<bool>& active, double* out) {
  PDS_CHECK(class_mean_delays.size() == active.size(),
            "mismatched vector lengths");
  PDS_CHECK(out != nullptr, "null output pointer");
  double sum = 0.0;
  std::size_t pairs = 0;
  std::size_t prev = 0;
  bool have_prev = false;
  for (std::size_t c = 0; c < active.size(); ++c) {
    if (!active[c]) continue;
    if (have_prev) {
      const double lo = class_mean_delays[prev];
      const double hi = class_mean_delays[c];
      if (hi <= 0.0 || lo <= 0.0) return false;
      const double gap = static_cast<double>(c - prev);
      sum += std::pow(lo / hi, 1.0 / gap);
      ++pairs;
    }
    prev = c;
    have_prev = true;
  }
  if (pairs == 0) return false;
  *out = sum / static_cast<double>(pairs);
  return true;
}

}  // namespace pds
