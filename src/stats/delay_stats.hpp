// Per-class queueing-delay bookkeeping used by the experiment harnesses.
#pragma once

#include <cstdint>
#include <vector>

#include "dsim/time.hpp"
#include "packet/packet.hpp"
#include "stats/running_stats.hpp"

namespace pds {

// Long-term per-class delay statistics with a warmup cutoff: departures
// before `warmup_end` are discarded, mirroring the paper's "initial warm-up
// period" exclusion.
class ClassDelayStats {
 public:
  ClassDelayStats(std::uint32_t num_classes, SimTime warmup_end);

  void record(ClassId cls, double delay, SimTime now);

  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(per_class_.size());
  }
  const RunningStats& of(ClassId cls) const;

  // Mean delay per class, in class order. Throws if any class is empty.
  std::vector<double> means() const;

  // Ratios of successive class means, d_i / d_{i+1} for i = 0..N-2 —
  // the paper's "class i over i+1" curves (target: s_{i+1}/s_i).
  std::vector<double> successive_ratios() const;

 private:
  std::vector<RunningStats> per_class_;
  SimTime warmup_end_;
};

// Averages the successive-class delay ratios of one interval into the
// scalar R_D, normalizing over inactive classes: for consecutive *active*
// classes a < b the equivalent per-step ratio is (d_a/d_b)^(1/(b-a)).
// Returns false (and leaves `out` untouched) when fewer than two classes
// are active or any active mean is zero.
bool interval_rd(const std::vector<double>& class_mean_delays,
                 const std::vector<bool>& active, double* out);

}  // namespace pds
