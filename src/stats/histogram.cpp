#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pds {

LogHistogram::LogHistogram(double first_bound, double growth,
                           std::uint32_t bins)
    : first_bound_(first_bound), growth_(growth), counts_(bins, 0) {
  PDS_CHECK(first_bound > 0.0, "first bound must be positive");
  PDS_CHECK(growth > 1.0, "growth must exceed 1");
  PDS_CHECK(bins >= 1, "need at least one bin");
}

void LogHistogram::add(double value) {
  PDS_CHECK(value >= 0.0, "negative sample");
  ++total_;
  if (value < first_bound_) {
    ++underflow_;
    return;
  }
  // Bin index: smallest i with value < first_bound * growth^(i+1).
  const double idx =
      std::floor(std::log(value / first_bound_) / std::log(growth_));
  const auto i = static_cast<std::uint64_t>(idx < 0.0 ? 0.0 : idx);
  if (i >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(i)];
}

double LogHistogram::bin_bound(std::uint32_t i) const {
  PDS_CHECK(i < counts_.size(), "bin index out of range");
  return first_bound_ * std::pow(growth_, static_cast<double>(i + 1));
}

std::uint64_t LogHistogram::bin_count(std::uint32_t i) const {
  PDS_CHECK(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double LogHistogram::ccdf(double bound) const {
  PDS_CHECK(total_ > 0, "ccdf of empty histogram");
  // Bin-bound resolution, rounded up: a bin contributes fully when its
  // upper edge exceeds `bound`. The underflow bin (values < first_bound_)
  // contributes only when the query sits below the first bound.
  std::uint64_t above = overflow_;
  if (bound < first_bound_) above += underflow_;
  for (std::uint32_t i = 0; i < counts_.size(); ++i) {
    if (bin_bound(i) > bound) above += counts_[i];
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

std::vector<LogHistogram::Row> LogHistogram::rows() const {
  PDS_CHECK(total_ > 0, "rows of empty histogram");
  std::vector<Row> out;
  out.reserve(counts_.size());
  std::uint64_t above = overflow_;
  for (std::uint32_t i = num_bins(); i-- > 0;) {
    out.push_back(Row{bin_bound(i),
                      static_cast<double>(above) /
                          static_cast<double>(total_)});
    above += counts_[i];
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace pds
