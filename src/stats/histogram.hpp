// Log-binned histogram for queueing-delay distributions.
//
// Heavy-load delays span four orders of magnitude (a 40 B packet may wait a
// fraction of a p-unit; a class-1 packet behind a burst waits hundreds), so
// fixed-width bins waste resolution. Bins here grow geometrically from
// `first_bound` by `growth` per bin; an underflow bin catches values below
// the first bound. The histogram answers CCDF queries (fraction of samples
// strictly above a bound) and exports (bound, ccdf) rows for plotting.
#pragma once

#include <cstdint>
#include <vector>

namespace pds {

class LogHistogram {
 public:
  // `first_bound` > 0; `growth` > 1; `bins` >= 1. The i-th bin covers
  // [first_bound * growth^(i-1), first_bound * growth^i) with bin 0's lower
  // edge replaced by first_bound; values below first_bound land in the
  // underflow bin and values beyond the last bound in the overflow bin.
  LogHistogram(double first_bound, double growth, std::uint32_t bins);

  void add(double value);

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  // Upper bound of bin `i`.
  double bin_bound(std::uint32_t i) const;
  std::uint64_t bin_count(std::uint32_t i) const;
  std::uint32_t num_bins() const noexcept {
    return static_cast<std::uint32_t>(counts_.size());
  }

  // Fraction of samples strictly greater than `bound` (exact for bin
  // boundaries, conservative-up otherwise). Throws on an empty histogram.
  double ccdf(double bound) const;

  struct Row {
    double bound;
    double ccdf;
  };
  // One row per bin bound, for plotting.
  std::vector<Row> rows() const;

 private:
  double first_bound_;
  double growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pds
