#include "stats/interval_monitor.hpp"

#include "util/contracts.hpp"

namespace pds {

IntervalDelayMonitor::IntervalDelayMonitor(std::uint32_t num_classes,
                                           SimTime tau, SimTime start)
    : num_classes_(num_classes),
      tau_(tau),
      bucket_start_(start),
      sum_(num_classes, 0.0),
      count_(num_classes, 0) {
  PDS_CHECK(num_classes >= 2, "R_D needs at least two classes");
  PDS_CHECK(tau > 0.0, "monitoring timescale must be positive");
}

void IntervalDelayMonitor::close_bucket() {
  bool any = false;
  std::vector<bool> active(num_classes_, false);
  std::vector<double> means(num_classes_, 0.0);
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    if (count_[c] > 0) {
      any = true;
      active[c] = true;
      means[c] = sum_[c] / static_cast<double>(count_[c]);
    }
    sum_[c] = 0.0;
    count_[c] = 0;
  }
  if (!any) return;  // empty intervals are not counted (no departures)
  ++intervals_;
  double rd = 0.0;
  if (interval_rd(means, active, &rd)) {
    rds_.push_back(rd);
  } else {
    ++undefined_;
  }
}

void IntervalDelayMonitor::record(ClassId cls, double delay, SimTime now) {
  PDS_CHECK(cls < num_classes_, "class index out of range");
  PDS_CHECK(!finished_, "monitor already finished");
  if (now < bucket_start_) return;  // warmup
  while (now >= bucket_start_ + tau_) {
    close_bucket();
    bucket_start_ += tau_;
  }
  sum_[cls] += delay;
  ++count_[cls];
}

void IntervalDelayMonitor::finish() {
  if (finished_) return;
  finished_ = true;
  close_bucket();
}

}  // namespace pds
