// Short-timescale monitoring (Figure 3).
//
// Partitions simulated time into consecutive intervals of length tau and
// computes, for each interval, the per-class average delay of the packets
// that *departed* in it (Eq. 2's metric). At interval end the successive
// active-class ratios are folded into the scalar R_D (see interval_rd);
// the resulting R_D series feeds the percentile boxes of Figure 3.
#pragma once

#include <cstdint>
#include <vector>

#include "dsim/time.hpp"
#include "packet/packet.hpp"
#include "stats/delay_stats.hpp"

namespace pds {

class IntervalDelayMonitor {
 public:
  // Departures before `start` (warmup) are ignored; the first interval is
  // [start, start + tau).
  IntervalDelayMonitor(std::uint32_t num_classes, SimTime tau, SimTime start);

  // Records a departure; times must be non-decreasing across calls.
  void record(ClassId cls, double delay, SimTime now);

  // Closes the current interval (call once at simulation end).
  void finish();

  // R_D of every interval where it was defined (>= 2 active classes).
  const std::vector<double>& rd_values() const noexcept { return rds_; }

  // Intervals that contained at least one departure but had fewer than two
  // active classes (R_D undefined there).
  std::uint64_t undefined_intervals() const noexcept { return undefined_; }
  std::uint64_t intervals_seen() const noexcept { return intervals_; }

 private:
  void close_bucket();

  std::uint32_t num_classes_;
  SimTime tau_;
  SimTime bucket_start_;
  std::vector<double> sum_;
  std::vector<std::uint64_t> count_;
  std::vector<double> rds_;
  std::uint64_t undefined_ = 0;
  std::uint64_t intervals_ = 0;
  bool finished_ = false;
};

}  // namespace pds
