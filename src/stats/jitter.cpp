#include "stats/jitter.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pds {

JitterEstimator::JitterEstimator(std::uint32_t num_classes)
    : state_(num_classes) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
}

void JitterEstimator::record(ClassId cls, double delay) {
  PDS_CHECK(cls < state_.size(), "class index out of range");
  PDS_CHECK(delay >= 0.0, "negative delay");
  PerClass& s = state_[cls];
  ++s.n;
  if (s.has_prev) {
    const double d = std::abs(delay - s.prev);
    s.jitter += (d - s.jitter) / 16.0;
  }
  s.prev = delay;
  s.has_prev = true;
}

double JitterEstimator::jitter(ClassId cls) const {
  PDS_CHECK(cls < state_.size(), "class index out of range");
  return state_[cls].jitter;
}

std::uint64_t JitterEstimator::samples(ClassId cls) const {
  PDS_CHECK(cls < state_.size(), "class index out of range");
  return state_[cls].n;
}

}  // namespace pds
