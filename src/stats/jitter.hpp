// Per-class delay jitter (RFC 3550 interarrival-jitter estimator).
//
// Delay-sensitive applications — the paper's motivating users (Section 1:
// IP telephony, video conferencing) — care about delay *variation* as much
// as its mean. The RTP estimator smooths the absolute difference between
// the delays of consecutive packets with gain 1/16:
//
//     J <- J + (|d_k - d_{k-1}| - J) / 16,
//
// whose fixed point is E|d_k - d_{k-1}|. Proportional delay
// differentiation turns out to space jitter as well as mean delay — the
// jitter tests and the simulate_cli report make that visible.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"

namespace pds {

class JitterEstimator {
 public:
  explicit JitterEstimator(std::uint32_t num_classes);

  // Feeds the queueing delay of the next departing packet of `cls`.
  void record(ClassId cls, double delay);

  // Current smoothed jitter of a class; 0 until two packets were seen.
  double jitter(ClassId cls) const;

  std::uint64_t samples(ClassId cls) const;
  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(state_.size());
  }

 private:
  struct PerClass {
    bool has_prev = false;
    double prev = 0.0;
    double jitter = 0.0;
    std::uint64_t n = 0;
  };
  std::vector<PerClass> state_;
};

}  // namespace pds
