#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pds {

namespace {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  PDS_CHECK(!sorted.empty(), "percentile of empty sample");
  PDS_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& ps) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (const double p : ps) out.push_back(percentile_sorted(samples, p));
  return out;
}

double SampleSet::percentile(double p) const {
  return ::pds::percentile(samples_, p);
}

std::vector<double> SampleSet::percentiles(
    const std::vector<double>& ps) const {
  return ::pds::percentiles(samples_, ps);
}

double SampleSet::mean() const {
  PDS_CHECK(!samples_.empty(), "mean of empty sample");
  double s = 0.0;
  for (const double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

}  // namespace pds
