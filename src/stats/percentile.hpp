// Percentile computation over retained samples.
//
// Study B flows are short (10-100 packets) and Figure 3 retains one R_D
// value per monitoring interval, so exact percentiles over stored samples
// are affordable and avoid estimator bias in the tails the paper reports
// (5% / 95%, and the per-flow 99th percentile).
#pragma once

#include <vector>

namespace pds {

// Percentile with linear interpolation between closest ranks (the same
// convention as numpy's default). `p` in [0, 100]. Throws on empty input.
double percentile(std::vector<double> samples, double p);

// Multiple percentiles over one sorted pass; `ps` in [0, 100].
std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& ps);

// Sample accumulator with convenience accessors.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const std::vector<double>& samples() const noexcept { return samples_; }

  double percentile(double p) const;
  std::vector<double> percentiles(const std::vector<double>& ps) const;
  double mean() const;

 private:
  std::vector<double> samples_;
};

}  // namespace pds
