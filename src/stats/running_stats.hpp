// Streaming first/second-moment accumulator (Welford's algorithm) —
// numerically stable for the long heavy-load runs where delays span four
// orders of magnitude.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/contracts.hpp"

namespace pds {

class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }

  double mean() const {
    PDS_CHECK(n_ > 0, "mean of empty sample");
    return mean_;
  }

  // Population variance; sample variance uses (n-1).
  double variance() const {
    PDS_CHECK(n_ > 0, "variance of empty sample");
    return m2_ / static_cast<double>(n_);
  }

  double stddev() const { return std::sqrt(variance()); }

  double min() const {
    PDS_CHECK(n_ > 0, "min of empty sample");
    return min_;
  }

  double max() const {
    PDS_CHECK(n_ > 0, "max of empty sample");
    return max_;
  }

  // Merges another accumulator (Chan et al. parallel formula).
  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pds
