#include "stats/sawtooth.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pds {

SawtoothIndex::SawtoothIndex(std::uint32_t num_classes)
    : per_class_(num_classes) {
  PDS_CHECK(num_classes >= 1, "need at least one class");
}

void SawtoothIndex::record(ClassId cls, double delay) {
  PDS_CHECK(cls < per_class_.size(), "class index out of range");
  PDS_CHECK(delay >= 0.0, "negative delay");
  PerClass& s = per_class_[cls];
  ++s.n;
  s.mean += (delay - s.mean) / static_cast<double>(s.n);
  s.mass += delay;
  if (s.has_prev) {
    s.variation += std::abs(delay - s.prev);
    if (s.prev - delay > 0.5 * s.mean) ++s.collapses;
  }
  s.prev = delay;
  s.has_prev = true;
}

double SawtoothIndex::index(ClassId cls) const {
  PDS_CHECK(cls < per_class_.size(), "class index out of range");
  const PerClass& s = per_class_[cls];
  if (s.n < 2 || s.mass <= 0.0) return 0.0;
  return s.variation / s.mass;
}

double SawtoothIndex::overall() const {
  double variation = 0.0;
  double mass = 0.0;
  for (const auto& s : per_class_) {
    variation += s.variation;
    mass += s.mass;
  }
  return mass > 0.0 ? variation / mass : 0.0;
}

std::uint64_t SawtoothIndex::collapses(ClassId cls) const {
  PDS_CHECK(cls < per_class_.size(), "class index out of range");
  return per_class_[cls].collapses;
}

std::uint64_t SawtoothIndex::total_collapses() const {
  std::uint64_t total = 0;
  for (const auto& s : per_class_) total += s.collapses;
  return total;
}

}  // namespace pds
