// Sawtooth index: quantifies the "noisy queueing delay variations" the
// paper's microscopic views attribute to BPR (Figure 4) versus WTP's smooth
// tracking (Figure 5).
//
// For each class we accumulate the absolute difference between the delays of
// consecutive departing packets; the index is that total variation divided
// by the total delay mass. A smooth delay trajectory scores near 0; a
// trajectory that repeatedly ramps up and collapses scores high. We also
// count "collapses" — drops of more than half the running mean delay between
// consecutive packets — which correspond to the sudden sawtooth resets after
// new arrivals refill a nearly-empty BPR queue.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"

namespace pds {

class SawtoothIndex {
 public:
  explicit SawtoothIndex(std::uint32_t num_classes);

  void record(ClassId cls, double delay);

  // Total-variation-to-mass ratio for one class; 0 when < 2 samples.
  double index(ClassId cls) const;
  // Aggregate over all classes.
  double overall() const;

  std::uint64_t collapses(ClassId cls) const;
  std::uint64_t total_collapses() const;

 private:
  struct PerClass {
    bool has_prev = false;
    double prev = 0.0;
    double variation = 0.0;
    double mass = 0.0;
    double mean = 0.0;  // running mean for the collapse threshold
    std::uint64_t n = 0;
    std::uint64_t collapses = 0;
  };
  std::vector<PerClass> per_class_;
};

}  // namespace pds
