#include "stats/variance_time.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pds {

CountSeries::CountSeries(SimTime slot, SimTime start)
    : slot_(slot), next_boundary_(start + slot) {
  PDS_CHECK(slot > 0.0, "slot must be positive");
}

void CountSeries::record(SimTime t) {
  PDS_CHECK(!finished_, "series already finished");
  if (t < next_boundary_ - slot_) return;  // before start
  while (t >= next_boundary_) {
    counts_.push_back(current_);
    current_ = 0.0;
    next_boundary_ += slot_;
  }
  current_ += 1.0;
}

std::vector<double> CountSeries::finish() {
  PDS_CHECK(!finished_, "series already finished");
  finished_ = true;
  counts_.push_back(current_);
  return counts_;
}

namespace {

// Variance of the means of consecutive blocks of length m.
double block_mean_variance(const std::vector<double>& counts,
                           std::uint64_t m) {
  const std::size_t blocks = counts.size() / m;
  PDS_CHECK(blocks >= 2, "need at least two blocks at this level");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    double block = 0.0;
    for (std::size_t i = 0; i < m; ++i) block += counts[b * m + i];
    block /= static_cast<double>(m);
    sum += block;
    sum_sq += block * block;
  }
  const double n = static_cast<double>(blocks);
  const double mean = sum / n;
  return sum_sq / n - mean * mean;
}

}  // namespace

std::vector<VarianceTimePoint> variance_time(
    const std::vector<double>& counts,
    const std::vector<std::uint64_t>& levels) {
  PDS_CHECK(!levels.empty(), "no aggregation levels");
  PDS_CHECK(counts.size() >= 4, "series too short");
  const double base_var = block_mean_variance(counts, 1);
  PDS_CHECK(base_var > 0.0, "constant series has no variance structure");
  std::vector<VarianceTimePoint> out;
  for (const auto m : levels) {
    PDS_CHECK(m >= 1, "aggregation level must be at least 1");
    out.push_back({m, block_mean_variance(counts, m) / base_var});
  }
  return out;
}

double variance_time_slope(const std::vector<VarianceTimePoint>& points) {
  PDS_CHECK(points.size() >= 2, "need at least two points for a slope");
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const auto& p : points) {
    PDS_CHECK(p.normalized_var > 0.0, "non-positive variance point");
    const double x = std::log10(static_cast<double>(p.m));
    const double y = std::log10(p.normalized_var);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(points.size());
  const double denom = n * sxx - sx * sx;
  PDS_CHECK(denom > 0.0, "degenerate level spacing");
  return (n * sxy - sx * sy) / denom;
}

}  // namespace pds
