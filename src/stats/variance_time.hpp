// Variance-time analysis: quantifying "bursty over a wide range of
// timescales" (Section 1).
//
// For a stationary count process, let X^(m) be the series of arrival
// counts aggregated over windows of m base slots. For short-range-
// dependent traffic Var[X^(m)] decays like m^-1; for (asymptotically)
// self-similar traffic with Hurst parameter H it decays like m^(2H-2).
// Plotting log Var[X^(m)]/Var[X] against log m and fitting the slope beta
// yields H = 1 + beta/2: H ~ 0.5 for Poisson, H -> 1 for strongly
// long-range-dependent traffic such as aggregated Pareto on/off sources.
#pragma once

#include <cstdint>
#include <vector>

#include "dsim/time.hpp"

namespace pds {

// Accumulates an arrival-count series over fixed base slots.
class CountSeries {
 public:
  // `slot` is the base aggregation window (time units); recording starts
  // at time `start`.
  CountSeries(SimTime slot, SimTime start);

  // Records one arrival at `t >= start`; times must be non-decreasing.
  void record(SimTime t);

  // Closes the current slot and returns the completed series.
  std::vector<double> finish();

 private:
  SimTime slot_;
  SimTime next_boundary_;
  double current_ = 0.0;
  std::vector<double> counts_;
  bool finished_ = false;
};

struct VarianceTimePoint {
  std::uint64_t m;           // aggregation level (in base slots)
  double normalized_var;     // Var[X^(m)] / (Var[X] * m^... ) — see note
};

// Variance of window sums at each aggregation level in `levels`,
// normalized by the level-1 variance: out[i] = Var[mean of m samples].
// (Dividing the m-window *mean* keeps the Poisson reference slope at -1.)
std::vector<VarianceTimePoint> variance_time(
    const std::vector<double>& counts,
    const std::vector<std::uint64_t>& levels);

// Least-squares slope of log10(normalized_var) vs log10(m); the Hurst
// estimate is H = 1 + slope / 2. Requires at least two points.
double variance_time_slope(const std::vector<VarianceTimePoint>& points);

inline double hurst_from_slope(double slope) { return 1.0 + slope / 2.0; }

}  // namespace pds
