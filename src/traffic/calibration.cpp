#include "traffic/calibration.hpp"

#include "util/contracts.hpp"

namespace pds {

std::vector<double> normalize_fractions(const std::vector<double>& fractions) {
  PDS_CHECK(!fractions.empty(), "empty fraction vector");
  double total = 0.0;
  for (const double f : fractions) {
    PDS_CHECK(f >= 0.0, "negative load fraction");
    total += f;
  }
  PDS_CHECK(total > 0.0, "all load fractions are zero");
  std::vector<double> out;
  out.reserve(fractions.size());
  for (const double f : fractions) out.push_back(f / total);
  return out;
}

double class_mean_interarrival(double utilization, double fraction,
                               double capacity_bytes_per_tu,
                               double mean_packet_bytes) {
  PDS_CHECK(utilization > 0.0, "utilization must be positive");
  PDS_CHECK(fraction > 0.0, "fraction must be positive");
  PDS_CHECK(capacity_bytes_per_tu > 0.0, "capacity must be positive");
  PDS_CHECK(mean_packet_bytes > 0.0, "mean packet size must be positive");
  const double lambda =
      utilization * fraction * capacity_bytes_per_tu / mean_packet_bytes;
  return 1.0 / lambda;
}

std::vector<double> class_mean_interarrivals(
    double utilization, const std::vector<double>& fractions,
    double capacity_bytes_per_tu, double mean_packet_bytes) {
  const auto norm = normalize_fractions(fractions);
  std::vector<double> out;
  out.reserve(norm.size());
  for (const double f : norm) {
    out.push_back(class_mean_interarrival(utilization, f,
                                          capacity_bytes_per_tu,
                                          mean_packet_bytes));
  }
  return out;
}

}  // namespace pds
