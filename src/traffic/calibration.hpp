// Load calibration: converts the experiment knobs the paper reports
// (utilization rho, per-class load fractions) into the mean interarrival
// times the sources need.
//
// With link capacity R (bytes/tu) and mean packet size E[L] (bytes), a class
// carrying fraction f of a total utilization rho emits packets at rate
// lambda = rho * f * R / E[L], i.e. mean interarrival E[L] / (rho * f * R).
#pragma once

#include <vector>

namespace pds {

// Mean interarrival time (time units per packet) for one class.
double class_mean_interarrival(double utilization, double fraction,
                               double capacity_bytes_per_tu,
                               double mean_packet_bytes);

// Mean interarrival for every class of a load-fraction vector. Fractions
// are normalized internally, so {40,30,20,10} and {0.4,0.3,0.2,0.1} agree.
std::vector<double> class_mean_interarrivals(
    double utilization, const std::vector<double>& fractions,
    double capacity_bytes_per_tu, double mean_packet_bytes);

// Normalizes a fraction vector to sum to 1; throws on non-positive input.
std::vector<double> normalize_fractions(const std::vector<double>& fractions);

}  // namespace pds
