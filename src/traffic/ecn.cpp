#include "traffic/ecn.hpp"

#include <algorithm>

#include "rng/distributions.hpp"
#include "util/contracts.hpp"

namespace pds {

EcnMarker::EcnMarker(std::uint64_t threshold_packets)
    : threshold_(threshold_packets) {
  PDS_CHECK(threshold_packets >= 1, "threshold must be at least 1 packet");
}

bool EcnMarker::should_mark(const Scheduler& sched) const {
  std::uint64_t total = 0;
  for (ClassId c = 0; c < sched.num_classes(); ++c) {
    total += sched.backlog_packets(c);
    if (total >= threshold_) return true;
  }
  return false;
}

void EcnSourceConfig::validate() const {
  PDS_CHECK(packet_bytes > 0, "packet size must be positive");
  PDS_CHECK(min_rate > 0.0, "min rate must be positive");
  PDS_CHECK(initial_rate >= min_rate && initial_rate <= max_rate,
            "initial rate outside [min, max]");
  PDS_CHECK(max_rate >= min_rate, "max rate below min rate");
  PDS_CHECK(additive_increase > 0.0, "additive increase must be positive");
  PDS_CHECK(multiplicative_decrease > 0.0 && multiplicative_decrease < 1.0,
            "multiplicative decrease must be in (0,1)");
}

struct EcnAdaptiveSource::State {
  Simulator& sim;
  PacketIdAllocator& ids;
  EcnSourceConfig config;
  Rng rng;
  PacketHandler handler;
  double rate;
  bool stopped = false;
  bool started = false;
  std::uint64_t emitted = 0;
  std::uint64_t marks = 0;

  // Exponential gaps with the current mean keep emissions well-behaved
  // when the rate changes between packets. The pending event's shared_ptr
  // reference moves through the rearm chain (see traffic/source.cpp).
  static void arm(std::shared_ptr<State> st) {
    const double mean_gap =
        static_cast<double>(st->config.packet_bytes) / st->rate;
    const ExponentialDist gap(mean_gap);
    const double delay = gap.sample(st->rng);
    Simulator& sim = st->sim;
    sim.schedule_in(delay, SimEvent(
                               [st = std::move(st)]() mutable {
                                 if (st->stopped) return;
                                 Packet p;
                                 p.id = st->ids.next();
                                 p.cls = st->config.cls;
                                 p.size_bytes = st->config.packet_bytes;
                                 p.created = st->sim.now();
                                 st->handler(std::move(p));
                                 ++st->emitted;
                                 arm(std::move(st));
                               },
                               "traffic.ecn"));
  }
};

EcnAdaptiveSource::EcnAdaptiveSource(Simulator& sim, PacketIdAllocator& ids,
                                     EcnSourceConfig config, Rng rng,
                                     PacketHandler handler)
    : state_(std::make_shared<State>(
          State{sim, ids, config, rng, std::move(handler),
                config.initial_rate})) {
  config.validate();
  PDS_CHECK(static_cast<bool>(state_->handler), "null packet handler");
}

EcnAdaptiveSource::~EcnAdaptiveSource() {
  if (state_) state_->stopped = true;
}

void EcnAdaptiveSource::start(SimTime at) {
  PDS_CHECK(!state_->started, "source already started");
  state_->started = true;
  state_->sim.schedule_at(
      at, SimEvent([st = state_]() mutable {
        if (!st->stopped) State::arm(std::move(st));
      }, "traffic.ecn"));
}

void EcnAdaptiveSource::stop() noexcept { state_->stopped = true; }

void EcnAdaptiveSource::on_feedback(bool marked) {
  State& st = *state_;
  if (marked) {
    ++st.marks;
    st.rate *= st.config.multiplicative_decrease;
  } else {
    st.rate += st.config.additive_increase;
  }
  st.rate = std::clamp(st.rate, st.config.min_rate, st.config.max_rate);
}

double EcnAdaptiveSource::current_rate() const noexcept {
  return state_->rate;
}

std::uint64_t EcnAdaptiveSource::packets_emitted() const noexcept {
  return state_->emitted;
}

std::uint64_t EcnAdaptiveSource::marks_received() const noexcept {
  return state_->marks;
}

}  // namespace pds
