// ECN-regulated adaptive sources — the operating regime Section 3 assumes.
//
// The paper's lossless, stable, high-utilization single link "can be
// achieved in practice with sources that react to the Explicit Congestion
// Notification (ECN) bit, without requiring loss-induced congestion
// control". This module supplies that substrate:
//
//  * EcnMarker: marks a packet's CE bit when the queue it joins exceeds a
//    backlog threshold (the classic DECbit/ECN instantaneous-queue rule).
//  * EcnAdaptiveSource: a rate-based AIMD sender. Every emitted packet is
//    eventually echoed back through on_feedback(marked) (the caller wires
//    departures to feedback, optionally with delay); marks multiplicatively
//    decrease the sending rate, clean echoes additively increase it.
//
// Together they keep a link near a utilization setpoint with a bounded
// queue and zero loss — verified by the ecn tests and demonstrated in the
// ecn_stability example.
#pragma once

#include <cstdint>
#include <memory>

#include "dsim/simulator.hpp"
#include "packet/packet.hpp"
#include "rng/rng.hpp"
#include "sched/scheduler.hpp"
#include "traffic/source.hpp"

namespace pds {

// Instantaneous-queue ECN marking: returns true (mark) when the total
// packet backlog of `sched` is at or above the threshold.
class EcnMarker {
 public:
  explicit EcnMarker(std::uint64_t threshold_packets);

  bool should_mark(const Scheduler& sched) const;

  std::uint64_t threshold() const noexcept { return threshold_; }

 private:
  std::uint64_t threshold_;
};

struct EcnSourceConfig {
  ClassId cls = 0;
  std::uint32_t packet_bytes = 500;
  double initial_rate = 1.0;      // bytes per time unit
  double min_rate = 0.1;          // floor (keeps probing alive)
  double max_rate = 1e9;          // cap
  double additive_increase = 0.05;  // bytes/tu added per clean echo
  double multiplicative_decrease = 0.5;  // rate *= this on a mark

  void validate() const;
};

class EcnAdaptiveSource {
 public:
  EcnAdaptiveSource(Simulator& sim, PacketIdAllocator& ids,
                    EcnSourceConfig config, Rng rng, PacketHandler handler);
  ~EcnAdaptiveSource();

  EcnAdaptiveSource(const EcnAdaptiveSource&) = delete;
  EcnAdaptiveSource& operator=(const EcnAdaptiveSource&) = delete;

  void start(SimTime at);
  void stop() noexcept;

  // Congestion feedback for one previously emitted packet. Marks shrink
  // the rate multiplicatively; clean echoes grow it additively.
  void on_feedback(bool marked);

  double current_rate() const noexcept;        // bytes per time unit
  std::uint64_t packets_emitted() const noexcept;
  std::uint64_t marks_received() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace pds
