#include "traffic/onoff.hpp"

#include "rng/distributions.hpp"
#include "util/contracts.hpp"

namespace pds {

void OnOffConfig::validate() const {
  PDS_CHECK(packet_bytes > 0, "packet size must be positive");
  PDS_CHECK(peak_rate > 0.0, "peak rate must be positive");
  PDS_CHECK(mean_on > 0.0 && mean_off > 0.0, "period means must be positive");
  PDS_CHECK(pareto_alpha > 1.0, "Pareto shape must exceed 1 (finite mean)");
  // An ON period must fit at least one packet on average.
  PDS_CHECK(mean_on * peak_rate >= static_cast<double>(packet_bytes),
            "mean ON period shorter than one packet");
}

struct OnOffSource::State {
  Simulator& sim;
  PacketIdAllocator& ids;
  OnOffConfig config;
  ParetoDist on_law;
  ParetoDist off_law;
  ExponentialDist off_exp;
  Rng rng;
  PacketHandler handler;
  bool stopped = false;
  bool started = false;
  std::uint64_t emitted = 0;
  std::uint64_t bursts = 0;

  State(Simulator& sim_in, PacketIdAllocator& ids_in, OnOffConfig cfg,
        Rng rng_in, PacketHandler handler_in)
      : sim(sim_in),
        ids(ids_in),
        config(cfg),
        on_law(ParetoDist::with_mean(cfg.pareto_alpha, cfg.mean_on)),
        off_law(ParetoDist::with_mean(cfg.pareto_alpha, cfg.mean_off)),
        off_exp(cfg.mean_off),
        rng(rng_in),
        handler(std::move(handler_in)) {}

  double draw_off() {
    return config.pareto_off ? off_law.sample(rng) : off_exp.sample(rng);
  }

  void emit_packet() {
    Packet p;
    p.id = ids.next();
    p.cls = config.cls;
    p.size_bytes = config.packet_bytes;
    p.created = sim.now();
    handler(std::move(p));
    ++emitted;
  }

  // Emits packets separated by the packet serialization time at the peak
  // rate until `burst_end`, then sleeps an OFF period and repeats. The
  // pending event's shared_ptr reference moves through the chain, so the
  // per-packet rearm neither allocates nor touches the refcount.
  static void run_on_period(std::shared_ptr<State> st, SimTime burst_end) {
    if (st->stopped) return;
    st->emit_packet();
    const double gap = static_cast<double>(st->config.packet_bytes) /
                       st->config.peak_rate;
    Simulator& sim = st->sim;
    if (sim.now() + gap <= burst_end) {
      sim.schedule_in(gap, SimEvent(
                               [st = std::move(st), burst_end]() mutable {
                                 run_on_period(std::move(st), burst_end);
                               },
                               "traffic.onoff"));
    } else {
      schedule_next_burst(std::move(st));
    }
  }

  static void schedule_next_burst(std::shared_ptr<State> st) {
    if (st->stopped) return;
    const double off = st->draw_off();
    Simulator& sim = st->sim;
    sim.schedule_in(off, SimEvent(
                             [st = std::move(st)]() mutable {
                               if (st->stopped) return;
                               ++st->bursts;
                               const double on = st->on_law.sample(st->rng);
                               const SimTime burst_end = st->sim.now() + on;
                               run_on_period(std::move(st), burst_end);
                             },
                             "traffic.onoff"));
  }
};

OnOffSource::OnOffSource(Simulator& sim, PacketIdAllocator& ids,
                         OnOffConfig config, Rng rng, PacketHandler handler)
    : state_(std::make_shared<State>(sim, ids, config, rng,
                                     std::move(handler))) {
  config.validate();
  PDS_CHECK(static_cast<bool>(state_->handler), "null packet handler");
}

OnOffSource::~OnOffSource() {
  if (state_) state_->stopped = true;
}

void OnOffSource::start(SimTime at) {
  PDS_CHECK(!state_->started, "source already started");
  state_->started = true;
  state_->sim.schedule_at(
      at, SimEvent([st = state_]() mutable {
        State::schedule_next_burst(std::move(st));
      }, "traffic.onoff"));
}

void OnOffSource::stop() noexcept { state_->stopped = true; }

std::uint64_t OnOffSource::packets_emitted() const noexcept {
  return state_->emitted;
}

std::uint64_t OnOffSource::bursts_started() const noexcept {
  return state_->bursts;
}

}  // namespace pds
