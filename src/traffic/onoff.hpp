// Pareto on/off source: the classical model of traffic that is "bursty over
// a wide range of timescales" (Section 1). During an ON period the source
// emits packets back-to-back at a fixed peak rate; OFF periods are silent.
// With Pareto-distributed ON and/or OFF durations of shape 1 < alpha < 2,
// the superposition of many such sources converges to self-similar traffic
// (Willinger et al., SIGCOMM'95) — the regime the paper's schedulers must
// survive. The variance-time estimator in stats/ quantifies this.
#pragma once

#include <cstdint>
#include <memory>

#include "dsim/simulator.hpp"
#include "packet/packet.hpp"
#include "rng/rng.hpp"
#include "traffic/source.hpp"

namespace pds {

struct OnOffConfig {
  ClassId cls = 0;
  std::uint32_t packet_bytes = 500;
  double peak_rate = 10.0;       // bytes per time unit while ON
  double mean_on = 100.0;        // mean ON duration (time units)
  double mean_off = 900.0;       // mean OFF duration (time units)
  double pareto_alpha = 1.5;     // shape for both period laws
  bool pareto_off = true;        // heavy-tailed OFF periods too

  // Long-run average rate in bytes per time unit.
  double mean_rate() const {
    return peak_rate * mean_on / (mean_on + mean_off);
  }
  void validate() const;
};

class OnOffSource {
 public:
  OnOffSource(Simulator& sim, PacketIdAllocator& ids, OnOffConfig config,
              Rng rng, PacketHandler handler);
  ~OnOffSource();

  OnOffSource(const OnOffSource&) = delete;
  OnOffSource& operator=(const OnOffSource&) = delete;

  // Starts with an OFF period beginning at `at` (a random phase).
  void start(SimTime at);
  void stop() noexcept;

  std::uint64_t packets_emitted() const noexcept;
  std::uint64_t bursts_started() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace pds
